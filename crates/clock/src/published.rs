//! Seqlock-published clock views.
//!
//! [`PublishedClock`] is the lock-free half of the two-plane ingestion
//! split's *publication* problem: a sync engine (single writer per slot,
//! serialized by the sync-plane mutex) must make a thread's spliced
//! race-check clock visible to access shards (many readers) after every
//! synchronization event, and the readers must never observe a torn
//! view.  The PR-4 construction solved this with a per-slot `Mutex`
//! holding an `Arc` snapshot — correct, but every publish paid a lock
//! round trip plus reference-count traffic, a fixed ~85 ns constant on
//! top of the single-mutex floor (`BENCH_sync_cost.json`).
//!
//! A seqlock removes both costs.  The writer bumps an even/odd *version
//! word* around an in-place write of the clock entries; readers snapshot
//! the entries between two version reads and retry if the version was
//! odd (write in progress) or changed (write overlapped the read).  No
//! reader ever blocks the writer, no lock or refcount is touched on
//! either side, and — because every entry is an atomic — the protocol is
//! expressible in safe Rust.
//!
//! # Memory-ordering protocol
//!
//! Writer (already serialized externally; concurrent writers are
//! additionally excluded by an odd-claim CAS so misuse degrades to
//! spinning, never to corruption):
//!
//! 1. `version.compare_exchange(v, v + 1)` for even `v` (Acquire) —
//!    claim the write and flip to odd.
//! 2. `fence(Release)` — orders the claim before the data stores.
//! 3. store `len` and every entry with `Relaxed` stores.
//! 4. `version.store(v + 2, Release)` — publish: the release store
//!    orders every data store before the new even version.
//!
//! Reader:
//!
//! 1. `v1 = version.load(Acquire)`; spin while odd.
//! 2. load `len` and the entries with `Relaxed` loads.
//! 3. `fence(Acquire)`; `v2 = version.load(Relaxed)`.
//! 4. if `v1 != v2`, a write overlapped the read — retry.
//!
//! If the reader's data loads observed *any* store from a concurrent
//! write, the acquire fence in step 3 forces the subsequent version load
//! to observe at least that write's odd claim, so the `v1 != v2` check
//! fails and the snapshot is discarded.  Conversely a snapshot that
//! passes the check is exactly the set of entries published by the
//! writer that stored `v1` — an internally consistent clock.
//!
//! # Storage
//!
//! Entries live in grow-only chunks (`OnceLock<Box<[AtomicU64]>>`,
//! doubling sizes) so the writer can widen the clock as threads appear
//! without ever moving published entries — readers hold references into
//! chunks across the unsynchronized fast path, so reallocation is not an
//! option.  Chunk `c` holds `8 << c` entries; 28 chunks cover ~2³¹
//! threads, far beyond [`ThreadId`]'s practical range.

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::Time;

/// Entries in chunk 0; chunk `c` holds `CHUNK0 << c` entries.
const CHUNK0: usize = 8;
/// Total chunks; capacity is `CHUNK0 * (2^NUM_CHUNKS - 1)` entries.
const NUM_CHUNKS: usize = 28;

/// Maps an entry index to `(chunk, offset_within_chunk)`.
fn chunk_of(index: usize) -> (usize, usize) {
    let c = (index / CHUNK0 + 1).ilog2() as usize;
    let base = CHUNK0 * ((1usize << c) - 1);
    (c, index - base)
}

/// A clock view published through a seqlock: one writer stores entries
/// in place under an even/odd version word, any number of readers
/// snapshot them without taking a lock.
///
/// The writer is expected to be externally serialized (in the sharded
/// detector, by the sync-plane mutex); the type still guards against a
/// second writer with a claim CAS, so the single-writer expectation is
/// a performance contract, not a safety one.
///
/// # Example
///
/// ```
/// use freshtrack_clock::PublishedClock;
///
/// let clock = PublishedClock::new();
/// clock.store(3, |u| (u as u64 + 1) * 10);
///
/// let mut snap = Vec::new();
/// clock.read_into(&mut snap);
/// assert_eq!(snap, vec![10, 20, 30]);
/// ```
#[derive(Debug)]
pub struct PublishedClock {
    /// Even = stable, odd = write in progress.
    version: AtomicU64,
    /// Number of valid entries in the current publication.
    len: AtomicUsize,
    /// Grow-only doubling chunks; never reallocated once initialized.
    chunks: [OnceLock<Box<[AtomicU64]>>; NUM_CHUNKS],
}

impl PublishedClock {
    /// An empty published clock (zero entries, version 0).
    pub fn new() -> Self {
        PublishedClock {
            version: AtomicU64::new(0),
            len: AtomicUsize::new(0),
            chunks: [const { OnceLock::new() }; NUM_CHUNKS],
        }
    }

    /// Claims the write side: flips an even version to odd and returns
    /// the even value. Under the single-writer contract the CAS
    /// succeeds first try.
    fn claim(&self) -> u64 {
        let mut v = self.version.load(Ordering::Relaxed);
        loop {
            if v & 1 == 1 {
                std::hint::spin_loop();
                v = self.version.load(Ordering::Relaxed);
                continue;
            }
            match self
                .version
                .compare_exchange_weak(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
            {
                Ok(_) => return v,
                Err(cur) => v = cur,
            }
        }
    }

    /// Publishes a new view of `len` entries, entry `u` taken from
    /// `entry(u)`, replacing the previous publication in place.
    ///
    /// Intended for a single external writer; a concurrent `store` spins
    /// until the in-flight one completes.
    pub fn store<F: FnMut(usize) -> Time>(&self, len: usize, mut entry: F) {
        let v = self.claim();
        fence(Ordering::Release);
        self.len.store(len, Ordering::Relaxed);
        let mut i = 0;
        while i < len {
            let (c, off) = chunk_of(i);
            let chunk = self.chunks[c].get_or_init(|| {
                (0..CHUNK0 << c)
                    .map(|_| AtomicU64::new(0))
                    .collect::<Vec<_>>()
                    .into_boxed_slice()
            });
            let take = (chunk.len() - off).min(len - i);
            for j in 0..take {
                chunk[off + j].store(entry(i + j), Ordering::Relaxed);
            }
            i += take;
        }
        // Publish: every data store above happens-before this release
        // store of the new even version.
        self.version.store(v + 2, Ordering::Release);
    }

    /// Publishes `entries` wholesale — the dense fast path of
    /// [`store`](Self::store), and a no-op when the publication would be
    /// identical to the current one.
    ///
    /// The single-writer contract makes the change scan sound: between
    /// the writer's own stores the published words are stable, so the
    /// writer may read them with `Relaxed` loads and compare. When
    /// nothing differs the current (still consistent) publication simply
    /// stays valid and neither the version word nor any entry is
    /// touched — sync events that did not move the clock (the skip
    /// fast paths of Algorithms 3–4, or a release that only bumped an
    /// unpublished local epoch) cost one compare sweep and nothing else.
    pub fn store_slice(&self, entries: &[Time]) {
        // Change scan (writer-private): find the first published word
        // that differs. Publication length changes always count.
        let mut first_change = None;
        if self.len.load(Ordering::Relaxed) != entries.len() {
            first_change = Some(0);
        } else {
            let mut i = 0;
            'scan: while i < entries.len() {
                let (c, off) = chunk_of(i);
                let Some(chunk) = self.chunks[c].get() else {
                    first_change = Some(i);
                    break;
                };
                let take = (chunk.len() - off).min(entries.len() - i);
                for j in 0..take {
                    if chunk[off + j].load(Ordering::Relaxed) != entries[i + j] {
                        first_change = Some(i + j);
                        break 'scan;
                    }
                }
                i += take;
            }
        }
        let Some(first_change) = first_change else {
            return;
        };

        let v = self.claim();
        fence(Ordering::Release);
        self.len.store(entries.len(), Ordering::Relaxed);
        let mut i = first_change;
        while i < entries.len() {
            let (c, off) = chunk_of(i);
            let chunk = self.chunks[c].get_or_init(|| {
                (0..CHUNK0 << c)
                    .map(|_| AtomicU64::new(0))
                    .collect::<Vec<_>>()
                    .into_boxed_slice()
            });
            let take = (chunk.len() - off).min(entries.len() - i);
            for j in 0..take {
                chunk[off + j].store(entries[i + j], Ordering::Relaxed);
            }
            i += take;
        }
        self.version.store(v + 2, Ordering::Release);
    }

    /// Republishes `entries`, storing only the words in `first..=last`.
    ///
    /// The serialized-writer fast path: the caller asserts that the
    /// current publication already has length `entries.len()` and
    /// agrees with `entries` everywhere outside `first..=last` (the
    /// sharded detector knows both because it keeps a writer-private
    /// copy of the last image it published). Under that contract the
    /// claim CAS of [`store`](Self::store) is unnecessary — the version
    /// word has a single writer, so it is bumped odd and back even with
    /// plain stores around the range stores. A concurrent call to any
    /// store method here would corrupt the publication; callers must be
    /// externally serialized (in the sharded detector, by the
    /// sync-plane mutex).
    pub fn store_changed(&self, entries: &[Time], first: usize, last: usize) {
        debug_assert!(first <= last && last < entries.len());
        debug_assert_eq!(
            self.len.load(Ordering::Relaxed),
            entries.len(),
            "store_changed never resizes the publication"
        );
        let v = self.version.load(Ordering::Relaxed);
        debug_assert_eq!(
            v & 1,
            0,
            "serialized writers never observe an in-flight store"
        );
        self.version.store(v + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        let mut i = first;
        while i <= last {
            let (c, off) = chunk_of(i);
            let chunk = self.chunks[c]
                .get()
                .expect("current publication covers the changed range");
            let take = (chunk.len() - off).min(last + 1 - i);
            for j in 0..take {
                chunk[off + j].store(entries[i + j], Ordering::Relaxed);
            }
            i += take;
        }
        self.version.store(v + 2, Ordering::Release);
    }

    /// Snapshots the current publication into `out` (cleared first),
    /// retrying until an internally consistent view is obtained.
    ///
    /// Lock-free on the read side: never blocks the writer and touches
    /// no shared mutable state beyond the atomic loads.
    pub fn read_into(&self, out: &mut Vec<Time>) {
        loop {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let len = self.len.load(Ordering::Relaxed);
            out.clear();
            out.reserve(len);
            let mut i = 0;
            'copy: while i < len {
                let (c, off) = chunk_of(i);
                // A chunk can only be missing if `len` came from a write
                // that is still in flight; the version check below will
                // reject the snapshot, so any filler value works.
                let Some(chunk) = self.chunks[c].get() else {
                    out.resize(len, 0);
                    break 'copy;
                };
                let take = (chunk.len() - off).min(len - i);
                for j in 0..take {
                    out.push(chunk[off + j].load(Ordering::Relaxed));
                }
                i += take;
            }
            // If the loads above saw any store from a newer write, this
            // fence + load pair observes that write's odd claim and the
            // snapshot is retried.
            fence(Ordering::Acquire);
            if self.version.load(Ordering::Relaxed) == v1 {
                return;
            }
        }
    }

    /// The number of entries in the most recent publication (racy
    /// convenience accessor; use [`read_into`](Self::read_into) for a
    /// consistent snapshot).
    pub fn published_len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }
}

impl Default for PublishedClock {
    fn default() -> Self {
        PublishedClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_clock_reads_empty() {
        let clock = PublishedClock::new();
        let mut out = vec![1, 2, 3];
        clock.read_into(&mut out);
        assert!(out.is_empty());
        assert_eq!(clock.published_len(), 0);
    }

    #[test]
    fn store_then_read_round_trips() {
        let clock = PublishedClock::new();
        clock.store(5, |u| u as Time * 7);
        let mut out = Vec::new();
        clock.read_into(&mut out);
        assert_eq!(out, vec![0, 7, 14, 21, 28]);
    }

    #[test]
    fn republish_can_grow_and_shrink() {
        let clock = PublishedClock::new();
        let mut out = Vec::new();
        // Grow across several chunk boundaries (8, 24, 56, ...).
        for len in [1usize, 8, 9, 24, 25, 100, 3, 1000, 2] {
            clock.store(len, |u| (u as Time) + len as Time);
            clock.read_into(&mut out);
            assert_eq!(out.len(), len);
            for (u, &t) in out.iter().enumerate() {
                assert_eq!(t, u as Time + len as Time);
            }
        }
    }

    #[test]
    fn chunk_math_is_a_partition() {
        // Every index maps into exactly one chunk slot, contiguously.
        let mut expected = (0usize, 0usize);
        for index in 0..10_000 {
            let (c, off) = chunk_of(index);
            assert_eq!((c, off), expected, "index {index}");
            expected = if off + 1 == CHUNK0 << c {
                (c + 1, 0)
            } else {
                (c, off + 1)
            };
        }
    }

    #[test]
    fn version_advances_by_two_per_store() {
        let clock = PublishedClock::new();
        clock.store(4, |_| 1);
        clock.store(4, |_| 2);
        assert_eq!(clock.version.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn store_slice_round_trips_and_interoperates_with_store() {
        let clock = PublishedClock::new();
        let mut out = Vec::new();
        for len in [1usize, 8, 9, 24, 25, 100, 3, 1000, 2] {
            let entries: Vec<Time> = (0..len).map(|u| u as Time + len as Time).collect();
            clock.store_slice(&entries);
            clock.read_into(&mut out);
            assert_eq!(out, entries);
        }
        clock.store(5, |u| u as Time * 3);
        clock.read_into(&mut out);
        assert_eq!(out, vec![0, 3, 6, 9, 12]);
    }

    #[test]
    fn store_changed_patches_a_range_in_place() {
        let clock = PublishedClock::new();
        let mut entries: Vec<Time> = (0..100).map(|u| u as Time).collect();
        clock.store_slice(&entries);
        let v = clock.version.load(Ordering::Relaxed);
        // Patch a range spanning a chunk boundary (index 24 starts
        // chunk 2) plus a single-word patch.
        for (first, last) in [(20usize, 30usize), (57, 57), (0, 99)] {
            for e in &mut entries[first..=last] {
                *e += 1000;
            }
            clock.store_changed(&entries, first, last);
            let mut out = Vec::new();
            clock.read_into(&mut out);
            assert_eq!(out, entries, "range {first}..={last}");
        }
        assert_eq!(clock.version.load(Ordering::Relaxed), v + 6);
    }

    #[test]
    fn identical_store_slice_skips_the_version_bump() {
        let clock = PublishedClock::new();
        clock.store_slice(&[7, 8, 9]);
        let v = clock.version.load(Ordering::Relaxed);
        clock.store_slice(&[7, 8, 9]);
        assert_eq!(clock.version.load(Ordering::Relaxed), v, "no-op republish");
        // A single changed word republishes (and only from that word on).
        clock.store_slice(&[7, 8, 10]);
        assert_eq!(clock.version.load(Ordering::Relaxed), v + 2);
        let mut out = Vec::new();
        clock.read_into(&mut out);
        assert_eq!(out, vec![7, 8, 10]);
        // Length changes always republish, even with a shared prefix.
        clock.store_slice(&[7, 8]);
        assert_eq!(clock.version.load(Ordering::Relaxed), v + 4);
        clock.read_into(&mut out);
        assert_eq!(out, vec![7, 8]);
        clock.store_slice(&[7, 8, 10, 11]);
        clock.read_into(&mut out);
        assert_eq!(out, vec![7, 8, 10, 11]);
    }
}
