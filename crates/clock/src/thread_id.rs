use std::fmt;

/// A dense identifier for a thread of the analyzed execution.
///
/// Thread ids index vector clocks, so they are expected to be small and
/// dense (`0..T`). Detectors that observe sparse OS-level thread ids are
/// responsible for renaming them densely before constructing events.
///
/// # Example
///
/// ```
/// use freshtrack_clock::ThreadId;
///
/// let t = ThreadId::new(3);
/// assert_eq!(t.index(), 3);
/// assert_eq!(t.to_string(), "T3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ThreadId(u32);

impl ThreadId {
    /// Creates a thread id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ThreadId(index)
    }

    /// Returns the dense index of this thread, suitable for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value of this thread id.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for ThreadId {
    #[inline]
    fn from(index: u32) -> Self {
        ThreadId(index)
    }
}

impl From<ThreadId> for u32 {
    #[inline]
    fn from(tid: ThreadId) -> Self {
        tid.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_u32() {
        let t = ThreadId::from(7u32);
        assert_eq!(u32::from(t), 7);
        assert_eq!(t.index(), 7);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ThreadId::new(1) < ThreadId::new(2));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(ThreadId::new(12).to_string(), "T12");
    }
}
