use std::fmt;
use std::sync::Arc;

use crate::{ThreadId, Time, VectorClock};

/// A [`VectorClock`] behind the same two-state lazy-copy protocol as
/// [`SharedClock`](crate::SharedClock), for engines whose thread clocks
/// are plain vectors (Djit+, FastTrack, SU).
///
/// The two-plane ingestion split (one sync engine, many access shards)
/// needs to *publish* a thread's clock across the plane boundary after
/// every synchronization event without copying it: the access plane only
/// ever reads the view, and the sync plane is the only mutator. This
/// type makes that hand-off `O(1)`:
///
/// * **Owned**: the clock is exclusively held by the sync plane and
///   mutates in place with zero synchronization — the steady state
///   between publications.
/// * **Shared**: the clock sits behind an [`Arc`] aliased by a published
///   [`VectorClockSnapshot`]. Mutators transparently return to
///   **Owned**: if every published snapshot has been dropped (the
///   publisher's take-before-mutate discipline), the allocation is
///   reclaimed for free; otherwise one deep copy is paid.
///
/// # Example
///
/// ```
/// use freshtrack_clock::{SharedVectorClock, ThreadId};
///
/// let t0 = ThreadId::new(0);
/// let mut clock = SharedVectorClock::new();
/// clock.make_mut().0.set(t0, 1);
///
/// let view = clock.snapshot(); // O(1) publication
/// assert_eq!(view.get(t0), 1);
///
/// // Dropping the published view first makes the next mutation free…
/// drop(view);
/// let (inner, deep) = clock.make_mut();
/// inner.set(t0, 2);
/// assert!(!deep, "no live alias: the allocation is reclaimed");
/// ```
pub struct SharedVectorClock {
    state: State,
}

enum State {
    /// Exclusively owned: mutate in place, no synchronization.
    Owned(VectorClock),
    /// Potentially aliased by a published [`VectorClockSnapshot`].
    Shared(Arc<VectorClock>),
}

/// A read-only `O(1)` reference to a [`SharedVectorClock`] at
/// publication time — the per-thread clock view the two-plane ingestion
/// façade hands to access shards.
///
/// Like [`ClockSnapshot`](crate::ClockSnapshot) it is pointer-sized and
/// has no mutators, so the access plane can never perturb the sync
/// plane's clock state through it.
#[derive(Clone)]
pub struct VectorClockSnapshot {
    arc: Arc<VectorClock>,
}

impl VectorClockSnapshot {
    /// Read access to the snapshotted clock.
    #[inline]
    pub fn clock(&self) -> &VectorClock {
        &self.arc
    }

    /// `C(tid)` without any copying.
    #[inline]
    pub fn get(&self, tid: ThreadId) -> Time {
        self.arc.get(tid)
    }

    /// Number of allocated entries of the snapshotted clock.
    #[inline]
    pub fn len(&self) -> usize {
        self.arc.len()
    }

    /// Returns `true` if the snapshotted clock has no allocated entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arc.is_empty()
    }

    /// Returns `true` if two snapshots alias the same allocation.
    #[inline]
    pub fn ptr_eq(&self, other: &VectorClockSnapshot) -> bool {
        Arc::ptr_eq(&self.arc, &other.arc)
    }
}

impl fmt::Debug for VectorClockSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VectorClockSnapshot(refs={}, {:?})",
            Arc::strong_count(&self.arc),
            &*self.arc
        )
    }
}

impl SharedVectorClock {
    /// Creates a clock holding `⊥`. Allocation-free.
    pub fn new() -> Self {
        SharedVectorClock {
            state: State::Owned(VectorClock::new()),
        }
    }

    /// Wraps an existing vector clock (exclusively owned).
    pub fn from_clock(clock: VectorClock) -> Self {
        SharedVectorClock {
            state: State::Owned(clock),
        }
    }

    /// Publishes the current clock as a pointer-sized read-only
    /// snapshot, moving this clock to the **Shared** state (an `Arc`
    /// allocation on the Owned → Shared transition, a reference-count
    /// bump afterwards).
    pub fn snapshot(&mut self) -> VectorClockSnapshot {
        if let State::Shared(arc) = &self.state {
            return VectorClockSnapshot {
                arc: Arc::clone(arc),
            };
        }
        let State::Owned(clock) =
            std::mem::replace(&mut self.state, State::Owned(VectorClock::new()))
        else {
            unreachable!("just matched Owned");
        };
        let arc = Arc::new(clock);
        self.state = State::Shared(Arc::clone(&arc));
        VectorClockSnapshot { arc }
    }

    /// Returns `true` if a published snapshot currently aliases the
    /// clock.
    #[inline]
    pub fn is_shared(&self) -> bool {
        match &self.state {
            State::Owned(_) => false,
            State::Shared(arc) => Arc::strong_count(arc) > 1,
        }
    }

    /// Read access to the underlying clock.
    #[inline]
    pub fn clock(&self) -> &VectorClock {
        match &self.state {
            State::Owned(clock) => clock,
            State::Shared(arc) => arc,
        }
    }

    /// `C(tid)` without any copying.
    #[inline]
    pub fn get(&self, tid: ThreadId) -> Time {
        self.clock().get(tid)
    }

    /// Grants mutable access, resolving any sharing first. The boolean
    /// reports whether a deep copy happened (it does not when every
    /// published snapshot has already been dropped).
    ///
    /// A sole-holder `Shared` clock is mutated **in place** through its
    /// `Arc` — no unwrap, no reallocation — so a publish/take/mutate
    /// cycle (the two-plane sync hot path) costs one reference-count
    /// round trip and nothing else after the first publication.
    pub fn make_mut(&mut self) -> (&mut VectorClock, bool) {
        let deep = self.ensure_unique();
        match &mut self.state {
            State::Owned(clock) => (clock, deep),
            State::Shared(arc) => (
                Arc::get_mut(arc).expect("ensure_unique leaves a sole holder"),
                deep,
            ),
        }
    }

    /// Deep-copies to `Owned` iff a published snapshot is still alive;
    /// returns whether it did.
    fn ensure_unique(&mut self) -> bool {
        let State::Shared(arc) = &mut self.state else {
            return false;
        };
        if Arc::get_mut(arc).is_some() {
            // Sole holder: keep the allocation and mutate through it.
            return false;
        }
        let clock = (**arc).clone();
        self.state = State::Owned(clock);
        true
    }
}

impl Default for SharedVectorClock {
    fn default() -> Self {
        SharedVectorClock::new()
    }
}

impl Clone for SharedVectorClock {
    /// Cloning an **Owned** clock yields an independent deep copy;
    /// cloning a **Shared** clock yields another alias.
    fn clone(&self) -> Self {
        let state = match &self.state {
            State::Owned(clock) => State::Owned(clock.clone()),
            State::Shared(arc) => State::Shared(Arc::clone(arc)),
        };
        SharedVectorClock { state }
    }
}

impl From<VectorClock> for SharedVectorClock {
    fn from(clock: VectorClock) -> Self {
        SharedVectorClock::from_clock(clock)
    }
}

impl PartialEq for SharedVectorClock {
    fn eq(&self, other: &Self) -> bool {
        self.clock() == other.clock()
    }
}

impl Eq for SharedVectorClock {}

impl fmt::Debug for SharedVectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.state {
            State::Owned(clock) => write!(f, "SharedVectorClock(owned, {clock:?})"),
            State::Shared(arc) => write!(
                f,
                "SharedVectorClock(refs={}, {:?})",
                Arc::strong_count(arc),
                &**arc
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn snapshot_is_bit_stable_under_later_mutation() {
        let mut c = SharedVectorClock::from_clock(VectorClock::bottom_with(t(0), 3));
        let snap = c.snapshot();
        let (inner, deep) = c.make_mut();
        inner.set(t(0), 9);
        assert!(deep, "live snapshot forces the lazy deep copy");
        assert_eq!(snap.get(t(0)), 3);
        assert_eq!(c.get(t(0)), 9);
        assert!(!c.is_shared());
    }

    #[test]
    fn take_before_mutate_reclaims_for_free() {
        let mut c = SharedVectorClock::from_clock(VectorClock::bottom_with(t(1), 5));
        drop(c.snapshot()); // publisher takes the view back first
        let (inner, deep) = c.make_mut();
        assert!(!deep, "no live alias: reclaim without copying");
        inner.increment(t(1));
        assert_eq!(c.get(t(1)), 6);
    }

    #[test]
    fn repeated_snapshots_alias_one_allocation() {
        let mut c = SharedVectorClock::new();
        let a = c.snapshot();
        let b = c.snapshot();
        assert!(a.ptr_eq(&b));
        assert!(c.is_shared());
        drop((a, b));
        assert!(!c.is_shared());
    }

    #[test]
    fn clone_of_owned_is_independent() {
        let mut a = SharedVectorClock::from_clock(VectorClock::bottom_with(t(0), 1));
        let mut b = a.clone();
        b.make_mut().0.set(t(0), 7);
        assert_eq!(a.get(t(0)), 1);
        assert!(!a.is_shared());
        let _ = a.make_mut();
    }

    #[test]
    fn snapshot_exposes_clock_reads() {
        let mut clock = VectorClock::new();
        clock.set(t(2), 4);
        let mut c = SharedVectorClock::from_clock(clock);
        let snap = c.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(!snap.is_empty());
        assert_eq!(snap.clock().get(t(2)), 4);
        assert_eq!(snap.get(t(5)), 0);
    }
}
