use std::fmt;

use crate::{ThreadId, Time};

/// A FastTrack *epoch*: the pair `time@thread`.
///
/// An epoch is the scalar timestamp of a single event — enough to stand in
/// for a whole vector clock whenever the relevant history is totally
/// ordered (e.g. the last write to a variable). The paper's algorithms use
/// epochs for the local-time component `e_t` that is maintained separately
/// from the communicated vector clock (Algorithm 2, line 3).
///
/// # Example
///
/// ```
/// use freshtrack_clock::{Epoch, ThreadId, VectorClock};
///
/// let e = Epoch::new(ThreadId::new(1), 4);
/// let mut vc = VectorClock::new();
/// vc.set(ThreadId::new(1), 5);
/// assert!(vc.contains_epoch(e)); // 4 ≤ vc(T1)
/// assert_eq!(e.to_string(), "4@T1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Epoch {
    tid: ThreadId,
    time: Time,
}

impl Epoch {
    /// Creates the epoch `time@tid`.
    #[inline]
    pub const fn new(tid: ThreadId, time: Time) -> Self {
        Epoch { tid, time }
    }

    /// The zero epoch of thread 0 — used as the "never written" marker.
    #[inline]
    pub const fn zero() -> Self {
        Epoch::new(ThreadId::new(0), 0)
    }

    /// The thread component.
    #[inline]
    pub const fn tid(self) -> ThreadId {
        self.tid
    }

    /// The scalar time component.
    #[inline]
    pub const fn time(self) -> Time {
        self.time
    }

    /// Returns `true` if this is the "never written" marker.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.time == 0
    }

    /// Returns the epoch advanced by one tick in the same thread.
    #[inline]
    pub const fn next(self) -> Self {
        Epoch::new(self.tid, self.time + 1)
    }
}

impl Default for Epoch {
    fn default() -> Self {
        Epoch::zero()
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.time, self.tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_round_trip() {
        let e = Epoch::new(ThreadId::new(3), 17);
        assert_eq!(e.tid(), ThreadId::new(3));
        assert_eq!(e.time(), 17);
    }

    #[test]
    fn zero_epoch_is_marker() {
        assert!(Epoch::zero().is_zero());
        assert!(!Epoch::new(ThreadId::new(0), 1).is_zero());
        assert_eq!(Epoch::default(), Epoch::zero());
    }

    #[test]
    fn next_ticks_time_only() {
        let e = Epoch::new(ThreadId::new(2), 5).next();
        assert_eq!(e, Epoch::new(ThreadId::new(2), 6));
    }

    #[test]
    fn display_uses_fasttrack_notation() {
        assert_eq!(Epoch::new(ThreadId::new(1), 9).to_string(), "9@T1");
    }
}
