use std::fmt;
use std::sync::Arc;

use crate::{OrderedList, ThreadId, Time};

/// An [`OrderedList`] behind lazy-copy ("shallow copy") sharing.
///
/// Section 5 of the paper replaces the `O(T)` per-release clock copy with
/// reference sharing: at a release, the lock's clock becomes a *shallow
/// copy* of the thread's list, and the thread defers the `O(T)` deep copy
/// until it actually needs to mutate a list that is still shared. With
/// sampling, mutations are bounded by `|S|`, so the total deep-copy cost
/// collapses from `O(#releases · T)` to `O(|S| · T)`.
///
/// `SharedClock` implements exactly this protocol on top of [`Arc`]:
///
/// * [`SharedClock::shallow_copy`] is the `O(1)` release-side copy;
/// * mutators ([`set`](SharedClock::set), [`increment`](SharedClock::increment))
///   transparently deep-copy first if the list is shared, and report
///   whether they did so the caller can account for it (Fig. 8 of the
///   paper counts these deep copies).
///
/// The sharing test uses the `Arc` reference count, which is exactly the
/// paper's `shared_t` flag made precise: the flag is set when a lock holds
/// a reference and cleared when no lock does.
///
/// # Example
///
/// ```
/// use freshtrack_clock::{SharedClock, ThreadId};
///
/// let t0 = ThreadId::new(0);
/// let mut thread_clock = SharedClock::new();
/// thread_clock.set(t0, 1);
///
/// let lock_clock = thread_clock.shallow_copy(); // O(1) release
/// assert!(thread_clock.is_shared());
///
/// // Mutating while shared forces one deep copy…
/// let deep = thread_clock.set(t0, 2);
/// assert!(deep);
/// // …after which the two no longer alias.
/// assert_eq!(lock_clock.get(t0), 1);
/// assert_eq!(thread_clock.get(t0), 2);
/// assert!(!thread_clock.is_shared());
/// ```
#[derive(Clone, Default)]
pub struct SharedClock {
    inner: Arc<OrderedList>,
}

impl SharedClock {
    /// Creates a clock holding the bottom ordered list.
    pub fn new() -> Self {
        SharedClock {
            inner: Arc::new(OrderedList::new()),
        }
    }

    /// Creates a bottom clock pre-sized for `threads` threads.
    pub fn with_threads(threads: usize) -> Self {
        SharedClock {
            inner: Arc::new(OrderedList::with_threads(threads)),
        }
    }

    /// Wraps an existing ordered list.
    pub fn from_list(list: OrderedList) -> Self {
        SharedClock {
            inner: Arc::new(list),
        }
    }

    /// The `O(1)` "shallow copy" of Algorithm 4's release handler
    /// (`Oℓ = shallowcopy(O_t)`).
    #[inline]
    pub fn shallow_copy(&self) -> Self {
        SharedClock {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Returns `true` if another `SharedClock` currently aliases the same
    /// list — i.e. the paper's `shared_t` flag.
    #[inline]
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.inner) > 1
    }

    /// Returns `true` if `self` and `other` alias the same allocation.
    #[inline]
    pub fn ptr_eq(&self, other: &SharedClock) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Read access to the underlying list.
    #[inline]
    pub fn list(&self) -> &OrderedList {
        &self.inner
    }

    /// `O.get(tid)` without any copying.
    #[inline]
    pub fn get(&self, tid: ThreadId) -> Time {
        self.inner.get(tid)
    }

    /// Sets an entry, deep-copying first if the list is shared.
    ///
    /// Returns `true` iff a deep copy was performed (the quantity the
    /// paper plots in Fig. 8).
    pub fn set(&mut self, tid: ThreadId, time: Time) -> bool {
        let (list, deep) = self.make_mut();
        list.set(tid, time);
        deep
    }

    /// Increments an entry, deep-copying first if the list is shared.
    /// Returns `true` iff a deep copy was performed.
    pub fn increment(&mut self, tid: ThreadId, k: Time) -> bool {
        let (list, deep) = self.make_mut();
        list.increment(tid, k);
        deep
    }

    /// Grants mutable access, deep-copying first if shared. The boolean
    /// reports whether a deep copy happened.
    ///
    /// Prefer the dedicated mutators where possible; this is the escape
    /// hatch for multi-step updates (e.g. the partial join in
    /// Algorithm 4's acquire handler).
    pub fn make_mut(&mut self) -> (&mut OrderedList, bool) {
        let deep = Arc::strong_count(&self.inner) > 1;
        // `Arc::make_mut` clones iff shared — exactly the lazy-copy rule.
        (Arc::make_mut(&mut self.inner), deep)
    }
}

impl From<OrderedList> for SharedClock {
    fn from(list: OrderedList) -> Self {
        SharedClock::from_list(list)
    }
}

impl PartialEq for SharedClock {
    fn eq(&self, other: &Self) -> bool {
        self.inner == other.inner
    }
}

impl Eq for SharedClock {}

impl fmt::Debug for SharedClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SharedClock(refs={}, {:?})",
            Arc::strong_count(&self.inner),
            self.inner
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn shallow_copy_aliases() {
        let mut a = SharedClock::new();
        a.set(t(0), 1);
        let b = a.shallow_copy();
        assert!(a.ptr_eq(&b));
        assert!(a.is_shared());
        assert!(b.is_shared());
    }

    #[test]
    fn mutation_while_shared_deep_copies_once() {
        let mut a = SharedClock::new();
        assert!(!a.set(t(0), 1)); // not shared: in-place
        let b = a.shallow_copy();
        assert!(a.set(t(0), 2)); // shared: deep copy
        assert!(!a.set(t(0), 3)); // no longer shared: in-place
        assert_eq!(b.get(t(0)), 1);
        assert_eq!(a.get(t(0)), 3);
        assert!(!a.ptr_eq(&b));
    }

    #[test]
    fn dropping_the_lock_side_clears_sharing() {
        let mut a = SharedClock::new();
        a.set(t(0), 1);
        {
            let _b = a.shallow_copy();
            assert!(a.is_shared());
        }
        assert!(!a.is_shared());
        assert!(!a.increment(t(0), 1)); // no deep copy needed anymore
    }

    #[test]
    fn replacing_a_lock_clock_releases_previous_share() {
        // lock ← shallow(a); lock ← shallow(b): `a` must become exclusive.
        let mut a = SharedClock::new();
        a.set(t(0), 1);
        let mut b = SharedClock::new();
        b.set(t(1), 1);
        let mut lock = a.shallow_copy();
        assert!(a.is_shared());
        assert!(lock.ptr_eq(&a));
        lock = b.shallow_copy();
        assert!(!a.is_shared());
        assert!(b.is_shared());
        assert!(lock.ptr_eq(&b));
    }

    #[test]
    fn equality_compares_values_not_identity() {
        let mut a = SharedClock::new();
        a.set(t(0), 4);
        let mut b = SharedClock::new();
        b.set(t(0), 4);
        assert_eq!(a, b);
        assert!(!a.ptr_eq(&b));
    }
}
