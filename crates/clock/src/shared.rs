use std::fmt;
use std::sync::Arc;

use crate::{OrderedList, ThreadId, Time};

/// An [`OrderedList`] behind lazy-copy ("shallow copy") sharing.
///
/// Section 5 of the paper replaces the `O(T)` per-release clock copy with
/// reference sharing: at a release, the lock's clock becomes a *shallow
/// copy* of the thread's list, and the thread defers the `O(T)` deep copy
/// until it actually needs to mutate a list that is still shared. With
/// sampling, mutations are bounded by `|S|`, so the total deep-copy cost
/// collapses from `O(#releases · T)` to `O(|S| · T)`.
///
/// `SharedClock` implements this protocol as a two-state clock — the
/// paper's `shared_t` flag made literal:
///
/// * **Owned**: the list is exclusively held and mutates in place with
///   zero synchronization — no reference-count traffic at all. This is
///   the steady state of every clock that has not been released since
///   its last mutation.
/// * **Shared**: the list sits behind an [`Arc`] that a lock's shallow
///   copy may alias. Mutators transparently return to **Owned** first:
///   if the `Arc` is still aliased they pay the one deep copy the paper
///   counts (Fig. 8); if the alias has since been dropped they reclaim
///   the allocation for free.
///
/// [`SharedClock::shallow_copy`] is the `O(1)` release-side copy; it
/// moves an **Owned** clock to **Shared** (one `Arc` allocation) or
/// clones the existing `Arc`. Mutators ([`set`](SharedClock::set),
/// [`increment`](SharedClock::increment), and the batch
/// [`join_prefix`](SharedClock::join_prefix)) report whether they
/// deep-copied so callers can account for it.
///
/// # Example
///
/// ```
/// use freshtrack_clock::{SharedClock, ThreadId};
///
/// let t0 = ThreadId::new(0);
/// let mut thread_clock = SharedClock::new();
/// thread_clock.set(t0, 1);
///
/// let lock_clock = thread_clock.shallow_copy(); // O(1) release
/// assert!(thread_clock.is_shared());
///
/// // Mutating while shared forces one deep copy…
/// let deep = thread_clock.set(t0, 2);
/// assert!(deep);
/// // …after which the two no longer alias.
/// assert_eq!(lock_clock.get(t0), 1);
/// assert_eq!(thread_clock.get(t0), 2);
/// assert!(!thread_clock.is_shared());
/// ```
pub struct SharedClock {
    state: State,
}

enum State {
    /// Exclusively owned: mutate in place, no synchronization.
    Owned(OrderedList),
    /// Potentially aliased by another `SharedClock`.
    Shared(Arc<OrderedList>),
}

/// Outcome of a [`SharedClock::join_prefix`]: what the partial join
/// traversed, changed, and whether it paid the lazy deep copy.
///
/// These are exactly the quantities the `freshtrack-core` detectors
/// feed into their `Counters`; returning them from the batch operation
/// keeps the hot loop free of per-entry bookkeeping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefixJoin {
    /// Entries of the donor prefix that were examined
    /// (`min(d, donor.len())`).
    pub traversed: usize,
    /// Entries of `self` that grew.
    pub changed: usize,
    /// Whether the join had to deep-copy a still-aliased list.
    pub deep_copy: bool,
}

/// A read-only `O(1)` reference to a [`SharedClock`]'s list at release
/// time — the lock-side `Oℓ` of Algorithm 4.
///
/// Handing locks a dedicated snapshot type (instead of another
/// [`SharedClock`]) does two things:
///
/// * it encodes the paper's invariant that *locks never mutate their
///   clock* in the type system — a snapshot has no mutators, so lock
///   state can never accidentally trigger a deep copy; and
/// * it is pointer-sized (one `Arc`), so storing it per release is an
///   8-byte move rather than a copy of the full inline clock struct.
///
/// Dropping the snapshot (e.g. when a newer release overwrites the
/// lock's slot) may return the owning clock to exclusive, atomics-free
/// mutation.
#[derive(Clone)]
pub struct ClockSnapshot {
    arc: Arc<OrderedList>,
}

impl ClockSnapshot {
    /// Read access to the snapshotted list.
    #[inline]
    pub fn list(&self) -> &OrderedList {
        &self.arc
    }

    /// `Oℓ.get(tid)` without any copying.
    #[inline]
    pub fn get(&self, tid: ThreadId) -> Time {
        self.arc.get(tid)
    }

    /// Returns `true` if two snapshots alias the same allocation.
    #[inline]
    pub fn ptr_eq(&self, other: &ClockSnapshot) -> bool {
        Arc::ptr_eq(&self.arc, &other.arc)
    }
}

impl fmt::Debug for ClockSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ClockSnapshot(refs={}, {:?})",
            Arc::strong_count(&self.arc),
            &*self.arc
        )
    }
}

impl SharedClock {
    /// Creates a clock holding the bottom ordered list. Allocation-free.
    pub const fn new() -> Self {
        SharedClock {
            state: State::Owned(OrderedList::new()),
        }
    }

    /// Creates a bottom clock pre-sized for `threads` threads.
    pub fn with_threads(threads: usize) -> Self {
        SharedClock {
            state: State::Owned(OrderedList::with_threads(threads)),
        }
    }

    /// Wraps an existing ordered list (exclusively owned).
    pub fn from_list(list: OrderedList) -> Self {
        SharedClock {
            state: State::Owned(list),
        }
    }

    /// The `O(1)` "shallow copy" of Algorithm 4's release handler
    /// (`Oℓ = shallowcopy(O_t)`).
    ///
    /// Takes `&mut self` because handing out an alias moves this clock
    /// to the **Shared** state (sets the paper's `shared_t` flag) — an
    /// Owned clock pays its single `Arc` allocation here, a Shared one
    /// just bumps the reference count.
    pub fn shallow_copy(&mut self) -> Self {
        SharedClock {
            state: State::Shared(self.share()),
        }
    }

    /// The release-side shallow copy as a lock-facing [`ClockSnapshot`]
    /// — same `O(1)` transition as
    /// [`shallow_copy`](SharedClock::shallow_copy), but returning the
    /// pointer-sized read-only handle detectors store per lock.
    pub fn snapshot(&mut self) -> ClockSnapshot {
        ClockSnapshot { arc: self.share() }
    }

    /// Moves the clock to the **Shared** state (the paper's
    /// `shared_t := true`) and returns an aliasing reference: a fresh
    /// `Arc` count bump when already Shared, one `Arc` allocation on
    /// the Owned → Shared transition.
    fn share(&mut self) -> Arc<OrderedList> {
        if let State::Shared(arc) = &self.state {
            return Arc::clone(arc);
        }
        let State::Owned(list) =
            std::mem::replace(&mut self.state, State::Owned(OrderedList::new()))
        else {
            unreachable!("just matched Owned");
        };
        let arc = Arc::new(list);
        self.state = State::Shared(Arc::clone(&arc));
        arc
    }

    /// Returns `true` if another `SharedClock` currently aliases the same
    /// list — i.e. the paper's `shared_t` flag.
    #[inline]
    pub fn is_shared(&self) -> bool {
        match &self.state {
            State::Owned(_) => false,
            State::Shared(arc) => Arc::strong_count(arc) > 1,
        }
    }

    /// Returns `true` if `self` and `other` alias the same allocation.
    #[inline]
    pub fn ptr_eq(&self, other: &SharedClock) -> bool {
        match (&self.state, &other.state) {
            (State::Shared(a), State::Shared(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Returns `true` if `snap` aliases this clock's current allocation
    /// — i.e. a mutation of this clock right now would pay the deep
    /// copy that `snap` is keeping alive. Read-only: unlike
    /// [`snapshot`](SharedClock::snapshot) it never moves an Owned
    /// clock to the Shared state, so checkpoint export can record the
    /// sharing topology without perturbing it.
    #[inline]
    pub fn aliases(&self, snap: &ClockSnapshot) -> bool {
        match &self.state {
            State::Owned(_) => false,
            State::Shared(arc) => Arc::ptr_eq(arc, &snap.arc),
        }
    }

    /// Read access to the underlying list.
    #[inline]
    pub fn list(&self) -> &OrderedList {
        match &self.state {
            State::Owned(list) => list,
            State::Shared(arc) => arc,
        }
    }

    /// `O.get(tid)` without any copying.
    #[inline]
    pub fn get(&self, tid: ThreadId) -> Time {
        self.list().get(tid)
    }

    /// Sets an entry, deep-copying first if the list is shared.
    ///
    /// Returns `true` iff a deep copy was performed (the quantity the
    /// paper plots in Fig. 8).
    #[inline]
    pub fn set(&mut self, tid: ThreadId, time: Time) -> bool {
        let (list, deep) = self.make_mut();
        list.set(tid, time);
        deep
    }

    /// Increments an entry, deep-copying first if the list is shared.
    /// Returns `true` iff a deep copy was performed.
    #[inline]
    pub fn increment(&mut self, tid: ThreadId, k: Time) -> bool {
        let (list, deep) = self.make_mut();
        list.increment(tid, k);
        deep
    }

    /// Partial join of the first `d` recency-order entries of `other`
    /// into this clock — the acquire hot path (`O_t ⊔ Oℓ[0:d]`).
    ///
    /// The sharing state is resolved **once** for the whole batch, not
    /// per entry, and a read-only pre-scan proves the common redundant
    /// case (`Oℓ[0:d] ⊑ O_t`) without touching it at all, so a stale
    /// donor never forces a deep copy.
    pub fn join_prefix(&mut self, other: &OrderedList, d: usize) -> PrefixJoin {
        let traversed = d.min(other.len());
        // Alias fast path: joining a clock with its own alias is a
        // no-op by definition.
        if let State::Shared(arc) = &self.state {
            if std::ptr::eq(Arc::as_ptr(arc), other) {
                return PrefixJoin {
                    traversed,
                    changed: 0,
                    deep_copy: false,
                };
            }
        }
        // Read-only pre-scan: prove redundancy before paying for
        // exclusivity.
        let mine = self.list();
        if !other.first(d).any(|(u, n)| n > mine.get(u)) {
            return PrefixJoin {
                traversed,
                changed: 0,
                deep_copy: false,
            };
        }
        let (list, deep_copy) = self.make_mut();
        let changed = list.join_prefix(other, d);
        PrefixJoin {
            traversed,
            changed,
            deep_copy,
        }
    }

    /// Full join of `other` into this clock, with the same single
    /// copy-on-write resolution as [`join_prefix`](Self::join_prefix).
    #[inline]
    pub fn join(&mut self, other: &OrderedList) -> PrefixJoin {
        self.join_prefix(other, usize::MAX)
    }

    /// Grants mutable access, resolving any sharing first. The boolean
    /// reports whether a deep copy happened.
    ///
    /// A sole-holder `Shared` clock is mutated **in place** through its
    /// `Arc` — no unwrap, no move of the inline arena, no reallocation
    /// on the next [`snapshot`](SharedClock::snapshot) — so a
    /// snapshot/drop/mutate cycle (every release whose previous lock
    /// slot was overwritten, and the two-plane publication hot path)
    /// costs one reference-count round trip after the first share.
    ///
    /// Prefer the dedicated mutators where possible; this is the escape
    /// hatch for multi-step updates.
    pub fn make_mut(&mut self) -> (&mut OrderedList, bool) {
        let deep = self.unshare();
        match &mut self.state {
            State::Owned(list) => (list, deep),
            State::Shared(arc) => (
                Arc::get_mut(arc).expect("unshare leaves a sole holder"),
                deep,
            ),
        }
    }

    /// Resolves sharing before a mutation: keeps a sole-holder `Arc` in
    /// place, deep-copies to `Owned` when a live alias remains. Returns
    /// whether a deep copy was performed.
    fn unshare(&mut self) -> bool {
        let State::Shared(arc) = &mut self.state else {
            return false;
        };
        if Arc::get_mut(arc).is_some() {
            // Last holder: mutate through the existing allocation.
            return false;
        }
        // Still aliased by a lock: this is the lazy deep copy.
        let list = (**arc).clone();
        self.state = State::Owned(list);
        true
    }
}

impl Default for SharedClock {
    fn default() -> Self {
        SharedClock::new()
    }
}

impl Clone for SharedClock {
    /// Cloning an **Owned** clock yields an independent deep copy;
    /// cloning a **Shared** clock yields another alias (like
    /// [`shallow_copy`](SharedClock::shallow_copy), but without being
    /// able to flip the source's state through `&self`).
    fn clone(&self) -> Self {
        let state = match &self.state {
            State::Owned(list) => State::Owned(list.clone()),
            State::Shared(arc) => State::Shared(Arc::clone(arc)),
        };
        SharedClock { state }
    }
}

impl From<OrderedList> for SharedClock {
    fn from(list: OrderedList) -> Self {
        SharedClock::from_list(list)
    }
}

impl PartialEq for SharedClock {
    fn eq(&self, other: &Self) -> bool {
        self.list() == other.list()
    }
}

impl Eq for SharedClock {}

impl fmt::Debug for SharedClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.state {
            State::Owned(list) => write!(f, "SharedClock(owned, {list:?})"),
            State::Shared(arc) => write!(
                f,
                "SharedClock(refs={}, {:?})",
                Arc::strong_count(arc),
                &**arc
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn shallow_copy_aliases() {
        let mut a = SharedClock::new();
        a.set(t(0), 1);
        let b = a.shallow_copy();
        assert!(a.ptr_eq(&b));
        assert!(a.is_shared());
        assert!(b.is_shared());
    }

    #[test]
    fn mutation_while_shared_deep_copies_once() {
        let mut a = SharedClock::new();
        assert!(!a.set(t(0), 1)); // not shared: in-place
        let b = a.shallow_copy();
        assert!(a.set(t(0), 2)); // shared: deep copy
        assert!(!a.set(t(0), 3)); // no longer shared: in-place
        assert_eq!(b.get(t(0)), 1);
        assert_eq!(a.get(t(0)), 3);
        assert!(!a.ptr_eq(&b));
    }

    #[test]
    fn dropping_the_lock_side_clears_sharing() {
        let mut a = SharedClock::new();
        a.set(t(0), 1);
        {
            let _b = a.shallow_copy();
            assert!(a.is_shared());
        }
        assert!(!a.is_shared());
        assert!(!a.increment(t(0), 1)); // no deep copy needed anymore
    }

    #[test]
    fn replacing_a_lock_clock_releases_previous_share() {
        // lock ← shallow(a); lock ← shallow(b): `a` must become exclusive.
        let mut a = SharedClock::new();
        a.set(t(0), 1);
        let mut b = SharedClock::new();
        b.set(t(1), 1);
        let mut lock = a.shallow_copy();
        assert!(a.is_shared());
        assert!(lock.ptr_eq(&a));
        lock = b.shallow_copy();
        assert!(!a.is_shared());
        assert!(b.is_shared());
        assert!(lock.ptr_eq(&b));
    }

    #[test]
    fn equality_compares_values_not_identity() {
        let mut a = SharedClock::new();
        a.set(t(0), 4);
        let mut b = SharedClock::new();
        b.set(t(0), 4);
        assert_eq!(a, b);
        assert!(!a.ptr_eq(&b));
    }

    #[test]
    fn reclaiming_a_sole_arc_is_not_a_deep_copy() {
        let mut a = SharedClock::new();
        a.set(t(0), 7);
        drop(a.shallow_copy()); // alias immediately dropped
        let (_, deep) = a.make_mut();
        assert!(!deep, "sole Arc holder reclaims without copying");
        assert!(!a.is_shared());
    }

    #[test]
    fn join_prefix_redundant_donor_keeps_sharing_intact() {
        let mut a = SharedClock::new();
        a.set(t(0), 5);
        a.set(t(1), 5);
        let alias = a.shallow_copy();
        let stale = OrderedList::from_iter([(t(0), 3), (t(1), 5)]);
        let res = a.join_prefix(&stale, 8);
        assert_eq!(res.changed, 0);
        assert!(!res.deep_copy, "redundant join must not break sharing");
        assert_eq!(res.traversed, 2);
        assert!(a.is_shared());
        assert!(a.ptr_eq(&alias));
    }

    #[test]
    fn join_prefix_fresh_donor_deep_copies_once() {
        let mut a = SharedClock::new();
        a.set(t(0), 1);
        let alias = a.shallow_copy();
        let fresh = OrderedList::from_iter([(t(2), 9), (t(1), 4)]);
        let res = a.join_prefix(&fresh, 8);
        assert_eq!(res.changed, 2);
        assert!(res.deep_copy);
        assert_eq!(a.get(t(1)), 4);
        assert_eq!(a.get(t(2)), 9);
        // The alias still sees the pre-join snapshot.
        assert_eq!(alias.get(t(1)), 0);
        assert_eq!(alias.get(t(2)), 0);
        assert!(!a.is_shared());
    }

    #[test]
    fn join_prefix_with_own_alias_is_a_noop() {
        let mut a = SharedClock::new();
        a.set(t(0), 3);
        let alias = a.shallow_copy();
        let res = a.join_prefix(alias.list(), 8);
        assert_eq!(res.changed, 0);
        assert!(!res.deep_copy);
        assert!(a.is_shared(), "self-join must not unshare");
    }

    #[test]
    fn join_prefix_depth_limits_learning() {
        let mut donor = OrderedList::new();
        donor.set(t(0), 10);
        donor.set(t(1), 20); // t1 most recent
        let mut a = SharedClock::new();
        let res = a.join_prefix(&donor, 1);
        assert_eq!(res.changed, 1);
        assert_eq!(a.get(t(1)), 20);
        assert_eq!(a.get(t(0)), 0, "beyond depth 1");
    }

    #[test]
    fn snapshot_aliases_and_releases_like_shallow_copy() {
        let mut a = SharedClock::new();
        a.set(t(0), 2);
        let snap = a.snapshot();
        assert!(a.is_shared());
        assert_eq!(snap.get(t(0)), 2);
        // Mutation deep-copies away from the snapshot…
        assert!(a.set(t(0), 5));
        assert_eq!(snap.get(t(0)), 2);
        assert!(!a.is_shared());
        // …and a second snapshot of the same state aliases the first
        // only if taken while still shared.
        let mut b = SharedClock::new();
        let s1 = b.snapshot();
        let s2 = b.snapshot();
        assert!(s1.ptr_eq(&s2));
        drop((s1, s2));
        assert!(!b.is_shared());
        assert!(!b.increment(t(1), 1), "alias gone: no deep copy");
    }

    #[test]
    fn clone_of_owned_is_independent() {
        let mut a = SharedClock::new();
        a.set(t(0), 1);
        let mut b = a.clone();
        b.set(t(0), 9);
        assert_eq!(a.get(t(0)), 1);
        assert!(!a.is_shared());
        assert!(!b.is_shared());
    }
}
