use std::fmt;

use crate::{Epoch, ThreadId, Time};

/// A classical vector timestamp `T : Threads → ℕ` (Section 2.1 of the
/// paper).
///
/// Entries default to `0` (the `⊥` clock); the vector grows lazily as
/// higher thread indices are touched, so a `VectorClock` can always be
/// compared against clocks of different lengths.
///
/// The mutating operations report how many entries actually changed,
/// because the paper's *freshness* timestamp (`U`, Section 4.2) is defined
/// as a running count of exactly those changes.
///
/// # Example
///
/// ```
/// use freshtrack_clock::{ThreadId, VectorClock};
///
/// let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
/// let mut a = VectorClock::new();
/// a.set(t0, 2);
///
/// let mut b = VectorClock::new();
/// b.set(t1, 5);
///
/// let changed = a.join(&b);
/// assert_eq!(changed, 1); // only the t1 entry grew
/// assert_eq!(a.get(t0), 2);
/// assert_eq!(a.get(t1), 5);
/// assert!(b.leq(&a));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct VectorClock {
    entries: Vec<Time>,
}

impl VectorClock {
    /// Creates the bottom clock `⊥` (all entries zero).
    #[inline]
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// Creates a bottom clock with capacity reserved for `threads` entries.
    pub fn with_capacity(threads: usize) -> Self {
        VectorClock {
            entries: Vec::with_capacity(threads),
        }
    }

    /// Creates the clock `⊥[t ↦ time]`.
    pub fn bottom_with(tid: ThreadId, time: Time) -> Self {
        let mut clock = VectorClock::new();
        clock.set(tid, time);
        clock
    }

    /// Returns the entry for thread `tid` (zero if never set).
    #[inline]
    pub fn get(&self, tid: ThreadId) -> Time {
        self.entries.get(tid.index()).copied().unwrap_or(0)
    }

    /// Sets the entry for thread `tid`, growing the vector if needed.
    #[inline]
    pub fn set(&mut self, tid: ThreadId, time: Time) {
        let idx = tid.index();
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, 0);
        }
        self.entries[idx] = time;
    }

    /// Increments the entry for thread `tid` by one and returns the new
    /// value.
    #[inline]
    pub fn increment(&mut self, tid: ThreadId) -> Time {
        let next = self.get(tid) + 1;
        self.set(tid, next);
        next
    }

    /// Pointwise-maximum join `self ← self ⊔ other` (Eq. 4 of the paper).
    ///
    /// Returns the number of entries of `self` that changed, which is the
    /// quantity accumulated by the freshness timestamp `U`.
    pub fn join(&mut self, other: &VectorClock) -> usize {
        // No in-function ⊥ fast path: the detectors check
        // `other.is_empty()` at the call site (where the branch is
        // free), and an extra early exit here measurably perturbs the
        // codegen of the tight loop below (see BENCH_clock_ops.json).
        if other.entries.len() > self.entries.len() {
            self.entries.resize(other.entries.len(), 0);
        }
        // Keep the conditional-store form: a branchless `max` variant
        // (unconditional store + change count) measures ~2× slower here
        // because baseline x86-64 has no packed u64 max, so it cannot
        // vectorize and instead dirties every entry's cache line. The
        // redundant join (`other ⊑ self`) takes one predicted-not-taken
        // branch per entry and performs no stores at all.
        let mut changed = 0;
        for (mine, theirs) in self.entries.iter_mut().zip(other.entries.iter()) {
            if *theirs > *mine {
                *mine = *theirs;
                changed += 1;
            }
        }
        changed
    }

    /// Overwrites `self` with a copy of `other` without counting
    /// changes — the Djit+/FastTrack release hot path (`Cℓ ← C_t`).
    ///
    /// Unlike [`copy_from`](VectorClock::copy_from) this is a straight
    /// `memcpy` into the existing allocation: use it whenever the
    /// change count is not needed. Trailing entries of a previously
    /// longer `self` are dropped, which reads identically (missing
    /// entries are `0`).
    #[inline]
    pub fn assign_from(&mut self, other: &VectorClock) {
        self.entries.clear();
        self.entries.extend_from_slice(&other.entries);
    }

    /// Overwrites `self` with a copy of `other` and returns how many
    /// entries changed (in either direction).
    pub fn copy_from(&mut self, other: &VectorClock) -> usize {
        let len = self.entries.len().max(other.entries.len());
        self.entries.resize(len, 0);
        let mut changed = 0;
        for idx in 0..len {
            let theirs = other.entries.get(idx).copied().unwrap_or(0);
            if self.entries[idx] != theirs {
                self.entries[idx] = theirs;
                changed += 1;
            }
        }
        changed
    }

    /// Pointwise comparison `self ⊑ other` (Eq. 3 of the paper).
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.entries
            .iter()
            .enumerate()
            .all(|(idx, &mine)| mine <= other.entries.get(idx).copied().unwrap_or(0))
    }

    /// FastTrack's epoch-vs-clock comparison: `epoch.time ≤ self(epoch.tid)`.
    #[inline]
    pub fn contains_epoch(&self, epoch: Epoch) -> bool {
        epoch.time() <= self.get(epoch.tid())
    }

    /// Returns the number of allocated entries (threads observed so far).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entry has ever been set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if every entry is zero (the `⊥` clock).
    pub fn is_bottom(&self) -> bool {
        self.entries.iter().all(|&e| e == 0)
    }

    /// The dense entry slice, index = thread id (missing entries are
    /// implicitly zero) — the no-copy source for publication paths that
    /// memcpy a whole clock.
    #[inline]
    pub fn times(&self) -> &[Time] {
        &self.entries
    }

    /// Iterates over `(thread, time)` pairs of allocated entries.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, Time)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .map(|(idx, &time)| (ThreadId::new(idx as u32), time))
    }

    /// Sum of all entries; the paper bounds this by `|S|` for sampling
    /// timestamps (Section 4.1).
    pub fn total(&self) -> Time {
        self.entries.iter().sum()
    }
}

impl FromIterator<(ThreadId, Time)> for VectorClock {
    fn from_iter<I: IntoIterator<Item = (ThreadId, Time)>>(iter: I) -> Self {
        let mut clock = VectorClock::new();
        for (tid, time) in iter {
            clock.set(tid, time);
        }
        clock
    }
}

impl Extend<(ThreadId, Time)> for VectorClock {
    fn extend<I: IntoIterator<Item = (ThreadId, Time)>>(&mut self, iter: I) {
        for (tid, time) in iter {
            self.set(tid, time);
        }
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (idx, entry) in self.entries.iter().enumerate() {
            if idx > 0 {
                write!(f, ",")?;
            }
            write!(f, "{entry}")?;
        }
        write!(f, "⟩")
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn bottom_clock_reads_zero_everywhere() {
        let clock = VectorClock::new();
        assert_eq!(clock.get(t(0)), 0);
        assert_eq!(clock.get(t(100)), 0);
        assert!(clock.is_bottom());
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut clock = VectorClock::new();
        clock.set(t(4), 9);
        assert_eq!(clock.get(t(4)), 9);
        assert_eq!(clock.get(t(3)), 0);
        assert_eq!(clock.len(), 5);
    }

    #[test]
    fn increment_returns_new_value() {
        let mut clock = VectorClock::new();
        assert_eq!(clock.increment(t(2)), 1);
        assert_eq!(clock.increment(t(2)), 2);
        assert_eq!(clock.get(t(2)), 2);
    }

    #[test]
    fn join_is_pointwise_max_and_counts_changes() {
        let mut a = VectorClock::from_iter([(t(0), 3), (t(1), 1)]);
        let b = VectorClock::from_iter([(t(0), 2), (t(1), 5), (t(2), 1)]);
        let changed = a.join(&b);
        assert_eq!(changed, 2); // t1 and t2 grew, t0 did not
        assert_eq!(a.get(t(0)), 3);
        assert_eq!(a.get(t(1)), 5);
        assert_eq!(a.get(t(2)), 1);
    }

    #[test]
    fn join_with_bottom_changes_nothing() {
        let mut a = VectorClock::from_iter([(t(0), 3)]);
        assert_eq!(a.join(&VectorClock::new()), 0);
        assert_eq!(a.get(t(0)), 3);
    }

    #[test]
    fn leq_handles_different_lengths() {
        let short = VectorClock::from_iter([(t(0), 1)]);
        let long = VectorClock::from_iter([(t(0), 1), (t(3), 2)]);
        assert!(short.leq(&long));
        assert!(!long.leq(&short));
        assert!(short.leq(&short));
    }

    #[test]
    fn leq_is_antisymmetric_on_distinct_clocks() {
        let a = VectorClock::from_iter([(t(0), 2), (t(1), 0)]);
        let b = VectorClock::from_iter([(t(0), 0), (t(1), 2)]);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
    }

    #[test]
    fn copy_from_counts_bidirectional_changes() {
        let mut a = VectorClock::from_iter([(t(0), 5), (t(1), 1)]);
        let b = VectorClock::from_iter([(t(0), 2), (t(1), 1), (t(2), 7)]);
        let changed = a.copy_from(&b);
        assert_eq!(changed, 2); // t0 shrank, t2 grew
        assert_eq!(a, b);
    }

    #[test]
    fn contains_epoch_matches_get() {
        let clock = VectorClock::from_iter([(t(1), 4)]);
        assert!(clock.contains_epoch(Epoch::new(t(1), 4)));
        assert!(clock.contains_epoch(Epoch::new(t(1), 3)));
        assert!(!clock.contains_epoch(Epoch::new(t(1), 5)));
        assert!(!clock.contains_epoch(Epoch::new(t(0), 1)));
    }

    #[test]
    fn total_sums_entries() {
        let clock = VectorClock::from_iter([(t(0), 2), (t(5), 3)]);
        assert_eq!(clock.total(), 5);
    }

    #[test]
    fn debug_formats_like_the_paper() {
        let clock = VectorClock::from_iter([(t(0), 1), (t(1), 0)]);
        assert_eq!(format!("{clock:?}"), "⟨1,0⟩");
    }
}
