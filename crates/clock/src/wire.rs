//! Compact binary codecs for the clock types — the wire substrate of
//! the segmented `.ftb` v2 checkpoints.
//!
//! Every encoder appends to a caller-supplied `Vec<u8>` and every
//! decoder reads from a [`WireReader`] over a byte slice, so the same
//! helpers serve both the trace-file checkpoint records (written by
//! `freshtrack-trace`) and the in-memory engine checkpoints exported on
//! the sync/access plane seam (`freshtrack-core`).
//!
//! Two properties matter for checkpoint determinism (see
//! `ARCHITECTURE.md` § Segmented store & checkpoints):
//!
//! * **Value-faithfulness including widths.** A [`VectorClock`] encodes
//!   all allocated entries, zeros included, so the decoded clock has the
//!   same `len()` — views derived from restored state are zero-extended
//!   identically to the original.
//! * **Recency-order preservation.** An [`OrderedList`] is encoded in
//!   most-recent-first chain order and rebuilt by `set`ting the pairs in
//!   reverse, so the decoded list has the *same* recency chain — the
//!   `O(d)` partial traversals of Algorithm 4 see identical prefixes
//!   after a restore.
//!
//! Integers use LEB128 varints (the same encoding as the `.ftb` event
//! stream). Decoders never panic on malformed input: every failure is a
//! clean [`WireError`].
//!
//! # Example
//!
//! ```
//! use freshtrack_clock::wire::{self, WireReader};
//! use freshtrack_clock::{OrderedList, ThreadId};
//!
//! let mut list = OrderedList::new();
//! list.set(ThreadId::new(1), 7);
//! list.set(ThreadId::new(0), 3); // thread 0 is now most recent
//!
//! let mut buf = Vec::new();
//! wire::put_list(&mut buf, &list);
//! let mut reader = WireReader::new(&buf);
//! let back = reader.get_list().unwrap();
//! assert_eq!(back, list);
//! let recent: Vec<_> = back.iter_recent().collect();
//! assert_eq!(recent[0], (ThreadId::new(0), 3));
//! ```

use std::fmt;

use crate::{Epoch, FreshnessClock, OrderedList, ThreadId, Time, VectorClock};

/// A malformed or truncated wire encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    Truncated,
    /// The input continued past the encoded value.
    TrailingBytes,
    /// A structurally invalid encoding (the message says what).
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated encoding"),
            WireError::TrailingBytes => write!(f, "trailing bytes after encoding"),
            WireError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Appends `value` as an LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a boolean as a single `0`/`1` byte.
pub fn put_bool(out: &mut Vec<u8>, value: bool) {
    out.push(value as u8);
}

/// Appends a [`VectorClock`]: entry count, then every allocated entry in
/// index order (zeros included, so the decoded clock keeps its `len()`).
pub fn put_clock(out: &mut Vec<u8>, clock: &VectorClock) {
    put_varint(out, clock.len() as u64);
    for (_, time) in clock.iter() {
        put_varint(out, time);
    }
}

/// Appends a [`FreshnessClock`] (same layout as its underlying vector).
pub fn put_fresh(out: &mut Vec<u8>, fresh: &FreshnessClock) {
    put_clock(out, fresh.as_vector());
}

/// Appends an [`Epoch`] as its `(thread, time)` pair.
pub fn put_epoch(out: &mut Vec<u8>, epoch: Epoch) {
    put_varint(out, epoch.tid().as_u32() as u64);
    put_varint(out, epoch.time());
}

/// Appends an [`OrderedList`]: arena length, then every `(thread, time)`
/// node in most-recent-first chain order.
pub fn put_list(out: &mut Vec<u8>, list: &OrderedList) {
    put_varint(out, list.len() as u64);
    for (tid, time) in list.iter_recent() {
        put_varint(out, tid.as_u32() as u64);
        put_varint(out, time);
    }
}

/// A cursor over a wire-encoded byte slice; all decoders live here.
#[derive(Clone, Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` once every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Asserts that the whole input was consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::TrailingBytes`] if bytes remain.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }

    fn get_byte(&mut self) -> Result<u8, WireError> {
        let byte = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(byte)
    }

    /// Decodes one LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input;
    /// [`WireError::Invalid`] for an encoding that overflows `u64`.
    pub fn get_varint(&mut self) -> Result<u64, WireError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_byte()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::Invalid("varint overflows u64"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::Invalid("varint longer than 10 bytes"));
            }
        }
    }

    /// Decodes a varint that must fit the platform `usize`.
    ///
    /// # Errors
    ///
    /// Propagates [`get_varint`](Self::get_varint) failures, plus
    /// [`WireError::Invalid`] if the value does not fit.
    pub fn get_usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.get_varint()?)
            .map_err(|_| WireError::Invalid("length overflows usize"))
    }

    /// Decodes a varint that must fit `u32` (thread/lock indices).
    ///
    /// # Errors
    ///
    /// Propagates [`get_varint`](Self::get_varint) failures, plus
    /// [`WireError::Invalid`] if the value does not fit.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        u32::try_from(self.get_varint()?).map_err(|_| WireError::Invalid("index overflows u32"))
    }

    /// Consumes and returns the next `len` raw bytes (used for
    /// length-prefixed nested sections in composite checkpoints).
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if fewer than `len` bytes remain.
    pub fn get_bytes(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        if len > self.remaining() {
            return Err(WireError::Truncated);
        }
        let bytes = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(bytes)
    }

    /// Decodes a boolean byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input;
    /// [`WireError::Invalid`] for any byte other than `0`/`1`.
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_byte()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("boolean byte is not 0 or 1")),
        }
    }

    /// Guards a decoded element count against the bytes actually
    /// available (each element costs at least one byte), so a corrupt
    /// length cannot provoke a huge allocation.
    fn get_len(&mut self) -> Result<usize, WireError> {
        let len = self.get_usize()?;
        if len > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(len)
    }

    /// Decodes a [`VectorClock`] written by [`put_clock`].
    ///
    /// # Errors
    ///
    /// Any [`WireError`] for truncated or malformed input.
    pub fn get_clock(&mut self) -> Result<VectorClock, WireError> {
        let len = self.get_len()?;
        let mut clock = VectorClock::with_capacity(len);
        for idx in 0..len {
            let time = self.get_varint()?;
            clock.set(ThreadId::new(idx as u32), time);
        }
        Ok(clock)
    }

    /// Decodes a [`FreshnessClock`] written by [`put_fresh`].
    ///
    /// # Errors
    ///
    /// Any [`WireError`] for truncated or malformed input.
    pub fn get_fresh(&mut self) -> Result<FreshnessClock, WireError> {
        Ok(FreshnessClock::from(self.get_clock()?))
    }

    /// Decodes an [`Epoch`] written by [`put_epoch`].
    ///
    /// # Errors
    ///
    /// Any [`WireError`] for truncated or malformed input.
    pub fn get_epoch(&mut self) -> Result<Epoch, WireError> {
        let tid = ThreadId::new(self.get_u32()?);
        let time = self.get_varint()?;
        Ok(Epoch::new(tid, time))
    }

    /// Decodes an [`OrderedList`] written by [`put_list`], restoring the
    /// exact recency order.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] for truncated or malformed input, including a
    /// node sequence that is not a permutation of the arena.
    pub fn get_list(&mut self) -> Result<OrderedList, WireError> {
        let len = self.get_len()?;
        let mut pairs: Vec<(ThreadId, Time)> = Vec::with_capacity(len);
        let mut seen = vec![false; len];
        for _ in 0..len {
            let raw = self.get_u32()? as usize;
            if raw >= len {
                return Err(WireError::Invalid("ordered-list node beyond arena"));
            }
            if std::mem::replace(&mut seen[raw], true) {
                return Err(WireError::Invalid("duplicate ordered-list node"));
            }
            let time = self.get_varint()?;
            pairs.push((ThreadId::new(raw as u32), time));
        }
        // `set` relinks each touched node to the chain head, so setting
        // the pairs least-recent-first reproduces the encoded order.
        let mut list = OrderedList::with_threads(len);
        for &(tid, time) in pairs.iter().rev() {
            list.set(tid, time);
        }
        Ok(list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    fn roundtrip_varint(value: u64) {
        let mut buf = Vec::new();
        put_varint(&mut buf, value);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_varint().unwrap(), value);
        assert!(r.finish().is_ok());
    }

    #[test]
    fn varint_round_trips_boundaries() {
        for value in [0, 1, 127, 128, 16383, 16384, u64::from(u32::MAX), u64::MAX] {
            roundtrip_varint(value);
        }
    }

    #[test]
    fn varint_rejects_overflow_and_truncation() {
        // 11 continuation bytes.
        let long = vec![0x80u8; 11];
        assert!(matches!(
            WireReader::new(&long).get_varint(),
            Err(WireError::Invalid(_))
        ));
        // u64::MAX + 1 flavour: 10th byte with value 2.
        let mut over = vec![0xffu8; 9];
        over.push(0x02);
        assert!(matches!(
            WireReader::new(&over).get_varint(),
            Err(WireError::Invalid(_))
        ));
        assert_eq!(
            WireReader::new(&[0x80]).get_varint(),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn clock_round_trip_preserves_len_and_zeros() {
        let mut clock = VectorClock::new();
        clock.set(t(0), 5);
        clock.set(t(3), 0); // extends len to 4 with trailing zero
        let mut buf = Vec::new();
        put_clock(&mut buf, &clock);
        let back = WireReader::new(&buf).get_clock().unwrap();
        assert_eq!(back, clock);
        assert_eq!(back.len(), 4);
    }

    #[test]
    fn list_round_trip_preserves_recency_order() {
        let mut list = OrderedList::new();
        for (tid, time) in [(t(3), 0), (t(2), 8), (t(4), 1), (t(1), 20), (t(0), 6)] {
            list.set(tid, time);
        }
        list.set(t(2), 9); // shuffle the chain
        let mut buf = Vec::new();
        put_list(&mut buf, &list);
        let back = WireReader::new(&buf).get_list().unwrap();
        assert_eq!(back, list);
        let original: Vec<_> = list.iter_recent().collect();
        let decoded: Vec<_> = back.iter_recent().collect();
        assert_eq!(original, decoded);
        back.assert_invariants();
    }

    #[test]
    fn list_decoder_rejects_non_permutations() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        for _ in 0..2 {
            put_varint(&mut buf, 0); // duplicate node id
            put_varint(&mut buf, 1);
        }
        assert!(matches!(
            WireReader::new(&buf).get_list(),
            Err(WireError::Invalid(_))
        ));
        let mut buf = Vec::new();
        put_varint(&mut buf, 1);
        put_varint(&mut buf, 7); // node beyond arena
        put_varint(&mut buf, 1);
        assert!(matches!(
            WireReader::new(&buf).get_list(),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn epoch_and_fresh_round_trip() {
        let mut buf = Vec::new();
        put_epoch(&mut buf, Epoch::new(t(3), 17));
        let mut fresh = FreshnessClock::new();
        fresh.bump_by(t(1), 4);
        put_fresh(&mut buf, &fresh);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_epoch().unwrap(), Epoch::new(t(3), 17));
        assert_eq!(r.get_fresh().unwrap(), fresh);
        assert!(r.finish().is_ok());
    }

    #[test]
    fn bool_rejects_other_bytes() {
        let mut r = WireReader::new(&[2]);
        assert!(matches!(r.get_bool(), Err(WireError::Invalid(_))));
        let mut r = WireReader::new(&[1, 0]);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
    }

    #[test]
    fn huge_length_is_rejected_before_allocating() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::from(u32::MAX));
        assert_eq!(WireReader::new(&buf).get_clock(), Err(WireError::Truncated));
    }

    #[test]
    fn finish_flags_trailing_bytes() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 3);
        buf.push(0);
        let mut r = WireReader::new(&buf);
        r.get_varint().unwrap();
        assert_eq!(r.finish(), Err(WireError::TrailingBytes));
    }
}
