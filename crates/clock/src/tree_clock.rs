use std::fmt;

use crate::{ThreadId, Time, VectorClock};

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug)]
struct Node {
    /// The timestamp entry of this thread.
    clk: Time,
    /// The parent's clock value when this node was (re)attached.
    aclk: Time,
    parent: u32,
    /// First child (children are kept in descending `aclk` order).
    head: u32,
    next: u32,
    prev: u32,
    attached: bool,
}

impl Default for Node {
    fn default() -> Self {
        Node {
            clk: 0,
            aclk: 0,
            parent: NIL,
            head: NIL,
            next: NIL,
            prev: NIL,
            attached: false,
        }
    }
}

/// A *tree clock* (Mathur et al., ASPLOS 2022): a vector timestamp whose
/// entries are arranged in a tree recording **who told whom**, enabling
/// joins that skip entire subtrees the receiver provably already knows.
///
/// Tree clocks are the optimal data structure for computing the *full*
/// happens-before relation. The paper's Section 7 argues they stop being
/// optimal for the **sampling** partial order — their hierarchical
/// pruning cannot exploit the redundancy that sampling timestamps
/// introduce, unlike the flat recency order of
/// [`OrderedList`](crate::OrderedList) combined with freshness
/// timestamps. This implementation exists to let benchmarks test that
/// claim head-to-head (see the `treeclock` bench in `freshtrack-bench`).
///
/// # Monotone use
///
/// Like the original, this structure is designed for the monotone-use
/// discipline of vector-clock race detectors: `join` may only be applied
/// to clocks that grow over time (thread clocks), lock clocks are
/// transferred by copy/clone, and **the owner's entry must be
/// incremented at every release** (as Djit+/FastTrack do), so that every
/// released snapshot carries a fresh root clock. Under that discipline
/// the join fast path and subtree pruning are exact; outside it they are
/// not sound — which is precisely why the *sampling* timestamp
/// discipline of the paper (increments only at `RelAfter_S` releases)
/// breaks tree clocks' advantage and motivates ordered lists instead.
///
/// # Example
///
/// ```
/// use freshtrack_clock::{ThreadId, TreeClock};
///
/// let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
/// let mut a = TreeClock::new(t0);
/// a.increment(3);
/// let mut b = TreeClock::new(t1);
/// b.increment(1);
/// b.join(&a);
/// assert_eq!(b.get(t0), 3);
/// assert_eq!(b.get(t1), 1);
/// // Joining again is a no-op caught by the root fast path.
/// assert_eq!(b.join(&a), 0);
/// ```
#[derive(Clone)]
pub struct TreeClock {
    root: u32,
    nodes: Vec<Node>,
}

impl TreeClock {
    /// Creates the clock owned by `owner` with all entries zero.
    pub fn new(owner: ThreadId) -> Self {
        let mut nodes = vec![Node::default(); owner.index() + 1];
        nodes[owner.index()].attached = true;
        TreeClock {
            root: owner.index() as u32,
            nodes,
        }
    }

    /// The owning thread (the tree root).
    pub fn owner(&self) -> ThreadId {
        ThreadId::new(self.root)
    }

    /// The entry for `tid` (zero if unknown).
    #[inline]
    pub fn get(&self, tid: ThreadId) -> Time {
        self.nodes.get(tid.index()).map_or(0, |n| n.clk)
    }

    /// Increments the owner's entry by `k` and returns the new value.
    pub fn increment(&mut self, k: Time) -> Time {
        let root = self.root as usize;
        self.nodes[root].clk += k;
        self.nodes[root].clk
    }

    /// Number of allocated entries.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no entries are allocated beyond the owner.
    pub fn is_empty(&self) -> bool {
        self.nodes.iter().all(|n| n.clk == 0)
    }

    /// Materializes as a plain [`VectorClock`].
    pub fn to_vector_clock(&self) -> VectorClock {
        let mut clock = VectorClock::with_capacity(self.nodes.len());
        for (idx, node) in self.nodes.iter().enumerate() {
            clock.set(ThreadId::new(idx as u32), node.clk);
        }
        clock
    }

    fn ensure(&mut self, idx: u32) {
        if self.nodes.len() <= idx as usize {
            self.nodes.resize(idx as usize + 1, Node::default());
        }
    }

    /// Pointwise-maximum join `self ← self ⊔ other`, exploiting the tree
    /// structure to prune subtrees `self` provably already knows.
    /// Returns the number of entries that changed.
    ///
    /// `other` is typically a (copy of a) clock released to a lock;
    /// see the monotone-use note on the type.
    pub fn join(&mut self, other: &TreeClock) -> usize {
        let oroot = other.root;
        // Root fast path: if we know other's root up to date, monotone
        // use guarantees we know everything other knows.
        if other.nodes[oroot as usize].clk <= self.get(ThreadId::new(oroot)) {
            return 0;
        }
        // Collect the nodes to update: a pre-order walk of other's tree,
        // pruning via the aclk rule. The updated set always forms a
        // connected subtree containing other's root.
        let mut updated: Vec<u32> = Vec::new();
        let mut stack: Vec<u32> = vec![oroot];
        let mut examined: Vec<u32> = Vec::new();
        while let Some(u) = stack.pop() {
            updated.push(u);
            let u_known = self.get(ThreadId::new(u));
            examined.clear();
            let mut child = other.nodes[u as usize].head;
            while child != NIL {
                let v = &other.nodes[child as usize];
                // Children are in descending aclk order: once a child
                // was attached no later than our knowledge of u, all
                // remaining ones were too — prune.
                if v.aclk <= u_known {
                    break;
                }
                if v.clk > self.get(ThreadId::new(child)) {
                    examined.push(child);
                }
                child = v.next;
            }
            // Push in reverse so pops keep descending-aclk order; the
            // reverse re-attach below then restores it under each
            // parent.
            for &c in examined.iter().rev() {
                stack.push(c);
            }
        }

        // Detach every updated node from our tree (the root of our own
        // tree is never in the set: monotone use makes our own entry
        // strictly dominant, so `other` can never exceed it).
        debug_assert!(!updated.contains(&self.root));
        if let Some(&max) = updated.iter().max() {
            self.ensure(max);
        }
        for &u in &updated {
            self.detach(u);
        }
        // Re-attach in reverse pre-order so that siblings end up in
        // descending aclk order (each attach goes to the front).
        let root_clk = self.nodes[self.root as usize].clk;
        let changed = updated.len();
        for &u in updated.iter().rev() {
            let (clk, parent, aclk) = {
                let on = &other.nodes[u as usize];
                if u == oroot {
                    (on.clk, self.root, root_clk)
                } else {
                    (on.clk, on.parent, on.aclk)
                }
            };
            let node = &mut self.nodes[u as usize];
            node.clk = clk;
            node.aclk = aclk;
            node.parent = parent;
            node.attached = true;
            // Attach as first child of parent.
            let old_head = self.nodes[parent as usize].head;
            self.nodes[u as usize].next = old_head;
            self.nodes[u as usize].prev = NIL;
            if old_head != NIL {
                self.nodes[old_head as usize].prev = u;
            }
            self.nodes[parent as usize].head = u;
        }
        changed
    }

    fn detach(&mut self, u: u32) {
        let node = self.nodes[u as usize];
        if !node.attached {
            return;
        }
        if node.prev != NIL {
            self.nodes[node.prev as usize].next = node.next;
        } else if node.parent != NIL {
            self.nodes[node.parent as usize].head = node.next;
        }
        if node.next != NIL {
            self.nodes[node.next as usize].prev = node.prev;
        }
        let node = &mut self.nodes[u as usize];
        node.attached = false;
        node.next = NIL;
        node.prev = NIL;
        // Children stay linked to `u`; they move with their parent.
    }

    /// Checks tree structural invariants; used by tests.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        // Every attached non-root node's parent must be attached, and
        // sibling lists must be consistent and acyclic.
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        seen[self.root as usize] = true;
        while let Some(u) = stack.pop() {
            let mut child = self.nodes[u as usize].head;
            let mut prev = NIL;
            let mut last_aclk = Time::MAX;
            while child != NIL {
                let node = &self.nodes[child as usize];
                assert!(node.attached, "child {child} of {u} not attached");
                assert_eq!(node.parent, u, "parent mismatch at {child}");
                assert_eq!(node.prev, prev, "prev mismatch at {child}");
                assert!(node.aclk <= last_aclk, "children of {u} not aclk-sorted");
                assert!(!seen[child as usize], "cycle at {child}");
                seen[child as usize] = true;
                last_aclk = node.aclk;
                prev = child;
                stack.push(child);
                child = node.next;
            }
        }
        // Nodes with non-zero clocks must be reachable.
        for (idx, node) in self.nodes.iter().enumerate() {
            if node.clk > 0 {
                assert!(seen[idx], "node {idx} with clk {} unreachable", node.clk);
            }
        }
    }
}

impl fmt::Debug for TreeClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TreeClock(root=T{}, {:?})",
            self.root,
            self.to_vector_clock()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn new_clock_is_zero() {
        let c = TreeClock::new(t(2));
        assert_eq!(c.get(t(0)), 0);
        assert_eq!(c.get(t(2)), 0);
        assert_eq!(c.owner(), t(2));
        c.assert_invariants();
    }

    #[test]
    fn increment_ticks_owner() {
        let mut c = TreeClock::new(t(1));
        assert_eq!(c.increment(2), 2);
        assert_eq!(c.get(t(1)), 2);
        assert_eq!(c.get(t(0)), 0);
    }

    #[test]
    fn join_transfers_entries() {
        let mut a = TreeClock::new(t(0));
        a.increment(5);
        let mut b = TreeClock::new(t(1));
        b.increment(1);
        assert_eq!(b.join(&a), 1);
        assert_eq!(b.get(t(0)), 5);
        b.assert_invariants();
        // Fast path on re-join.
        assert_eq!(b.join(&a), 0);
    }

    #[test]
    fn join_is_transitive_through_intermediary() {
        let mut a = TreeClock::new(t(0));
        a.increment(3);
        let mut b = TreeClock::new(t(1));
        b.increment(1);
        b.join(&a);
        b.increment(1);
        let mut c = TreeClock::new(t(2));
        c.join(&b);
        assert_eq!(c.get(t(0)), 3);
        assert_eq!(c.get(t(1)), 2);
        c.assert_invariants();
    }

    #[test]
    fn pruning_skips_known_subtrees() {
        // b learns a's state; later a ticks; joining again must update
        // only a's entry, not rediscover the whole tree.
        let mut a = TreeClock::new(t(0));
        a.increment(1);
        let mut helper = TreeClock::new(t(2));
        helper.increment(4);
        a.join(&helper);
        let mut b = TreeClock::new(t(1));
        b.join(&a);
        assert_eq!(b.get(t(2)), 4);
        a.increment(1);
        // Only the root entry changed.
        assert_eq!(b.join(&a), 1);
        assert_eq!(b.get(t(0)), 2);
        b.assert_invariants();
    }

    #[test]
    fn to_vector_clock_round_trip() {
        let mut a = TreeClock::new(t(0));
        a.increment(7);
        let mut b = TreeClock::new(t(3));
        b.increment(2);
        b.join(&a);
        let vc = b.to_vector_clock();
        assert_eq!(vc.get(t(0)), 7);
        assert_eq!(vc.get(t(3)), 2);
    }
}
