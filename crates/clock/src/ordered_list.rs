use std::fmt;

use crate::{ThreadId, Time, VectorClock};

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Node {
    time: Time,
    prev: u32,
    next: u32,
}

/// The paper's *ordered list* (Section 5): a vector timestamp stored as a
/// doubly-linked list in **most-recently-updated-first** order.
///
/// The list is backed by an arena in which the node for thread `t` lives
/// at index `t`, so the paper's `ThrMap` is the identity function and
/// `get`/`set`/`increment` are all `O(1)`. What the linked structure adds
/// over a plain vector clock is *recency order*: `set` and `increment`
/// move the touched node to the head, so a reader that knows (via the
/// freshness timestamp) that only `d` entries can possibly be newer needs
/// to traverse only the first `d` nodes (`O[0:d]` in Algorithm 4).
///
/// # Example
///
/// This reproduces Fig. 4 of the paper: a list over five threads, then
/// `O.set(t4, 6)` followed by `O.increment(t1, 1)`.
///
/// ```
/// use freshtrack_clock::{OrderedList, ThreadId};
///
/// let t = |i| ThreadId::new(i);
/// // Recency order t1 < t2 < t5 < t3 < t4 with the paper's values
/// // (threads are 0-indexed here: paper's t1 is index 0, etc.).
/// let mut o = OrderedList::new();
/// for (tid, time) in [(t(4), 0), (t(3), 8), (t(2), 1), (t(1), 20), (t(0), 6)] {
///     o.set(tid, time);
/// }
/// assert_eq!(o.get(t(2)), 1);
///
/// o.set(t(3), 6); // paper's O.set(t4, 6): moves to the head
/// assert_eq!(o.iter_recent().next(), Some((t(3), 6)));
///
/// o.increment(t(0), 1); // paper's O.inc(t1, 1): 6 → 7, moves to head
/// let order: Vec<_> = o.iter_recent().collect();
/// assert_eq!(order[0], (t(0), 7));
/// assert_eq!(order[1], (t(3), 6));
/// ```
#[derive(Clone, Default)]
pub struct OrderedList {
    nodes: Vec<Node>,
    head: u32,
    tail: u32,
}

impl OrderedList {
    /// Creates the empty (bottom) ordered list.
    pub fn new() -> Self {
        OrderedList {
            nodes: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Creates a bottom list with `threads` pre-allocated entries, in
    /// thread-index recency order (thread 0 most recent).
    pub fn with_threads(threads: usize) -> Self {
        let mut list = OrderedList::new();
        list.ensure_thread_count(threads);
        list
    }

    /// Number of threads represented (allocated nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the list has no allocated entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns `true` if every entry is zero.
    pub fn is_bottom(&self) -> bool {
        self.nodes.iter().all(|n| n.time == 0)
    }

    /// Grows the arena so that threads `0..threads` all have nodes.
    ///
    /// Fresh nodes carry time `0` and are appended at the *tail* (least
    /// recent position): a zero entry can never carry new information, so
    /// it must not displace genuinely fresh entries from the head prefix.
    pub fn ensure_thread_count(&mut self, threads: usize) {
        while self.nodes.len() < threads {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                time: 0,
                prev: self.tail,
                next: NIL,
            });
            if self.tail != NIL {
                self.nodes[self.tail as usize].next = idx;
            } else {
                self.head = idx;
            }
            self.tail = idx;
        }
    }

    /// `O.get(tid)`: the entry for `tid` (zero if never allocated). `O(1)`.
    #[inline]
    pub fn get(&self, tid: ThreadId) -> Time {
        self.nodes.get(tid.index()).map_or(0, |n| n.time)
    }

    /// `O.set(tid, time)`: writes the entry and moves it to the head of
    /// the recency order. `O(1)`.
    pub fn set(&mut self, tid: ThreadId, time: Time) {
        self.ensure_thread_count(tid.index() + 1);
        self.nodes[tid.index()].time = time;
        self.move_to_front(tid.index() as u32);
    }

    /// `O.increment(tid, k)`: adds `k` to the entry and moves it to the
    /// head. Returns the new value. `O(1)`.
    pub fn increment(&mut self, tid: ThreadId, k: Time) -> Time {
        self.ensure_thread_count(tid.index() + 1);
        let node = &mut self.nodes[tid.index()];
        node.time += k;
        let time = node.time;
        self.move_to_front(tid.index() as u32);
        time
    }

    /// Iterates over `(thread, time)` pairs from most to least recently
    /// updated — the order Algorithm 4 traverses `Oℓ[0:d]`.
    pub fn iter_recent(&self) -> RecentEntries<'_> {
        RecentEntries {
            list: self,
            cursor: self.head,
        }
    }

    /// The first `d` entries in recency order (`O[0:d]` in the paper;
    /// yields everything when `d ≥ len`).
    pub fn first(&self, d: usize) -> impl Iterator<Item = (ThreadId, Time)> + '_ {
        self.iter_recent().take(d)
    }

    /// Pointwise-maximum join `self ← self ⊔ other`, moving every changed
    /// entry to the head. Returns the number of entries that changed.
    pub fn join(&mut self, other: &OrderedList) -> usize {
        let mut changed = 0;
        for (tid, time) in other.iter_recent() {
            if time > self.get(tid) {
                self.set(tid, time);
                changed += 1;
            }
        }
        changed
    }

    /// Pointwise comparison against another ordered list.
    pub fn leq(&self, other: &OrderedList) -> bool {
        self.nodes
            .iter()
            .enumerate()
            .all(|(idx, node)| node.time <= other.get(ThreadId::new(idx as u32)))
    }

    /// Pointwise comparison `self ⊑ clock` against a plain vector clock.
    pub fn leq_vector(&self, clock: &VectorClock) -> bool {
        self.nodes
            .iter()
            .enumerate()
            .all(|(idx, node)| node.time <= clock.get(ThreadId::new(idx as u32)))
    }

    /// Pointwise comparison `clock ⊑ self`.
    pub fn geq_vector(&self, clock: &VectorClock) -> bool {
        clock.iter().all(|(tid, time)| time <= self.get(tid))
    }

    /// Materializes the timestamp as a plain [`VectorClock`] (loses the
    /// recency order). `O(T)`.
    pub fn to_vector_clock(&self) -> VectorClock {
        let mut clock = VectorClock::with_capacity(self.nodes.len());
        for (idx, node) in self.nodes.iter().enumerate() {
            if node.time != 0 {
                clock.set(ThreadId::new(idx as u32), node.time);
            } else {
                // Keep the length so `len()` agrees with observed threads.
                clock.set(ThreadId::new(idx as u32), 0);
            }
        }
        clock
    }

    /// Sum of all entries (mirrors [`VectorClock::total`]).
    pub fn total(&self) -> Time {
        self.nodes.iter().map(|n| n.time).sum()
    }

    fn move_to_front(&mut self, idx: u32) {
        if self.head == idx {
            return;
        }
        // Unlink.
        let (prev, next) = {
            let node = &self.nodes[idx as usize];
            (node.prev, node.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        // Relink at head.
        let old_head = self.head;
        self.nodes[idx as usize].prev = NIL;
        self.nodes[idx as usize].next = old_head;
        if old_head != NIL {
            self.nodes[old_head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    /// Checks the doubly-linked-list invariants; used by tests.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        if self.nodes.is_empty() {
            assert_eq!(self.head, NIL);
            assert_eq!(self.tail, NIL);
            return;
        }
        // Walk forward from head, ensure every node visited exactly once.
        let mut seen = vec![false; self.nodes.len()];
        let mut cursor = self.head;
        let mut prev = NIL;
        let mut count = 0;
        while cursor != NIL {
            let node = &self.nodes[cursor as usize];
            assert_eq!(node.prev, prev, "prev pointer mismatch at {cursor}");
            assert!(!seen[cursor as usize], "cycle at {cursor}");
            seen[cursor as usize] = true;
            prev = cursor;
            cursor = node.next;
            count += 1;
        }
        assert_eq!(self.tail, prev);
        assert_eq!(count, self.nodes.len(), "list does not cover arena");
    }
}

impl FromIterator<(ThreadId, Time)> for OrderedList {
    /// Builds a list by `set`ting each pair in order, so the *last* pair
    /// yielded ends up most recent.
    fn from_iter<I: IntoIterator<Item = (ThreadId, Time)>>(iter: I) -> Self {
        let mut list = OrderedList::new();
        for (tid, time) in iter {
            list.set(tid, time);
        }
        list
    }
}

impl PartialEq for OrderedList {
    /// Equality of the *timestamps* (values), ignoring recency order,
    /// matching timestamp semantics.
    fn eq(&self, other: &Self) -> bool {
        let len = self.nodes.len().max(other.nodes.len());
        (0..len).all(|idx| {
            let tid = ThreadId::new(idx as u32);
            self.get(tid) == other.get(tid)
        })
    }
}

impl Eq for OrderedList {}

impl fmt::Debug for OrderedList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (tid, time)) in self.iter_recent().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{tid}:{time}")?;
        }
        write!(f, "]")
    }
}

/// Iterator over an [`OrderedList`] in most-recently-updated-first order.
///
/// Produced by [`OrderedList::iter_recent`].
pub struct RecentEntries<'a> {
    list: &'a OrderedList,
    cursor: u32,
}

impl Iterator for RecentEntries<'_> {
    type Item = (ThreadId, Time);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let idx = self.cursor;
        let node = &self.list.nodes[idx as usize];
        self.cursor = node.next;
        Some((ThreadId::new(idx), node.time))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.list.nodes.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn empty_list_reads_zero() {
        let list = OrderedList::new();
        assert_eq!(list.get(t(5)), 0);
        assert!(list.is_empty());
        assert!(list.is_bottom());
        list.assert_invariants();
    }

    #[test]
    fn set_moves_to_front() {
        let mut list = OrderedList::with_threads(4);
        list.set(t(2), 7);
        assert_eq!(list.iter_recent().next(), Some((t(2), 7)));
        list.assert_invariants();
        list.set(t(0), 1);
        let order: Vec<_> = list.iter_recent().map(|(tid, _)| tid).collect();
        assert_eq!(order[0], t(0));
        assert_eq!(order[1], t(2));
        list.assert_invariants();
    }

    #[test]
    fn increment_accumulates_and_fronts() {
        let mut list = OrderedList::new();
        assert_eq!(list.increment(t(1), 2), 2);
        assert_eq!(list.increment(t(1), 3), 5);
        assert_eq!(list.get(t(1)), 5);
        assert_eq!(list.iter_recent().next(), Some((t(1), 5)));
        list.assert_invariants();
    }

    #[test]
    fn fresh_threads_join_at_tail() {
        let mut list = OrderedList::new();
        list.set(t(0), 4);
        list.ensure_thread_count(3);
        let order: Vec<_> = list.iter_recent().collect();
        assert_eq!(order[0], (t(0), 4));
        assert_eq!(order.len(), 3);
        assert_eq!(order[1].1, 0);
        assert_eq!(order[2].1, 0);
        list.assert_invariants();
    }

    #[test]
    fn first_limits_traversal() {
        let mut list = OrderedList::with_threads(5);
        list.set(t(3), 1);
        list.set(t(1), 2);
        let first_two: Vec<_> = list.first(2).collect();
        assert_eq!(first_two, vec![(t(1), 2), (t(3), 1)]);
        assert_eq!(list.first(100).count(), 5);
    }

    #[test]
    fn fig4_example_from_paper() {
        // Paper threads t1..t5 map to indices 0..4. Values:
        // t1↦6, t2↦20, t3↦8, t4↦0, t5↦1; order t1<t2<t5<t3<t4.
        let mut o = OrderedList::new();
        for (tid, time) in [(t(3), 0), (t(2), 8), (t(4), 1), (t(1), 20), (t(0), 6)] {
            o.set(tid, time);
        }
        let order: Vec<_> = o.iter_recent().collect();
        assert_eq!(
            order,
            vec![(t(0), 6), (t(1), 20), (t(4), 1), (t(2), 8), (t(3), 0)]
        );

        // O.set(t4, 6): value 6, moved to head.
        o.set(t(3), 6);
        let order: Vec<_> = o.iter_recent().collect();
        assert_eq!(
            order,
            vec![(t(3), 6), (t(0), 6), (t(1), 20), (t(4), 1), (t(2), 8)]
        );

        // O.inc(t1, 1): 6 → 7, moved to head.
        o.increment(t(0), 1);
        let order: Vec<_> = o.iter_recent().collect();
        assert_eq!(
            order,
            vec![(t(0), 7), (t(3), 6), (t(1), 20), (t(4), 1), (t(2), 8)]
        );
        o.assert_invariants();
    }

    #[test]
    fn equality_ignores_order() {
        let a = OrderedList::from_iter([(t(0), 1), (t(1), 2)]);
        let b = OrderedList::from_iter([(t(1), 2), (t(0), 1)]);
        assert_eq!(a, b);
        let c = OrderedList::from_iter([(t(0), 1)]);
        assert_ne!(a, c);
        // Trailing zeros do not affect equality.
        let mut d = OrderedList::from_iter([(t(0), 1), (t(1), 2)]);
        d.ensure_thread_count(7);
        assert_eq!(a, d);
    }

    #[test]
    fn leq_vector_round_trip() {
        let list = OrderedList::from_iter([(t(0), 2), (t(2), 1)]);
        let clock = list.to_vector_clock();
        assert!(list.leq_vector(&clock));
        assert!(list.geq_vector(&clock));
        let mut bigger = clock.clone();
        bigger.set(t(1), 9);
        assert!(list.leq_vector(&bigger));
        assert!(!list.geq_vector(&bigger));
    }

    #[test]
    fn move_to_front_from_tail_and_middle() {
        let mut list = OrderedList::with_threads(3);
        // Order is 0,1,2. Move tail (2) to front.
        list.set(t(2), 1);
        list.assert_invariants();
        // Move middle (0) to front: order was 2,0,1.
        list.set(t(0), 1);
        list.assert_invariants();
        let order: Vec<_> = list.iter_recent().map(|(tid, _)| tid).collect();
        assert_eq!(order, vec![t(0), t(2), t(1)]);
    }

    #[test]
    fn debug_shows_recency_chain() {
        let mut list = OrderedList::new();
        list.set(t(1), 3);
        list.set(t(0), 5);
        assert_eq!(format!("{list:?}"), "[T0:5 → T1:3]");
    }
}
