use std::fmt;

use crate::{ThreadId, Time, VectorClock};

const NIL: u32 = u32::MAX;

/// Entries stored inline before spilling to the heap.
///
/// Most analyzed executions have far fewer threads than this (the
/// paper's online evaluation uses 12 worker threads; its offline corpus
/// averages under 10), so the common case — thread/lock clocks created
/// per detector state — never allocates. A [`Node`] is 16 bytes, so the
/// inline arena costs 128 bytes of struct space, well under one cache
/// line pair.
const INLINE: usize = 8;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Node {
    time: Time,
    prev: u32,
    next: u32,
}

const ZERO_NODE: Node = Node {
    time: 0,
    prev: NIL,
    next: NIL,
};

/// Arena storage for [`OrderedList`] nodes: a fixed inline array for
/// short clocks, spilling to a `Vec` past [`INLINE`] threads.
///
/// This is the "small-vec" half of the hot-path optimization pass: a
/// bottom list is allocation-free, and deep copies of short clocks are
/// a straight memcpy with no heap traffic. All hot-path accesses go
/// through [`as_slice`](NodeStore::as_slice) /
/// [`as_mut_slice`](NodeStore::as_mut_slice), which cost one
/// predictable branch.
#[derive(Clone, Debug)]
enum NodeStore {
    Inline { nodes: [Node; INLINE], len: u8 },
    Heap(Vec<Node>),
}

impl NodeStore {
    #[inline]
    const fn new() -> Self {
        NodeStore::Inline {
            nodes: [ZERO_NODE; INLINE],
            len: 0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            NodeStore::Inline { len, .. } => *len as usize,
            NodeStore::Heap(v) => v.len(),
        }
    }

    #[inline]
    fn as_slice(&self) -> &[Node] {
        match self {
            NodeStore::Inline { nodes, len } => &nodes[..*len as usize],
            NodeStore::Heap(v) => v,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [Node] {
        match self {
            NodeStore::Inline { nodes, len } => &mut nodes[..*len as usize],
            NodeStore::Heap(v) => v,
        }
    }

    fn push(&mut self, node: Node) {
        match self {
            NodeStore::Inline { nodes, len } => {
                let l = *len as usize;
                if l < INLINE {
                    nodes[l] = node;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE * 2);
                    v.extend_from_slice(&nodes[..]);
                    v.push(node);
                    *self = NodeStore::Heap(v);
                }
            }
            NodeStore::Heap(v) => v.push(node),
        }
    }
}

/// Unlinks node `idx` and relinks it at the head of the recency chain.
///
/// Free function over the raw arena so callers can keep a hoisted
/// `&mut [Node]` across a batch of updates (the join hot loop) instead
/// of re-resolving the store per touched entry.
#[inline]
fn relink_front(nodes: &mut [Node], head: &mut u32, tail: &mut u32, idx: u32) {
    if *head == idx {
        return;
    }
    let Node { prev, next, .. } = nodes[idx as usize];
    if prev != NIL {
        nodes[prev as usize].next = next;
    }
    if next != NIL {
        nodes[next as usize].prev = prev;
    } else {
        *tail = prev;
    }
    let old_head = *head;
    nodes[idx as usize].prev = NIL;
    nodes[idx as usize].next = old_head;
    if old_head != NIL {
        nodes[old_head as usize].prev = idx;
    } else {
        *tail = idx;
    }
    *head = idx;
}

/// The paper's *ordered list* (Section 5): a vector timestamp stored as a
/// doubly-linked list in **most-recently-updated-first** order.
///
/// The list is backed by an arena in which the node for thread `t` lives
/// at index `t`, so the paper's `ThrMap` is the identity function and
/// `get`/`set`/`increment` are all `O(1)`. What the linked structure adds
/// over a plain vector clock is *recency order*: `set` and `increment`
/// move the touched node to the head, so a reader that knows (via the
/// freshness timestamp) that only `d` entries can possibly be newer needs
/// to traverse only the first `d` nodes (`O[0:d]` in Algorithm 4).
///
/// # Performance model
///
/// See `ARCHITECTURE.md` § Performance model for the full cost table.
/// In short: `get`/`set`/`increment` are `O(1)` arena operations;
/// [`join_prefix`](OrderedList::join_prefix) is `O(d)` in the traversed
/// prefix; the arena lives inline (no heap allocation) up to 8 threads
/// and spills to a `Vec` beyond that. The *recency-prefix invariant* —
/// entries modified since any past moment form a prefix of the chain —
/// is what makes the `O(d)` partial traversal sound; it is enforced by
/// `crates/clock/tests/proptests.rs` (`recency_prefix_invariant`).
///
/// # Example
///
/// This reproduces Fig. 4 of the paper: a list over five threads, then
/// `O.set(t4, 6)` followed by `O.increment(t1, 1)`.
///
/// ```
/// use freshtrack_clock::{OrderedList, ThreadId};
///
/// let t = |i| ThreadId::new(i);
/// // Recency order t1 < t2 < t5 < t3 < t4 with the paper's values
/// // (threads are 0-indexed here: paper's t1 is index 0, etc.).
/// let mut o = OrderedList::new();
/// for (tid, time) in [(t(4), 0), (t(3), 8), (t(2), 1), (t(1), 20), (t(0), 6)] {
///     o.set(tid, time);
/// }
/// assert_eq!(o.get(t(2)), 1);
///
/// o.set(t(3), 6); // paper's O.set(t4, 6): moves to the head
/// assert_eq!(o.iter_recent().next(), Some((t(3), 6)));
///
/// o.increment(t(0), 1); // paper's O.inc(t1, 1): 6 → 7, moves to head
/// let order: Vec<_> = o.iter_recent().collect();
/// assert_eq!(order[0], (t(0), 7));
/// assert_eq!(order[1], (t(3), 6));
/// ```
#[derive(Clone)]
pub struct OrderedList {
    store: NodeStore,
    head: u32,
    tail: u32,
}

impl Default for OrderedList {
    fn default() -> Self {
        OrderedList::new()
    }
}

impl OrderedList {
    /// Creates the empty (bottom) ordered list. Allocation-free.
    pub const fn new() -> Self {
        OrderedList {
            store: NodeStore::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Creates a bottom list with `threads` pre-allocated entries, in
    /// thread-index recency order (thread 0 most recent).
    pub fn with_threads(threads: usize) -> Self {
        let mut list = OrderedList::new();
        list.ensure_thread_count(threads);
        list
    }

    /// Number of threads represented (allocated nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Returns `true` if the list has no allocated entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.store.len() == 0
    }

    /// Returns `true` if every entry is zero.
    pub fn is_bottom(&self) -> bool {
        self.store.as_slice().iter().all(|n| n.time == 0)
    }

    /// Grows the arena so that threads `0..threads` all have nodes.
    ///
    /// Fresh nodes carry time `0` and are appended at the *tail* (least
    /// recent position): a zero entry can never carry new information, so
    /// it must not displace genuinely fresh entries from the head prefix.
    pub fn ensure_thread_count(&mut self, threads: usize) {
        while self.store.len() < threads {
            let idx = self.store.len() as u32;
            self.store.push(Node {
                time: 0,
                prev: self.tail,
                next: NIL,
            });
            if self.tail != NIL {
                self.store.as_mut_slice()[self.tail as usize].next = idx;
            } else {
                self.head = idx;
            }
            self.tail = idx;
        }
    }

    /// `O.get(tid)`: the entry for `tid` (zero if never allocated). `O(1)`.
    #[inline]
    pub fn get(&self, tid: ThreadId) -> Time {
        self.store.as_slice().get(tid.index()).map_or(0, |n| n.time)
    }

    /// `O.set(tid, time)`: writes the entry and moves it to the head of
    /// the recency order. `O(1)`; grows the arena only when `tid` is new.
    #[inline]
    pub fn set(&mut self, tid: ThreadId, time: Time) {
        let idx = tid.index();
        if idx >= self.store.len() {
            self.ensure_thread_count(idx + 1);
        }
        let nodes = self.store.as_mut_slice();
        nodes[idx].time = time;
        relink_front(nodes, &mut self.head, &mut self.tail, idx as u32);
    }

    /// `O.increment(tid, k)`: adds `k` to the entry and moves it to the
    /// head. Returns the new value. `O(1)`.
    #[inline]
    pub fn increment(&mut self, tid: ThreadId, k: Time) -> Time {
        let idx = tid.index();
        if idx >= self.store.len() {
            self.ensure_thread_count(idx + 1);
        }
        let nodes = self.store.as_mut_slice();
        nodes[idx].time += k;
        let time = nodes[idx].time;
        relink_front(nodes, &mut self.head, &mut self.tail, idx as u32);
        time
    }

    /// The dense times in thread-id order (missing entries are
    /// implicitly zero) — the linearized source for publication paths
    /// that copy a whole clock, ignoring the recency links.
    #[inline]
    pub fn times(&self) -> impl ExactSizeIterator<Item = Time> + '_ {
        self.store.as_slice().iter().map(|n| n.time)
    }

    /// Iterates over `(thread, time)` pairs from most to least recently
    /// updated — the order Algorithm 4 traverses `Oℓ[0:d]`.
    pub fn iter_recent(&self) -> RecentEntries<'_> {
        RecentEntries {
            nodes: self.store.as_slice(),
            cursor: self.head,
        }
    }

    /// The first `d` entries in recency order (`O[0:d]` in the paper;
    /// yields everything when `d ≥ len`).
    pub fn first(&self, d: usize) -> impl Iterator<Item = (ThreadId, Time)> + '_ {
        self.iter_recent().take(d)
    }

    /// Pointwise-maximum join `self ← self ⊔ other`, moving every changed
    /// entry to the head. Returns the number of entries that changed.
    ///
    /// Equivalent to [`join_prefix`](OrderedList::join_prefix) with an
    /// unbounded prefix. `O(|other|)`.
    #[inline]
    pub fn join(&mut self, other: &OrderedList) -> usize {
        self.join_prefix(other, usize::MAX)
    }

    /// Partial join: folds only the first `d` entries of `other`'s
    /// recency order into `self` — Algorithm 4's `O ⊔ Oℓ[0:d]`, the
    /// acquire hot path. Returns the number of entries that changed.
    ///
    /// Entries that improve are moved to the head (preserving the
    /// recency-prefix invariant); untouched entries keep their order.
    /// The arena grows only when an improving entry lies beyond the
    /// current thread count, so joining against a longer-but-stale donor
    /// does not inflate `len`.
    pub fn join_prefix(&mut self, other: &OrderedList, d: usize) -> usize {
        // The chain covers the whole arena, so the first
        // `min(d, other.len())` entries exist: the hot loops below can
        // count iterations instead of testing the cursor for NIL.
        let mut remaining = d.min(other.len());
        let mut changed = 0;
        let mut cursor = other.head;
        let onodes = other.store.as_slice();

        if other.len() <= self.store.len() {
            // Common steady-state case: the donor cannot name a thread
            // we have not allocated, so the loop needs no growth check.
            let nodes = self.store.as_mut_slice();
            while remaining != 0 {
                let onode = &onodes[cursor as usize];
                if onode.time > nodes[cursor as usize].time {
                    nodes[cursor as usize].time = onode.time;
                    changed += 1;
                    relink_front(nodes, &mut self.head, &mut self.tail, cursor);
                }
                cursor = onode.next;
                remaining -= 1;
            }
            return changed;
        }

        // General case: the outer loop re-hoists the arena slice only
        // when an improving entry forces the arena to grow.
        while remaining != 0 {
            let slen = self.store.len() as u32;
            let nodes = self.store.as_mut_slice();
            let mut grow_to = NIL;
            while remaining != 0 {
                let idx = cursor;
                let onode = &onodes[idx as usize];
                let time = onode.time;
                if idx < slen {
                    if time > nodes[idx as usize].time {
                        nodes[idx as usize].time = time;
                        changed += 1;
                        relink_front(nodes, &mut self.head, &mut self.tail, idx);
                    }
                } else if time > 0 {
                    // A genuinely fresh thread: grow first, then retry
                    // this entry with the re-hoisted slice.
                    grow_to = idx;
                    break;
                }
                cursor = onode.next;
                remaining -= 1;
            }
            if grow_to == NIL {
                break;
            }
            self.ensure_thread_count(grow_to as usize + 1);
        }
        changed
    }

    /// Pointwise comparison against another ordered list.
    pub fn leq(&self, other: &OrderedList) -> bool {
        let others = other.store.as_slice();
        self.store
            .as_slice()
            .iter()
            .enumerate()
            .all(|(idx, node)| node.time <= others.get(idx).map_or(0, |n| n.time))
    }

    /// Pointwise comparison `self ⊑ clock` against a plain vector clock.
    pub fn leq_vector(&self, clock: &VectorClock) -> bool {
        self.store
            .as_slice()
            .iter()
            .enumerate()
            .all(|(idx, node)| node.time <= clock.get(ThreadId::new(idx as u32)))
    }

    /// Pointwise comparison `clock ⊑ self`.
    pub fn geq_vector(&self, clock: &VectorClock) -> bool {
        clock.iter().all(|(tid, time)| time <= self.get(tid))
    }

    /// Materializes the timestamp as a plain [`VectorClock`] (loses the
    /// recency order). `O(T)`.
    pub fn to_vector_clock(&self) -> VectorClock {
        let mut clock = VectorClock::with_capacity(self.len());
        for (idx, node) in self.store.as_slice().iter().enumerate() {
            // Zeros are written too, so `len()` agrees with observed
            // threads.
            clock.set(ThreadId::new(idx as u32), node.time);
        }
        clock
    }

    /// Sum of all entries (mirrors [`VectorClock::total`]).
    pub fn total(&self) -> Time {
        self.store.as_slice().iter().map(|n| n.time).sum()
    }

    /// Checks the doubly-linked-list invariants; used by tests.
    #[doc(hidden)]
    pub fn assert_invariants(&self) {
        let nodes = self.store.as_slice();
        if nodes.is_empty() {
            assert_eq!(self.head, NIL);
            assert_eq!(self.tail, NIL);
            return;
        }
        // Walk forward from head, ensure every node visited exactly once.
        let mut seen = vec![false; nodes.len()];
        let mut cursor = self.head;
        let mut prev = NIL;
        let mut count = 0;
        while cursor != NIL {
            let node = &nodes[cursor as usize];
            assert_eq!(node.prev, prev, "prev pointer mismatch at {cursor}");
            assert!(!seen[cursor as usize], "cycle at {cursor}");
            seen[cursor as usize] = true;
            prev = cursor;
            cursor = node.next;
            count += 1;
        }
        assert_eq!(self.tail, prev);
        assert_eq!(count, nodes.len(), "list does not cover arena");
    }
}

impl FromIterator<(ThreadId, Time)> for OrderedList {
    /// Builds a list by `set`ting each pair in order, so the *last* pair
    /// yielded ends up most recent.
    fn from_iter<I: IntoIterator<Item = (ThreadId, Time)>>(iter: I) -> Self {
        let mut list = OrderedList::new();
        for (tid, time) in iter {
            list.set(tid, time);
        }
        list
    }
}

impl PartialEq for OrderedList {
    /// Equality of the *timestamps* (values), ignoring recency order,
    /// matching timestamp semantics.
    fn eq(&self, other: &Self) -> bool {
        let len = self.len().max(other.len());
        (0..len).all(|idx| {
            let tid = ThreadId::new(idx as u32);
            self.get(tid) == other.get(tid)
        })
    }
}

impl Eq for OrderedList {}

impl fmt::Debug for OrderedList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (tid, time)) in self.iter_recent().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{tid}:{time}")?;
        }
        write!(f, "]")
    }
}

/// Iterator over an [`OrderedList`] in most-recently-updated-first order.
///
/// Produced by [`OrderedList::iter_recent`].
pub struct RecentEntries<'a> {
    nodes: &'a [Node],
    cursor: u32,
}

impl Iterator for RecentEntries<'_> {
    type Item = (ThreadId, Time);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let idx = self.cursor;
        let node = &self.nodes[idx as usize];
        self.cursor = node.next;
        Some((ThreadId::new(idx), node.time))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.nodes.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn empty_list_reads_zero() {
        let list = OrderedList::new();
        assert_eq!(list.get(t(5)), 0);
        assert!(list.is_empty());
        assert!(list.is_bottom());
        list.assert_invariants();
    }

    #[test]
    fn set_moves_to_front() {
        let mut list = OrderedList::with_threads(4);
        list.set(t(2), 7);
        assert_eq!(list.iter_recent().next(), Some((t(2), 7)));
        list.assert_invariants();
        list.set(t(0), 1);
        let order: Vec<_> = list.iter_recent().map(|(tid, _)| tid).collect();
        assert_eq!(order[0], t(0));
        assert_eq!(order[1], t(2));
        list.assert_invariants();
    }

    #[test]
    fn increment_accumulates_and_fronts() {
        let mut list = OrderedList::new();
        assert_eq!(list.increment(t(1), 2), 2);
        assert_eq!(list.increment(t(1), 3), 5);
        assert_eq!(list.get(t(1)), 5);
        assert_eq!(list.iter_recent().next(), Some((t(1), 5)));
        list.assert_invariants();
    }

    #[test]
    fn fresh_threads_join_at_tail() {
        let mut list = OrderedList::new();
        list.set(t(0), 4);
        list.ensure_thread_count(3);
        let order: Vec<_> = list.iter_recent().collect();
        assert_eq!(order[0], (t(0), 4));
        assert_eq!(order.len(), 3);
        assert_eq!(order[1].1, 0);
        assert_eq!(order[2].1, 0);
        list.assert_invariants();
    }

    #[test]
    fn first_limits_traversal() {
        let mut list = OrderedList::with_threads(5);
        list.set(t(3), 1);
        list.set(t(1), 2);
        let first_two: Vec<_> = list.first(2).collect();
        assert_eq!(first_two, vec![(t(1), 2), (t(3), 1)]);
        assert_eq!(list.first(100).count(), 5);
    }

    #[test]
    fn fig4_example_from_paper() {
        // Paper threads t1..t5 map to indices 0..4. Values:
        // t1↦6, t2↦20, t3↦8, t4↦0, t5↦1; order t1<t2<t5<t3<t4.
        let mut o = OrderedList::new();
        for (tid, time) in [(t(3), 0), (t(2), 8), (t(4), 1), (t(1), 20), (t(0), 6)] {
            o.set(tid, time);
        }
        let order: Vec<_> = o.iter_recent().collect();
        assert_eq!(
            order,
            vec![(t(0), 6), (t(1), 20), (t(4), 1), (t(2), 8), (t(3), 0)]
        );

        // O.set(t4, 6): value 6, moved to head.
        o.set(t(3), 6);
        let order: Vec<_> = o.iter_recent().collect();
        assert_eq!(
            order,
            vec![(t(3), 6), (t(0), 6), (t(1), 20), (t(4), 1), (t(2), 8)]
        );

        // O.inc(t1, 1): 6 → 7, moved to head.
        o.increment(t(0), 1);
        let order: Vec<_> = o.iter_recent().collect();
        assert_eq!(
            order,
            vec![(t(0), 7), (t(3), 6), (t(1), 20), (t(4), 1), (t(2), 8)]
        );
        o.assert_invariants();
    }

    #[test]
    fn equality_ignores_order() {
        let a = OrderedList::from_iter([(t(0), 1), (t(1), 2)]);
        let b = OrderedList::from_iter([(t(1), 2), (t(0), 1)]);
        assert_eq!(a, b);
        let c = OrderedList::from_iter([(t(0), 1)]);
        assert_ne!(a, c);
        // Trailing zeros do not affect equality.
        let mut d = OrderedList::from_iter([(t(0), 1), (t(1), 2)]);
        d.ensure_thread_count(7);
        assert_eq!(a, d);
    }

    #[test]
    fn leq_vector_round_trip() {
        let list = OrderedList::from_iter([(t(0), 2), (t(2), 1)]);
        let clock = list.to_vector_clock();
        assert!(list.leq_vector(&clock));
        assert!(list.geq_vector(&clock));
        let mut bigger = clock.clone();
        bigger.set(t(1), 9);
        assert!(list.leq_vector(&bigger));
        assert!(!list.geq_vector(&bigger));
    }

    #[test]
    fn move_to_front_from_tail_and_middle() {
        let mut list = OrderedList::with_threads(3);
        // Order is 0,1,2. Move tail (2) to front.
        list.set(t(2), 1);
        list.assert_invariants();
        // Move middle (0) to front: order was 2,0,1.
        list.set(t(0), 1);
        list.assert_invariants();
        let order: Vec<_> = list.iter_recent().map(|(tid, _)| tid).collect();
        assert_eq!(order, vec![t(0), t(2), t(1)]);
    }

    #[test]
    fn debug_shows_recency_chain() {
        let mut list = OrderedList::new();
        list.set(t(1), 3);
        list.set(t(0), 5);
        assert_eq!(format!("{list:?}"), "[T0:5 → T1:3]");
    }

    #[test]
    fn inline_storage_spills_to_heap_transparently() {
        // Cross the INLINE boundary one set at a time; every state must
        // behave identically to a model map.
        let mut list = OrderedList::new();
        for i in 0..(INLINE as u32 + 4) {
            list.set(t(i), (i + 1) as u64);
            list.assert_invariants();
            for j in 0..=i {
                assert_eq!(list.get(t(j)), (j + 1) as u64, "after inserting {i}");
            }
        }
        assert_eq!(list.len(), INLINE + 4);
        // Most recent first after ascending sets.
        let order: Vec<_> = list.iter_recent().map(|(tid, _)| tid).collect();
        assert_eq!(order[0], t(INLINE as u32 + 3));
    }

    #[test]
    fn spill_preserves_recency_order() {
        let mut list = OrderedList::new();
        for i in 0..INLINE as u32 {
            list.set(t(i), 1);
        }
        list.set(t(2), 5); // t2 to head while still inline
        list.set(t(INLINE as u32), 9); // forces the spill
        let order: Vec<_> = list.iter_recent().take(2).map(|(tid, _)| tid).collect();
        assert_eq!(order, vec![t(INLINE as u32), t(2)]);
        list.assert_invariants();
    }

    #[test]
    fn join_prefix_limits_depth() {
        let mut donor = OrderedList::new();
        for i in 0..6 {
            donor.set(t(i), 10 + i as u64); // recency: 5,4,3,2,1,0
        }
        let mut list = OrderedList::with_threads(6);
        let changed = list.join_prefix(&donor, 2);
        assert_eq!(changed, 2);
        assert_eq!(list.get(t(5)), 15);
        assert_eq!(list.get(t(4)), 14);
        assert_eq!(list.get(t(3)), 0, "beyond the prefix");
        list.assert_invariants();
    }

    #[test]
    fn join_prefix_equals_full_join_when_deep_enough() {
        let donor = OrderedList::from_iter([(t(0), 3), (t(4), 9), (t(2), 1)]);
        let base = OrderedList::from_iter([(t(0), 5), (t(2), 1), (t(7), 2)]);
        let mut a = base.clone();
        let mut b = base.clone();
        let ca = a.join(&donor);
        let cb = b.join_prefix(&donor, donor.len());
        assert_eq!(ca, cb);
        assert_eq!(a, b);
        a.assert_invariants();
        b.assert_invariants();
    }

    #[test]
    fn join_grows_only_for_improving_entries() {
        // The donor is long but only its zero entries exceed our length;
        // the arena must not grow for them.
        let mut donor = OrderedList::with_threads(12);
        donor.set(t(1), 7);
        let mut list = OrderedList::new();
        list.set(t(0), 1);
        let changed = list.join(&donor);
        assert_eq!(changed, 1);
        assert_eq!(list.len(), 2, "grown only to cover t1");
        assert_eq!(list.get(t(1)), 7);
        list.assert_invariants();
    }

    #[test]
    fn join_moves_changed_entries_to_head() {
        let mut list = OrderedList::from_iter([(t(0), 5), (t(1), 1), (t(2), 8)]);
        let donor = OrderedList::from_iter([(t(1), 4)]);
        let changed = list.join(&donor);
        assert_eq!(changed, 1);
        let order: Vec<_> = list.iter_recent().collect();
        assert_eq!(order[0], (t(1), 4));
        list.assert_invariants();
    }
}
