//! Timestamp substrates for sampling-based happens-before race detection.
//!
//! This crate implements the clock machinery from *"Efficient Timestamping
//! for Sampling-Based Race Detection"* (PLDI 2025):
//!
//! * [`VectorClock`] — the classical Djit+/FastTrack vector timestamp
//!   (Section 2.1 of the paper).
//! * [`Epoch`] — a `(thread, time)` scalar pair, FastTrack's compressed
//!   single-writer timestamp.
//! * [`FreshnessClock`] — the paper's `U` timestamp (Section 4.2), which
//!   counts *how many entries of a thread's C-clock have changed* and lets
//!   a detector prove that a synchronization message is redundant.
//! * [`OrderedList`] — the paper's Section 5 data structure: a vector
//!   timestamp stored as a doubly-linked move-to-front list so that the
//!   most recently updated entries can be traversed first.
//! * [`SharedClock`] — lazy ("shallow") copying of ordered lists between
//!   threads and locks, with deep-copy-on-write (Section 5, "A holistic
//!   solution — lazy copy"). A two-state `Owned`/`Shared` design makes
//!   exclusive mutation free of reference-count traffic; locks hold the
//!   pointer-sized read-only [`ClockSnapshot`], and batch joins
//!   ([`SharedClock::join_prefix`]) resolve the sharing state once per
//!   synchronization, not per entry.
//! * [`SharedVectorClock`] — the same lazy-copy protocol for plain
//!   vector clocks, used by the two-plane ingestion split to *publish*
//!   a thread's clock across the sync/access plane boundary as a
//!   pointer-sized read-only [`VectorClockSnapshot`] without copying.
//! * [`PublishedClock`] — a seqlock-published clock view: one writer
//!   bumps an even/odd version word around an in-place write, readers
//!   snapshot entries lock-free and retry on torn reads. The sharded
//!   detector's default publication path (no slot lock, no refcount
//!   traffic per sync event).
//!
//! All clocks treat missing entries as `0` (the `⊥` timestamp), matching
//! the paper's convention `max ∅ = 0`, so they can grow lazily as threads
//! appear.
//!
//! The cost model these types implement — which operations are `O(1)`,
//! which are `O(d)`, and where the lazy deep copies land — is documented
//! in `ARCHITECTURE.md` § Performance model at the repository root,
//! together with the recorded before/after medians in
//! `BENCH_clock_ops.json`.
//!
//! # Example
//!
//! ```
//! use freshtrack_clock::{OrderedList, ThreadId, VectorClock};
//!
//! let t0 = ThreadId::new(0);
//! let t1 = ThreadId::new(1);
//!
//! let mut vc = VectorClock::new();
//! vc.set(t0, 3);
//! vc.set(t1, 1);
//!
//! let mut ol = OrderedList::new();
//! ol.set(t1, 1);
//! ol.set(t0, 3); // t0 is now the most recently updated entry
//!
//! assert!(ol.leq_vector(&vc));
//! assert_eq!(ol.iter_recent().next(), Some((t0, 3)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cow_vector;
mod epoch;
mod freshness;
mod ordered_list;
mod published;
mod shared;
mod thread_id;
mod tree_clock;
mod vector_clock;
pub mod wire;

pub use cow_vector::{SharedVectorClock, VectorClockSnapshot};
pub use epoch::Epoch;
pub use freshness::FreshnessClock;
pub use ordered_list::{OrderedList, RecentEntries};
pub use published::PublishedClock;
pub use shared::{ClockSnapshot, PrefixJoin, SharedClock};
pub use thread_id::ThreadId;
pub use tree_clock::TreeClock;
pub use vector_clock::VectorClock;

/// The scalar component type of every clock in this crate.
///
/// The paper's timestamps count release events (bounded by the trace
/// length), so 32 bits would usually suffice; we use 64 bits to make
/// overflow a non-concern even for very long executions.
pub type Time = u64;
