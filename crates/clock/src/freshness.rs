use std::fmt;

use crate::{ThreadId, Time, VectorClock};

/// The paper's *freshness timestamp* `U` (Section 4.2).
///
/// `U(e)(t)` counts how many times any entry of thread `t`'s sampling
/// clock `C_t` has changed, as known to event `e`. Two facts make this
/// useful (Propositions 5 and 6 of the paper):
///
/// 1. if `U(e₁)(thr(e₁)) ≤ U(e₂)(thr(e₁))` then
///    `C_sam(e₁) ⊑ C_sam(e₂)` — so a *scalar* comparison can prove that a
///    synchronization message carries no new information, and
/// 2. the difference `k = U(e₁)(t₁) − U(e₂)(t₁)` bounds the number of
///    entries in which `C_sam(e₁)` can exceed `C_sam(e₂)` — so a partial
///    traversal of the first `k` entries of an ordered list suffices.
///
/// Structurally a freshness timestamp is a vector clock; the newtype
/// prevents accidentally mixing freshness values with sampling-clock
/// values.
///
/// # Example
///
/// ```
/// use freshtrack_clock::{FreshnessClock, ThreadId};
///
/// let t0 = ThreadId::new(0);
/// let mut u = FreshnessClock::new();
/// u.bump(t0); // one entry of C_{t0} changed
/// u.bump(t0);
/// assert_eq!(u.get(t0), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct FreshnessClock(VectorClock);

impl FreshnessClock {
    /// Creates the bottom freshness timestamp.
    pub fn new() -> Self {
        FreshnessClock(VectorClock::new())
    }

    /// The recorded number of C-clock changes of thread `tid`.
    #[inline]
    pub fn get(&self, tid: ThreadId) -> Time {
        self.0.get(tid)
    }

    /// Overwrites the entry for `tid`.
    #[inline]
    pub fn set(&mut self, tid: ThreadId, value: Time) {
        self.0.set(tid, value);
    }

    /// Records one additional change to thread `tid`'s C-clock
    /// (`U_t ← U_t[t ↦ U_t(t)+1]` in Algorithms 3–4). Returns the new
    /// count.
    #[inline]
    pub fn bump(&mut self, tid: ThreadId) -> Time {
        self.0.increment(tid)
    }

    /// Records `k` additional changes at once (used after a partial join
    /// that updated `k` entries). Returns the new count.
    #[inline]
    pub fn bump_by(&mut self, tid: ThreadId, k: Time) -> Time {
        let next = self.0.get(tid) + k;
        self.0.set(tid, next);
        next
    }

    /// Pointwise-max join with another freshness timestamp (Algorithm 3,
    /// line 8). Returns the number of entries that changed.
    #[inline]
    pub fn join(&mut self, other: &FreshnessClock) -> usize {
        self.0.join(&other.0)
    }

    /// Overwrites `self` with a copy of `other` (the `Uℓ ← U_t` transfer
    /// of Algorithm 3's release handler). Returns how many entries
    /// changed.
    #[inline]
    pub fn copy_from(&mut self, other: &FreshnessClock) -> usize {
        self.0.copy_from(&other.0)
    }

    /// Overwrites `self` with a copy of `other` without counting changes
    /// — the release hot path (see [`VectorClock::assign_from`]).
    #[inline]
    pub fn assign_from(&mut self, other: &FreshnessClock) {
        self.0.assign_from(&other.0);
    }

    /// Pointwise comparison.
    #[inline]
    pub fn leq(&self, other: &FreshnessClock) -> bool {
        self.0.leq(&other.0)
    }

    /// Sum of all entries; bounded by `|S| · T` (proof of Lemma 7).
    #[inline]
    pub fn total(&self) -> Time {
        self.0.total()
    }

    /// Read-only view as a plain vector clock.
    #[inline]
    pub fn as_vector(&self) -> &VectorClock {
        &self.0
    }
}

impl From<VectorClock> for FreshnessClock {
    fn from(clock: VectorClock) -> Self {
        FreshnessClock(clock)
    }
}

impl fmt::Debug for FreshnessClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn bump_counts_changes() {
        let mut u = FreshnessClock::new();
        assert_eq!(u.bump(t(1)), 1);
        assert_eq!(u.bump(t(1)), 2);
        assert_eq!(u.bump_by(t(1), 3), 5);
        assert_eq!(u.get(t(1)), 5);
        assert_eq!(u.get(t(0)), 0);
    }

    #[test]
    fn join_takes_pointwise_max() {
        let mut a = FreshnessClock::new();
        a.set(t(0), 3);
        let mut b = FreshnessClock::new();
        b.set(t(0), 1);
        b.set(t(1), 2);
        assert_eq!(a.join(&b), 1);
        assert_eq!(a.get(t(0)), 3);
        assert_eq!(a.get(t(1)), 2);
        assert!(b.leq(&a));
    }

    #[test]
    fn total_accumulates() {
        let mut u = FreshnessClock::new();
        u.bump(t(0));
        u.bump_by(t(2), 4);
        assert_eq!(u.total(), 5);
    }
}
