//! Multi-threaded stress tests for the seqlock-published clock view.
//!
//! The writer publishes *monotone* clocks in a recognizable shape so a
//! reader can check two properties about every snapshot it obtains:
//!
//! 1. **Internal consistency** — all entries of one snapshot belong to
//!    the same publication (no torn mix of generation `g` and `g+1`).
//! 2. **Monotonicity** — generations observed by one reader never
//!    regress (seqlock publication is a release/acquire pair, so a
//!    snapshot happens-after the publication it read).
//!
//! Run with `RUST_TEST_THREADS` unset so the reader threads interleave
//! with the writer via preemption even on a single core; CI runs this
//! file as a dedicated step for that reason.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use freshtrack_clock::{PublishedClock, Time};

/// Writer publishes generation `g` as `entries[u] = g + u` with a width
/// that cycles, so both value and length changes are exercised.
fn shape(generation: Time, width: usize) -> impl Fn(usize) -> Time {
    let _ = width;
    move |u| generation + u as Time
}

fn width_of(generation: Time) -> usize {
    // Cycle widths across chunk boundaries (chunk 0 holds 8 entries).
    const WIDTHS: [usize; 6] = [1, 7, 8, 9, 33, 64];
    WIDTHS[(generation as usize) % WIDTHS.len()]
}

/// Decodes a snapshot back to its generation, asserting consistency.
fn decode(snapshot: &[Time]) -> Time {
    assert!(!snapshot.is_empty(), "writer never publishes width 0 here");
    let generation = snapshot[0];
    for (u, &t) in snapshot.iter().enumerate() {
        assert_eq!(
            t,
            generation + u as Time,
            "torn snapshot: entry {u} of {snapshot:?} disagrees with generation {generation}"
        );
    }
    assert_eq!(
        snapshot.len(),
        width_of(generation),
        "torn snapshot: length {} does not match generation {generation}",
        snapshot.len()
    );
    generation
}

#[test]
fn concurrent_readers_see_consistent_monotone_snapshots() {
    const GENERATIONS: Time = 20_000;
    const READERS: usize = 4;

    let clock = Arc::new(PublishedClock::new());
    let done = Arc::new(AtomicBool::new(false));

    // Generation 1 is published before readers start so every snapshot
    // is non-empty.
    clock.store(width_of(1), shape(1, width_of(1)));

    let mut readers = Vec::new();
    for _ in 0..READERS {
        let clock = Arc::clone(&clock);
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let mut snapshot = Vec::new();
            let mut last = 0;
            let mut observed = 0u64;
            while !done.load(Ordering::Relaxed) {
                clock.read_into(&mut snapshot);
                let generation = decode(&snapshot);
                assert!(
                    generation >= last,
                    "snapshot regressed: saw generation {generation} after {last}"
                );
                last = generation;
                observed += 1;
            }
            observed
        }));
    }

    for generation in 2..=GENERATIONS {
        let width = width_of(generation);
        clock.store(width, shape(generation, width));
        if generation % 64 == 0 {
            // Give readers a scheduling chance on a single core.
            std::thread::yield_now();
        }
    }
    done.store(true, Ordering::Relaxed);

    for reader in readers {
        let observed = reader.join().expect("reader panicked (torn or regressed)");
        assert!(observed > 0, "reader never obtained a snapshot");
    }

    // Final state is the last publication, exactly.
    let mut snapshot = Vec::new();
    clock.read_into(&mut snapshot);
    assert_eq!(decode(&snapshot), GENERATIONS);
}

#[test]
fn contending_writers_never_corrupt_a_publication() {
    // The single-writer expectation is a performance contract, not a
    // safety one: two writers racing the claim CAS serialize, so every
    // snapshot still decodes to exactly one writer's publication.
    const PER_WRITER: Time = 5_000;
    let clock = Arc::new(PublishedClock::new());
    clock.store(width_of(1), shape(1, width_of(1)));

    let writers: Vec<_> = (0..2)
        .map(|_| {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                for generation in 2..=PER_WRITER {
                    let width = width_of(generation);
                    clock.store(width, shape(generation, width));
                }
            })
        })
        .collect();

    let mut snapshot = Vec::new();
    for _ in 0..20_000 {
        clock.read_into(&mut snapshot);
        decode(&snapshot); // panics on any torn read
    }
    for writer in writers {
        writer.join().expect("writer panicked");
    }
    clock.read_into(&mut snapshot);
    assert_eq!(decode(&snapshot), PER_WRITER);
}
