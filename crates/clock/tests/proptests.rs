//! Property-based tests for the clock substrates.
//!
//! The most important property here is the **recency-prefix invariant**
//! of [`OrderedList`]: the entries modified since any past moment form a
//! prefix of the list. Algorithm 4's partial traversal (`Oℓ[0:d]`) is
//! sound *only* because of this invariant, so it gets hammered directly.

use freshtrack_clock::{OrderedList, SharedClock, ThreadId, VectorClock};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

const T: u32 = 12;

#[derive(Clone, Debug)]
enum Op {
    Set(u32, u64),
    Increment(u32, u64),
    Join(Vec<(u32, u64)>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..T, 1u64..100).prop_map(|(t, v)| Op::Set(t, v)),
        (0..T, 1u64..10).prop_map(|(t, k)| Op::Increment(t, k)),
        prop::collection::vec((0..T, 1u64..100), 0..6).prop_map(|entries| {
            // Canonicalize: one entry per thread (max value), so that
            // building a clock from the entries is order-insensitive.
            let mut max: HashMap<u32, u64> = HashMap::new();
            for (t, v) in entries {
                let e = max.entry(t).or_insert(0);
                *e = (*e).max(v);
            }
            let mut folded: Vec<(u32, u64)> = max.into_iter().collect();
            folded.sort_unstable();
            Op::Join(folded)
        }),
    ]
}

/// A model: a plain map with the same max-semantics.
fn apply_model(model: &mut HashMap<u32, u64>, op: &Op) -> Vec<u32> {
    match op {
        Op::Set(t, v) => {
            model.insert(*t, *v);
            vec![*t]
        }
        Op::Increment(t, k) => {
            *model.entry(*t).or_insert(0) += k;
            vec![*t]
        }
        Op::Join(entries) => {
            let mut touched = Vec::new();
            for &(t, v) in entries {
                let e = model.entry(t).or_insert(0);
                if v > *e {
                    *e = v;
                    touched.push(t);
                }
            }
            touched
        }
    }
}

fn apply_list(list: &mut OrderedList, op: &Op) {
    match op {
        Op::Set(t, v) => list.set(ThreadId::new(*t), *v),
        Op::Increment(t, k) => {
            list.increment(ThreadId::new(*t), *k);
        }
        Op::Join(entries) => {
            let other: OrderedList = entries
                .iter()
                .map(|&(t, v)| (ThreadId::new(t), v))
                .collect();
            list.join(&other);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn ordered_list_matches_map_model(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let mut model: HashMap<u32, u64> = HashMap::new();
        let mut list = OrderedList::new();
        for op in &ops {
            apply_model(&mut model, op);
            apply_list(&mut list, op);
            list.assert_invariants();
        }
        for t in 0..T {
            prop_assert_eq!(
                list.get(ThreadId::new(t)),
                model.get(&t).copied().unwrap_or(0)
            );
        }
    }

    #[test]
    fn recency_prefix_invariant(
        ops in prop::collection::vec(op_strategy(), 1..60),
        cut in 0usize..60,
    ) {
        // Entries touched after `cut` must form a prefix of the final
        // list — the property Algorithm 4's partial traversal relies on.
        let cut = cut.min(ops.len());
        let mut model: HashMap<u32, u64> = HashMap::new();
        let mut list = OrderedList::new();
        let mut touched_after_cut: HashSet<u32> = HashSet::new();
        for (i, op) in ops.iter().enumerate() {
            let touched = apply_model(&mut model, op);
            apply_list(&mut list, op);
            if i >= cut {
                // Sets/increments always move to front even without a
                // value change; joins only touch improved entries.
                match op {
                    Op::Join(_) => touched_after_cut.extend(touched),
                    Op::Set(t, _) | Op::Increment(t, _) => {
                        touched_after_cut.insert(*t);
                    }
                }
            }
        }
        let prefix: HashSet<u32> = list
            .iter_recent()
            .take(touched_after_cut.len())
            .map(|(t, _)| t.as_u32())
            .collect();
        prop_assert_eq!(&prefix, &touched_after_cut);
    }

    #[test]
    fn vector_clock_join_is_a_lattice_lub(
        a in prop::collection::vec(0u64..50, 0..12),
        b in prop::collection::vec(0u64..50, 0..12),
        c in prop::collection::vec(0u64..50, 0..12),
    ) {
        let vc = |xs: &[u64]| -> VectorClock {
            xs.iter()
                .enumerate()
                .map(|(i, &v)| (ThreadId::new(i as u32), v))
                .collect()
        };
        let (a, b, c) = (vc(&a), vc(&b), vc(&c));

        // Commutativity.
        let mut ab = a.clone();
        ab.join(&b);
        let mut ba = b.clone();
        ba.join(&a);
        prop_assert_eq!(&ab, &ba);

        // Idempotence.
        let mut aa = a.clone();
        aa.join(&a);
        prop_assert_eq!(&aa, &a);

        // Associativity.
        let mut ab_c = ab.clone();
        ab_c.join(&c);
        let mut bc = b.clone();
        bc.join(&c);
        let mut a_bc = a.clone();
        a_bc.join(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Least upper bound: a ⊑ a⊔b, b ⊑ a⊔b, and any upper bound u
        // satisfies a⊔b ⊑ u.
        prop_assert!(a.leq(&ab));
        prop_assert!(b.leq(&ab));
        let mut u = a.clone();
        u.join(&b);
        u.join(&c); // u is an upper bound of a and b
        prop_assert!(ab.leq(&u));
    }

    #[test]
    fn join_change_count_is_exact(
        a in prop::collection::vec(0u64..50, 0..12),
        b in prop::collection::vec(0u64..50, 0..12),
    ) {
        let vc = |xs: &[u64]| -> VectorClock {
            xs.iter()
                .enumerate()
                .map(|(i, &v)| (ThreadId::new(i as u32), v))
                .collect()
        };
        let (a, b) = (vc(&a), vc(&b));
        let expected = (0..12)
            .filter(|&i| {
                let t = ThreadId::new(i);
                b.get(t) > a.get(t)
            })
            .count();
        let mut joined = a.clone();
        prop_assert_eq!(joined.join(&b), expected);
    }

    #[test]
    fn ordered_list_and_vector_clock_agree_on_join(
        ops in prop::collection::vec(op_strategy(), 0..40),
    ) {
        let mut list = OrderedList::new();
        let mut clock = VectorClock::new();
        for op in &ops {
            apply_list(&mut list, op);
            match op {
                Op::Set(t, v) => clock.set(ThreadId::new(*t), *v),
                Op::Increment(t, k) => {
                    let cur = clock.get(ThreadId::new(*t));
                    clock.set(ThreadId::new(*t), cur + k);
                }
                Op::Join(entries) => {
                    let other: VectorClock = entries
                        .iter()
                        .map(|&(t, v)| (ThreadId::new(t), v))
                        .collect();
                    clock.join(&other);
                }
            }
        }
        prop_assert!(list.leq_vector(&clock));
        prop_assert!(list.geq_vector(&clock));
    }

    #[test]
    fn shared_clock_copy_on_write_isolation(
        ops_before in prop::collection::vec(op_strategy(), 0..20),
        ops_after in prop::collection::vec(op_strategy(), 1..20),
    ) {
        let mut owner = SharedClock::new();
        for op in &ops_before {
            match op {
                Op::Set(t, v) => {
                    owner.set(ThreadId::new(*t), *v);
                }
                Op::Increment(t, k) => {
                    owner.increment(ThreadId::new(*t), *k);
                }
                Op::Join(_) => {}
            }
        }
        // Snapshot via shallow copy, then keep mutating the owner.
        let snapshot = owner.shallow_copy();
        let frozen = snapshot.list().clone();
        for op in &ops_after {
            match op {
                Op::Set(t, v) => {
                    owner.set(ThreadId::new(*t), owner.get(ThreadId::new(*t)) + v);
                }
                Op::Increment(t, k) => {
                    owner.increment(ThreadId::new(*t), *k);
                }
                Op::Join(_) => {}
            }
        }
        // The snapshot must be unaffected by post-snapshot mutation.
        prop_assert_eq!(snapshot.list(), &frozen);
    }
}

mod tree_clock_model {
    //! Monotone-use simulation: threads tick and join through locks; a
    //! [`VectorClock`] model must agree with [`TreeClock`] at all times.

    use freshtrack_clock::{ThreadId, TreeClock, VectorClock};
    use proptest::prelude::*;

    const T: usize = 6;
    const L: usize = 4;

    #[derive(Clone, Debug)]
    enum SyncOp {
        /// Thread ticks its local clock.
        Tick(u8),
        /// Thread releases lock: lock clock := copy of thread clock.
        Release(u8, u8),
        /// Thread acquires lock: thread clock joins lock clock.
        Acquire(u8, u8),
    }

    fn sync_ops() -> impl Strategy<Value = Vec<SyncOp>> {
        prop::collection::vec(
            prop_oneof![
                (0u8..T as u8).prop_map(SyncOp::Tick),
                (0u8..T as u8, 0u8..L as u8).prop_map(|(t, l)| SyncOp::Release(t, l)),
                (0u8..T as u8, 0u8..L as u8).prop_map(|(t, l)| SyncOp::Acquire(t, l)),
            ],
            0..120,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(384))]

        #[test]
        fn tree_clock_matches_vector_clock_model(ops in sync_ops()) {
            // Djit+ initialization: C_t ← ⊥[t ↦ 1]. The tree-clock
            // fast path depends on it — a first-ever release must carry
            // a root clock distinguishable from "never heard of them".
            let mut tc: Vec<TreeClock> = (0..T)
                .map(|t| {
                    let mut c = TreeClock::new(ThreadId::new(t as u32));
                    c.increment(1);
                    c
                })
                .collect();
            let mut vc: Vec<VectorClock> = (0..T)
                .map(|t| VectorClock::bottom_with(ThreadId::new(t as u32), 1))
                .collect();
            let mut lock_tc: Vec<Option<TreeClock>> = vec![None; L];
            let mut lock_vc: Vec<VectorClock> = vec![VectorClock::new(); L];

            for op in &ops {
                match *op {
                    SyncOp::Tick(t) => {
                        let t = t as usize;
                        tc[t].increment(1);
                        let tid = ThreadId::new(t as u32);
                        let cur = vc[t].get(tid);
                        vc[t].set(tid, cur + 1);
                    }
                    SyncOp::Release(t, l) => {
                        // Djit+ discipline: the releasing thread's own
                        // clock ticks after every release, so released
                        // snapshots always carry a fresh root clock —
                        // the precondition of the tree-clock fast path.
                        let (t, l) = (t as usize, l as usize);
                        lock_tc[l] = Some(tc[t].clone());
                        lock_vc[l].copy_from(&vc[t]);
                        tc[t].increment(1);
                        let tid = ThreadId::new(t as u32);
                        let cur = vc[t].get(tid);
                        vc[t].set(tid, cur + 1);
                    }
                    SyncOp::Acquire(t, l) => {
                        let (t, l) = (t as usize, l as usize);
                        if let Some(lc) = &lock_tc[l] {
                            // Monotone use: never join a thread's own
                            // stale snapshot into itself (a thread's
                            // clock always dominates its past releases,
                            // so the join would be a no-op anyway —
                            // and the fast path must agree).
                            let changed = tc[t].join(lc);
                            let expected = vc[t].join(&lock_vc[l]);
                            prop_assert_eq!(changed, expected);
                            tc[t].assert_invariants();
                        }
                    }
                }
                // Spot-check full agreement.
            }
            for t in 0..T {
                for u in 0..T {
                    prop_assert_eq!(
                        tc[t].get(ThreadId::new(u as u32)),
                        vc[t].get(ThreadId::new(u as u32)),
                        "thread {} entry {}", t, u
                    );
                }
            }
        }
    }
}
