//! Property tests for [`SharedClock`]'s copy-on-write protocol and the
//! epoch/prefix fast paths added by the hot-path optimization pass.
//!
//! Three families:
//!
//! 1. **Aliasing state machine** — a fleet of thread clocks and lock
//!    slots doing random release (`shallow_copy`) / acquire (`join`) /
//!    mutate ops must track a plain map model exactly, and a lock's
//!    snapshot must never observe a post-release mutation of its
//!    releaser (the isolation Lemma 8's accounting relies on).
//! 2. **Shrink/grow across thread counts** — clocks of different arena
//!    lengths may alias; growing one past its alias's length must not
//!    leak entries into (or out of) the alias.
//! 3. **Fast-path equivalence** — `SharedClock::join_prefix` (with its
//!    pointer and read-only-prescan fast paths) must agree with the
//!    plain `OrderedList::join_prefix`, which must agree with a naive
//!    prefix-fold model; full `join` is the `d = ∞` instance.

use proptest::prelude::*;
use std::collections::HashMap;

use freshtrack_clock::{OrderedList, SharedClock, ThreadId, Time};

const T: u32 = 12;
const LOCKS: usize = 3;
const CLOCKS: usize = 4;

fn tid(i: u32) -> ThreadId {
    ThreadId::new(i)
}

/// Naive model of a prefix join: fold the first `d` recency entries of
/// `donor` into `base` by pointwise max.
fn model_join_prefix(base: &OrderedList, donor: &OrderedList, d: usize) -> HashMap<u32, Time> {
    let mut model: HashMap<u32, Time> = base.iter_recent().map(|(t, v)| (t.as_u32(), v)).collect();
    for (t, v) in donor.first(d) {
        let e = model.entry(t.as_u32()).or_insert(0);
        *e = (*e).max(v);
    }
    model
}

fn assert_matches_model(list: &OrderedList, model: &HashMap<u32, Time>, ctx: &str) {
    for t in 0..T {
        assert_eq!(
            list.get(tid(t)),
            model.get(&t).copied().unwrap_or(0),
            "{ctx}: entry {t}"
        );
    }
}

#[derive(Clone, Debug)]
enum Op {
    /// `clocks[c].set(t, fresh strictly-increasing value)`
    Set(usize, u32),
    /// `clocks[c].increment(t, k)`
    Increment(usize, u32, u64),
    /// Release: `locks[l] = clocks[c].shallow_copy()`
    Release(usize, usize),
    /// Acquire: `clocks[c] ⊔= locks[l][0:d]` (`d = T` means full join)
    Acquire(usize, usize, usize),
    /// Drop the lock's snapshot (lock destroyed / replaced by ⊥).
    ClearLock(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..CLOCKS, 0..T).prop_map(|(c, t)| Op::Set(c, t)),
        (0..CLOCKS, 0..T, 1u64..5).prop_map(|(c, t, k)| Op::Increment(c, t, k)),
        (0..CLOCKS, 0..LOCKS).prop_map(|(c, l)| Op::Release(c, l)),
        (0..CLOCKS, 0..LOCKS, 1usize..(T as usize + 2)).prop_map(|(c, l, d)| Op::Acquire(c, l, d)),
        (0..LOCKS).prop_map(Op::ClearLock),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn aliasing_state_machine_matches_model(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut clocks: Vec<SharedClock> = (0..CLOCKS).map(|_| SharedClock::new()).collect();
        let mut clock_models: Vec<HashMap<u32, Time>> = vec![HashMap::new(); CLOCKS];
        let mut locks: Vec<Option<SharedClock>> = vec![None; LOCKS];
        let mut lock_models: Vec<HashMap<u32, Time>> = vec![HashMap::new(); LOCKS];
        let mut stamp: Time = 0;

        for op in &ops {
            match *op {
                Op::Set(c, t) => {
                    stamp += 1;
                    clocks[c].set(tid(t), stamp);
                    clock_models[c].insert(t, stamp);
                }
                Op::Increment(c, t, k) => {
                    clocks[c].increment(tid(t), k);
                    *clock_models[c].entry(t).or_insert(0) += k;
                }
                Op::Release(c, l) => {
                    locks[l] = Some(clocks[c].shallow_copy());
                    lock_models[l] = clock_models[c].clone();
                }
                Op::Acquire(c, l, d) => {
                    if let Some(lock) = &locks[l] {
                        let donor = lock.list();
                        let before_donor: Vec<_> = donor.iter_recent().collect();
                        let expected = {
                            let mut m = clock_models[c].clone();
                            for (t, v) in donor.first(d) {
                                let e = m.entry(t.as_u32()).or_insert(0);
                                *e = (*e).max(v);
                            }
                            m
                        };
                        // Clone the donor handle so `clocks[c]` can be
                        // mutated; this alias is what makes the join's
                        // pointer fast path reachable when c released l.
                        let donor = lock.clone();
                        let res = clocks[c].join_prefix(donor.list(), d);
                        prop_assert_eq!(
                            res.traversed,
                            d.min(donor.list().len()),
                            "traversed must be the examined prefix"
                        );
                        clock_models[c] = expected;
                        // The donor must be bit-for-bit untouched.
                        let after_donor: Vec<_> = donor.list().iter_recent().collect();
                        prop_assert_eq!(&before_donor, &after_donor);
                    }
                }
                Op::ClearLock(l) => {
                    locks[l] = None;
                }
            }
            clocks.iter().for_each(|c| c.list().assert_invariants());
        }

        for (c, model) in clock_models.iter().enumerate() {
            assert_matches_model(clocks[c].list(), model, &format!("clock {c}"));
        }
        for (l, model) in lock_models.iter().enumerate() {
            if let Some(lock) = &locks[l] {
                assert_matches_model(lock.list(), model, &format!("lock {l} snapshot"));
            }
        }
    }

    #[test]
    fn snapshots_are_isolated_from_later_mutation(
        pre in prop::collection::vec((0..T, 1u64..50), 0..12),
        post in prop::collection::vec((0..T, 1u64..50), 1..12),
        use_second_alias in any::<bool>(),
    ) {
        let mut owner = SharedClock::new();
        for &(t, v) in &pre {
            owner.set(tid(t), v);
        }
        let snap1 = owner.shallow_copy();
        // A second alias (another lock) keeps the count above 2, so the
        // owner's next mutation must deep-copy rather than reclaim.
        let snap2 = use_second_alias.then(|| owner.shallow_copy());
        let frozen: Vec<_> = snap1.list().iter_recent().collect();
        for &(t, v) in &post {
            owner.increment(tid(t), v);
        }
        let now: Vec<_> = snap1.list().iter_recent().collect();
        prop_assert_eq!(&frozen, &now);
        if let Some(snap2) = snap2 {
            let now2: Vec<_> = snap2.list().iter_recent().collect();
            prop_assert_eq!(&frozen, &now2);
            prop_assert!(snap1.ptr_eq(&snap2));
        }
        prop_assert!(!owner.is_shared());
    }

    #[test]
    fn shrink_grow_across_thread_counts(
        short_len in 1usize..6,
        long_len in 8usize..16,
        writes in prop::collection::vec((0u32..16, 1u64..50), 1..10),
    ) {
        // A short clock is aliased, then grown well past the alias's
        // arena length (including across the inline→heap spill).
        let mut owner = SharedClock::with_threads(short_len);
        owner.set(tid(0), 1);
        let alias = owner.shallow_copy();
        let alias_len = alias.list().len();
        owner.make_mut().0.ensure_thread_count(long_len);
        for &(t, v) in &writes {
            owner.set(tid(t % long_len as u32), v);
        }
        // The alias keeps its original arena: same length, same values.
        prop_assert_eq!(alias.list().len(), alias_len);
        prop_assert_eq!(alias.get(tid(0)), 1);
        for t in 1..alias_len as u32 {
            prop_assert_eq!(alias.get(tid(t)), 0);
        }
        alias.list().assert_invariants();
        owner.list().assert_invariants();
        prop_assert_eq!(owner.list().len(), long_len.max(
            writes.iter().map(|&(t, _)| (t % long_len as u32) as usize + 1).max().unwrap_or(0)
        ));

        // And the reverse: a long donor joined into a short clock grows
        // it only as far as improving entries require.
        let mut short = SharedClock::with_threads(1);
        let res = short.join(owner.list());
        prop_assert_eq!(res.changed > 0, !owner.list().is_bottom());
        for t in 0..long_len as u32 {
            prop_assert_eq!(short.get(tid(t)), owner.get(tid(t)));
        }
    }

    #[test]
    fn prefix_join_fast_paths_agree_with_naive_model(
        base_ops in prop::collection::vec((0..T, 1u64..60), 0..15),
        donor_ops in prop::collection::vec((0..T, 1u64..60), 0..15),
        d in 0usize..16,
        alias_donor in any::<bool>(),
    ) {
        let base: OrderedList = base_ops.iter().map(|&(t, v)| (tid(t), v)).collect();
        let donor: OrderedList = donor_ops.iter().map(|&(t, v)| (tid(t), v)).collect();
        let expected = model_join_prefix(&base, &donor, d);

        // Plain ordered-list prefix join.
        let mut plain = base.clone();
        let changed = plain.join_prefix(&donor, d);
        assert_matches_model(&plain, &expected, "OrderedList::join_prefix");
        plain.assert_invariants();

        // SharedClock::join_prefix — exclusive owner.
        let mut owned = SharedClock::from_list(base.clone());
        let res = owned.join_prefix(&donor, d);
        prop_assert_eq!(res.changed, changed);
        prop_assert!(!res.deep_copy);
        assert_matches_model(owned.list(), &expected, "SharedClock owned");

        // SharedClock::join_prefix — shared owner: same result, and the
        // lazy deep copy happens iff something actually changed (the
        // read-only pre-scan fast path must keep redundant joins free).
        let mut shared = SharedClock::from_list(base.clone());
        let alias = shared.shallow_copy();
        let res = shared.join_prefix(&donor, d);
        prop_assert_eq!(res.changed, changed);
        prop_assert_eq!(res.deep_copy, changed > 0);
        assert_matches_model(shared.list(), &expected, "SharedClock shared");
        // The alias must retain the pre-join snapshot.
        for t in 0..T {
            prop_assert_eq!(alias.get(tid(t)), base.get(tid(t)));
        }

        // Joining a clock with its own alias: the pointer fast path
        // must make it a no-op without breaking the sharing.
        if alias_donor {
            let mut me = SharedClock::from_list(base.clone());
            let alias2 = me.shallow_copy();
            let res = me.join_prefix(alias2.list(), d);
            prop_assert_eq!(res.changed, 0);
            prop_assert!(!res.deep_copy);
            prop_assert!(me.is_shared());
        }
    }

    #[test]
    fn full_join_is_unbounded_prefix_join(
        base_ops in prop::collection::vec((0..T, 1u64..60), 0..15),
        donor_ops in prop::collection::vec((0..T, 1u64..60), 0..15),
    ) {
        let base: OrderedList = base_ops.iter().map(|&(t, v)| (tid(t), v)).collect();
        let donor: OrderedList = donor_ops.iter().map(|&(t, v)| (tid(t), v)).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        let ca = a.join(&donor);
        let cb = b.join_prefix(&donor, usize::MAX);
        prop_assert_eq!(ca, cb);
        prop_assert_eq!(&a, &b);
        let expected = model_join_prefix(&base, &donor, usize::MAX);
        assert_matches_model(&a, &expected, "full join");
    }
}
