//! Shared helpers for cross-detector differential conformance testing.
//!
//! The paper's central correctness claim (Lemmas 4, 7 and 8) is that the
//! naive sampling detector (Algorithm 2), Djit+ restricted to the sample
//! set (**ST**), the freshness engine (**SU**, Algorithm 3) and the
//! ordered-list engine (**SO**, Algorithm 4) report *exactly* the same
//! races for the same sample set — and that those races are exactly the
//! HB-races among sampled accesses, which [`HbOracle`] computes
//! independently in `O(N²)`. This crate packages that claim as reusable
//! assertions so every integration suite (differential conformance, CLI
//! smoke, future perf PRs) checks the same contract:
//!
//! * [`assert_sampling_engines_agree`] — the four sampling engines (plus
//!   SO without its local-epoch optimization) are report-identical.
//! * [`assert_fasttrack_first_race_agreement`] — FastTrack, whose epoch
//!   histories are lossy after a variable's first race, still agrees
//!   with Djit+ on the first race and on racy-or-not.
//! * [`assert_oracle_agreement`] — every reported event is truly racy
//!   among the sampled accesses, and the first report is the oracle's
//!   first racy event.
//! * [`assert_conformance`] — all of the above for one `(trace,
//!   sampler)` pair.
//! * [`assert_streaming_oracle_agreement`] — the bounded-memory
//!   [`StreamingOracle`] vs [`HbOracle`]: racy events exact at every
//!   window size, racy pairs a sound subset that becomes exact when the
//!   window covers the trace.
//! * [`workload_matrix`] / [`conformance_workload`] — seeded structured
//!   workloads across every [`Pattern`], sized so the quadratic oracle
//!   stays affordable.
//! * [`run_sharded_trace`] / [`run_sharded_trace_batched`] /
//!   [`assert_shard_equivalence`] — sharded ingestion
//!   ([`ShardedOnlineDetector`], in every [`SyncMode`], batched or
//!   not) vs the single-mutex path: identical reports, matching
//!   per-kind counters, for any shard count. Used by
//!   `crates/core/tests/sharding.rs`.
//! * [`trace_from_fuel`] — the shared fuzz-trace interpreter: raw
//!   `(thread, action, operand)` fuel into a trace obeying the locking
//!   discipline (used by the proptest suites).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use freshtrack_core::{
    Counters, Detector, DjitDetector, FastTrackDetector, FreshnessDetector, HbOracle,
    NaiveSamplingDetector, OracleConfig, OracleOutcome, OrderedListDetector, RaceReport,
    ShardedOnlineDetector, SplitDetector, StreamingOracle, SyncMode,
};
use freshtrack_sampling::Sampler;
use freshtrack_trace::{Trace, TraceBuilder, VarId};
use freshtrack_workloads::{generate, Pattern, WorkloadConfig};

/// Every structural workload pattern, in a stable order.
pub const ALL_PATTERNS: [Pattern; 6] = [
    Pattern::Mixed,
    Pattern::ProducerConsumer,
    Pattern::Pipeline,
    Pattern::ForkJoin,
    Pattern::BarrierPhases,
    Pattern::LockLadder,
];

/// A short stable name for a pattern, for assertion labels.
pub fn pattern_name(pattern: Pattern) -> &'static str {
    match pattern {
        Pattern::Mixed => "mixed",
        Pattern::ProducerConsumer => "producer_consumer",
        Pattern::Pipeline => "pipeline",
        Pattern::ForkJoin => "fork_join",
        Pattern::BarrierPhases => "barrier_phases",
        Pattern::LockLadder => "lock_ladder",
    }
}

/// Generates the conformance workload for one `(pattern, seed)` cell.
///
/// The knobs deviate from the generator defaults in two ways: a raised
/// unprotected fraction so most cells actually contain races (agreement
/// on empty reports is a much weaker check), and a bounded event count
/// because [`HbOracle`] is quadratic in the trace length.
pub fn conformance_workload(pattern: Pattern, seed: u64, events: usize) -> Trace {
    let trace = generate(
        &WorkloadConfig::named(pattern_name(pattern))
            .pattern(pattern)
            .events(events)
            .threads(5)
            .locks(4)
            .vars(24)
            .unprotected(0.08)
            .seed(seed),
    );
    assert!(
        trace.validate().is_ok(),
        "generator produced an invalid trace for {}/{seed}",
        pattern_name(pattern)
    );
    trace
}

/// The full differential matrix: every pattern × every seed, labelled
/// `pattern/seed`.
pub fn workload_matrix(events: usize, seeds: &[u64]) -> Vec<(String, Trace)> {
    let mut cells = Vec::with_capacity(ALL_PATTERNS.len() * seeds.len());
    for &pattern in &ALL_PATTERNS {
        for &seed in seeds {
            cells.push((
                format!("{}/{seed}", pattern_name(pattern)),
                conformance_workload(pattern, seed, events),
            ));
        }
    }
    cells
}

/// Runs the four sampling engines (and SO without the local-epoch
/// optimization) over `trace` with clones of `sampler`, asserting their
/// race reports are identical, and returns the common report list.
///
/// This is the executable form of the paper's Lemmas 4, 7 and 8.
pub fn assert_sampling_engines_agree<S: Sampler + Clone>(
    label: &str,
    trace: &Trace,
    sampler: S,
) -> Vec<RaceReport> {
    let reference = NaiveSamplingDetector::new(sampler.clone()).run(trace);
    let st = DjitDetector::new(sampler.clone()).run(trace);
    let su = FreshnessDetector::new(sampler.clone()).run(trace);
    let so = OrderedListDetector::new(sampler.clone()).run(trace);
    let so_plain = OrderedListDetector::with_options(sampler, false).run(trace);
    assert_eq!(reference, st, "[{label}] ST (Djit+ on S) vs Algorithm 2");
    assert_eq!(reference, su, "[{label}] SU (Algorithm 3) vs Algorithm 2");
    assert_eq!(reference, so, "[{label}] SO (Algorithm 4) vs Algorithm 2");
    assert_eq!(
        reference, so_plain,
        "[{label}] SO without epoch opt vs Algorithm 2"
    );
    reference
}

/// Asserts FastTrack's agreement contract with Djit+ under the same
/// sample set: identical first race (FastTrack is precise for the first
/// race on each variable) and identical racy-or-not verdict.
pub fn assert_fasttrack_first_race_agreement<S: Sampler + Clone>(
    label: &str,
    trace: &Trace,
    sampler: S,
) {
    let djit = DjitDetector::new(sampler.clone()).run(trace);
    let ft = FastTrackDetector::new(sampler.clone()).run(trace);
    assert_eq!(
        djit.first().map(|r| r.event),
        ft.first().map(|r| r.event),
        "[{label}] FastTrack vs Djit+ first race"
    );
    assert_eq!(
        djit.is_empty(),
        ft.is_empty(),
        "[{label}] FastTrack vs Djit+ racy-or-not"
    );
    // Per-event soundness: FastTrack reports only truly racy events.
    let oracle = HbOracle::new(trace);
    let mask = HbOracle::sample_mask(trace, sampler);
    let racy = oracle.racy_events(&mask);
    for report in &ft {
        assert!(
            racy.contains(&report.event),
            "[{label}] FastTrack reported non-racy event {}",
            report.event
        );
    }
}

/// Asserts the common sampling-engine report list agrees with the
/// ground-truth [`HbOracle`] on the sampled accesses: every reported
/// event is truly racy, and the first report is the oracle's first racy
/// event (so detection is not just sound but catches the earliest race).
pub fn assert_oracle_agreement<S: Sampler + Clone>(
    label: &str,
    trace: &Trace,
    sampler: S,
    reports: &[RaceReport],
) {
    let oracle = HbOracle::new(trace);
    let mask = HbOracle::sample_mask(trace, sampler);
    let racy = oracle.racy_events(&mask);
    for report in reports {
        assert!(
            racy.contains(&report.event),
            "[{label}] detector reported non-racy event {} (racy: {racy:?})",
            report.event
        );
    }
    assert_eq!(
        reports.first().map(|r| r.event),
        racy.first().copied(),
        "[{label}] first report vs oracle's first racy event"
    );
}

/// The full conformance pipeline for one `(trace, sampler)` pair: the
/// five detectors' mutual agreement contracts plus oracle agreement.
/// Returns the common sampling-engine report list.
pub fn assert_conformance<S: Sampler + Clone>(
    label: &str,
    trace: &Trace,
    sampler: S,
) -> Vec<RaceReport> {
    let reports = assert_sampling_engines_agree(label, trace, sampler.clone());
    assert_fasttrack_first_race_agreement(label, trace, sampler.clone());
    assert_oracle_agreement(label, trace, sampler, &reports);
    reports
}

/// Runs a [`StreamingOracle`] with `config` over `trace` and asserts
/// its full agreement contract against the materializing [`HbOracle`]:
///
/// * **Racy events are exact for every window size** — the streamed
///   [`OracleOutcome::racy_events`] ids equal
///   [`HbOracle::racy_events`], and each carries the trace's own event
///   payload.
/// * **Window pairs are a sound subset** of [`HbOracle::racy_pairs`],
///   and **equal** (same order) whenever `config.window` covers the
///   trace; reservoir pairs (if enabled) are likewise a subset, and the
///   merged [`OracleOutcome::pairs`] stays exact under windows that
///   cover.
/// * The sampled-access count matches the oracle's sample mask, and
///   races detected only via clock checkpoints can occur only once
///   eviction has actually happened.
///
/// Returns the streamed outcome for further inspection.
pub fn assert_streaming_oracle_agreement<S: Sampler + Clone>(
    label: &str,
    trace: &Trace,
    sampler: S,
    config: OracleConfig,
) -> OracleOutcome {
    let oracle = HbOracle::new(trace);
    let mask = HbOracle::sample_mask(trace, sampler.clone());
    let expected_events = oracle.racy_events(&mask);
    let expected_pairs = oracle.racy_pairs(&mask);

    let outcome = StreamingOracle::new(sampler, config)
        .run_source(&mut trace.source())
        .unwrap_or_else(|e| panic!("[{label}] valid trace failed to stream: {e}"));
    let w = config.window;

    assert_eq!(
        outcome.racy_ids(),
        expected_events,
        "[{label}] w={w} streamed racy events vs HbOracle"
    );
    for &(id, event) in &outcome.racy_events {
        assert_eq!(
            event,
            trace.event(id),
            "[{label}] w={w} racy event {id} carries the wrong payload"
        );
    }

    let truth: std::collections::HashSet<_> = expected_pairs.iter().copied().collect();
    for pair in outcome.window_pairs.iter().chain(&outcome.reservoir_pairs) {
        assert!(
            truth.contains(pair),
            "[{label}] w={w} reported non-racy pair {pair:?}"
        );
    }
    if w >= trace.len() {
        assert_eq!(
            outcome.window_pairs, expected_pairs,
            "[{label}] w={w} covers the trace, window pairs must be exact"
        );
        assert_eq!(
            outcome.pairs(),
            expected_pairs,
            "[{label}] w={w} merged pairs must stay exact under a covering window"
        );
        assert_eq!(
            outcome.stats.evictions, 0,
            "[{label}] w={w} covering window must not evict"
        );
    }

    let sampled = mask.iter().filter(|&&s| s).count() as u64;
    assert_eq!(
        outcome.stats.sampled_accesses, sampled,
        "[{label}] w={w} sampled-access count vs oracle mask"
    );
    if outcome.stats.summarized_races > 0 {
        assert!(
            outcome.stats.evictions > 0,
            "[{label}] w={w} checkpoint-only races require evictions"
        );
    }
    outcome
}

/// Interprets raw fuzz fuel — `(thread, action, operand)` triples —
/// into a trace that satisfies the locking discipline: acquires only of
/// free locks, releases only of locks held by the acting thread;
/// everything else becomes an access. This is the shared trace
/// interpreter behind the property-based suites (`equivalence.rs`,
/// `sharding.rs`), so every fuzzer explores the same event space.
pub fn trace_from_fuel(fuel: &[(u8, u8, u8)], threads: u8, locks: u8, vars: u8) -> Trace {
    assert!(threads > 0 && locks > 0 && vars > 0, "empty fuel domain");
    let mut b = TraceBuilder::new();
    let var_ids: Vec<VarId> = (0..vars).map(|v| b.var(&format!("x{v}"))).collect();
    let lock_ids: Vec<_> = (0..locks).map(|l| b.lock(&format!("l{l}"))).collect();
    // holder[l] = Some(t) while lock l is held.
    let mut holder: Vec<Option<u8>> = vec![None; locks as usize];

    for &(t, action, operand) in fuel {
        let t = t % threads;
        match action % 4 {
            0 => {
                // Try to acquire `operand % locks` if free.
                let l = (operand % locks) as usize;
                if holder[l].is_none() {
                    holder[l] = Some(t);
                    b.acquire(t as u32, lock_ids[l]);
                } else {
                    b.read(t as u32, var_ids[(operand % vars) as usize]);
                }
            }
            1 => {
                // Release some lock this thread holds, if any.
                if let Some(l) = holder.iter().position(|&h| h == Some(t)) {
                    holder[l] = None;
                    b.release(t as u32, lock_ids[l]);
                } else {
                    b.write(t as u32, var_ids[(operand % vars) as usize]);
                }
            }
            2 => {
                b.read(t as u32, var_ids[(operand % vars) as usize]);
            }
            _ => {
                b.write(t as u32, var_ids[(operand % vars) as usize]);
            }
        }
    }
    // Traces need not release held locks at the end (prefix semantics),
    // so we leave them held.
    b.build()
}

/// Feeds `trace` event by event through a [`ShardedOnlineDetector`]
/// built from `detector` in the given [`SyncMode`], returning the
/// merged (EventId-sorted) reports and the aggregated counters.
///
/// The sequential feed assigns ticket ids in trace order, so the
/// sharded run analyzes exactly the given trace — the deterministic
/// setting the equivalence assertions need.
pub fn run_sharded_trace<D: SplitDetector>(
    trace: &Trace,
    detector: D,
    shards: usize,
    mode: SyncMode,
) -> (Vec<RaceReport>, Counters) {
    run_sharded_trace_batched(trace, detector, shards, mode, 1)
}

/// [`run_sharded_trace`] with an explicit per-shard access-batch
/// capacity (`1` = unbatched; larger capacities amortize shard-lock
/// acquisitions without changing reports or counters, which the
/// batched-vs-unbatched differential suites pin).
pub fn run_sharded_trace_batched<D: SplitDetector>(
    trace: &Trace,
    detector: D,
    shards: usize,
    mode: SyncMode,
    batch: usize,
) -> (Vec<RaceReport>, Counters) {
    let sharded = ShardedOnlineDetector::with_options(detector, shards, mode, batch);
    for (_, event) in trace.iter() {
        sharded.on_event(event.tid.as_u32(), event.kind);
    }
    sharded.finish_merged()
}

/// Asserts that sharded ingestion is verdict-preserving for one
/// `(trace, detector)` pair, in **every** sync-skeleton construction:
/// for every shard count in `shard_counts` and every [`SyncMode`]
/// (replicated, mutex-slot two-plane, and seqlock), the sharded run reports
/// exactly the single-mutex path's races (same order — all are
/// EventId-sorted) and its merged counters agree on every **per-kind**
/// field (`events`, `reads`, `writes`, `sampled_accesses`, `acquires`,
/// `releases`, `races`). Running both modes against one baseline also
/// pins old-vs-new equivalence transitively. Work counters are exempt
/// by design: replication multiplies sync-side clock work `N×`, the
/// two-plane construction does not (see [`Counters::merge`] and the
/// `sync_cost` bench).
///
/// Returns the common report list.
pub fn assert_shard_equivalence<D: SplitDetector>(
    label: &str,
    trace: &Trace,
    detector: D,
    shard_counts: &[usize],
) -> Vec<RaceReport> {
    let mut baseline = detector.clone();
    let baseline_reports = baseline.run(trace);
    let expected = *baseline.counters();
    for &shards in shard_counts {
        for mode in [SyncMode::Replicated, SyncMode::Shared, SyncMode::Seqlock] {
            let (reports, merged) = run_sharded_trace(trace, detector.clone(), shards, mode);
            assert_eq!(
                reports, baseline_reports,
                "[{label}] sharded({shards}, {mode:?}) vs single-mutex reports"
            );
            for (field, got, want) in [
                ("events", merged.events, expected.events),
                ("reads", merged.reads, expected.reads),
                ("writes", merged.writes, expected.writes),
                (
                    "sampled_accesses",
                    merged.sampled_accesses,
                    expected.sampled_accesses,
                ),
                ("acquires", merged.acquires, expected.acquires),
                ("releases", merged.releases, expected.releases),
                ("races", merged.races, expected.races),
            ] {
                assert_eq!(
                    got, want,
                    "[{label}] sharded({shards}, {mode:?}) merged counter `{field}`"
                );
            }
        }
    }
    baseline_reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshtrack_sampling::AlwaysSampler;

    #[test]
    fn matrix_covers_every_pattern_and_seed() {
        let cells = workload_matrix(300, &[1, 2]);
        assert_eq!(cells.len(), ALL_PATTERNS.len() * 2);
        for (label, trace) in &cells {
            assert!(!trace.events().is_empty(), "{label} generated empty trace");
        }
    }

    #[test]
    fn conformance_passes_on_a_known_racy_trace() {
        use freshtrack_trace::TraceBuilder;
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x);
        b.write(1, x);
        let trace = b.build();
        let reports = assert_conformance("unit", &trace, AlwaysSampler::new());
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn fuel_interpreter_obeys_locking_discipline() {
        let fuel: Vec<(u8, u8, u8)> = (0..200u16)
            .map(|i| (i as u8, (i / 3) as u8, (i / 7) as u8))
            .collect();
        let trace = trace_from_fuel(&fuel, 4, 3, 3);
        assert!(trace.validate().is_ok());
        assert!(!trace.events().is_empty());
    }

    #[test]
    fn shard_equivalence_holds_on_a_structured_cell() {
        let trace = conformance_workload(Pattern::Mixed, 5, 400);
        let reports = assert_shard_equivalence(
            "unit",
            &trace,
            DjitDetector::new(AlwaysSampler::new()),
            &[1, 3],
        );
        assert!(!reports.is_empty(), "mixed/5 should contain races");
    }

    #[test]
    #[should_panic(expected = "reported non-racy event")]
    fn oracle_agreement_rejects_fabricated_reports() {
        use freshtrack_trace::TraceBuilder;
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        b.acquire(0, l).write(0, x).release(0, l);
        b.acquire(1, l).write(1, x).release(1, l);
        let trace = b.build();
        // The trace is race-free, so claiming a race must trip the check.
        let fake = DjitDetector::new(AlwaysSampler::new()).run(&{
            let mut r = TraceBuilder::new();
            let y = r.var("x");
            r.write(0, y);
            r.write(1, y);
            r.build()
        });
        assert_oracle_agreement("unit", &trace, AlwaysSampler::new(), &fake);
    }
}
