//! A multi-threaded in-memory database: the online evaluation substrate.
//!
//! The paper evaluates its detectors inside ThreadSanitizer running under
//! MySQL driven by BenchBase — many threads, frequent locking, and
//! analysis callbacks inline with application execution. This crate
//! reproduces that *shape* in pure Rust:
//!
//! * [`Database`] — tables of rows, each row guarded by a real mutex;
//!   per-table latches; two-phase-locking transactions with canonical
//!   lock ordering (no deadlocks).
//! * [`Instrument`] — the callback surface an instrumented binary would
//!   have: one call per row access and per lock operation, invoked
//!   *while the application actually holds the corresponding lock*, so
//!   the emitted event stream always satisfies the locking discipline.
//!   Two detector-backed implementations exist: [`DetectorInstrument`]
//!   (the paper-faithful single analysis mutex) and
//!   [`ShardedInstrument`] (per-variable access shards around a shared
//!   sync plane — same verdicts, higher throughput; the legacy
//!   replicated skeleton stays selectable per
//!   [`SyncMode`](freshtrack_core::SyncMode)).
//! * [`run_benchmark`] — a worker pool executing a
//!   [`DbWorkload`](freshtrack_workloads::DbWorkload) mix, measuring
//!   per-transaction latency, exactly the metric of the paper's Fig. 5;
//!   [`run_detector`] / [`run_sharded`] bundle the run with a safe
//!   ([`try_finish`](DetectorInstrument::try_finish)-based) shutdown.
//!
//! The database seeds the same kind of race the evaluation finds in real
//! servers: a small fraction of accesses bypass row locking (an
//! "unprotected statistics counter"), implemented with relaxed atomics so
//! the *Rust* program stays well-defined while the *event stream* exhibits
//! real data races for the detectors to find.
//!
//! # Example
//!
//! ```
//! use freshtrack_dbsim::{run_benchmark, NoInstrument, RunOptions};
//! use freshtrack_workloads::benchbase;
//! use std::sync::Arc;
//!
//! let workload = benchbase::by_name("ycsb").unwrap();
//! let opts = RunOptions { workers: 2, txns_per_worker: 50, seed: 1 };
//! let stats = run_benchmark(&workload, &opts, Arc::new(NoInstrument));
//! assert_eq!(stats.transactions, 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod db;
mod instrument;
mod server;

pub use db::Database;
pub use instrument::{
    DetectorInstrument, Instrument, NoInstrument, ShardedInstrument, StillShared,
};
pub use server::{run_benchmark, run_detector, run_sharded, LatencyStats, RunOptions};
