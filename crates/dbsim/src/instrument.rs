use std::fmt;
use std::sync::Arc;

use freshtrack_core::{
    Counters, Detector, OnlineDetector, RaceReport, ShardedOnlineDetector, SplitDetector, SyncMode,
};

/// The callback surface of an instrumented binary.
///
/// Semantically these are ThreadSanitizer's `__tsan_read`/`__tsan_write`
/// and mutex hooks. The database calls them inline from its worker
/// threads; implementations must therefore be cheap to share
/// (`Send + Sync`).
pub trait Instrument: Send + Sync {
    /// A read of shared location `var` by worker `tid`.
    fn read(&self, tid: u32, var: u32);
    /// A write of shared location `var` by worker `tid`.
    fn write(&self, tid: u32, var: u32);
    /// Lock `lock` acquired by worker `tid` (called while actually held).
    fn acquire(&self, tid: u32, lock: u32);
    /// Lock `lock` about to be released by worker `tid` (called while
    /// still held).
    fn release(&self, tid: u32, lock: u32);
}

/// The uninstrumented baseline (the paper's **NT**): every callback is a
/// no-op the optimizer removes.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoInstrument;

impl Instrument for NoInstrument {
    #[inline]
    fn read(&self, _tid: u32, _var: u32) {}
    #[inline]
    fn write(&self, _tid: u32, _var: u32) {}
    #[inline]
    fn acquire(&self, _tid: u32, _lock: u32) {}
    #[inline]
    fn release(&self, _tid: u32, _lock: u32) {}
}

/// Error returned by the fallible shutdown paths
/// ([`DetectorInstrument::try_finish`] /
/// [`ShardedInstrument::try_finish`]) when worker threads still hold
/// handles to the detector: finishing now could lose events those
/// workers are still emitting, so the caller must join the workers
/// first and retry with the returned instrument.
pub struct StillShared<T> {
    /// The instrument, handed back so the caller can retry.
    pub instrument: T,
    /// Number of other live handles observed at the failed attempt.
    pub handles: usize,
}

impl<T> fmt::Debug for StillShared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StillShared")
            .field("handles", &self.handles)
            .finish_non_exhaustive()
    }
}

impl<T> fmt::Display for StillShared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot finish instrumentation: {} worker handle(s) still live; join the workers first",
            self.handles
        )
    }
}

impl<T> std::error::Error for StillShared<T> {}

/// Routes instrumentation callbacks into a streaming detector behind
/// [`OnlineDetector`]'s serialization mutex.
///
/// The serialization is part of what the paper measures: the more work a
/// detector performs per event, the longer application threads queue
/// here, amplifying the application's own contention. For the
/// throughput-oriented alternative, see [`ShardedInstrument`].
pub struct DetectorInstrument<D> {
    online: Arc<OnlineDetector<D>>,
}

impl<D: Detector + Send> DetectorInstrument<D> {
    /// Wraps a detector.
    pub fn new(detector: D) -> Self {
        DetectorInstrument {
            online: Arc::new(OnlineDetector::new(detector)),
        }
    }

    /// Races found so far.
    pub fn race_count(&self) -> usize {
        self.online.race_count()
    }

    /// Consumes the instrument, returning the detector and reports, or
    /// an error (carrying the instrument back) if worker threads still
    /// hold handles — the safe shutdown path.
    pub fn try_finish(self) -> Result<(D, Vec<RaceReport>), StillShared<Self>> {
        match Arc::try_unwrap(self.online) {
            Ok(online) => Ok(online.finish()),
            Err(online) => {
                let handles = Arc::strong_count(&online) - 1;
                Err(StillShared {
                    instrument: DetectorInstrument { online },
                    handles,
                })
            }
        }
    }

    /// Consumes the instrument, returning the detector and reports.
    ///
    /// # Panics
    ///
    /// Panics if worker threads still hold references; use
    /// [`try_finish`](DetectorInstrument::try_finish) to get an error
    /// instead.
    pub fn finish(self) -> (D, Vec<RaceReport>) {
        self.try_finish().unwrap_or_else(|e| panic!("{e}"))
    }

    /// A shareable handle for worker threads.
    pub fn handle(&self) -> Arc<OnlineDetector<D>> {
        Arc::clone(&self.online)
    }
}

impl<D: Detector + Send> Instrument for DetectorInstrument<D> {
    fn read(&self, tid: u32, var: u32) {
        self.online.read(tid, var);
    }

    fn write(&self, tid: u32, var: u32) {
        self.online.write(tid, var);
    }

    fn acquire(&self, tid: u32, lock: u32) {
        self.online.acquire(tid, lock);
    }

    fn release(&self, tid: u32, lock: u32) {
        self.online.release(tid, lock);
    }
}

/// Routes instrumentation callbacks into a
/// [`ShardedOnlineDetector`]: per-variable access shards around a
/// seqlock-published sync plane (or, via
/// [`with_mode`](ShardedInstrument::with_mode), the mutex-slot or
/// replicated constructions), instead of one global analysis mutex.
/// [`with_options`](ShardedInstrument::with_options) additionally
/// enables per-shard access batching so one shard-lock acquisition
/// amortizes over many events.
///
/// This is the scale-oriented ingestion path. It deliberately does
/// *not* reproduce the paper's single-lock contention model —
/// [`DetectorInstrument`] remains the paper-faithful baseline — but it
/// reports the same races for the same event stream (the
/// verdict-preservation invariant; see [`ShardedOnlineDetector`]).
pub struct ShardedInstrument<D: SplitDetector> {
    online: Arc<ShardedOnlineDetector<D>>,
}

impl<D: SplitDetector + 'static> ShardedInstrument<D> {
    /// Builds an instrument with `shards` access shards in the default
    /// seqlock-published [`SyncMode::Seqlock`] construction with
    /// unbatched (capacity-1) ingestion; `detector` (which must be in
    /// its initial state) seeds the engine configuration.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(detector: D, shards: usize) -> Self {
        Self::with_mode(detector, shards, SyncMode::Seqlock)
    }

    /// Builds an instrument with an explicit [`SyncMode`] and unbatched
    /// ingestion.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_mode(detector: D, shards: usize, mode: SyncMode) -> Self {
        Self::with_options(detector, shards, mode, 1)
    }

    /// Builds an instrument with an explicit [`SyncMode`] and per-shard
    /// batch capacity (`batch` accesses buffered per shard-lock
    /// acquisition; `1` disables batching).
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `batch` is zero.
    pub fn with_options(detector: D, shards: usize, mode: SyncMode, batch: usize) -> Self {
        ShardedInstrument {
            online: Arc::new(ShardedOnlineDetector::with_options(
                detector, shards, mode, batch,
            )),
        }
    }

    /// Number of detector shards.
    pub fn shard_count(&self) -> usize {
        self.online.shard_count()
    }

    /// Per-shard access batch capacity (`1` means unbatched).
    pub fn batch_capacity(&self) -> usize {
        self.online.batch_capacity()
    }

    /// Pre-sizes every shard's clock state for `n` worker threads.
    pub fn reserve_threads(&self, n: usize) {
        self.online.reserve_threads(n);
    }

    /// Races found so far, across all shards.
    pub fn race_count(&self) -> usize {
        self.online.race_count()
    }

    /// Consumes the instrument, returning the merged (EventId-sorted)
    /// reports and the aggregated [`Counters`], or an error (carrying
    /// the instrument back) if worker threads still hold handles — the
    /// safe shutdown path.
    pub fn try_finish(self) -> Result<(Vec<RaceReport>, Counters), StillShared<Self>> {
        match Arc::try_unwrap(self.online) {
            Ok(online) => Ok(online.finish_merged()),
            Err(online) => {
                let handles = Arc::strong_count(&online) - 1;
                Err(StillShared {
                    instrument: ShardedInstrument { online },
                    handles,
                })
            }
        }
    }

    /// Consumes the instrument, returning merged reports and
    /// aggregated counters.
    ///
    /// # Panics
    ///
    /// Panics if worker threads still hold references; use
    /// [`try_finish`](ShardedInstrument::try_finish) to get an error
    /// instead.
    pub fn finish(self) -> (Vec<RaceReport>, Counters) {
        self.try_finish().unwrap_or_else(|e| panic!("{e}"))
    }

    /// A shareable handle for worker threads.
    pub fn handle(&self) -> Arc<ShardedOnlineDetector<D>> {
        Arc::clone(&self.online)
    }
}

impl<D: SplitDetector + 'static> Instrument for ShardedInstrument<D> {
    fn read(&self, tid: u32, var: u32) {
        self.online.read(tid, var);
    }

    fn write(&self, tid: u32, var: u32) {
        self.online.write(tid, var);
    }

    fn acquire(&self, tid: u32, lock: u32) {
        self.online.acquire(tid, lock);
    }

    fn release(&self, tid: u32, lock: u32) {
        self.online.release(tid, lock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshtrack_core::{DjitDetector, EmptyDetector};
    use freshtrack_sampling::AlwaysSampler;

    #[test]
    fn no_instrument_is_a_no_op() {
        let n = NoInstrument;
        n.read(0, 0);
        n.write(0, 0);
        n.acquire(0, 0);
        n.release(0, 0);
    }

    #[test]
    fn detector_instrument_finds_races() {
        let inst = DetectorInstrument::new(DjitDetector::new(AlwaysSampler::new()));
        inst.write(0, 7);
        inst.write(1, 7);
        assert_eq!(inst.race_count(), 1);
        let (_, reports) = inst.finish();
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn empty_detector_counts_events() {
        let inst = DetectorInstrument::new(EmptyDetector::new());
        inst.acquire(0, 1);
        inst.read(0, 2);
        inst.release(0, 1);
        let (d, reports) = inst.finish();
        assert!(reports.is_empty());
        assert_eq!(d.counters().events, 3);
    }

    #[test]
    fn try_finish_fails_while_handles_are_live_then_succeeds() {
        let inst = DetectorInstrument::new(DjitDetector::new(AlwaysSampler::new()));
        let handle = inst.handle();
        handle.write(0, 1);
        let err = inst.try_finish().expect_err("handle is still live");
        assert_eq!(err.handles, 1);
        assert!(err.to_string().contains("join the workers"));
        drop(handle);
        let (_, reports) = err.instrument.try_finish().expect("handle dropped");
        assert!(reports.is_empty());
    }

    #[test]
    fn sharded_instrument_finds_races_and_merges_counters() {
        for mode in [SyncMode::Replicated, SyncMode::Shared, SyncMode::Seqlock] {
            for batch in [1usize, 8] {
                let inst = ShardedInstrument::with_options(
                    DjitDetector::new(AlwaysSampler::new()),
                    4,
                    mode,
                    batch,
                );
                assert_eq!(inst.shard_count(), 4);
                assert_eq!(inst.batch_capacity(), batch);
                inst.acquire(0, 0);
                inst.write(0, 3);
                inst.release(0, 0);
                inst.write(1, 3); // races with t0's write (no common lock held)
                inst.write(1, 9);
                let (reports, counters) = inst.finish();
                assert_eq!(reports.len(), 1, "{mode:?} batch={batch}");
                assert_eq!(counters.events, 5, "{mode:?} batch={batch}");
                assert_eq!(counters.acquires, 1, "{mode:?} batch={batch}");
                assert_eq!(counters.releases, 1, "{mode:?} batch={batch}");
                assert_eq!(counters.writes, 3, "{mode:?} batch={batch}");
                assert_eq!(counters.races, 1, "{mode:?} batch={batch}");
            }
        }
    }

    #[test]
    fn sharded_try_finish_roundtrips_through_live_handles() {
        let inst = ShardedInstrument::new(EmptyDetector::new(), 2);
        let handle = inst.handle();
        let err = inst.try_finish().expect_err("handle is still live");
        assert_eq!(err.handles, 1);
        drop(handle);
        let (reports, counters) = err.instrument.try_finish().expect("handle dropped");
        assert!(reports.is_empty());
        assert_eq!(counters.events, 0);
    }
}
