use std::sync::Arc;

use freshtrack_core::{Detector, OnlineDetector, RaceReport};

/// The callback surface of an instrumented binary.
///
/// Semantically these are ThreadSanitizer's `__tsan_read`/`__tsan_write`
/// and mutex hooks. The database calls them inline from its worker
/// threads; implementations must therefore be cheap to share
/// (`Send + Sync`).
pub trait Instrument: Send + Sync {
    /// A read of shared location `var` by worker `tid`.
    fn read(&self, tid: u32, var: u32);
    /// A write of shared location `var` by worker `tid`.
    fn write(&self, tid: u32, var: u32);
    /// Lock `lock` acquired by worker `tid` (called while actually held).
    fn acquire(&self, tid: u32, lock: u32);
    /// Lock `lock` about to be released by worker `tid` (called while
    /// still held).
    fn release(&self, tid: u32, lock: u32);
}

/// The uninstrumented baseline (the paper's **NT**): every callback is a
/// no-op the optimizer removes.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoInstrument;

impl Instrument for NoInstrument {
    #[inline]
    fn read(&self, _tid: u32, _var: u32) {}
    #[inline]
    fn write(&self, _tid: u32, _var: u32) {}
    #[inline]
    fn acquire(&self, _tid: u32, _lock: u32) {}
    #[inline]
    fn release(&self, _tid: u32, _lock: u32) {}
}

/// Routes instrumentation callbacks into a streaming detector behind
/// [`OnlineDetector`]'s serialization mutex.
///
/// The serialization is part of what the paper measures: the more work a
/// detector performs per event, the longer application threads queue
/// here, amplifying the application's own contention.
pub struct DetectorInstrument<D> {
    online: Arc<OnlineDetector<D>>,
}

impl<D: Detector + Send> DetectorInstrument<D> {
    /// Wraps a detector.
    pub fn new(detector: D) -> Self {
        DetectorInstrument {
            online: Arc::new(OnlineDetector::new(detector)),
        }
    }

    /// Races found so far.
    pub fn race_count(&self) -> usize {
        self.online.race_count()
    }

    /// Consumes the instrument, returning the detector and reports.
    ///
    /// # Panics
    ///
    /// Panics if worker threads still hold references.
    pub fn finish(self) -> (D, Vec<RaceReport>) {
        Arc::try_unwrap(self.online)
            .ok()
            .expect("workers must be joined before finish()")
            .finish()
    }

    /// A shareable handle for worker threads.
    pub fn handle(&self) -> Arc<OnlineDetector<D>> {
        Arc::clone(&self.online)
    }
}

impl<D: Detector + Send> Instrument for DetectorInstrument<D> {
    fn read(&self, tid: u32, var: u32) {
        self.online.read(tid, var);
    }

    fn write(&self, tid: u32, var: u32) {
        self.online.write(tid, var);
    }

    fn acquire(&self, tid: u32, lock: u32) {
        self.online.acquire(tid, lock);
    }

    fn release(&self, tid: u32, lock: u32) {
        self.online.release(tid, lock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshtrack_core::{DjitDetector, EmptyDetector};
    use freshtrack_sampling::AlwaysSampler;

    #[test]
    fn no_instrument_is_a_no_op() {
        let n = NoInstrument;
        n.read(0, 0);
        n.write(0, 0);
        n.acquire(0, 0);
        n.release(0, 0);
    }

    #[test]
    fn detector_instrument_finds_races() {
        let inst = DetectorInstrument::new(DjitDetector::new(AlwaysSampler::new()));
        inst.write(0, 7);
        inst.write(1, 7);
        assert_eq!(inst.race_count(), 1);
        let (_, reports) = inst.finish();
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn empty_detector_counts_events() {
        let inst = DetectorInstrument::new(EmptyDetector::new());
        inst.acquire(0, 1);
        inst.read(0, 2);
        inst.release(0, 1);
        let (d, reports) = inst.finish();
        assert!(reports.is_empty());
        assert_eq!(d.counters().events, 3);
    }
}
