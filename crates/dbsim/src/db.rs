use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::Instrument;

/// One table: a fixed array of row cells plus a table latch (protecting
/// "metadata", modelled as one shared cell per table).
#[derive(Debug)]
struct Table {
    rows: Vec<AtomicU64>,
    latch: Mutex<()>,
    meta: AtomicU64,
}

/// A multi-table in-memory database with two-phase-locking transactions
/// over **hash-striped row latches**.
///
/// Real storage engines do not allocate one mutex per row; rows hash
/// into a bounded pool of lock stripes, so the latch population is small
/// and hot — the synchronization shape the paper's MySQL substrate
/// exhibits and that its freshness timestamps exploit.
///
/// Shared-state identifiers are dense, matching what the detectors
/// expect:
///
/// * **variable ids**: row `(t, r)` ↦ `t · rows_per_table + r`; table
///   `t`'s metadata cell ↦ `tables · rows_per_table + t`; the global
///   statistics counter is the last id.
/// * **lock ids**: stripe `s` ↦ `s`; table `t`'s latch ↦ `stripes + t`.
///
/// Values are atomics with relaxed ordering so that the *deliberately
/// unsynchronized* accesses (the seeded races the evaluation hunts)
/// remain well-defined Rust while still being genuine data races in the
/// observed event stream.
#[derive(Debug)]
pub struct Database {
    tables: Vec<Table>,
    stripes: Vec<Mutex<()>>,
    rows_per_table: u32,
    stats: AtomicU64,
}

impl Database {
    /// Creates a database with `tables` tables of `rows_per_table` rows,
    /// protected by `stripes` row-latch stripes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(tables: u32, rows_per_table: u32, stripes: u32) -> Self {
        assert!(
            tables > 0 && rows_per_table > 0 && stripes > 0,
            "empty schema"
        );
        Database {
            tables: (0..tables)
                .map(|_| Table {
                    rows: (0..rows_per_table).map(|_| AtomicU64::new(0)).collect(),
                    latch: Mutex::new(()),
                    meta: AtomicU64::new(0),
                })
                .collect(),
            stripes: (0..stripes).map(|_| Mutex::new(())).collect(),
            rows_per_table,
            stats: AtomicU64::new(0),
        }
    }

    /// Number of tables.
    pub fn table_count(&self) -> u32 {
        self.tables.len() as u32
    }

    /// Rows per table.
    pub fn rows_per_table(&self) -> u32 {
        self.rows_per_table
    }

    /// Number of row-latch stripes.
    pub fn stripe_count(&self) -> u32 {
        self.stripes.len() as u32
    }

    /// The dense variable id of row `(table, row)`.
    pub fn row_id(&self, table: u32, row: u32) -> u32 {
        table * self.rows_per_table + row
    }

    /// The stripe (and its dense lock id) guarding row `(table, row)`.
    pub fn stripe_of(&self, table: u32, row: u32) -> u32 {
        // Fibonacci hashing spreads sequential rows across stripes.
        let key = ((table as u64) << 32) | row as u64;
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33) as u32 % self.stripe_count()
    }

    /// The dense lock id of table `table`'s latch; also the dense
    /// variable id of its metadata cell.
    pub fn table_latch_id(&self, table: u32) -> u32 {
        self.stripe_count() + table
    }

    /// The dense variable id of table `table`'s metadata cell.
    pub fn table_meta_id(&self, table: u32) -> u32 {
        self.table_count() * self.rows_per_table + table
    }

    /// The dense variable id of the global statistics counter.
    pub fn stats_id(&self) -> u32 {
        self.table_count() * self.rows_per_table + self.table_count()
    }

    /// Executes a transaction over the given `(table, row, is_write)`
    /// operations under two-phase locking of the rows' stripes, invoking
    /// `inst` for every lock operation and row access. Stripes are
    /// locked in canonical (sorted, deduplicated) order, so transactions
    /// never deadlock.
    ///
    /// Returns the number of shared accesses performed.
    pub fn transaction(&self, tid: u32, ops: &[(u32, u32, bool)], inst: &dyn Instrument) -> usize {
        // Growing phase: lock the stripes of all touched rows.
        let mut stripe_ids: Vec<u32> = ops.iter().map(|&(t, r, _)| self.stripe_of(t, r)).collect();
        stripe_ids.sort_unstable();
        stripe_ids.dedup();
        let mut guards = Vec::with_capacity(stripe_ids.len());
        for &s in &stripe_ids {
            let guard = self.stripes[s as usize].lock();
            inst.acquire(tid, s);
            guards.push((s, guard));
        }

        // Execute. Each operation first performs an index lookup — a
        // short table-latch critical section, as a real engine's B-tree
        // descent would. This is what makes database workloads
        // lock-frequent relative to their shared accesses (the paper's
        // reason for choosing MySQL). Lock order is globally
        // stripes-then-latches, so no deadlock is possible.
        let mut accesses = 0;
        for &(t, r, is_write) in ops {
            let table = &self.tables[t as usize];
            let g = table.latch.lock();
            inst.acquire(tid, self.table_latch_id(t));
            inst.read(tid, self.table_meta_id(t));
            let _ = table.meta.load(Ordering::Relaxed);
            inst.release(tid, self.table_latch_id(t));
            drop(g);
            accesses += 1;

            // Row operations touch several fields: locate, read the
            // current value, then (for updates) write it back — so
            // access events outnumber lock events, as in real binaries.
            let cell = &table.rows[r as usize];
            let var = self.row_id(t, r);
            inst.read(tid, var);
            let _ = cell.load(Ordering::Relaxed);
            inst.read(tid, var);
            let _ = cell.load(Ordering::Relaxed);
            accesses += 2;
            if is_write {
                inst.write(tid, var);
                cell.fetch_add(1, Ordering::Relaxed);
                accesses += 1;
            }
        }

        // Shrinking phase: release in reverse canonical order.
        while let Some((s, guard)) = guards.pop() {
            inst.release(tid, s);
            drop(guard);
        }
        accesses
    }

    /// Reads a table's metadata cell under its latch (index lookups,
    /// statistics pages — the short critical sections real servers are
    /// full of).
    pub fn latched_meta_read(&self, tid: u32, table: u32, inst: &dyn Instrument) {
        let t = &self.tables[table as usize];
        let guard = t.latch.lock();
        inst.acquire(tid, self.table_latch_id(table));
        inst.read(tid, self.table_meta_id(table));
        let _ = t.meta.load(Ordering::Relaxed);
        inst.release(tid, self.table_latch_id(table));
        drop(guard);
    }

    /// Updates a table's metadata cell under its latch.
    pub fn latched_meta_write(&self, tid: u32, table: u32, inst: &dyn Instrument) {
        let t = &self.tables[table as usize];
        let guard = t.latch.lock();
        inst.acquire(tid, self.table_latch_id(table));
        inst.write(tid, self.table_meta_id(table));
        t.meta.fetch_add(1, Ordering::Relaxed);
        inst.release(tid, self.table_latch_id(table));
        drop(guard);
    }

    /// The deliberately unsynchronized statistics bump: a genuine data
    /// race in the event stream (well-defined in Rust via the atomic).
    pub fn unprotected_stats_bump(&self, tid: u32, inst: &dyn Instrument) {
        inst.write(tid, self.stats_id());
        self.stats.fetch_add(1, Ordering::Relaxed);
    }

    /// A row access that *bypasses* the stripe latch — the missing-lock
    /// bug class that seeds racy locations across the whole table space
    /// (well-defined in Rust via the atomic; a data race in the event
    /// stream).
    pub fn unprotected_row_touch(
        &self,
        tid: u32,
        table: u32,
        row: u32,
        is_write: bool,
        inst: &dyn Instrument,
    ) {
        let cell = &self.tables[table as usize].rows[row as usize];
        let var = self.row_id(table, row);
        if is_write {
            inst.write(tid, var);
            cell.fetch_add(1, Ordering::Relaxed);
        } else {
            inst.read(tid, var);
            let _ = cell.load(Ordering::Relaxed);
        }
    }

    /// Current value of the statistics counter.
    pub fn stats_value(&self) -> u64 {
        self.stats.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NoInstrument;

    #[test]
    fn ids_are_dense_and_disjoint() {
        let db = Database::new(3, 100, 16);
        assert_eq!(db.row_id(0, 0), 0);
        assert_eq!(db.row_id(2, 99), 299);
        assert_eq!(db.table_meta_id(0), 300);
        assert_eq!(db.table_meta_id(2), 302);
        assert_eq!(db.stats_id(), 303);
        // Lock space: stripes 0..16, latches 16..19.
        assert!(db.stripe_of(2, 99) < 16);
        assert_eq!(db.table_latch_id(0), 16);
        assert_eq!(db.table_latch_id(2), 18);
    }

    #[test]
    fn stripes_spread_rows() {
        let db = Database::new(1, 1_000, 32);
        let mut seen = [false; 32];
        for r in 0..1_000 {
            seen[db.stripe_of(0, r) as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 24, "poor spread");
    }

    #[test]
    fn transaction_dedups_colliding_stripes() {
        let db = Database::new(1, 10, 2);
        // With 2 stripes several rows collide; must not self-deadlock.
        let n = db.transaction(
            0,
            &[(0, 1, true), (0, 3, false), (0, 5, true), (0, 1, false)],
            &NoInstrument,
        );
        // 4 index lookups + 4 ops x (2 reads + write-if-update): 2 writes here
        assert_eq!(n, 4 + 4 * 2 + 2);
    }

    #[test]
    fn concurrent_transactions_do_not_deadlock() {
        use std::sync::Arc;
        let db = Arc::new(Database::new(2, 8, 4));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..200u32 {
                        // Overlapping row sets in clashing orders.
                        let a = (w + i) % 8;
                        let b = (w * 3 + i) % 8;
                        db.transaction(
                            w,
                            &[(0, a, true), (1, b, true), (0, b % 8, false)],
                            &NoInstrument,
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn stats_counter_accumulates() {
        let db = Database::new(1, 1, 1);
        db.unprotected_stats_bump(0, &NoInstrument);
        db.unprotected_stats_bump(1, &NoInstrument);
        assert_eq!(db.stats_value(), 2);
    }
}
