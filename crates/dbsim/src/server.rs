use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use freshtrack_core::{Counters, Detector, RaceReport, SplitDetector, SyncMode};
use freshtrack_workloads::DbWorkload;

use crate::{Database, DetectorInstrument, Instrument, ShardedInstrument};

/// Options for a benchmark run.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Number of worker threads (the paper uses 12 client terminals).
    pub workers: u32,
    /// Transactions each worker executes.
    pub txns_per_worker: u32,
    /// Seed for the workload RNG (workers derive per-worker seeds).
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            workers: 12,
            txns_per_worker: 500,
            seed: 0,
        }
    }
}

/// Latency statistics of a benchmark run — the measurement behind the
/// paper's Fig. 5.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    /// Transactions completed.
    pub transactions: u64,
    /// Total busy time across workers.
    pub total: Duration,
    /// Sorted per-transaction latencies (microseconds).
    latencies_us: Vec<u64>,
}

impl LatencyStats {
    fn from_latencies(mut latencies_us: Vec<u64>) -> Self {
        latencies_us.sort_unstable();
        LatencyStats {
            transactions: latencies_us.len() as u64,
            total: Duration::from_micros(latencies_us.iter().sum()),
            latencies_us,
        }
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.latencies_us.is_empty() {
            0.0
        } else {
            self.latencies_us.iter().sum::<u64>() as f64 / self.latencies_us.len() as f64
        }
    }

    /// The `p`-th percentile latency in microseconds (`p` in `[0, 100]`).
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * (self.latencies_us.len() - 1) as f64).round() as usize;
        self.latencies_us[rank.min(self.latencies_us.len() - 1)]
    }

    /// Mean latency in microseconds with the slowest `trim` fraction of
    /// transactions excluded (at least one sample is always kept).
    ///
    /// On a time-shared host a worker descheduled while holding a row
    /// stripe or shard lock stalls whole convoys of transactions for
    /// scheduler quanta — milliseconds against a microsecond-scale
    /// metric. Those stalls land in the raw [`mean_us`](Self::mean_us)
    /// essentially at random per run, which is what made shard-sweep
    /// means non-monotonic while p50/p95 stayed flat. Trimming the top
    /// ~1% removes exactly that preemption tail and leaves the
    /// per-transaction analysis cost being measured.
    pub fn trimmed_mean_us(&self, trim: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        let drop = ((self.latencies_us.len() as f64 * trim).ceil() as usize)
            .min(self.latencies_us.len() - 1);
        let kept = &self.latencies_us[..self.latencies_us.len() - drop];
        kept.iter().sum::<u64>() as f64 / kept.len() as f64
    }
}

/// Runs a workload mix against a fresh database with the given
/// instrumentation, returning per-transaction latency statistics.
///
/// Worker `w` is thread id `w` in the emitted event stream. The run is
/// deterministic in its *event content* given the seed (transaction
/// streams are seeded per worker); wall-clock latencies naturally vary.
pub fn run_benchmark(
    workload: &DbWorkload,
    options: &RunOptions,
    instrument: Arc<dyn Instrument>,
) -> LatencyStats {
    let db = Arc::new(Database::new(
        workload.tables,
        workload.rows_per_table,
        workload.lock_stripes,
    ));
    let handles: Vec<_> = (0..options.workers)
        .map(|w| {
            let db = Arc::clone(&db);
            let inst = Arc::clone(&instrument);
            let workload = workload.clone();
            let seed = options.seed ^ (0x9e37_79b9 * (w as u64 + 1));
            let txns = options.txns_per_worker;
            std::thread::spawn(move || worker_loop(&db, w, &workload, seed, txns, inst.as_ref()))
        })
        .collect();

    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("worker panicked"));
    }
    LatencyStats::from_latencies(latencies)
}

/// Runs a workload through the paper-faithful single-mutex ingestion
/// path ([`DetectorInstrument`]) and shuts it down, returning latency
/// statistics, the detector, and its race reports.
///
/// This is the canonical server lifecycle: build the instrument, run
/// the worker pool, join it, then tear the analysis down via the
/// fallible [`DetectorInstrument::try_finish`] — an error here means a
/// worker handle leaked past the join, which is a bug worth a loud,
/// descriptive panic rather than a silent misuse.
pub fn run_detector<D: Detector + Send + 'static>(
    workload: &DbWorkload,
    options: &RunOptions,
    detector: D,
) -> (LatencyStats, D, Vec<RaceReport>) {
    let inst = Arc::new(DetectorInstrument::new(detector));
    let stats = run_benchmark(workload, options, inst.clone());
    let inst = Arc::try_unwrap(inst)
        .ok()
        .expect("run_benchmark joins every worker before returning");
    match inst.try_finish() {
        Ok((detector, reports)) => (stats, detector, reports),
        Err(e) => panic!("shutdown after joined run cannot fail: {e}"),
    }
}

/// Runs a workload through the sharded ingestion path
/// ([`ShardedInstrument`] with `shards` access shards in the given
/// [`SyncMode`]) and shuts it down, returning latency statistics, the
/// merged (EventId-sorted) reports, and the aggregated [`Counters`].
///
/// Same lifecycle as [`run_detector`]; all ingestion paths report
/// identical races for the same event stream (the verdict-preservation
/// invariant), so the choice is purely a
/// throughput/faithfulness trade-off.
///
/// # Panics
///
/// Panics if `shards` or `batch` is zero.
pub fn run_sharded<D: SplitDetector + 'static>(
    workload: &DbWorkload,
    options: &RunOptions,
    detector: D,
    shards: usize,
    mode: SyncMode,
    batch: usize,
) -> (LatencyStats, Vec<RaceReport>, Counters) {
    let inst = Arc::new(ShardedInstrument::with_options(
        detector, shards, mode, batch,
    ));
    inst.reserve_threads(options.workers as usize);
    let stats = run_benchmark(workload, options, inst.clone());
    let inst = Arc::try_unwrap(inst)
        .ok()
        .expect("run_benchmark joins every worker before returning");
    match inst.try_finish() {
        Ok((reports, counters)) => (stats, reports, counters),
        Err(e) => panic!("shutdown after joined run cannot fail: {e}"),
    }
}

fn worker_loop(
    db: &Database,
    tid: u32,
    workload: &DbWorkload,
    seed: u64,
    txns: u32,
    inst: &dyn Instrument,
) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut latencies = Vec::with_capacity(txns as usize);
    let mut local_sink = 0u64;
    for _ in 0..txns {
        let start = Instant::now();
        // Compose the transaction's row operations.
        let n_ops = rng.gen_range(workload.txn_ops.0..=workload.txn_ops.1);
        let ops: Vec<(u32, u32, bool)> = (0..n_ops)
            .map(|_| {
                let table = rng.gen_range(0..workload.tables);
                let row = pick_row(&mut rng, workload);
                let is_write = rng.gen_bool(workload.write_fraction);
                (table, row, is_write)
            })
            .collect();

        // Index/metadata lookup before the transaction body.
        let table = ops.first().map_or(0, |&(t, _, _)| t);
        db.latched_meta_read(tid, table, inst);

        db.transaction(tid, &ops, inst);

        // Occasional metadata update and the seeded unprotected race.
        if rng.gen_bool(0.05) {
            db.latched_meta_write(tid, table, inst);
        }
        if workload.unprotected_fraction > 0.0 {
            // The seeded bug class. The benign-looking per-request
            // statistics counter is bumped on *every* transaction
            // without synchronization (the single hottest racy location,
            // as in real servers); additionally, a fraction of requests
            // touch a small hot row set while bypassing its stripe
            // latch (missing-lock bugs spread over several locations).
            db.unprotected_stats_bump(tid, inst);
            if rng.gen_bool(workload.unprotected_fraction) {
                let table = rng.gen_range(0..workload.tables);
                let row = pick_row(&mut rng, workload) % workload.rows_per_table.min(8);
                db.unprotected_row_touch(tid, table, row, true, inst);
            }
        }

        // Per-request local compute ("think time" that does not touch
        // shared state). Scaled so that an uninstrumented transaction
        // spends a few microseconds of real work, as a database request
        // parsing/planning/formatting would — this is what
        // instrumentation overhead is measured *against*.
        for i in 0..workload.think_ops * 4_000 {
            local_sink = local_sink
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64);
        }
        std::hint::black_box(local_sink);

        latencies.push(start.elapsed().as_micros() as u64);
    }
    latencies
}

/// Hot-row selection: with probability `hot_row_skew` pick from the
/// hottest 1/16th of the table, else uniform.
fn pick_row(rng: &mut StdRng, workload: &DbWorkload) -> u32 {
    let hot = (workload.rows_per_table / 16).max(1);
    if rng.gen_bool(workload.hot_row_skew) {
        rng.gen_range(0..hot)
    } else {
        rng.gen_range(0..workload.rows_per_table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DetectorInstrument, NoInstrument};
    use freshtrack_core::{Detector, FastTrackDetector, OrderedListDetector};
    use freshtrack_sampling::{AlwaysSampler, BernoulliSampler};
    use freshtrack_workloads::benchbase;

    fn small_opts() -> RunOptions {
        RunOptions {
            workers: 4,
            txns_per_worker: 100,
            seed: 42,
        }
    }

    #[test]
    fn uninstrumented_run_completes() {
        let w = benchbase::by_name("ycsb").unwrap();
        let stats = run_benchmark(&w, &small_opts(), Arc::new(NoInstrument));
        assert_eq!(stats.transactions, 400);
        assert!(stats.mean_us() >= 0.0);
        assert!(stats.percentile_us(95.0) >= stats.percentile_us(50.0));
        assert!(stats.trimmed_mean_us(0.01) <= stats.mean_us());
    }

    #[test]
    fn trimmed_mean_drops_the_preemption_tail() {
        // 99 fast transactions plus one multi-millisecond stall: the raw
        // mean is hostage to the stall, the 1%-trimmed mean is not.
        let mut lat = vec![3u64; 99];
        lat.push(5_000);
        let stats = LatencyStats::from_latencies(lat);
        assert!((stats.mean_us() - 52.97).abs() < 0.1);
        assert!((stats.trimmed_mean_us(0.01) - 3.0).abs() < f64::EPSILON);
        // p50/p95 never saw the stall either — the shape of the recorded
        // anomaly this statistic exists to exclude.
        assert_eq!(stats.percentile_us(50.0), 3);
        assert_eq!(stats.percentile_us(95.0), 3);
        assert_eq!(stats.percentile_us(100.0), 5_000);

        // Trimming never trims away everything.
        let one = LatencyStats::from_latencies(vec![7]);
        assert!((one.trimmed_mean_us(1.0) - 7.0).abs() < f64::EPSILON);
        assert_eq!(
            LatencyStats::from_latencies(Vec::new()).trimmed_mean_us(0.01),
            0.0
        );
    }

    #[test]
    fn full_detection_finds_seeded_races() {
        let mut w = benchbase::by_name("ycsb").unwrap();
        w.unprotected_fraction = 0.2; // make the seeded race frequent
        let inst = Arc::new(DetectorInstrument::new(FastTrackDetector::new(
            AlwaysSampler::new(),
        )));
        let stats = run_benchmark(&w, &small_opts(), inst.clone());
        assert_eq!(stats.transactions, 400);
        let inst = Arc::try_unwrap(inst).ok().expect("workers joined");
        let (_, reports) = inst.finish();
        assert!(!reports.is_empty(), "seeded race not found");
    }

    #[test]
    fn lock_protected_rows_do_not_race() {
        let mut w = benchbase::by_name("smallbank").unwrap();
        w.unprotected_fraction = 0.0;
        let inst = Arc::new(DetectorInstrument::new(OrderedListDetector::new(
            AlwaysSampler::new(),
        )));
        run_benchmark(&w, &small_opts(), inst.clone());
        let inst = Arc::try_unwrap(inst).ok().expect("workers joined");
        let (_, reports) = inst.finish();
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn run_detector_helper_shuts_down_cleanly() {
        let mut w = benchbase::by_name("smallbank").unwrap();
        w.unprotected_fraction = 0.0;
        let (stats, detector, reports) = run_detector(
            &w,
            &small_opts(),
            OrderedListDetector::new(AlwaysSampler::new()),
        );
        assert_eq!(stats.transactions, 400);
        assert!(reports.is_empty(), "{reports:?}");
        assert!(detector.counters().events > 0);
    }

    #[test]
    fn sharded_run_finds_seeded_races_with_sorted_merged_reports() {
        let mut w = benchbase::by_name("ycsb").unwrap();
        w.unprotected_fraction = 0.2; // make the seeded race frequent
        for (mode, batch) in [
            (SyncMode::Replicated, 1),
            (SyncMode::Shared, 1),
            (SyncMode::Seqlock, 1),
            (SyncMode::Seqlock, 64),
        ] {
            let (stats, reports, counters) = run_sharded(
                &w,
                &small_opts(),
                FastTrackDetector::new(AlwaysSampler::new()),
                4,
                mode,
                batch,
            );
            assert_eq!(stats.transactions, 400);
            assert!(!reports.is_empty(), "{mode:?}: seeded race not found");
            assert!(reports.windows(2).all(|w| w[0].event < w[1].event));
            assert_eq!(counters.races as usize, reports.len());
            assert_eq!(
                counters.events,
                counters.reads + counters.writes + counters.acquires + counters.releases
            );
        }
    }

    #[test]
    fn sharded_lock_protected_rows_do_not_race() {
        let mut w = benchbase::by_name("smallbank").unwrap();
        w.unprotected_fraction = 0.0;
        for (shards, batch) in [(1usize, 1usize), (8, 1), (8, 16)] {
            let (_, reports, _) = run_sharded(
                &w,
                &small_opts(),
                OrderedListDetector::new(AlwaysSampler::new()),
                shards,
                SyncMode::Seqlock,
                batch,
            );
            assert!(
                reports.is_empty(),
                "{shards} shards batch={batch}: {reports:?}"
            );
        }
    }

    #[test]
    fn sampling_detector_processes_fewer_accesses() {
        let w = benchbase::by_name("tpcc").unwrap();
        let full = Arc::new(DetectorInstrument::new(OrderedListDetector::new(
            AlwaysSampler::new(),
        )));
        run_benchmark(&w, &small_opts(), full.clone());
        let full = Arc::try_unwrap(full).ok().unwrap();
        let (d_full, _) = full.finish();

        let sampled = Arc::new(DetectorInstrument::new(OrderedListDetector::new(
            BernoulliSampler::new(0.03, 1),
        )));
        run_benchmark(&w, &small_opts(), sampled.clone());
        let sampled = Arc::try_unwrap(sampled).ok().unwrap();
        let (d_samp, _) = sampled.finish();

        assert!(d_samp.counters().sampled_accesses * 10 < d_full.counters().sampled_accesses);
        assert!(d_samp.counters().acquires_skipped > 0);
    }
}
