//! Trace I/O microbenchmarks: text vs binary (`.ftb`) parse and write
//! throughput over a corpus-shaped trace.
//!
//! The machine-readable counterpart (events/s + file sizes, recorded as
//! `BENCH_trace_io.json`) is `record_baseline --trace-io`; this bench
//! exists for interactive before/after work on the codecs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use freshtrack_trace::{
    read_trace, read_trace_binary, write_trace, write_trace_binary, BinaryEventReader, EventReader,
    EventSource,
};
use freshtrack_workloads::corpus;

fn bench_trace_io(c: &mut Criterion) {
    let trace = corpus::by_name("derby")
        .expect("derby is in the corpus")
        .trace(0.25, 0);
    let text = write_trace(&trace);
    let mut binary = Vec::new();
    write_trace_binary(&trace, &mut binary).expect("in-memory write");

    let mut g = c.benchmark_group("trace_io");
    g.throughput(Throughput::Elements(trace.len() as u64));

    g.bench_function("text_parse", |b| {
        b.iter(|| black_box(read_trace(&text).expect("well-formed")))
    });
    g.bench_function("binary_decode", |b| {
        b.iter(|| black_box(read_trace_binary(&binary).expect("well-formed")))
    });
    // Streaming decode without materialization: the cost a streaming
    // `analyze` pays per event before detector work starts.
    g.bench_function("text_stream", |b| {
        b.iter(|| {
            let mut reader = EventReader::new(text.as_bytes());
            let mut n = 0usize;
            while let Some(e) = reader.next_event().expect("well-formed") {
                black_box(e);
                n += 1;
            }
            n
        })
    });
    g.bench_function("binary_stream", |b| {
        b.iter(|| {
            let mut reader = BinaryEventReader::new(&binary[..]).expect("magic");
            let mut n = 0usize;
            while let Some(e) = reader.next_event().expect("well-formed") {
                black_box(e);
                n += 1;
            }
            n
        })
    });
    g.bench_function("text_write", |b| b.iter(|| black_box(write_trace(&trace))));
    g.bench_function("binary_write", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(binary.len());
            write_trace_binary(&trace, &mut out).expect("in-memory write");
            black_box(out)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_trace_io);
criterion_main!(benches);
