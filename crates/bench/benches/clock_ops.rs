//! Microbenchmarks of the clock substrates: plain vector clocks vs
//! ordered lists vs lazily-shared clocks.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use freshtrack_clock::{FreshnessClock, OrderedList, SharedClock, ThreadId, VectorClock};

const THREADS: usize = 64;

fn dense_clock(offset: u64) -> VectorClock {
    (0..THREADS)
        .map(|t| (ThreadId::new(t as u32), (t as u64 * 7 + offset) % 100 + 1))
        .collect()
}

fn dense_list(offset: u64) -> OrderedList {
    (0..THREADS)
        .map(|t| (ThreadId::new(t as u32), (t as u64 * 7 + offset) % 100 + 1))
        .collect()
}

fn bench_vector_clock(c: &mut Criterion) {
    let mut g = c.benchmark_group("vector_clock");
    let a = dense_clock(0);
    let b = dense_clock(3);
    g.bench_function("join_64", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                black_box(x.join(&b));
                x
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("copy_64", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                black_box(x.copy_from(&b));
                x
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("leq_64", |bench| bench.iter(|| black_box(a.leq(&b))));
    g.finish();
}

fn bench_ordered_list(c: &mut Criterion) {
    let mut g = c.benchmark_group("ordered_list");
    let a = dense_list(0);
    g.bench_function("set_move_to_front", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                x.set(ThreadId::new(63), 999);
                x
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("get", |bench| {
        bench.iter(|| black_box(a.get(ThreadId::new(32))))
    });
    for d in [1usize, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::new("partial_traverse", d), &d, |bench, &d| {
            bench.iter(|| {
                let mut acc = 0u64;
                for (_, t) in a.first(d) {
                    acc = acc.wrapping_add(t);
                }
                black_box(acc)
            })
        });
    }
    g.bench_function("deep_clone_64", |bench| bench.iter(|| black_box(a.clone())));
    g.finish();
}

fn bench_shared_clock(c: &mut Criterion) {
    let mut g = c.benchmark_group("shared_clock");
    let base = SharedClock::from_list(dense_list(0));
    g.bench_function("shallow_copy", |bench| {
        bench.iter(|| black_box(base.shallow_copy()))
    });
    g.bench_function("mutate_exclusive", |bench| {
        bench.iter_batched(
            || SharedClock::from_list(dense_list(0)),
            |mut x| {
                x.set(ThreadId::new(0), 1000);
                x
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("mutate_shared_deep_copy", |bench| {
        bench.iter_batched(
            || {
                let x = SharedClock::from_list(dense_list(0));
                let alias = x.shallow_copy();
                (x, alias)
            },
            |(mut x, alias)| {
                x.set(ThreadId::new(0), 1000);
                (x, alias)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_freshness(c: &mut Criterion) {
    let mut g = c.benchmark_group("freshness");
    let mut u = FreshnessClock::new();
    for t in 0..THREADS {
        u.set(ThreadId::new(t as u32), t as u64);
    }
    let v = u.clone();
    g.bench_function("bump", |bench| {
        bench.iter_batched(
            || u.clone(),
            |mut x| {
                x.bump(ThreadId::new(5));
                x
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("scalar_skip_check", |bench| {
        bench.iter(|| black_box(u.get(ThreadId::new(7)) > v.get(ThreadId::new(7))))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_vector_clock, bench_ordered_list, bench_shared_clock, bench_freshness
}
criterion_main!(benches);
