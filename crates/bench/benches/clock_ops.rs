//! Microbenchmarks of the clock substrates: plain vector clocks vs
//! ordered lists vs lazily-shared clocks.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use freshtrack_clock::{FreshnessClock, OrderedList, SharedClock, ThreadId, VectorClock};

const THREADS: usize = 64;

fn dense_clock(offset: u64) -> VectorClock {
    (0..THREADS)
        .map(|t| (ThreadId::new(t as u32), (t as u64 * 7 + offset) % 100 + 1))
        .collect()
}

fn dense_list(offset: u64) -> OrderedList {
    (0..THREADS)
        .map(|t| (ThreadId::new(t as u32), (t as u64 * 7 + offset) % 100 + 1))
        .collect()
}

fn bench_vector_clock(c: &mut Criterion) {
    let mut g = c.benchmark_group("vector_clock");
    let a = dense_clock(0);
    let b = dense_clock(3);
    g.bench_function("join_64", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                black_box(x.join(&b));
                x
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("copy_64", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                black_box(x.copy_from(&b));
                x
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("release_assign_64", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                x.assign_from(&b);
                x
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("leq_64", |bench| bench.iter(|| black_box(a.leq(&b))));
    g.finish();
}

fn bench_ordered_list(c: &mut Criterion) {
    let mut g = c.benchmark_group("ordered_list");
    let a = dense_list(0);
    g.bench_function("set_move_to_front", |bench| {
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                x.set(ThreadId::new(63), 999);
                x
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("get", |bench| {
        bench.iter(|| black_box(a.get(ThreadId::new(32))))
    });
    for d in [1usize, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::new("partial_traverse", d), &d, |bench, &d| {
            bench.iter(|| {
                let mut acc = 0u64;
                for (_, t) in a.first(d) {
                    acc = acc.wrapping_add(t);
                }
                black_box(acc)
            })
        });
    }
    g.bench_function("deep_clone_64", |bench| bench.iter(|| black_box(a.clone())));
    g.bench_function("deep_clone_8", |bench| {
        let small: OrderedList = (0..8).map(|t| (ThreadId::new(t), t as u64 + 1)).collect();
        bench.iter(|| black_box(small.clone()))
    });
    for d in [4usize, 16, 64] {
        // The acquire hot path: fold the first `d` fresh entries of a
        // donor into a stale clone.
        g.bench_with_input(BenchmarkId::new("join_prefix", d), &d, |bench, &d| {
            let mut donor = dense_list(0);
            for i in 0..d {
                donor.set(ThreadId::new(i as u32), 10_000 + i as u64);
            }
            bench.iter_batched(
                || a.clone(),
                |mut x| {
                    black_box(x.join_prefix(&donor, d));
                    x
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.bench_function("join_dense_64", |bench| {
        let mut donor = dense_list(0);
        for i in 0..THREADS {
            donor.set(ThreadId::new(i as u32), 10_000 + i as u64);
        }
        bench.iter_batched(
            || a.clone(),
            |mut x| {
                black_box(x.join(&donor));
                x
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_shared_clock(c: &mut Criterion) {
    let mut g = c.benchmark_group("shared_clock");
    let mut base = SharedClock::from_list(dense_list(0));
    g.bench_function("shallow_copy", |bench| {
        bench.iter(|| black_box(base.shallow_copy()))
    });
    g.bench_function("mutate_exclusive", |bench| {
        bench.iter_batched(
            || SharedClock::from_list(dense_list(0)),
            |mut x| {
                x.set(ThreadId::new(0), 1000);
                x
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("mutate_shared_deep_copy", |bench| {
        bench.iter_batched(
            || {
                let mut x = SharedClock::from_list(dense_list(0));
                let alias = x.shallow_copy();
                (x, alias)
            },
            |(mut x, alias)| {
                x.set(ThreadId::new(0), 1000);
                (x, alias)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("release_acquire_cycle_d16", |bench| {
        // The SO sync cycle: release hands the lock a shallow copy, the
        // acquirer prefix-joins 16 fresh entries while its own clock is
        // still aliased (one lazy deep copy).
        let mut tick = 100_000u64;
        let mut releaser = SharedClock::from_list(dense_list(0));
        let mut acquirer = SharedClock::from_list(dense_list(1));
        let mut lock_a = releaser.shallow_copy();
        let mut lock_b = acquirer.shallow_copy();
        bench.iter(|| {
            for i in 0..16u32 {
                tick += 1;
                releaser.set(ThreadId::new(8 + i), tick);
            }
            lock_a = releaser.shallow_copy();
            let res = acquirer.join_prefix(lock_a.list(), 16);
            std::mem::swap(&mut releaser, &mut acquirer);
            std::mem::swap(&mut lock_a, &mut lock_b);
            black_box(res)
        })
    });
    g.finish();
}

fn bench_freshness(c: &mut Criterion) {
    let mut g = c.benchmark_group("freshness");
    let mut u = FreshnessClock::new();
    for t in 0..THREADS {
        u.set(ThreadId::new(t as u32), t as u64);
    }
    let v = u.clone();
    g.bench_function("bump", |bench| {
        bench.iter_batched(
            || u.clone(),
            |mut x| {
                x.bump(ThreadId::new(5));
                x
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("scalar_skip_check", |bench| {
        bench.iter(|| black_box(u.get(ThreadId::new(7)) > v.get(ThreadId::new(7))))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_vector_clock, bench_ordered_list, bench_shared_clock, bench_freshness
}
criterion_main!(benches);
