//! Ordered lists vs. tree clocks — the paper's Section 7 claim.
//!
//! Tree clocks (ASPLOS 2022) are the optimal timestamp structure for the
//! *full* happens-before relation, but their fast path requires a local
//! increment at **every** release; under the sampling discipline (local
//! increments only at `RelAfter_S` releases) that advantage evaporates,
//! while the ordered list + freshness-scalar combination skips and
//! partially traverses.
//!
//! This bench drives the *same* synchronization event sequence through
//! three clock strategies:
//!
//! * `vector_full` — plain vector clocks, Djit+ discipline;
//! * `tree_full` — tree clocks, Djit+ discipline (their best mode);
//! * `ordered_sampling_X` — SharedClock + scalar freshness with local
//!   increments at a fraction X of releases (the sampling discipline).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use freshtrack_clock::{
    ClockSnapshot, OrderedList, SharedClock, ThreadId, Time, TreeClock, VectorClock,
};
use freshtrack_trace::{EventKind, Trace};
use freshtrack_workloads::{generate, WorkloadConfig};

fn sync_trace() -> Trace {
    generate(
        &WorkloadConfig::named("sync")
            .events(30_000)
            .threads(16)
            .locks(24)
            .sync_ratio(0.7)
            .seed(13),
    )
}

/// Deterministic "was something sampled since the last release" flags.
fn flush_flag(counter: u64, rate: f64) -> bool {
    // SplitMix-style hash to a unit float.
    let mut z = counter.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z >> 11) as f64 / (1u64 << 53) as f64) < rate
}

fn run_vector_full(trace: &Trace) -> u64 {
    let t_count = trace.thread_count();
    let mut threads: Vec<VectorClock> = (0..t_count)
        .map(|t| VectorClock::bottom_with(ThreadId::new(t as u32), 1))
        .collect();
    let mut locks: Vec<VectorClock> = vec![VectorClock::new(); trace.lock_count()];
    let mut acc = 0u64;
    for event in trace.events() {
        match event.kind {
            EventKind::Acquire(l) => {
                acc += threads[event.tid.index()].join(&locks[l.index()]) as u64;
            }
            EventKind::Release(l) => {
                let clock = &mut threads[event.tid.index()];
                locks[l.index()].copy_from(clock);
                clock.increment(event.tid);
            }
            _ => {}
        }
    }
    acc
}

fn run_tree_full(trace: &Trace) -> u64 {
    let t_count = trace.thread_count();
    let mut threads: Vec<TreeClock> = (0..t_count)
        .map(|t| {
            let mut c = TreeClock::new(ThreadId::new(t as u32));
            c.increment(1);
            c
        })
        .collect();
    let mut locks: Vec<Option<TreeClock>> = vec![None; trace.lock_count()];
    let mut acc = 0u64;
    for event in trace.events() {
        match event.kind {
            EventKind::Acquire(l) => {
                if let Some(lc) = &locks[l.index()] {
                    acc += threads[event.tid.index()].join(lc) as u64;
                }
            }
            EventKind::Release(l) => {
                let clock = &mut threads[event.tid.index()];
                locks[l.index()] = Some(clock.clone());
                clock.increment(1);
            }
            _ => {}
        }
    }
    acc
}

/// The SO-style strategy: shallow copies, scalar lock freshness, partial
/// traversal, and local increments only at a `rate` fraction of releases.
fn run_ordered_sampling(trace: &Trace, rate: f64) -> u64 {
    struct Thread {
        list: SharedClock,
        fresh: VectorClock,
        epoch: Time,
    }
    struct Lock {
        list: Option<ClockSnapshot>,
        releaser: ThreadId,
        fresh: Time,
    }
    let mut threads: Vec<Thread> = (0..trace.thread_count())
        .map(|_| Thread {
            list: SharedClock::new(),
            fresh: VectorClock::new(),
            epoch: 1,
        })
        .collect();
    let mut locks: Vec<Lock> = (0..trace.lock_count())
        .map(|_| Lock {
            list: None,
            releaser: ThreadId::new(0),
            fresh: 0,
        })
        .collect();
    let mut acc = 0u64;
    let mut release_counter = 0u64;
    for event in trace.events() {
        match event.kind {
            EventKind::Acquire(l) => {
                let lock = &locks[l.index()];
                let thread = &threads[event.tid.index()];
                if lock.fresh <= thread.fresh.get(lock.releaser) {
                    continue; // freshness skip
                }
                let d = lock.fresh - thread.fresh.get(lock.releaser);
                let (lr, lf) = (lock.releaser, lock.fresh);
                let donor = lock.list.as_ref().expect("fresh lock has list").list();
                let thread = &mut threads[event.tid.index()];
                thread.fresh.set(lr, lf);
                let res = thread.list.join_prefix(donor, d as usize);
                let tf = thread.fresh.get(event.tid) + res.changed as u64;
                thread.fresh.set(event.tid, tf);
                acc += res.changed as u64;
            }
            EventKind::Release(l) => {
                release_counter += 1;
                let thread = &mut threads[event.tid.index()];
                if flush_flag(release_counter, rate) {
                    let (list, _) = thread.list.make_mut();
                    list.set(event.tid, thread.epoch);
                    thread.epoch += 1;
                    let tf = thread.fresh.get(event.tid) + 1;
                    thread.fresh.set(event.tid, tf);
                }
                let lock = &mut locks[l.index()];
                lock.list = Some(thread.list.snapshot());
                lock.releaser = event.tid;
                lock.fresh = thread.fresh.get(event.tid);
            }
            _ => {}
        }
    }
    acc + threads.iter().map(|t| t.list.list().total()).sum::<u64>()
}

fn bench_structures(c: &mut Criterion) {
    let trace = sync_trace();
    let syncs = trace.stats().syncs() as u64;
    let mut g = c.benchmark_group("sync_timestamping");
    g.throughput(Throughput::Elements(syncs));
    g.bench_function("vector_full", |b| {
        b.iter(|| black_box(run_vector_full(&trace)))
    });
    g.bench_function("tree_full", |b| b.iter(|| black_box(run_tree_full(&trace))));
    g.bench_function("ordered_sampling_100", |b| {
        b.iter(|| black_box(run_ordered_sampling(&trace, 1.0)))
    });
    g.bench_function("ordered_sampling_3", |b| {
        b.iter(|| black_box(run_ordered_sampling(&trace, 0.03)))
    });
    g.bench_function("ordered_sampling_0.3", |b| {
        b.iter(|| black_box(run_ordered_sampling(&trace, 0.003)))
    });
    g.finish();
}

fn sanity() {
    // The strategies must compute identical timestamps at full rate
    // modulo representation, so spot-check one.
    let trace = sync_trace();
    let _ = (run_vector_full(&trace), run_tree_full(&trace));
    let _ = OrderedList::new();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_structures
}
criterion_main!(benches);

#[allow(dead_code)]
fn keep_sanity_used() {
    sanity();
}
