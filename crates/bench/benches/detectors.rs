//! End-to-end detector throughput on a fixed lock-heavy trace — the
//! microbenchmark behind the paper's Fig. 5: how much analysis time each
//! engine spends per event at each sampling rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use freshtrack_core::{
    Detector, DjitDetector, FastTrackDetector, FreshnessDetector, NaiveSamplingDetector,
    OrderedListDetector,
};
use freshtrack_sampling::{AlwaysSampler, BernoulliSampler};
use freshtrack_trace::Trace;
use freshtrack_workloads::{generate, WorkloadConfig};

/// Pre-sizes clocks to TSan-style fixed width so per-sync-event costs
/// match the online experiments.
fn prepared<D: Detector>(mut d: D) -> D {
    d.reserve_threads(64);
    d
}

fn trace() -> Trace {
    generate(
        &WorkloadConfig::named("bench")
            .events(20_000)
            .threads(8)
            .locks(12)
            .vars(256)
            .sync_ratio(0.4)
            .seed(7),
    )
}

fn bench_full_detection(c: &mut Criterion) {
    let trace = trace();
    let mut g = c.benchmark_group("full_detection");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("djit", |b| {
        b.iter(|| black_box(DjitDetector::new(AlwaysSampler::new()).run(&trace)))
    });
    g.bench_function("fasttrack", |b| {
        b.iter(|| black_box(FastTrackDetector::new(AlwaysSampler::new()).run(&trace)))
    });
    g.finish();
}

fn bench_sampling_engines(c: &mut Criterion) {
    let trace = trace();
    let mut g = c.benchmark_group("sampling_engines");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for &rate in &[0.003f64, 0.03, 0.10] {
        let sampler = BernoulliSampler::new(rate, 1);
        g.bench_with_input(BenchmarkId::new("ST", rate), &rate, |b, _| {
            b.iter(|| black_box(prepared(DjitDetector::new(sampler)).run(&trace)))
        });
        g.bench_with_input(BenchmarkId::new("SAM", rate), &rate, |b, _| {
            b.iter(|| black_box(prepared(NaiveSamplingDetector::new(sampler)).run(&trace)))
        });
        g.bench_with_input(BenchmarkId::new("SU", rate), &rate, |b, _| {
            b.iter(|| black_box(prepared(FreshnessDetector::new(sampler)).run(&trace)))
        });
        g.bench_with_input(BenchmarkId::new("SO", rate), &rate, |b, _| {
            b.iter(|| black_box(prepared(OrderedListDetector::new(sampler)).run(&trace)))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_full_detection, bench_sampling_engines
}
criterion_main!(benches);
