//! Per-sync-event ingestion cost vs shard count — the measurement the
//! two-plane refactor exists for.
//!
//! Drives the shared single-threaded sync-heavy stream
//! ([`freshtrack_bench::sync_stream`] — the same mix
//! `record_baseline --sync-cost` records as `BENCH_sync_cost.json`)
//! through each ingestion façade, so the number reflects the *analysis
//! work one sync event triggers* — no contention, no scheduler noise.
//! Under the legacy replicated skeleton ([`SyncMode::Replicated`])
//! that work grows `O(N)` with the shard count; under the two-plane
//! constructions it is flat in `N` — [`SyncMode::Shared`] pays one
//! mutex-slot view publication per sync event, [`SyncMode::Seqlock`]
//! (the default) a lock-free seqlock store. `shard_scaling` measures
//! the complementary quantity: whole-pipeline throughput under real
//! contention.
//!
//! [`SyncMode::Replicated`]: freshtrack_core::SyncMode::Replicated
//! [`SyncMode::Shared`]: freshtrack_core::SyncMode::Shared
//! [`SyncMode::Seqlock`]: freshtrack_core::SyncMode::Seqlock

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use freshtrack_bench::sync_stream::{self, Facade};
use freshtrack_core::{Detector, DjitDetector, SyncMode};
use freshtrack_sampling::AlwaysSampler;

/// Acquire/release pairs per measured round.
const PAIRS: u32 = 4_000;

fn detector() -> DjitDetector<AlwaysSampler> {
    // Djit+ sync handlers are the heavy O(T)-per-event case (FT shares
    // them); this is where replication fan-out hurts most.
    let mut d = DjitDetector::new(AlwaysSampler::new());
    d.reserve_threads(64);
    d
}

fn run_point(point: Option<(SyncMode, usize)>) {
    let facade = Facade::new(detector(), point);
    if let Facade::Sharded(f) = &facade {
        f.reserve_threads(64);
    }
    sync_stream::warm_up(&facade);
    sync_stream::drive_pairs(&facade, PAIRS);
    std::hint::black_box(&facade);
}

fn bench_sync_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync_cost");
    g.throughput(Throughput::Elements(2 * PAIRS as u64));
    g.bench_function("single_mutex", |b| b.iter(|| run_point(None)));
    for (tag, mode) in [
        ("seqlock", SyncMode::Seqlock),
        ("shared", SyncMode::Shared),
        ("replicated", SyncMode::Replicated),
    ] {
        for shards in [1usize, 2, 4, 8] {
            g.bench_with_input(BenchmarkId::new(tag, shards), &shards, |b, &n| {
                b.iter(|| run_point(Some((mode, n))))
            });
        }
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sync_cost
}
criterion_main!(benches);
