//! Sampling-rate sweep of SO versus the naive baseline ST: where the
//! advantage is largest and where it fades (the trend of Fig. 5(b)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use freshtrack_core::{Detector, DjitDetector, OrderedListDetector};
use freshtrack_sampling::BernoulliSampler;
use freshtrack_trace::Trace;
use freshtrack_workloads::{generate, Pattern, WorkloadConfig};

/// Pre-sizes clocks to TSan-style fixed width so per-sync-event costs
/// match the online experiments.
fn prepared<D: Detector>(mut d: D) -> D {
    d.reserve_threads(64);
    d
}

fn trace() -> Trace {
    generate(
        &WorkloadConfig::named("sweep")
            .events(20_000)
            .threads(8)
            .locks(8)
            .sync_ratio(0.5)
            .pattern(Pattern::Mixed)
            .seed(3),
    )
}

fn bench_sweep(c: &mut Criterion) {
    let trace = trace();
    let mut g = c.benchmark_group("rate_sweep");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for &rate in &[0.001f64, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0] {
        let sampler = BernoulliSampler::new(rate, 5);
        g.bench_with_input(BenchmarkId::new("SO", rate), &rate, |b, _| {
            b.iter(|| black_box(prepared(OrderedListDetector::new(sampler)).run(&trace)))
        });
        g.bench_with_input(BenchmarkId::new("ST", rate), &rate, |b, _| {
            b.iter(|| black_box(prepared(DjitDetector::new(sampler)).run(&trace)))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sweep
}
criterion_main!(benches);
