//! Ablation benchmarks isolating each of the paper's three innovations:
//!
//! * `SAM → SU` — adding the freshness timestamp (skip redundant syncs);
//! * `SU → SO` — adding ordered lists + lazy copies (partial traversal,
//!   no per-lock freshness clocks);
//! * `SO-noepoch → SO` — the implementation's local-epoch optimization
//!   (Section 6.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use freshtrack_core::{Detector, FreshnessDetector, NaiveSamplingDetector, OrderedListDetector};
use freshtrack_sampling::BernoulliSampler;
use freshtrack_trace::Trace;
use freshtrack_workloads::{generate, Pattern, WorkloadConfig};

/// Pre-sizes clocks to TSan-style fixed width so per-sync-event costs
/// match the online experiments.
fn prepared<D: Detector>(mut d: D) -> D {
    d.reserve_threads(64);
    d
}

fn traces() -> Vec<(&'static str, Trace)> {
    vec![
        (
            "mixed",
            generate(
                &WorkloadConfig::named("mixed")
                    .events(15_000)
                    .threads(8)
                    .locks(16)
                    .sync_ratio(0.4)
                    .seed(11),
            ),
        ),
        (
            "lock_ladder",
            generate(
                &WorkloadConfig::named("ladder")
                    .events(15_000)
                    .threads(4)
                    .locks(8)
                    .pattern(Pattern::LockLadder)
                    .seed(11),
            ),
        ),
        (
            "producer_consumer",
            generate(
                &WorkloadConfig::named("pc")
                    .events(15_000)
                    .threads(8)
                    .pattern(Pattern::ProducerConsumer)
                    .seed(11),
            ),
        ),
    ]
}

fn bench_innovation_stack(c: &mut Criterion) {
    let rate = 0.03;
    for (name, trace) in traces() {
        let mut g = c.benchmark_group(format!("stack_{name}"));
        g.throughput(Throughput::Elements(trace.len() as u64));
        let sampler = BernoulliSampler::new(rate, 2);
        g.bench_function("SAM_no_freshness", |b| {
            b.iter(|| black_box(prepared(NaiveSamplingDetector::new(sampler)).run(&trace)))
        });
        g.bench_function("SU_freshness", |b| {
            b.iter(|| black_box(prepared(FreshnessDetector::new(sampler)).run(&trace)))
        });
        g.bench_function("SO_ordered_lazy", |b| {
            b.iter(|| black_box(prepared(OrderedListDetector::new(sampler)).run(&trace)))
        });
        g.finish();
    }
}

fn bench_epoch_opt(c: &mut Criterion) {
    let (_, trace) = traces().remove(0);
    let mut g = c.benchmark_group("local_epoch_opt");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for &rate in &[0.03f64, 1.0] {
        let sampler = BernoulliSampler::new(rate, 2);
        g.bench_with_input(BenchmarkId::new("with_opt", rate), &rate, |b, _| {
            b.iter(|| {
                black_box(prepared(OrderedListDetector::with_options(sampler, true)).run(&trace))
            })
        });
        g.bench_with_input(BenchmarkId::new("without_opt", rate), &rate, |b, _| {
            b.iter(|| {
                black_box(prepared(OrderedListDetector::with_options(sampler, false)).run(&trace))
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_innovation_stack, bench_epoch_opt
}
criterion_main!(benches);
