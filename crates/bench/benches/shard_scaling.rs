//! Multi-threaded ingestion throughput: the single-mutex
//! [`OnlineDetector`] against [`ShardedOnlineDetector`] at shard counts
//! {1, 2, 4, 8}.
//!
//! Four producer threads hammer the façade with a dbsim-shaped event
//! mix (accesses dominating, one short critical section per batch, each
//! thread using a private lock so the emitted stream trivially obeys
//! the locking discipline). The measured quantity is wall-clock per
//! round of `4 × EVENTS` events — ingestion throughput under real
//! contention, the thing the analysis-mutex split exists to improve.
//! `record_baseline --dbsim` measures the same effect end to end
//! through dbsim transactions.
//!
//! [`OnlineDetector`]: freshtrack_core::OnlineDetector
//! [`ShardedOnlineDetector`]: freshtrack_core::ShardedOnlineDetector

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use freshtrack_core::{Detector, DjitDetector, OnlineDetector, ShardedOnlineDetector};
use freshtrack_sampling::AlwaysSampler;

/// Producer threads.
const THREADS: u32 = 4;
/// Events per producer per round.
const EVENTS: u32 = 2_000;
/// Shared-variable space (hot: dense ids, like dbsim row ids).
const VARS: u32 = 512;

/// The ingestion surface both façades share, so the producer script is
/// written exactly once and cannot diverge between the baseline and
/// sharded arms of the comparison.
trait Ingest: Sync {
    fn write(&self, tid: u32, var: u32);
    fn acquire(&self, tid: u32, lock: u32);
    fn release(&self, tid: u32, lock: u32);
}

impl<D: Detector + Send> Ingest for OnlineDetector<D> {
    fn write(&self, tid: u32, var: u32) {
        OnlineDetector::write(self, tid, var);
    }
    fn acquire(&self, tid: u32, lock: u32) {
        OnlineDetector::acquire(self, tid, lock);
    }
    fn release(&self, tid: u32, lock: u32) {
        OnlineDetector::release(self, tid, lock);
    }
}

impl<D: Detector + Send> Ingest for ShardedOnlineDetector<D> {
    fn write(&self, tid: u32, var: u32) {
        ShardedOnlineDetector::write(self, tid, var);
    }
    fn acquire(&self, tid: u32, lock: u32) {
        ShardedOnlineDetector::acquire(self, tid, lock);
    }
    fn release(&self, tid: u32, lock: u32) {
        ShardedOnlineDetector::release(self, tid, lock);
    }
}

/// One producer's event script: mostly accesses, with a private-lock
/// critical section every 8 events (≈ dbsim's access:sync ratio).
fn produce<I: Ingest>(online: &I, t: u32) {
    for i in 0..EVENTS {
        match i % 8 {
            0 => online.acquire(t, t),
            7 => online.release(t, t),
            _ => {
                let var = (i.wrapping_mul(7).wrapping_add(t * 131)) % VARS;
                online.write(t, var);
            }
        }
    }
}

/// Runs the full multi-threaded round against either façade.
fn drive<I: Ingest>(online: &I) {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || produce(online, t));
        }
    });
}

fn detector() -> DjitDetector<AlwaysSampler> {
    let mut d = DjitDetector::new(AlwaysSampler::new());
    d.reserve_threads(THREADS as usize);
    d
}

fn bench_shard_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard_ingest");
    g.throughput(Throughput::Elements((THREADS * EVENTS) as u64));
    g.bench_function("single_mutex", |b| {
        b.iter(|| {
            let online = OnlineDetector::new(detector());
            drive(&online);
            std::hint::black_box(online.finish());
        })
    });
    for shards in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, &n| {
            b.iter(|| {
                let online = ShardedOnlineDetector::new(detector(), n);
                drive(&online);
                std::hint::black_box(online.finish());
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_shard_scaling
}
criterion_main!(benches);
