//! Multi-threaded ingestion throughput: the single-mutex
//! [`OnlineDetector`] against [`ShardedOnlineDetector`] at shard counts
//! {1, 2, 4, 8}, across the sync-plane constructions (lock-free
//! `sharded_seqlock` — unbatched and with 64-event access batches —
//! mutex-slot `sharded`, legacy `sharded_replicated`). The per-sync-event cost
//! in isolation is the `sync_cost` bench's job; this one measures the
//! whole contended pipeline.
//!
//! Four producer threads hammer the façade with a dbsim-shaped event
//! mix (accesses dominating, one short critical section per batch, each
//! thread using a private lock so the emitted stream trivially obeys
//! the locking discipline). The measured quantity is wall-clock per
//! round of `4 × EVENTS` events — ingestion throughput under real
//! contention, the thing the analysis-mutex split exists to improve.
//! `record_baseline --dbsim` measures the same effect end to end
//! through dbsim transactions.
//!
//! [`OnlineDetector`]: freshtrack_core::OnlineDetector
//! [`ShardedOnlineDetector`]: freshtrack_core::ShardedOnlineDetector

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use freshtrack_bench::sync_stream::Ingest;
use freshtrack_core::{Detector, DjitDetector, OnlineDetector, ShardedOnlineDetector, SyncMode};
use freshtrack_sampling::AlwaysSampler;

/// Producer threads.
const THREADS: u32 = 4;
/// Events per producer per round.
const EVENTS: u32 = 2_000;
/// Shared-variable space (hot: dense ids, like dbsim row ids).
const VARS: u32 = 512;

/// One producer's event script: mostly accesses, with a private-lock
/// critical section every 8 events (≈ dbsim's access:sync ratio).
/// The façade surface is the shared [`Ingest`] trait
/// (`freshtrack_bench::sync_stream`), so the producer script cannot
/// diverge between the baseline and sharded arms of the comparison.
fn produce<I: Ingest>(online: &I, t: u32) {
    for i in 0..EVENTS {
        match i % 8 {
            0 => online.acquire(t, t),
            7 => online.release(t, t),
            _ => {
                let var = (i.wrapping_mul(7).wrapping_add(t * 131)) % VARS;
                online.write(t, var);
            }
        }
    }
}

/// Runs the full multi-threaded round against either façade.
fn drive<I: Ingest + Sync>(online: &I) {
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || produce(online, t));
        }
    });
}

fn detector() -> DjitDetector<AlwaysSampler> {
    let mut d = DjitDetector::new(AlwaysSampler::new());
    d.reserve_threads(THREADS as usize);
    d
}

fn bench_shard_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard_ingest");
    g.throughput(Throughput::Elements((THREADS * EVENTS) as u64));
    g.bench_function("single_mutex", |b| {
        b.iter(|| {
            let online = OnlineDetector::new(detector());
            drive(&online);
            std::hint::black_box(online.finish());
        })
    });
    for (tag, mode, batch) in [
        ("sharded_seqlock", SyncMode::Seqlock, 1usize),
        ("sharded_seqlock_b64", SyncMode::Seqlock, 64),
        ("sharded", SyncMode::Shared, 1),
        ("sharded_replicated", SyncMode::Replicated, 1),
    ] {
        for shards in [1usize, 2, 4, 8] {
            g.bench_with_input(BenchmarkId::new(tag, shards), &shards, |b, &n| {
                b.iter(|| {
                    let online = ShardedOnlineDetector::with_options(detector(), n, mode, batch);
                    drive(&online);
                    std::hint::black_box(online.finish());
                })
            });
        }
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_shard_scaling
}
criterion_main!(benches);
