//! Shared plumbing for the figure-harness binaries.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper
//! (`fig5a_latency` … `fig9_saving_ratio`). They share environment
//! knobs so a quick smoke run and a full reproduction use the same code:
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `FT_WORKERS` | dbsim worker threads (paper: 12) | 8 |
//! | `FT_TXNS` | transactions per worker | 300 |
//! | `FT_REPS` | offline repetitions (paper: 30) | 3 |
//! | `FT_SCALE` | offline trace scale (1.0 = corpus default) | 0.2 |
//! | `FT_SEED` | base seed | 42 |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Duration;

use freshtrack_core::{
    Detector, DjitDetector, EmptyDetector, FreshnessDetector, OrderedListDetector, RaceReport,
};
use freshtrack_dbsim::{run_benchmark, DetectorInstrument, NoInstrument, RunOptions};
use freshtrack_sampling::{AlwaysSampler, BernoulliSampler};
use freshtrack_workloads::DbWorkload;

/// Reads an environment knob, falling back to a default.
pub fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The dbsim run options from the environment.
pub fn run_options() -> RunOptions {
    RunOptions {
        workers: env_or("FT_WORKERS", 8),
        txns_per_worker: env_or("FT_TXNS", 300),
        seed: env_or("FT_SEED", 42),
    }
}

/// Offline repetitions from the environment.
pub fn offline_reps() -> u32 {
    env_or("FT_REPS", 3)
}

/// Offline trace scale from the environment.
pub fn offline_scale() -> f64 {
    env_or("FT_SCALE", 0.2)
}

/// The online detector configurations of Figs. 5–6.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OnlineConfig {
    /// Uninstrumented.
    Nt,
    /// Instrumented, no analysis.
    Et,
    /// FastTrack, full detection.
    Ft,
    /// Naive sampling at the given rate.
    St(f64),
    /// Algorithm 3 at the given rate.
    Su(f64),
    /// Algorithm 4 at the given rate.
    So(f64),
}

impl OnlineConfig {
    /// Display label (`ST-0.3%` style).
    pub fn label(&self) -> String {
        fn pct(r: f64) -> String {
            let p = r * 100.0;
            if p >= 1.0 {
                format!("{}%", p.round() as u64)
            } else {
                format!("{p}%")
            }
        }
        match self {
            OnlineConfig::Nt => "NT".into(),
            OnlineConfig::Et => "ET".into(),
            OnlineConfig::Ft => "FT".into(),
            OnlineConfig::St(r) => format!("ST-{}", pct(*r)),
            OnlineConfig::Su(r) => format!("SU-{}", pct(*r)),
            OnlineConfig::So(r) => format!("SO-{}", pct(*r)),
        }
    }
}

/// The outcome of one online run.
#[derive(Clone, Debug)]
pub struct OnlineRun {
    /// Configuration label.
    pub label: String,
    /// Mean transaction latency.
    pub mean_latency: Duration,
    /// Race reports (empty for NT/ET).
    pub reports: Vec<RaceReport>,
    /// Detector counters (zeroed for NT).
    pub counters: freshtrack_core::Counters,
}

/// Runs one online configuration over a workload mix.
///
/// To tame scheduler noise the measurement repeats `FT_RUNS` times
/// (default 2) and keeps the run with the lowest mean latency, as
/// latency benchmarks conventionally do.
pub fn run_online(workload: &DbWorkload, config: OnlineConfig, options: &RunOptions) -> OnlineRun {
    let runs = env_or("FT_RUNS", 2u32).max(1);
    let mut best: Option<OnlineRun> = None;
    for i in 0..runs {
        let mut opts = *options;
        opts.seed = options.seed.wrapping_add(i as u64);
        let run = run_online_once(workload, config, &opts);
        if best
            .as_ref()
            .map_or(true, |b| run.mean_latency < b.mean_latency)
        {
            best = Some(run);
        }
    }
    best.expect("at least one run")
}

fn run_online_once(workload: &DbWorkload, config: OnlineConfig, options: &RunOptions) -> OnlineRun {
    let label = config.label();
    let seed = options.seed;
    match config {
        OnlineConfig::Nt => {
            let stats = run_benchmark(workload, options, Arc::new(NoInstrument));
            OnlineRun {
                label,
                mean_latency: Duration::from_nanos((stats.mean_us() * 1_000.0) as u64),
                reports: Vec::new(),
                counters: freshtrack_core::Counters::new(),
            }
        }
        OnlineConfig::Et => finish(label, workload, options, EmptyDetector::new()),
        // The full-detection baseline uses the same vector-clock access
        // histories as the sampling engines (Djit+), mirroring the
        // weight of TSan's shadow-memory access analysis; FastTrack's
        // epoch fast paths would make full access analysis unrealistically
        // cheap relative to this substrate's sampling engines.
        OnlineConfig::Ft => finish(
            label,
            workload,
            options,
            DjitDetector::new(AlwaysSampler::new()),
        ),
        // ST uses Djit+ access histories like SU/SO, so the three
        // sampling configurations differ *only* in their synchronization
        // handlers — the paper's "more accurate baseline" setup
        // (Section 6.2.2).
        OnlineConfig::St(r) => finish(
            label,
            workload,
            options,
            DjitDetector::new(BernoulliSampler::new(r, seed)),
        ),
        OnlineConfig::Su(r) => finish(
            label,
            workload,
            options,
            FreshnessDetector::new(BernoulliSampler::new(r, seed)),
        ),
        OnlineConfig::So(r) => finish(
            label,
            workload,
            options,
            OrderedListDetector::new(BernoulliSampler::new(r, seed)),
        ),
    }
}

/// Fixed clock width, like TSan v3's 256-entry vector clocks (the paper
/// disables slot preemption, so the width is constant). Default 64 — the
/// paper's machine had 64 concurrently runnable threads.
pub fn clock_width() -> usize {
    env_or("FT_CLOCK_WIDTH", 64)
}

fn finish<D: Detector + Send + 'static>(
    label: String,
    workload: &DbWorkload,
    options: &RunOptions,
    mut detector: D,
) -> OnlineRun {
    detector.reserve_threads(clock_width());
    let inst = Arc::new(DetectorInstrument::new(detector));
    let stats = run_benchmark(workload, options, inst.clone());
    let inst = Arc::try_unwrap(inst).ok().expect("workers joined");
    let (detector, reports) = inst.finish();
    OnlineRun {
        label,
        mean_latency: Duration::from_nanos((stats.mean_us() * 1_000.0) as u64),
        reports,
        counters: *detector.counters(),
    }
}

/// Distinct racy locations in a report list (Fig. 6(a)'s metric).
pub fn racy_locations(reports: &[RaceReport]) -> usize {
    let mut vars: Vec<_> = reports.iter().map(|r| r.var).collect();
    vars.sort_unstable();
    vars.dedup();
    vars.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshtrack_workloads::benchbase;

    #[test]
    fn env_or_parses_and_defaults() {
        assert_eq!(env_or("FT_NO_SUCH_VAR", 7u32), 7);
    }

    #[test]
    fn labels() {
        assert_eq!(OnlineConfig::St(0.003).label(), "ST-0.3%");
        assert_eq!(OnlineConfig::So(0.1).label(), "SO-10%");
        assert_eq!(OnlineConfig::Nt.label(), "NT");
    }

    #[test]
    fn online_run_smoke() {
        let w = benchbase::by_name("sibench").unwrap();
        let opts = RunOptions {
            workers: 2,
            txns_per_worker: 30,
            seed: 1,
        };
        for cfg in [
            OnlineConfig::Nt,
            OnlineConfig::Et,
            OnlineConfig::Ft,
            OnlineConfig::So(0.03),
        ] {
            let run = run_online(&w, cfg, &opts);
            assert_eq!(run.label, cfg.label());
        }
    }
}
