//! Shared plumbing for the figure-harness binaries.
//!
//! Every binary in `src/bin/` regenerates one figure of the paper
//! (`fig5a_latency` … `fig9_saving_ratio`). They share environment
//! knobs so a quick smoke run and a full reproduction use the same code:
//!
//! | Variable | Meaning | Default |
//! |---|---|---|
//! | `FT_WORKERS` | dbsim worker threads (paper: 12) | 8 |
//! | `FT_TXNS` | transactions per worker | 300 |
//! | `FT_REPS` | offline repetitions (paper: 30) | 3 |
//! | `FT_SCALE` | offline trace scale (1.0 = corpus default) | 0.2 |
//! | `FT_SEED` | base seed | 42 |
//! | `FT_SHARDS` | ingestion shards (≤1 = paper-faithful single mutex) | 1 |
//! | `FT_SYNC_MODE` | sharded sync plane: `seqlock`/`shared`/`replicated` | seqlock |
//! | `FT_BATCH` | per-shard access batch capacity (1 = unbatched) | 1 |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use freshtrack_core::SyncMode;
use freshtrack_core::{
    Counters, DjitDetector, EmptyDetector, FreshnessDetector, OrderedListDetector, RaceReport,
};
use freshtrack_dbsim::{run_benchmark, run_detector, run_sharded, NoInstrument, RunOptions};
use freshtrack_sampling::{AlwaysSampler, BernoulliSampler};
use freshtrack_workloads::DbWorkload;

/// Reads an environment knob, falling back to a default.
pub fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The dbsim run options from the environment.
pub fn run_options() -> RunOptions {
    RunOptions {
        workers: env_or("FT_WORKERS", 8),
        txns_per_worker: env_or("FT_TXNS", 300),
        seed: env_or("FT_SEED", 42),
    }
}

/// Offline repetitions from the environment.
pub fn offline_reps() -> u32 {
    env_or("FT_REPS", 3)
}

/// Offline trace scale from the environment.
pub fn offline_scale() -> f64 {
    env_or("FT_SCALE", 0.2)
}

/// The online detector configurations of Figs. 5–6.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OnlineConfig {
    /// Uninstrumented.
    Nt,
    /// Instrumented, no analysis.
    Et,
    /// FastTrack, full detection.
    Ft,
    /// Naive sampling at the given rate.
    St(f64),
    /// Algorithm 3 at the given rate.
    Su(f64),
    /// Algorithm 4 at the given rate.
    So(f64),
}

impl OnlineConfig {
    /// Display label (`ST-0.3%` style).
    pub fn label(&self) -> String {
        fn pct(r: f64) -> String {
            let p = r * 100.0;
            if p >= 1.0 {
                format!("{}%", p.round() as u64)
            } else {
                format!("{p}%")
            }
        }
        match self {
            OnlineConfig::Nt => "NT".into(),
            OnlineConfig::Et => "ET".into(),
            OnlineConfig::Ft => "FT".into(),
            OnlineConfig::St(r) => format!("ST-{}", pct(*r)),
            OnlineConfig::Su(r) => format!("SU-{}", pct(*r)),
            OnlineConfig::So(r) => format!("SO-{}", pct(*r)),
        }
    }
}

/// Which ingestion path routes dbsim events into the detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestMode {
    /// The paper-faithful single analysis mutex
    /// ([`freshtrack_dbsim::DetectorInstrument`]) — every event
    /// serializes through one lock, reproducing the contention model of
    /// the paper's Fig. 5.
    SingleMutex,
    /// Two-plane sharded ingestion with the seqlock-published sync
    /// plane ([`SyncMode::Seqlock`], the detector default): access
    /// shards read published clock views lock-free; sync events update
    /// one shared sync engine.
    ShardedSeqlock(usize),
    /// Two-plane sharded ingestion with mutex-slot clock views
    /// ([`freshtrack_dbsim::ShardedInstrument`] in
    /// [`SyncMode::Shared`]): accesses route to `hash(var) % N` shards,
    /// sync events update one shared sync engine — per-sync cost flat
    /// in `N`. Same verdicts, higher throughput.
    Sharded(usize),
    /// PR 3's replicated-skeleton sharding ([`SyncMode::Replicated`]):
    /// sync events fan out to all `N` shards. Kept selectable so the
    /// `O(N)` → `O(1)×` sync-cost drop stays measurable
    /// (`record_baseline --sync-cost`, `BENCH_sync_cost.json`).
    ShardedReplicated(usize),
}

impl IngestMode {
    /// The mode selected by `FT_SHARDS` (and `FT_SYNC_MODE`): `0`/`1`
    /// (the default) is the single-mutex baseline; `N ≥ 2` enables
    /// seqlock-published two-plane sharding (the default), or the
    /// mutex-slot / replicated-skeleton constructions when
    /// `FT_SYNC_MODE=shared` / `FT_SYNC_MODE=replicated`. Use
    /// [`IngestMode::ShardedSeqlock`]`(1)` directly to measure the
    /// sharded skeleton's overhead at one shard.
    pub fn from_env() -> IngestMode {
        let sync_mode = std::env::var("FT_SYNC_MODE").unwrap_or_default();
        match env_or("FT_SHARDS", 1usize) {
            0 | 1 => IngestMode::SingleMutex,
            n if sync_mode.eq_ignore_ascii_case("replicated") => IngestMode::ShardedReplicated(n),
            n if sync_mode.eq_ignore_ascii_case("shared") => IngestMode::Sharded(n),
            n => IngestMode::ShardedSeqlock(n),
        }
    }

    /// A short suffix for labels: empty for the baseline,
    /// `"+shards=N"` (seqlock default) /
    /// `"+shards=N(shared)"` / `"+shards=N(replicated)"` for sharded
    /// runs.
    pub fn label_suffix(&self) -> String {
        match self {
            IngestMode::SingleMutex => String::new(),
            IngestMode::ShardedSeqlock(n) => format!("+shards={n}"),
            IngestMode::Sharded(n) => format!("+shards={n}(shared)"),
            IngestMode::ShardedReplicated(n) => format!("+shards={n}(replicated)"),
        }
    }
}

/// The per-shard access-batch capacity selected by `FT_BATCH` (default
/// 1 = unbatched); applies to the sharded ingestion modes only.
pub fn batch_from_env() -> usize {
    env_or("FT_BATCH", 1usize).max(1)
}

/// The outcome of one online run.
#[derive(Clone, Debug)]
pub struct OnlineRun {
    /// Configuration label.
    pub label: String,
    /// Mean transaction latency (raw — includes preemption stalls).
    pub mean_latency: Duration,
    /// Mean latency in microseconds with the slowest 1% of transactions
    /// excluded — the statistic configurations are compared by. On a
    /// time-shared host the raw mean is dominated by workers descheduled
    /// mid-critical-section (millisecond stalls against a microsecond
    /// metric), which made shard sweeps non-monotonic while p50/p95
    /// stayed flat; see `LatencyStats::trimmed_mean_us`.
    pub trimmed_mean_us: f64,
    /// Median (p50) transaction latency, microseconds.
    pub p50_us: u64,
    /// Tail (p95) transaction latency, microseconds.
    pub p95_us: u64,
    /// Deep-tail (p99) transaction latency, microseconds — where the
    /// preemption stalls the trimmed mean excludes become visible.
    pub p99_us: u64,
    /// Race reports (empty for NT/ET).
    pub reports: Vec<RaceReport>,
    /// Detector counters (zeroed for NT; merged across shards for
    /// sharded runs — see [`Counters::merge`]).
    pub counters: Counters,
}

/// Runs one online configuration over a workload mix, on the ingestion
/// path selected by `FT_SHARDS` (see [`IngestMode::from_env`]).
///
/// To tame scheduler noise the measurement repeats `FT_RUNS` times
/// (default 2) and keeps the run with the lowest 1%-trimmed mean
/// latency, as latency benchmarks conventionally do.
pub fn run_online(workload: &DbWorkload, config: OnlineConfig, options: &RunOptions) -> OnlineRun {
    run_online_with(
        workload,
        config,
        options,
        IngestMode::from_env(),
        env_or("FT_RUNS", 2u32),
    )
}

/// [`run_online`] with an explicit ingestion mode and repeat count —
/// the single parameterized entry point every harness shares.
///
/// Repeats the measurement `runs` times (clamped to at least one),
/// bumping the seed each round, and keeps the run with the lowest
/// 1%-trimmed mean latency. Pass `runs = 1` for one un-repeated run — the building
/// block for harnesses that do their own interleaved repetition, like
/// `record_baseline --dbsim` (on a time-shared host, back-to-back
/// blocks per configuration confound the comparison with machine
/// drift; interleaving rounds and taking per-point minima does not).
pub fn run_online_with(
    workload: &DbWorkload,
    config: OnlineConfig,
    options: &RunOptions,
    mode: IngestMode,
    runs: u32,
) -> OnlineRun {
    let mut best: Option<OnlineRun> = None;
    for i in 0..runs.max(1) {
        let mut opts = *options;
        opts.seed = options.seed.wrapping_add(i as u64);
        let run = run_online_once(workload, config, &opts, mode);
        if best
            .as_ref()
            .map_or(true, |b| run.trimmed_mean_us < b.trimmed_mean_us)
        {
            best = Some(run);
        }
    }
    best.expect("at least one run")
}

fn run_online_once(
    workload: &DbWorkload,
    config: OnlineConfig,
    options: &RunOptions,
    mode: IngestMode,
) -> OnlineRun {
    let label = config.label();
    let seed = options.seed;
    match config {
        OnlineConfig::Nt => {
            let stats = run_benchmark(workload, options, std::sync::Arc::new(NoInstrument));
            OnlineRun {
                label,
                mean_latency: Duration::from_nanos((stats.mean_us() * 1_000.0) as u64),
                trimmed_mean_us: stats.trimmed_mean_us(0.01),
                p50_us: stats.percentile_us(50.0),
                p95_us: stats.percentile_us(95.0),
                p99_us: stats.percentile_us(99.0),
                reports: Vec::new(),
                counters: Counters::new(),
            }
        }
        OnlineConfig::Et => finish(label, workload, options, EmptyDetector::new(), mode),
        // The full-detection baseline uses the same vector-clock access
        // histories as the sampling engines (Djit+), mirroring the
        // weight of TSan's shadow-memory access analysis; FastTrack's
        // epoch fast paths would make full access analysis unrealistically
        // cheap relative to this substrate's sampling engines.
        OnlineConfig::Ft => finish(
            label,
            workload,
            options,
            DjitDetector::new(AlwaysSampler::new()),
            mode,
        ),
        // ST uses Djit+ access histories like SU/SO, so the three
        // sampling configurations differ *only* in their synchronization
        // handlers — the paper's "more accurate baseline" setup
        // (Section 6.2.2).
        OnlineConfig::St(r) => finish(
            label,
            workload,
            options,
            DjitDetector::new(BernoulliSampler::new(r, seed)),
            mode,
        ),
        OnlineConfig::Su(r) => finish(
            label,
            workload,
            options,
            FreshnessDetector::new(BernoulliSampler::new(r, seed)),
            mode,
        ),
        OnlineConfig::So(r) => finish(
            label,
            workload,
            options,
            OrderedListDetector::new(BernoulliSampler::new(r, seed)),
            mode,
        ),
    }
}

/// Fixed clock width, like TSan v3's 256-entry vector clocks (the paper
/// disables slot preemption, so the width is constant). Default 64 — the
/// paper's machine had 64 concurrently runnable threads.
pub fn clock_width() -> usize {
    env_or("FT_CLOCK_WIDTH", 64)
}

fn finish<D: freshtrack_core::SplitDetector + 'static>(
    label: String,
    workload: &DbWorkload,
    options: &RunOptions,
    mut detector: D,
    mode: IngestMode,
) -> OnlineRun {
    detector.reserve_threads(clock_width());
    let batch = batch_from_env();
    let (stats, reports, counters) = match mode {
        IngestMode::SingleMutex => {
            let (stats, detector, reports) = run_detector(workload, options, detector);
            (stats, reports, *detector.counters())
        }
        IngestMode::ShardedSeqlock(shards) => run_sharded(
            workload,
            options,
            detector,
            shards,
            SyncMode::Seqlock,
            batch,
        ),
        IngestMode::Sharded(shards) => {
            run_sharded(workload, options, detector, shards, SyncMode::Shared, batch)
        }
        IngestMode::ShardedReplicated(shards) => run_sharded(
            workload,
            options,
            detector,
            shards,
            SyncMode::Replicated,
            batch,
        ),
    };
    OnlineRun {
        label,
        mean_latency: Duration::from_nanos((stats.mean_us() * 1_000.0) as u64),
        trimmed_mean_us: stats.trimmed_mean_us(0.01),
        p50_us: stats.percentile_us(50.0),
        p95_us: stats.percentile_us(95.0),
        p99_us: stats.percentile_us(99.0),
        reports,
        counters,
    }
}

/// Distinct racy locations in a report list (Fig. 6(a)'s metric).
pub fn racy_locations(reports: &[RaceReport]) -> usize {
    let mut vars: Vec<_> = reports.iter().map(|r| r.var).collect();
    vars.sort_unstable();
    vars.dedup();
    vars.len()
}

/// The shared sync-cost isolation driver: one single-threaded,
/// sync-heavy event mix used by **both** the `sync_cost` criterion
/// bench and `record_baseline --sync-cost`, so the interactive numbers
/// and the recorded `BENCH_sync_cost.json` always measure the same
/// workload.
pub mod sync_stream {
    use freshtrack_core::{
        Detector, OnlineDetector, ShardedOnlineDetector, SplitDetector, SyncMode,
    };

    /// Virtual application threads issuing the stream.
    pub const THREADS: u32 = 8;
    /// Locks; fewer than threads so hand-off crosses threads and
    /// acquires do real join work.
    pub const LOCKS: u32 = 4;

    /// The ingestion surface both façades share.
    pub trait Ingest {
        /// Feeds a read of `var` by `tid`.
        fn read(&self, tid: u32, var: u32);
        /// Feeds a write of `var` by `tid`.
        fn write(&self, tid: u32, var: u32);
        /// Feeds an acquire of `lock` by `tid`.
        fn acquire(&self, tid: u32, lock: u32);
        /// Feeds a release of `lock` by `tid`.
        fn release(&self, tid: u32, lock: u32);
    }

    impl<D: Detector + Send> Ingest for OnlineDetector<D> {
        fn read(&self, tid: u32, var: u32) {
            OnlineDetector::read(self, tid, var);
        }
        fn write(&self, tid: u32, var: u32) {
            OnlineDetector::write(self, tid, var);
        }
        fn acquire(&self, tid: u32, lock: u32) {
            OnlineDetector::acquire(self, tid, lock);
        }
        fn release(&self, tid: u32, lock: u32) {
            OnlineDetector::release(self, tid, lock);
        }
    }

    impl<D: SplitDetector + 'static> Ingest for ShardedOnlineDetector<D> {
        fn read(&self, tid: u32, var: u32) {
            ShardedOnlineDetector::read(self, tid, var);
        }
        fn write(&self, tid: u32, var: u32) {
            ShardedOnlineDetector::write(self, tid, var);
        }
        fn acquire(&self, tid: u32, lock: u32) {
            ShardedOnlineDetector::acquire(self, tid, lock);
        }
        fn release(&self, tid: u32, lock: u32) {
            ShardedOnlineDetector::release(self, tid, lock);
        }
    }

    /// Either ingestion façade behind one constructor — the shape the
    /// measurement harnesses sweep over.
    // One façade per sweep point, alive for the whole point; the size
    // spread vs the mutex baseline wastes nothing worth boxing for.
    #[allow(clippy::large_enum_variant)]
    pub enum Facade<D: SplitDetector + 'static> {
        /// The single-mutex [`OnlineDetector`] baseline.
        Mutex(OnlineDetector<D>),
        /// A [`ShardedOnlineDetector`] in some [`SyncMode`].
        Sharded(ShardedOnlineDetector<D>),
    }

    impl<D: SplitDetector + 'static> Facade<D> {
        /// Builds the façade for one sweep point: `None` is the
        /// single-mutex baseline, `Some((mode, n))` a sharded detector.
        pub fn new(detector: D, point: Option<(SyncMode, usize)>) -> Self {
            Facade::new_batched(detector, point, 1)
        }

        /// Like [`Facade::new`], but sharded points buffer up to `batch`
        /// accesses per shard-lock acquisition (the single-mutex
        /// baseline has no batching; `batch` is ignored there).
        pub fn new_batched(detector: D, point: Option<(SyncMode, usize)>, batch: usize) -> Self {
            match point {
                None => Facade::Mutex(OnlineDetector::new(detector)),
                Some((mode, n)) => Facade::Sharded(ShardedOnlineDetector::with_options(
                    detector, n, mode, batch,
                )),
            }
        }
    }

    impl<D: SplitDetector + 'static> Ingest for Facade<D> {
        fn read(&self, tid: u32, var: u32) {
            match self {
                Facade::Mutex(f) => Ingest::read(f, tid, var),
                Facade::Sharded(f) => Ingest::read(f, tid, var),
            }
        }
        fn write(&self, tid: u32, var: u32) {
            match self {
                Facade::Mutex(f) => Ingest::write(f, tid, var),
                Facade::Sharded(f) => Ingest::write(f, tid, var),
            }
        }
        fn acquire(&self, tid: u32, lock: u32) {
            match self {
                Facade::Mutex(f) => Ingest::acquire(f, tid, lock),
                Facade::Sharded(f) => Ingest::acquire(f, tid, lock),
            }
        }
        fn release(&self, tid: u32, lock: u32) {
            match self {
                Facade::Mutex(f) => Ingest::release(f, tid, lock),
                Facade::Sharded(f) => Ingest::release(f, tid, lock),
            }
        }
    }

    /// Warm-up: one lock-protected write per thread, so `RelAfter_S`
    /// releases exist and clocks are non-trivial before measurement.
    pub fn warm_up<I: Ingest>(online: &I) {
        for t in 0..THREADS {
            online.acquire(t, t % LOCKS);
            online.write(t, t);
            online.release(t, t % LOCKS);
        }
    }

    /// The measured stream: `pairs` acquire/release pairs with
    /// cross-thread lock hand-off (thread `i % THREADS` takes lock
    /// `i % LOCKS`, so consecutive holders of a lock differ and
    /// acquires do real join work).
    pub fn drive_pairs<I: Ingest>(online: &I, pairs: u32) {
        for i in 0..pairs {
            online.acquire(i % THREADS, i % LOCKS);
            online.release(i % THREADS, i % LOCKS);
        }
    }
}

/// The shared access-cost isolation driver: one single-threaded,
/// access-heavy event mix used by `record_baseline --access-cost`, plus
/// the [`InlineDecision`](access_stream::InlineDecision) wrapper that
/// reconstructs the pre-hoist
/// "before" side (sampling decided inline, under the shard lock) so the
/// before/after pair always comes from one sitting.
pub mod access_stream {
    use freshtrack_core::{Counters, Detector, RaceReport, SplitDetector};
    use freshtrack_trace::{Event, EventId};

    use super::sync_stream::Ingest;

    /// Virtual application threads issuing the stream.
    pub const THREADS: u32 = 4;
    /// Variables touched round-robin; enough to spread across shards.
    pub const VARS: u32 = 64;
    /// An acquire/release pair is interleaved every this many accesses,
    /// so batched façades flush on the same cadence a real workload
    /// would force and `RelAfter_S` maintenance stays on the measured
    /// path. Small enough to matter, large enough (2/512 ≈ 0.4% of
    /// events) not to dominate the per-access quotient.
    pub const SYNC_EVERY: u32 = 512;

    /// Disables a detector's hoisted decider while forwarding
    /// everything else — the measurable "before" of the lock-free skip
    /// path (ARCHITECTURE.md invariant 10). A façade over
    /// `InlineDecision(d)` routes every access through slot admission,
    /// shard routing, and the shard (or batch) lock, and the engine
    /// decides membership inline — exactly the pre-hoist pipeline — so
    /// the access-cost trajectory can measure both sides of the same
    /// binary in one invocation.
    #[derive(Clone)]
    pub struct InlineDecision<D>(pub D);

    impl<D: Detector> Detector for InlineDecision<D> {
        fn process(&mut self, id: EventId, event: Event) -> Option<RaceReport> {
            self.0.process(id, event)
        }
        fn counters(&self) -> &Counters {
            self.0.counters()
        }
        fn name(&self) -> &'static str {
            self.0.name()
        }
        fn reserve_threads(&mut self, n: usize) {
            self.0.reserve_threads(n);
        }
        // `hoisted_decider` deliberately stays the `None` default: that
        // is the whole point of the wrapper.
    }

    impl<D: SplitDetector> SplitDetector for InlineDecision<D> {
        type Sync = D::Sync;
        type Access = D::Access;
        type View = D::View;
        fn split_sync(&self) -> Self::Sync {
            self.0.split_sync()
        }
        fn split_access(&self) -> Self::Access {
            self.0.split_access()
        }
    }

    /// Warm-up: one lock-protected read/write pair per thread, so
    /// clocks are non-trivial, shard state is allocated, and the branch
    /// predictor settles before measurement.
    pub fn warm_up<I: Ingest>(online: &I) {
        for t in 0..THREADS {
            online.acquire(t, 0);
            online.write(t, t % VARS);
            online.read(t, (t + 1) % VARS);
            online.release(t, 0);
        }
    }

    /// The measured stream: `accesses` read/write events (alternating,
    /// threads and variables round-robin) with an acquire/release pair
    /// every [`SYNC_EVERY`] accesses. Returns the number of sync events
    /// issued, so callers can separate the access quotient's
    /// denominator from the event total.
    pub fn drive_accesses<I: Ingest>(online: &I, accesses: u32) -> u32 {
        let mut syncs = 0;
        for i in 0..accesses {
            let t = i % THREADS;
            if i % 2 == 0 {
                online.write(t, i % VARS);
            } else {
                online.read(t, i % VARS);
            }
            if i % SYNC_EVERY == SYNC_EVERY - 1 {
                online.acquire(t, 0);
                online.release(t, 0);
                syncs += 2;
            }
        }
        syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshtrack_workloads::benchbase;

    #[test]
    fn env_or_parses_and_defaults() {
        assert_eq!(env_or("FT_NO_SUCH_VAR", 7u32), 7);
    }

    #[test]
    fn labels() {
        assert_eq!(OnlineConfig::St(0.003).label(), "ST-0.3%");
        assert_eq!(OnlineConfig::So(0.1).label(), "SO-10%");
        assert_eq!(OnlineConfig::Nt.label(), "NT");
        assert_eq!(IngestMode::SingleMutex.label_suffix(), "");
        assert_eq!(IngestMode::ShardedSeqlock(4).label_suffix(), "+shards=4");
        assert_eq!(IngestMode::Sharded(4).label_suffix(), "+shards=4(shared)");
        assert_eq!(
            IngestMode::ShardedReplicated(2).label_suffix(),
            "+shards=2(replicated)"
        );
    }

    #[test]
    fn online_run_smoke() {
        let w = benchbase::by_name("sibench").unwrap();
        let opts = RunOptions {
            workers: 2,
            txns_per_worker: 30,
            seed: 1,
        };
        for cfg in [
            OnlineConfig::Nt,
            OnlineConfig::Et,
            OnlineConfig::Ft,
            OnlineConfig::So(0.03),
        ] {
            let run = run_online(&w, cfg, &opts);
            assert_eq!(run.label, cfg.label());
            assert!(run.p95_us >= run.p50_us);
        }
    }

    #[test]
    fn online_run_sharded_smoke() {
        let w = benchbase::by_name("sibench").unwrap();
        let opts = RunOptions {
            workers: 2,
            txns_per_worker: 30,
            seed: 1,
        };
        for mode in [
            IngestMode::ShardedSeqlock(1),
            IngestMode::ShardedSeqlock(4),
            IngestMode::Sharded(4),
            IngestMode::ShardedReplicated(4),
        ] {
            let run = run_online_with(&w, OnlineConfig::Ft, &opts, mode, 1);
            assert_eq!(run.label, "FT");
            assert_eq!(run.counters.races as usize, run.reports.len());
            assert_eq!(
                run.counters.events,
                run.counters.reads
                    + run.counters.writes
                    + run.counters.acquires
                    + run.counters.releases
            );
        }
    }
}
