//! Fig. 8 (appendix): releases processed (SU) or deep copies created
//! (SO), as a fraction of total releases, across the offline corpus.
//!
//! The paper's key observation: SO's deep copies are generally far fewer
//! than SU's processed releases — the shallow-copy protocol removes the
//! lock-count factor `L` from the complexity.

use freshtrack_bench::{offline_reps, offline_scale};
use freshtrack_rapid::report::{pct, Table};
use freshtrack_rapid::{run_offline, EngineConfig, EngineKind};
use freshtrack_workloads::corpus::corpus;

fn main() {
    let reps = offline_reps();
    let scale = offline_scale();
    let engines = [
        EngineConfig::new(EngineKind::Su, 0.03, 0),
        EngineConfig::new(EngineKind::So, 0.03, 0),
        EngineConfig::new(EngineKind::Su, 1.0, 0),
        EngineConfig::new(EngineKind::So, 1.0, 0),
    ];

    println!(
        "Fig. 8: releases processed (SU) / deep copies (SO) over total releases  \
         (reps={reps}, scale={scale})"
    );
    let benchmarks = corpus();
    let summaries = run_offline(&benchmarks, &engines, reps, scale);

    let mut table = Table::new(&["benchmark", "SU-(3%)", "SO-(3%)", "SU-(100%)", "SO-(100%)"]);
    let mut so_below_su = 0usize;
    for bench in &benchmarks {
        let get = |label: &str| {
            summaries
                .iter()
                .find(|s| s.benchmark == bench.name && s.engine == label)
                .expect("summary present")
        };
        let su3 = get("SU-(3%)").counters.release_processed_ratio();
        let so3 = get("SO-(3%)").counters.deep_copy_ratio();
        let su100 = get("SU-(100%)").counters.release_processed_ratio();
        let so100 = get("SO-(100%)").counters.deep_copy_ratio();
        if so3 <= su3 {
            so_below_su += 1;
        }
        table.row_owned(vec![
            bench.name.to_string(),
            pct(su3),
            pct(so3),
            pct(su100),
            pct(so100),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "SO-(3%) deep-copy ratio ≤ SU-(3%) processed ratio on {so_below_su}/26 benchmarks \
         (paper: generally much smaller)"
    );
}
