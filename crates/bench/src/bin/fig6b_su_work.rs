//! Fig. 6(b): work done by SU — how many acquire/release events
//! triggered an `O(T)` vector-clock operation, versus how many occurred.
//!
//! The paper's scatter shows most runs below the 50%-processed line
//! (i.e. SU skips more than half of all synchronization operations).

use freshtrack_bench::{run_online, run_options, OnlineConfig};
use freshtrack_rapid::report::{pct, Table};
use freshtrack_workloads::benchbase::benchbase_suite;

fn main() {
    let options = run_options();
    let rates = [0.003, 0.03, 0.10];

    println!(
        "Fig. 6(b): SU sync events handled vs occurred  (workers={}, txns/worker={})",
        options.workers, options.txns_per_worker
    );
    let mut table = Table::new(&[
        "benchmark",
        "rate",
        "acq+rel",
        "handled",
        "ratio",
        "<50%?",
        "<25%?",
    ]);
    let mut below50 = 0usize;
    let mut total = 0usize;

    for workload in benchbase_suite() {
        for &rate in &rates {
            let run = run_online(&workload, OnlineConfig::Su(rate), &options);
            let c = &run.counters;
            let occurred = c.acquires + c.releases;
            let handled = c.acquires_processed + c.releases_processed;
            let ratio = handled as f64 / occurred.max(1) as f64;
            total += 1;
            if ratio < 0.5 {
                below50 += 1;
            }
            table.row_owned(vec![
                workload.name.to_string(),
                format!("{}%", rate * 100.0),
                format!("{occurred}"),
                format!("{handled}"),
                pct(ratio),
                if ratio < 0.5 { "yes" } else { "no" }.into(),
                if ratio < 0.25 { "yes" } else { "no" }.into(),
            ]);
        }
    }
    print!("{}", table.render());
    println!();
    println!(
        "{below50}/{total} runs below the 50%-processed reference line \
         (paper: most runs skip >50%)"
    );
}
