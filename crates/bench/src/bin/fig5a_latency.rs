//! Fig. 5(a): relative average transaction latency of ET, FT and
//! ST-{0.3%, 3%, 10%} with respect to the uninstrumented baseline NT.
//!
//! The paper reports (MySQL/TSan): ET ≈ 3.1×, FT ≈ 9×, ST ≈ 4.5× / 5.1×
//! / 5.8× at the three rates. Expect the same *ordering* here
//! (NT < ET < ST-0.3% < ST-3% < ST-10% < FT); absolute factors depend on
//! the substrate.
//!
//! With `--out FILE`, additionally writes the absolute latencies as
//! machine-readable JSON (`freshtrack/dbsim-latency-table/v1`) so the
//! numbers land on the perf trajectory; `FT_SHARDS` selects the
//! ingestion path (see `record_baseline --dbsim` for the dedicated
//! single-mutex-vs-sharded scaling measurement).

use freshtrack_bench::{run_online, run_options, IngestMode, OnlineConfig, OnlineRun};
use freshtrack_rapid::report::{fmt3, Table};
use freshtrack_workloads::benchbase::benchbase_suite;

fn json_row(benchmark: &str, run: &OnlineRun) -> String {
    format!(
        "    {{\"benchmark\": \"{}\", \"config\": \"{}\", \"mean_us\": {:.2}, \"p50_us\": {}, \"p95_us\": {}}}",
        benchmark,
        run.label,
        run.mean_latency.as_nanos() as f64 / 1_000.0,
        run.p50_us,
        run.p95_us
    )
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = Some(args.next().expect("--out needs a value")),
            "--help" | "-h" => {
                eprintln!("fig5a_latency [--out FILE]   (env: FT_WORKERS/FT_TXNS/FT_SEED/FT_RUNS/FT_SHARDS)");
                return;
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    let options = run_options();
    let mode = IngestMode::from_env();
    let configs = [
        OnlineConfig::Nt,
        OnlineConfig::Et,
        OnlineConfig::Ft,
        OnlineConfig::St(0.003),
        OnlineConfig::St(0.03),
        OnlineConfig::St(0.10),
    ];

    println!(
        "Fig. 5(a): latency relative to NT  (workers={}, txns/worker={}{})",
        options.workers,
        options.txns_per_worker,
        mode.label_suffix()
    );
    let mut table = Table::new(&[
        "benchmark",
        "NT(us)",
        "ET",
        "FT",
        "ST-0.3%",
        "ST-3%",
        "ST-10%",
    ]);
    let mut geo: Vec<f64> = vec![0.0; configs.len() - 1];
    let mut counted = 0usize;
    let mut json_rows: Vec<String> = Vec::new();

    for workload in benchbase_suite() {
        let runs: Vec<_> = configs
            .iter()
            .map(|&c| run_online(&workload, c, &options))
            .collect();
        let nt = runs[0].mean_latency.as_nanos().max(1) as f64;
        let mut cells = vec![workload.name.to_string(), fmt3(nt / 1_000.0)];
        for (i, run) in runs.iter().enumerate().skip(1) {
            let rel = run.mean_latency.as_nanos() as f64 / nt;
            geo[i - 1] += rel.ln();
            cells.push(fmt3(rel));
        }
        for run in &runs {
            json_rows.push(json_row(workload.name, run));
        }
        counted += 1;
        table.row_owned(cells);
    }

    let mut cells = vec!["geomean".to_string(), String::new()];
    for g in &geo {
        cells.push(fmt3((g / counted as f64).exp()));
    }
    table.row_owned(cells);
    print!("{}", table.render());
    println!();
    println!("expected shape: 1 < ET < ST-0.3% < ST-3% < ST-10% < FT");

    if let Some(path) = out_path {
        let (shards, sync_mode) = match mode {
            IngestMode::SingleMutex => (0, "none"),
            IngestMode::ShardedSeqlock(n) => (n, "seqlock"),
            IngestMode::Sharded(n) => (n, "shared"),
            IngestMode::ShardedReplicated(n) => (n, "replicated"),
        };
        let json = format!(
            "{{\n  \"schema\": \"freshtrack/dbsim-latency-table/v1\",\n  \
             \"workers\": {},\n  \"txns_per_worker\": {},\n  \"seed\": {},\n  \
             \"shards\": {},\n  \"sync_mode\": \"{}\",\n  \"note\": \"absolute per-transaction latencies; shards=0 means the single-mutex ingestion path; sync_mode tags the sharded sync-skeleton construction\",\n  \
             \"rows\": [\n{}\n  ]\n}}\n",
            options.workers,
            options.txns_per_worker,
            options.seed,
            shards,
            sync_mode,
            json_rows.join(",\n")
        );
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
