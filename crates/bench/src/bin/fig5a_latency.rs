//! Fig. 5(a): relative average transaction latency of ET, FT and
//! ST-{0.3%, 3%, 10%} with respect to the uninstrumented baseline NT.
//!
//! The paper reports (MySQL/TSan): ET ≈ 3.1×, FT ≈ 9×, ST ≈ 4.5× / 5.1×
//! / 5.8× at the three rates. Expect the same *ordering* here
//! (NT < ET < ST-0.3% < ST-3% < ST-10% < FT); absolute factors depend on
//! the substrate.

use freshtrack_bench::{run_online, run_options, OnlineConfig};
use freshtrack_rapid::report::{fmt3, Table};
use freshtrack_workloads::benchbase::benchbase_suite;

fn main() {
    let options = run_options();
    let configs = [
        OnlineConfig::Nt,
        OnlineConfig::Et,
        OnlineConfig::Ft,
        OnlineConfig::St(0.003),
        OnlineConfig::St(0.03),
        OnlineConfig::St(0.10),
    ];

    println!(
        "Fig. 5(a): latency relative to NT  (workers={}, txns/worker={})",
        options.workers, options.txns_per_worker
    );
    let mut table = Table::new(&[
        "benchmark",
        "NT(us)",
        "ET",
        "FT",
        "ST-0.3%",
        "ST-3%",
        "ST-10%",
    ]);
    let mut geo: Vec<f64> = vec![0.0; configs.len() - 1];
    let mut counted = 0usize;

    for workload in benchbase_suite() {
        let runs: Vec<_> = configs
            .iter()
            .map(|&c| run_online(&workload, c, &options))
            .collect();
        let nt = runs[0].mean_latency.as_nanos().max(1) as f64;
        let mut cells = vec![workload.name.to_string(), fmt3(nt / 1_000.0)];
        for (i, run) in runs.iter().enumerate().skip(1) {
            let rel = run.mean_latency.as_nanos() as f64 / nt;
            geo[i - 1] += rel.ln();
            cells.push(fmt3(rel));
        }
        counted += 1;
        table.row_owned(cells);
    }

    let mut cells = vec!["geomean".to_string(), String::new()];
    for g in &geo {
        cells.push(fmt3((g / counted as f64).exp()));
    }
    table.row_owned(cells);
    print!("{}", table.render());
    println!();
    println!("expected shape: 1 < ET < ST-0.3% < ST-3% < ST-10% < FT");
}
