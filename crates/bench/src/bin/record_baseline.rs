//! Records clock-operation baselines as machine-readable JSON.
//!
//! This is the measurement half of the repo's measure→optimize→document
//! loop (see `ARCHITECTURE.md` § Performance model): it times the clock
//! operations that dominate per-synchronization cost in the detectors —
//! the Djit+/FastTrack release copy, the SO release/acquire cycle over
//! [`SharedClock`], and ordered-list joins — and emits their medians as
//! JSON so successive PRs can record before/after trajectories.
//!
//! Usage:
//!
//! ```text
//! record_baseline --label before --out BENCH_before.json
//! # ...optimize...
//! record_baseline --label after --baseline BENCH_before.json \
//!     --out BENCH_clock_ops.json
//! ```
//!
//! With `--baseline`, the previous run is embedded under `runs.<label>`
//! and per-op `improvement_pct` (positive = faster) is computed from the
//! two medians. The ops mirror `crates/bench/benches/clock_ops.rs`; this
//! binary exists because the vendored criterion shim only prints text,
//! while the trajectory file must be diffable and machine-readable.
//!
//! A second mode, `--dbsim`, measures **end-to-end dbsim ingestion**
//! instead of clock ops: the single-mutex `OnlineDetector` baseline
//! against `ShardedOnlineDetector` at shard counts {1, 2, 4, 8}, for a
//! heavy-analysis config (FT) and a sampling config (SO-3%). Both sides
//! run in the same invocation — the same-sitting before/after pair the
//! trajectory files require — and land in a `shard_scaling` section:
//!
//! ```text
//! record_baseline --dbsim --out BENCH_dbsim_latency.json
//! ```
//!
//! A third mode, `--sync-cost`, isolates **per-sync-event ingestion
//! cost** (single-threaded feed, no contention) for the single-mutex
//! baseline and sharded ingestion at `N ∈ {1, 2, 4, 8}` under both
//! sync-skeleton constructions — the replicated "before" against the
//! two-plane "after", interleaved in one invocation so the pair comes
//! from one sitting:
//!
//! ```text
//! record_baseline --sync-cost --out BENCH_sync_cost.json
//! ```
//!
//! A fourth mode, `--trace-io`, measures **trace codec throughput**:
//! text vs binary (`.ftb`) parse/decode/write rates (events/s) and
//! file sizes over a corpus trace, both formats in one invocation
//! (interleaved best-of-rounds — one sitting by construction):
//!
//! ```text
//! record_baseline --trace-io --out BENCH_trace_io.json
//! ```
//!
//! A fifth mode, `--segments`, measures the **segmented `.ftb` v2
//! store**: v2 vs v1 encode throughput and size overhead, the
//! footer-seek open latency, checkpointed pipelined replay
//! (`analyze_segments`, jobs ∈ {1, 2}) against both the sequential
//! pass and the retired wave scheduler
//! (`analyze_segments_waves`, jobs = 1) over the same bytes, and the
//! `.ftc` incremental pair — a cold cached run vs a re-analysis that
//! resumes a sidecar left by a ~95% prefix of the same corpus (the
//! append case the cache exists for) — with report parity asserted
//! every round:
//!
//! ```text
//! record_baseline --segments --out BENCH_segments.json
//! ```
//!
//! A sixth mode, `--oracle`, measures the **streaming ground-truth
//! oracle** ([`freshtrack_core::StreamingOracle`]): events/s and
//! end-of-stream state footprint across window sizes (plus a reservoir
//! point), each point replaying identical `.ftb` v2 bytes and asserted
//! every round to reproduce the dense [`freshtrack_core::HbOracle`]'s
//! racy-event set verbatim — the O(N²)-bit oracle is also timed once
//! as the reference point the windowed checker exists to displace:
//!
//! ```text
//! record_baseline --oracle --out BENCH_oracle.json
//! ```
//!
//! A seventh mode, `--access-cost`, measures **per-access ingestion
//! cost** across sampling rates — the trajectory of the lock-free skip
//! path (ARCHITECTURE.md invariant 10). Every point is measured twice
//! in the same invocation: `inline_ns` wraps the detector in
//! [`freshtrack_bench::access_stream::InlineDecision`], which disables
//! the hoisted decider so every access pays slot admission, shard
//! routing, and the shard (or batch) lock before the engine decides
//! inline (the pre-hoist pipeline); `hoisted_ns` is the current path,
//! where the pure `(seed, EventId)` decision runs before any lock and a
//! sampled-out access returns after two relaxed atomic bumps. Points:
//! rates {0, 0.003, 0.03, 1} × {single_mutex, seqlock N ∈ {1, 4}} ×
//! batch {1, 32}:
//!
//! ```text
//! record_baseline --access-cost --out BENCH_access_cost.json
//! record_baseline --access-cost --rounds 1     # CI smoke
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

use freshtrack_bench::{
    access_stream, env_or, run_online_with, run_options, sync_stream, IngestMode, OnlineConfig,
    OnlineRun,
};
use freshtrack_clock::{
    ClockSnapshot, FreshnessClock, OrderedList, SharedClock, ThreadId, VectorClock,
};
use freshtrack_core::{Detector, DjitDetector, OrderedListDetector, SplitDetector, SyncMode};
use freshtrack_sampling::{AlwaysSampler, BernoulliSampler};
use freshtrack_trace::{
    read_trace, read_trace_binary, write_trace, write_trace_binary, BinaryEventReader, EventReader,
    EventSource,
};
use freshtrack_workloads::{benchbase, corpus};

/// Thread count for the dense-clock ops (matches the criterion benches).
const THREADS: usize = 64;
/// Fresh-entry depth for the SO acquire partial traversal.
const D: usize = 16;

fn t(i: usize) -> ThreadId {
    ThreadId::new(i as u32)
}

fn dense_clock(offset: u64) -> VectorClock {
    (0..THREADS)
        .map(|i| (t(i), (i as u64 * 7 + offset) % 100 + 1))
        .collect()
}

fn dense_list(offset: u64) -> OrderedList {
    (0..THREADS)
        .map(|i| (t(i), (i as u64 * 7 + offset) % 100 + 1))
        .collect()
}

/// One measured sample: a timed batch of `iters` identical operations.
struct Sample {
    elapsed: Duration,
    iters: u64,
}

struct OpStats {
    name: &'static str,
    median_ns: f64,
    min_ns: f64,
    mean_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Times `batch` (which runs a prepared batch and reports its size),
/// returning per-iteration statistics over `samples` batches.
fn measure(name: &'static str, samples: usize, mut batch: impl FnMut() -> Sample) -> OpStats {
    // Warm-up: fill caches, trigger lazy allocation, settle the branch
    // predictor on the op's steady state.
    for _ in 0..3 {
        batch();
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let s = batch();
            s.elapsed.as_nanos() as f64 / s.iters.max(1) as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let median_ns = per_iter[per_iter.len() / 2];
    let min_ns = per_iter[0];
    let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let iters = batch().iters;
    eprintln!("{name:<32} median {median_ns:>9.1} ns/op  (min {min_ns:>9.1}, mean {mean_ns:>9.1})");
    OpStats {
        name,
        median_ns,
        min_ns,
        mean_ns,
        samples,
        iters_per_sample: iters,
    }
}

/// The Djit+/FastTrack release hot path: overwrite the lock clock with
/// the releasing thread's clock (`Cℓ ← C_t`). Alternates two sources so
/// every copy actually changes entries, like real releases do.
fn vc_release_copy(samples: usize) -> OpStats {
    let a = dense_clock(0);
    let b = dense_clock(3);
    let mut lock = VectorClock::new();
    measure("vc_release_copy_64", samples, move || {
        const K: u64 = 4096;
        let start = Instant::now();
        for i in 0..K {
            if i & 1 == 0 {
                lock.assign_from(&a);
            } else {
                lock.assign_from(&b);
            }
            black_box(&lock);
        }
        Sample {
            elapsed: start.elapsed(),
            iters: K,
        }
    })
}

/// Redundant-acquire join: the lock clock is already contained in the
/// thread clock, so the join scans but changes nothing — the common case
/// the freshness fast path exists to avoid entirely.
fn vc_join_redundant(samples: usize) -> OpStats {
    let lock = dense_clock(0);
    let mut thread = dense_clock(0);
    thread.join(&dense_clock(3));
    measure("vc_join_redundant_64", samples, move || {
        const K: u64 = 4096;
        let start = Instant::now();
        for _ in 0..K {
            black_box(thread.join(&lock));
        }
        Sample {
            elapsed: start.elapsed(),
            iters: K,
        }
    })
}

/// Dense ordered-list join: every entry of `other` improves `self`.
/// Inputs are re-cloned per batch (untimed) because a join saturates.
fn ordered_join_dense(samples: usize) -> OpStats {
    let base = dense_list(0);
    let mut fresh = dense_list(0);
    for i in 0..THREADS {
        fresh.set(t(i), 1_000 + i as u64);
    }
    measure("ordered_join_dense_64", samples, move || {
        const K: usize = 512;
        let mut targets: Vec<OrderedList> = (0..K).map(|_| base.clone()).collect();
        let start = Instant::now();
        for target in &mut targets {
            black_box(target.join(&fresh));
        }
        Sample {
            elapsed: start.elapsed(),
            iters: K as u64,
        }
    })
}

/// Sparse ordered-list join: only 4 of 64 entries improve, but the donor
/// list must still be traversed in full.
fn ordered_join_sparse(samples: usize) -> OpStats {
    let base = dense_list(0);
    let mut fresh = base.clone();
    for i in 0..4 {
        fresh.set(t(i * 16), 2_000 + i as u64);
    }
    measure("ordered_join_sparse_64", samples, move || {
        const K: usize = 512;
        let mut targets: Vec<OrderedList> = (0..K).map(|_| base.clone()).collect();
        let start = Instant::now();
        for target in &mut targets {
            black_box(target.join(&fresh));
        }
        Sample {
            elapsed: start.elapsed(),
            iters: K as u64,
        }
    })
}

/// The SO acquire partial join in isolation: the lock carries `D` fresh
/// entries at the head of its ordered list; the acquiring thread joins
/// exactly that prefix into its own (exclusively owned) clock and bumps
/// its freshness counter per learned entry — the inner loop of
/// `OrderedListDetector::handle_acquire`.
fn so_acquire_prefix(samples: usize) -> OpStats {
    let tid = t(0);
    let mut lock_template = dense_list(0);
    for i in 0..D {
        lock_template.set(t(THREADS - 1 - i), 5_000 + i as u64);
    }
    let mut lock = SharedClock::from_list(lock_template);
    let base = dense_list(0);
    let mut fresh_base = FreshnessClock::new();
    fresh_base.set(t(THREADS - 1), 1);
    measure("so_acquire_prefix_64_d16", samples, move || {
        const K: usize = 512;
        let mut threads: Vec<(SharedClock, FreshnessClock)> = (0..K)
            .map(|_| (SharedClock::from_list(base.clone()), fresh_base.clone()))
            .collect();
        let lock_list = lock.snapshot();
        let start = Instant::now();
        for (list, fresh) in &mut threads {
            // Mirrors OrderedListDetector::handle_acquire's prefix join.
            let res = list.join_prefix(lock_list.list(), D);
            fresh.bump_by(tid, res.changed as u64);
        }
        Sample {
            elapsed: start.elapsed(),
            iters: K as u64,
        }
    })
}

/// A full SO release/acquire cycle between two threads and two locks,
/// exercising every lazy-copy state: the releaser mutates its still-
/// shared clock (one deep copy), hands the lock an `O(1)` shallow
/// reference, and the acquirer — whose own clock is still aliased by the
/// *other* lock — partially joins the fresh prefix (second deep copy).
fn so_release_acquire(samples: usize) -> OpStats {
    struct Sim {
        tid: ThreadId,
        list: SharedClock,
        fresh: FreshnessClock,
    }
    let mk = |i: usize| Sim {
        tid: t(i),
        list: SharedClock::from_list(dense_list(i as u64)),
        fresh: FreshnessClock::new(),
    };
    let mut sims = [mk(0), mk(1)];
    let mut locks: [Option<ClockSnapshot>; 2] = [None, None];
    // Pre-share: each thread's clock starts aliased by "its" lock.
    locks[0] = Some(sims[0].list.snapshot());
    locks[1] = Some(sims[1].list.snapshot());
    let mut tick: u64 = 10_000;
    measure("so_release_acquire_64_d16", samples, move || {
        const K: usize = 512;
        let start = Instant::now();
        for round in 0..K {
            let (rel, acq) = (round & 1, (round & 1) ^ 1);
            // The releaser learned D fresh entries since its last
            // release (its clock is still aliased by lockₓ, so the
            // first write pays the lazy deep copy).
            for i in 0..D {
                tick += 1;
                sims[rel].list.set(t(8 + i), tick);
            }
            sims[rel].fresh.bump_by(sims[rel].tid, D as u64);
            // Release: O(1) shallow hand-off to the releaser's lock.
            locks[rel] = Some(sims[rel].list.snapshot());
            // Acquire: the other thread joins the fresh prefix; its own
            // clock is aliased by its lock, so the (single) batch
            // copy-on-write resolution deep-copies.
            let acq_tid = sims[acq].tid;
            let donor = locks[rel].as_ref().expect("released").list();
            let res = sims[acq].list.join_prefix(donor, D);
            sims[acq].fresh.bump_by(acq_tid, res.changed as u64);
        }
        Sample {
            elapsed: start.elapsed(),
            iters: K as u64,
        }
    })
}

/// Context: single hot `set` (arena write + move-to-front relink).
fn ordered_set_hot(samples: usize) -> OpStats {
    let mut list = dense_list(0);
    let mut v = 1_000u64;
    measure("ordered_set_hot_64", samples, move || {
        const K: u64 = 4096;
        let start = Instant::now();
        for i in 0..K {
            v += 1;
            list.set(t((i % 61) as usize), v);
        }
        Sample {
            elapsed: start.elapsed(),
            iters: K,
        }
    })
}

/// Context: the `O(1)` release-side shallow copy (the pointer-sized
/// lock-facing snapshot detectors actually store).
fn shared_shallow_copy(samples: usize) -> OpStats {
    let mut base = SharedClock::from_list(dense_list(0));
    measure("shared_shallow_copy_64", samples, move || {
        const K: u64 = 4096;
        let start = Instant::now();
        for _ in 0..K {
            black_box(base.snapshot());
        }
        Sample {
            elapsed: start.elapsed(),
            iters: K,
        }
    })
}

/// Context: deep clone of a short (8-thread) list — the case inline
/// small-vec storage exists for.
fn ordered_clone_small(samples: usize) -> OpStats {
    let list: OrderedList = (0..8).map(|i| (t(i), i as u64 + 1)).collect();
    measure("ordered_clone_8", samples, move || {
        const K: u64 = 4096;
        let start = Instant::now();
        for _ in 0..K {
            black_box(list.clone());
        }
        Sample {
            elapsed: start.elapsed(),
            iters: K,
        }
    })
}

/// Context: building a short list from scratch (allocation pressure of
/// fresh per-thread/per-lock clocks).
fn ordered_build_small(samples: usize) -> OpStats {
    measure("ordered_build_8", samples, move || {
        const K: u64 = 4096;
        let start = Instant::now();
        for _ in 0..K {
            let mut l = OrderedList::new();
            for i in 0..8 {
                l.set(t(i), i as u64 + 1);
            }
            black_box(&l);
        }
        Sample {
            elapsed: start.elapsed(),
            iters: K,
        }
    })
}

fn run_all(samples: usize) -> Vec<OpStats> {
    vec![
        vc_release_copy(samples),
        vc_join_redundant(samples),
        ordered_join_dense(samples),
        ordered_join_sparse(samples),
        so_acquire_prefix(samples),
        so_release_acquire(samples),
        ordered_set_hot(samples),
        shared_shallow_copy(samples),
        ordered_clone_small(samples),
        ordered_build_small(samples),
    ]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn run_json(label: &str, ops: &[OpStats]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"freshtrack/clock-ops-run/v1\",\n");
    out.push_str(&format!("  \"label\": \"{}\",\n", json_escape(label)));
    out.push_str(&format!("  \"threads\": {THREADS},\n"));
    out.push_str(&format!("  \"acquire_depth\": {D},\n"));
    out.push_str("  \"ops\": {\n");
    for (i, op) in ops.iter().enumerate() {
        let comma = if i + 1 == ops.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{}\": {{\"median_ns\": {:.2}, \"min_ns\": {:.2}, \"mean_ns\": {:.2}, \"samples\": {}, \"iters_per_sample\": {}}}{}\n",
            op.name, op.median_ns, op.min_ns, op.mean_ns, op.samples, op.iters_per_sample, comma
        ));
    }
    out.push_str("  }\n}");
    out
}

/// Extracts `(op, median_ns)` pairs from a previous run's JSON. Only
/// this binary's own output shape is supported — enough to compute
/// improvements without a JSON parser dependency.
fn parse_medians(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim();
        let Some((name_part, rest)) = line.split_once("\": {\"median_ns\": ") else {
            continue;
        };
        let name = name_part.trim_start_matches('"');
        let median: f64 = rest
            .split(',')
            .next()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(f64::NAN);
        if median.is_finite() {
            out.push((name.to_string(), median));
        }
    }
    out
}

/// Extracts the `"label"` of a previous run's JSON (defaults to
/// `"before"`).
fn parse_label(json: &str) -> String {
    json.lines()
        .find_map(|l| {
            l.trim()
                .strip_prefix("\"label\": \"")
                .and_then(|rest| rest.split('"').next())
        })
        .unwrap_or("before")
        .to_string()
}

fn indent(block: &str, pad: &str) -> String {
    block
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("{pad}{l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Shard counts for the `--dbsim` scaling sweep.
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn dbsim_point_json(run: &OnlineRun) -> String {
    format!(
        "{{\"mean_us\": {:.2}, \"trimmed_mean_us\": {:.2}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"races\": {}}}",
        run.mean_latency.as_nanos() as f64 / 1_000.0,
        run.trimmed_mean_us,
        run.p50_us,
        run.p95_us,
        run.p99_us,
        run.reports.len()
    )
}

/// The `--dbsim` mode: single-mutex vs sharded dbsim latency, with
/// both sync-skeleton constructions (two-plane and replicated) in the
/// shard sweep.
///
/// All points (both configs, the single-mutex baseline and every shard
/// count × sync mode) are measured in **interleaved rounds** —
/// round-robin over the whole point set, `FT_ROUNDS` times — and each
/// point keeps its best round by 1%-trimmed mean (the raw mean is
/// hostage to lock-holder preemption on a time-shared host — see
/// `LatencyStats::trimmed_mean_us`). Sequential per-configuration blocks
/// would confound the comparison with machine drift on a time-shared
/// host; an interleaved minimum is the drift-robust estimator of each
/// point's unperturbed latency, and all points still come from one
/// sitting.
fn run_dbsim_scaling(mix: &str, out_path: Option<String>) {
    let workload =
        benchbase::by_name(mix).unwrap_or_else(|| panic!("unknown workload mix `{mix}`"));
    let options = run_options();
    let rounds = env_or("FT_ROUNDS", 6u32).max(1);
    let configs = [OnlineConfig::Ft, OnlineConfig::So(0.03)];
    let modes: Vec<IngestMode> = std::iter::once(IngestMode::SingleMutex)
        .chain(SHARD_SWEEP.iter().map(|&n| IngestMode::Sharded(n)))
        .chain(
            SHARD_SWEEP
                .iter()
                .map(|&n| IngestMode::ShardedReplicated(n)),
        )
        .chain(SHARD_SWEEP.iter().map(|&n| IngestMode::ShardedSeqlock(n)))
        .collect();

    // best[c][m] = fastest run so far for configs[c] under modes[m].
    let mut best: Vec<Vec<Option<OnlineRun>>> = vec![vec![None; modes.len()]; configs.len()];
    for round in 0..rounds {
        eprintln!("round {}/{rounds}…", round + 1);
        for (c, &config) in configs.iter().enumerate() {
            for (m, &mode) in modes.iter().enumerate() {
                let mut opts = options;
                opts.seed = options.seed.wrapping_add(round as u64);
                let run = run_online_with(&workload, config, &opts, mode, 1);
                let slot = &mut best[c][m];
                if slot
                    .as_ref()
                    .map_or(true, |b| run.trimmed_mean_us < b.trimmed_mean_us)
                {
                    *slot = Some(run);
                }
            }
        }
    }

    let mut sections = Vec::new();
    for (c, &config) in configs.iter().enumerate() {
        let label = config.label();
        let base = best[c][0].as_ref().expect("at least one round");
        let base_us = base.trimmed_mean_us;
        eprintln!("[{label}] single_mutex  trimmed mean {base_us:>9.1} us");
        let mut shared_lines = Vec::new();
        let mut replicated_lines = Vec::new();
        let mut seqlock_lines = Vec::new();
        for (m, mode) in modes.iter().enumerate().skip(1) {
            let (n, tag, lines) = match mode {
                IngestMode::Sharded(n) => (n, "shared", &mut shared_lines),
                IngestMode::ShardedReplicated(n) => (n, "replicated", &mut replicated_lines),
                IngestMode::ShardedSeqlock(n) => (n, "seqlock", &mut seqlock_lines),
                IngestMode::SingleMutex => {
                    unreachable!("mode list starts with the single-mutex baseline")
                }
            };
            let run = best[c][m].as_ref().expect("at least one round");
            let us = run.trimmed_mean_us;
            let speedup = base_us / us.max(0.001);
            eprintln!(
                "[{label}] sharded n={n:<2} ({tag:<10})  trimmed mean {us:>9.1} us  ({speedup:.2}x vs mutex)"
            );
            lines.push(format!("          \"{}\": {}", n, dbsim_point_json(run)));
        }
        sections.push(format!(
            "    \"{}\": {{\n      \"single_mutex\": {},\n      \"shard_scaling\": {{\n        \"shared\": {{\n{}\n        }},\n        \"replicated\": {{\n{}\n        }},\n        \"seqlock\": {{\n{}\n        }}\n      }}\n    }}",
            json_escape(&label),
            dbsim_point_json(base),
            shared_lines.join(",\n"),
            replicated_lines.join(",\n"),
            seqlock_lines.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"schema\": \"freshtrack/dbsim-latency/v3\",\n  \
         \"benchmark\": \"dbsim_shard_scaling\",\n  \
         \"workload\": \"{}\",\n  \"workers\": {},\n  \"txns_per_worker\": {},\n  \
         \"seed\": {},\n  \"rounds\": {},\n  \"batch\": {},\n  \
         \"note\": \"per-transaction latency in us; single_mutex is the paper-faithful OnlineDetector path, shard_scaling.shared.N is the two-plane ShardedOnlineDetector with mutex-slot views, shard_scaling.seqlock.N the lock-free seqlock publication (FT_BATCH accesses per shard-lock acquisition), shard_scaling.replicated.N the legacy replicated-skeleton construction; every point is the best of FT_ROUNDS interleaved rounds by trimmed_mean_us (mean over the fastest 99% of transactions) — the comparison statistic, because on this time-shared 1-core host the raw mean is dominated by workers descheduled mid-critical-section (the v2 file's non-monotonic shard sweep, e.g. shared N=2 slower than N=4, was exactly this preemption tail: p50/p95 were flat across N and hash-routing balance was verified to within 0.2%); p99_us shows where that tail begins\",\n  \
         \"configs\": {{\n{}\n  }}\n}}\n",
        json_escape(mix),
        options.workers,
        options.txns_per_worker,
        options.seed,
        rounds,
        freshtrack_bench::batch_from_env(),
        sections.join(",\n")
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

/// One sync-cost sweep point: builds the façade, warms up, and times
/// the shared sync-heavy stream ([`freshtrack_bench::sync_stream`]) —
/// the same mix the `sync_cost` criterion bench drives, so the
/// recorded JSON and the interactive bench stay comparable. Returns ns
/// per sync event.
/// Acquire/release pairs per `--sync-cost` measurement round.
const SYNC_COST_PAIRS: u32 = 20_000;

fn sync_cost_point<D: SplitDetector + 'static>(
    detector: D,
    point: Option<(SyncMode, usize)>,
) -> f64 {
    let facade = sync_stream::Facade::new(detector, point);
    if let sync_stream::Facade::Sharded(f) = &facade {
        f.reserve_threads(freshtrack_bench::clock_width());
    }
    sync_stream::warm_up(&facade);
    let start = Instant::now();
    sync_stream::drive_pairs(&facade, SYNC_COST_PAIRS);
    let elapsed = start.elapsed();
    elapsed.as_nanos() as f64 / (2 * SYNC_COST_PAIRS) as f64
}

/// The `--sync-cost` mode: isolated per-sync-event ingestion cost of
/// the single-mutex baseline vs sharded ingestion at `N ∈ {1, 2, 4, 8}`
/// under **both** sync-skeleton constructions. The replicated series is
/// the "before", the two-plane (shared) series the "after", measured in
/// interleaved rounds in one invocation — one sitting by construction.
/// The claim this records: replicated cost grows `O(N)`, two-plane cost
/// is flat in `N`.
fn run_sync_cost(out_path: Option<String>) {
    let rounds = env_or("FT_ROUNDS", 7u32).max(1);
    let width = freshtrack_bench::clock_width();

    type Point = (&'static str, Option<(SyncMode, usize)>);
    let mut points: Vec<Point> = vec![("single_mutex", None)];
    for &n in &SHARD_SWEEP {
        points.push(("replicated", Some((SyncMode::Replicated, n))));
    }
    for &n in &SHARD_SWEEP {
        points.push(("shared", Some((SyncMode::Shared, n))));
    }
    for &n in &SHARD_SWEEP {
        points.push(("seqlock", Some((SyncMode::Seqlock, n))));
    }

    let configs: [&str; 2] = ["FT", "SO-3%"];
    // best[config][point] = fastest ns/sync-event over the rounds.
    let mut best = vec![vec![f64::INFINITY; points.len()]; configs.len()];
    for round in 0..rounds {
        eprintln!("sync-cost round {}/{rounds}…", round + 1);
        for (c, _name) in configs.iter().enumerate() {
            for (p, &(_, point)) in points.iter().enumerate() {
                let ns = if c == 0 {
                    let mut d = DjitDetector::new(AlwaysSampler::new());
                    d.reserve_threads(width);
                    sync_cost_point(d, point)
                } else {
                    let mut d = OrderedListDetector::new(BernoulliSampler::new(0.03, 7));
                    d.reserve_threads(width);
                    sync_cost_point(d, point)
                };
                if ns < best[c][p] {
                    best[c][p] = ns;
                }
            }
        }
    }

    let mut sections = Vec::new();
    for (c, name) in configs.iter().enumerate() {
        eprintln!("[{name}] single_mutex  {:>8.1} ns/sync-event", best[c][0]);
        let series = |tag: &str| -> String {
            points
                .iter()
                .enumerate()
                .filter(|(_, (t, m))| *t == tag && m.is_some())
                .map(|(p, (_, m))| {
                    let (_, n) = m.expect("filtered to sharded points");
                    eprintln!(
                        "[{name}] {tag:<10} n={n:<2} {:>8.1} ns/sync-event",
                        best[c][p]
                    );
                    format!("        \"{}\": {:.1}", n, best[c][p])
                })
                .collect::<Vec<_>>()
                .join(",\n")
        };
        let replicated = series("replicated");
        let shared = series("shared");
        let seqlock = series("seqlock");
        sections.push(format!(
            "    \"{}\": {{\n      \"single_mutex\": {:.1},\n      \"replicated\": {{\n{}\n      }},\n      \"shared\": {{\n{}\n      }},\n      \"seqlock\": {{\n{}\n      }}\n    }}",
            json_escape(name),
            best[c][0],
            replicated,
            shared,
            seqlock
        ));
    }

    let json = format!(
        "{{\n  \"schema\": \"freshtrack/sync-cost/v2\",\n  \"benchmark\": \"sync_cost\",\n  \
         \"threads\": {},\n  \"locks\": {},\n  \"clock_width\": {width},\n  \
         \"sync_events_per_round\": {},\n  \"rounds\": {rounds},\n  \
         \"note\": \"ns per sync event, single-threaded feed (isolation, no contention); replicated.N is the before (PR 3 sync fan-out, O(N)), shared.N the PR 4 two-plane shared sync engine with mutex-slot view publication (flat in N), seqlock.N the PR 8 lock-free seqlock publication (flat in N, no slot mutex); every point is the fastest of FT_ROUNDS interleaved rounds, all in one sitting\",\n  \
         \"configs\": {{\n{}\n  }}\n}}\n",
        sync_stream::THREADS,
        sync_stream::LOCKS,
        2 * SYNC_COST_PAIRS,
        sections.join(",\n")
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

/// The `--trace-io` mode: text vs binary codec throughput (events/s)
/// and file size over a corpus trace. Both formats are measured in
/// interleaved rounds (each point keeps its fastest round) in one
/// invocation, so the comparison comes from one sitting by
/// construction. `FT_TRACE_BENCH`/`FT_TRACE_SCALE` pick the corpus
/// trace; `FT_ROUNDS` the round count.
fn run_trace_io(out_path: Option<String>) {
    let bench_name = std::env::var("FT_TRACE_BENCH").unwrap_or_else(|_| "derby".to_owned());
    let scale = std::env::var("FT_TRACE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0f64);
    let rounds = env_or("FT_ROUNDS", 7u32).max(1);
    let bench = corpus::by_name(&bench_name)
        .unwrap_or_else(|| panic!("unknown corpus benchmark `{bench_name}`"));
    let trace = bench.trace(scale, 0);
    let events = trace.len() as f64;
    let text = write_trace(&trace);
    let mut binary = Vec::new();
    write_trace_binary(&trace, &mut binary).expect("in-memory write");

    // (name, op) pairs; each op runs one full pass and returns the
    // event count it touched (drives the events/s denominator and
    // defeats dead-code elimination).
    type Op<'a> = (&'static str, Box<dyn FnMut() -> usize + 'a>);
    let mut ops: Vec<Op> = vec![
        (
            "text_parse",
            Box::new(|| read_trace(&text).expect("well-formed").len()),
        ),
        (
            "binary_decode",
            Box::new(|| read_trace_binary(&binary).expect("well-formed").len()),
        ),
        (
            "text_stream",
            Box::new(|| {
                let mut reader = EventReader::new(text.as_bytes());
                let mut n = 0usize;
                while let Some(e) = reader.next_event().expect("well-formed") {
                    black_box(e);
                    n += 1;
                }
                n
            }),
        ),
        (
            "binary_stream",
            Box::new(|| {
                let mut reader = BinaryEventReader::new(&binary[..]).expect("magic");
                let mut n = 0usize;
                while let Some(e) = reader.next_event().expect("well-formed") {
                    black_box(e);
                    n += 1;
                }
                n
            }),
        ),
        (
            "text_write",
            Box::new(|| black_box(write_trace(&trace)).len() / 12),
        ),
        (
            "binary_write",
            Box::new(|| {
                let mut out = Vec::with_capacity(binary.len());
                write_trace_binary(&trace, &mut out).expect("in-memory write");
                black_box(out).len()
            }),
        ),
    ];

    // best[i] = fastest wall time for ops[i] across interleaved rounds.
    let mut best = vec![Duration::MAX; ops.len()];
    for round in 0..rounds {
        eprintln!("trace-io round {}/{rounds}…", round + 1);
        for (i, (_, op)) in ops.iter_mut().enumerate() {
            let start = Instant::now();
            black_box(op());
            let elapsed = start.elapsed();
            if elapsed < best[i] {
                best[i] = elapsed;
            }
        }
    }

    let mut lines = Vec::new();
    for (i, (name, _)) in ops.iter().enumerate() {
        let ev_per_s = events / best[i].as_secs_f64();
        eprintln!("{name:<16} {:>8.2} Mev/s", ev_per_s / 1e6);
        let comma = if i + 1 == ops.len() { "" } else { "," };
        lines.push(format!("    \"{name}\": {:.0}{comma}", ev_per_s));
    }

    let json = format!(
        "{{\n  \"schema\": \"freshtrack/trace-io/v1\",\n  \"benchmark\": \"trace_io\",\n  \
         \"trace\": {{\"corpus\": \"{}\", \"scale\": {scale}, \"seed\": 0, \"events\": {}, \
         \"threads\": {}, \"locks\": {}, \"vars\": {}}},\n  \
         \"sizes\": {{\"text_bytes\": {}, \"binary_bytes\": {}, \
         \"text_bytes_per_event\": {:.2}, \"binary_bytes_per_event\": {:.2}, \
         \"text_over_binary\": {:.2}}},\n  \"rounds\": {rounds},\n  \
         \"note\": \"events/s, fastest of FT_ROUNDS interleaved rounds in one sitting; \
         *_parse/_decode materialize a Trace, *_stream drain the EventSource without \
         materializing (the streaming analyze path), *_write serialize a materialized trace\",\n  \
         \"events_per_s\": {{\n{}\n  }}\n}}\n",
        json_escape(&bench_name),
        trace.len(),
        trace.thread_count(),
        trace.lock_count(),
        trace.var_count(),
        text.len(),
        binary.len(),
        text.len() as f64 / events,
        binary.len() as f64 / events,
        text.len() as f64 / binary.len() as f64,
        lines.join("\n")
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

/// The `--segments` mode: cost and payoff of the segmented `.ftb` v2
/// store against flat v1 — encode throughput and size overhead, the
/// footer-seek open latency, checkpointed pipelined replay
/// ([`freshtrack_core::analyze_segments`]) at jobs ∈ {1, 2} against
/// both the sequential streaming pass and the retired wave scheduler
/// over the *same* v2 bytes, and the `.ftc` incremental pair: a cold
/// cached run vs a warm re-analysis resuming the sidecar a ~95%
/// prefix of the corpus left behind (the append case
/// [`freshtrack_core::analyze_segments_cached`] exists for). All
/// points interleave rounds (fastest kept) in one invocation, and the
/// replay points cross-check report parity every round — a benchmark
/// that would happily time a wrong answer is worthless.
/// `FT_TRACE_BENCH`/`FT_TRACE_SCALE`/`FT_ROUNDS` as in `--trace-io`.
fn run_segments(out_path: Option<String>) {
    use freshtrack_core::{
        analyze_segments, analyze_segments_cached, analyze_segments_waves, CACHE_STATE_VERSION,
    };
    use freshtrack_trace::{
        write_trace_binary_v2, AnalysisCache, CacheConfig, SegmentOptions, SegmentedTraceFile,
        Validated,
    };

    let bench_name = std::env::var("FT_TRACE_BENCH").unwrap_or_else(|_| "derby".to_owned());
    let scale = std::env::var("FT_TRACE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0f64);
    let rounds = env_or("FT_ROUNDS", 5u32).max(1);
    let bench = corpus::by_name(&bench_name)
        .unwrap_or_else(|| panic!("unknown corpus benchmark `{bench_name}`"));
    let trace = bench.trace(scale, 0);
    let events = trace.len() as f64;
    let sampler = BernoulliSampler::new(0.03, 7);

    let mut v1 = Vec::new();
    write_trace_binary(&trace, &mut v1).expect("in-memory write");
    let options = SegmentOptions::default();
    let mut v2 = Vec::new();
    write_trace_binary_v2(&trace, &mut v2, &options).expect("in-memory write");
    let segment_count = SegmentedTraceFile::open(std::io::Cursor::new(&v2[..]))
        .expect("fresh v2 bytes")
        .segment_count();

    let expected = OrderedListDetector::new(sampler)
        .run_source(&mut Validated::new(
            BinaryEventReader::new(&v2[..]).expect("magic"),
        ))
        .expect("well-formed trace");

    // The incremental pair's "before" file: the same corpus cut at the
    // segment boundary nearest 95% of its events, so the warm run
    // replays only a ~5% appended tail. The pair uses finer segments
    // than the corpus default — the append case the cache exists for
    // is a long-lived growing trace, where checkpoint granularity,
    // not per-segment overhead, sets the replay floor. The cut goes
    // through the text normal form — non-directive lines map 1:1 to
    // events, so a line prefix is exactly the trace as it stood before
    // the append, and re-encoding it segments the shared prefix
    // byte-identically.
    let incr_options = SegmentOptions {
        events_per_segment: 1024,
    };
    let eps = incr_options.events_per_segment;
    let keep = ((trace.len() * 95 / 100 + eps / 2) / eps * eps).min((trace.len() - 1) / eps * eps);
    assert!(keep > 0, "corpus too small for an incremental pair");
    let mut v2_incr = Vec::new();
    write_trace_binary_v2(&trace, &mut v2_incr, &incr_options).expect("in-memory write");
    let text = write_trace(&trace);
    let mut events_seen = 0usize;
    let mut cut = 0usize;
    let mut offset = 0usize;
    for line in text.split_inclusive('\n') {
        offset += line.len();
        if !line.starts_with('#') && !line.trim().is_empty() {
            events_seen += 1;
            if events_seen == keep {
                cut = offset;
                break;
            }
        }
    }
    assert_eq!(events_seen, keep, "text normal form shorter than the trace");
    let short_trace = read_trace(&text[..cut]).expect("a prefix of a valid trace is valid");
    let mut v2_short = Vec::new();
    write_trace_binary_v2(&short_trace, &mut v2_short, &incr_options).expect("in-memory write");
    let cache_config = CacheConfig {
        engine: "so".to_owned(),
        sampler: "bernoulli:0.03:7".to_owned(),
        options: format!("events_per_segment={eps}"),
        state_version: CACHE_STATE_VERSION,
        jobs: 1,
    };
    let mut short_file =
        SegmentedTraceFile::open(std::io::Cursor::new(&v2_short[..])).expect("fresh v2 bytes");
    let short_segments = short_file.segment_count();
    let incr_segments = SegmentedTraceFile::open(std::io::Cursor::new(&v2_incr[..]))
        .expect("fresh v2 bytes")
        .segment_count();
    let prior_bytes = analyze_segments_cached(
        &mut short_file,
        &OrderedListDetector::new(sampler),
        &sampler,
        1,
        &cache_config,
        None,
    )
    .expect("well-formed trace")
    .cache
    .encode();
    let appended_events = trace.len() - keep;

    type Op<'a> = (&'static str, Box<dyn FnMut() -> usize + 'a>);
    let mut ops: Vec<Op> = vec![
        (
            "v1_encode",
            Box::new(|| {
                let mut out = Vec::with_capacity(v1.len());
                write_trace_binary(&trace, &mut out).expect("in-memory write");
                black_box(out).len()
            }),
        ),
        (
            "v2_encode",
            Box::new(|| {
                let mut out = Vec::with_capacity(v2.len());
                write_trace_binary_v2(&trace, &mut out, &options).expect("in-memory write");
                black_box(out).len()
            }),
        ),
        (
            "sequential_replay",
            Box::new(|| {
                let mut d = OrderedListDetector::new(sampler);
                let reports = d
                    .run_source(&mut Validated::new(
                        BinaryEventReader::new(&v2[..]).expect("magic"),
                    ))
                    .expect("well-formed trace");
                assert_eq!(reports, expected, "sequential replay must agree");
                reports.len()
            }),
        ),
        (
            "parallel_replay_jobs1",
            Box::new(|| {
                let mut file =
                    SegmentedTraceFile::open(std::io::Cursor::new(&v2[..])).expect("fresh bytes");
                let analysis =
                    analyze_segments(&mut file, &OrderedListDetector::new(sampler), &sampler, 1)
                        .expect("well-formed trace");
                assert_eq!(analysis.reports, expected, "jobs=1 replay must agree");
                analysis.reports.len()
            }),
        ),
        (
            "parallel_replay_jobs2",
            Box::new(|| {
                let mut file =
                    SegmentedTraceFile::open(std::io::Cursor::new(&v2[..])).expect("fresh bytes");
                let analysis =
                    analyze_segments(&mut file, &OrderedListDetector::new(sampler), &sampler, 2)
                        .expect("well-formed trace");
                assert_eq!(analysis.reports, expected, "jobs=2 replay must agree");
                analysis.reports.len()
            }),
        ),
        (
            "wave_replay_jobs1",
            Box::new(|| {
                let mut file =
                    SegmentedTraceFile::open(std::io::Cursor::new(&v2[..])).expect("fresh bytes");
                let analysis = analyze_segments_waves(
                    &mut file,
                    &OrderedListDetector::new(sampler),
                    &sampler,
                    1,
                )
                .expect("well-formed trace");
                assert_eq!(analysis.reports, expected, "wave jobs=1 replay must agree");
                analysis.reports.len()
            }),
        ),
        (
            "cached_cold_jobs1",
            Box::new(|| {
                let mut file = SegmentedTraceFile::open(std::io::Cursor::new(&v2_incr[..]))
                    .expect("fresh bytes");
                let cached = analyze_segments_cached(
                    &mut file,
                    &OrderedListDetector::new(sampler),
                    &sampler,
                    1,
                    &cache_config,
                    None,
                )
                .expect("well-formed trace");
                assert_eq!(cached.analysis.reports, expected, "cached cold must agree");
                assert_eq!(cached.reused_segments, 0, "a cold run reuses nothing");
                black_box(cached.cache.encode()).len()
            }),
        ),
        (
            "cached_incremental_jobs1",
            Box::new(|| {
                // Includes what a real warm run pays: sidecar decode,
                // prefix CRC validation, tail replay, sidecar encode.
                let prior = AnalysisCache::decode(&prior_bytes).expect("own encoding");
                let mut file = SegmentedTraceFile::open(std::io::Cursor::new(&v2_incr[..]))
                    .expect("fresh bytes");
                let cached = analyze_segments_cached(
                    &mut file,
                    &OrderedListDetector::new(sampler),
                    &sampler,
                    1,
                    &cache_config,
                    Some(&prior),
                )
                .expect("well-formed trace");
                assert_eq!(cached.analysis.reports, expected, "incremental must agree");
                assert_eq!(
                    cached.reused_segments, short_segments,
                    "the append must reuse every shared segment"
                );
                black_box(cached.cache.encode()).len()
            }),
        ),
    ];

    let mut best = vec![Duration::MAX; ops.len()];
    // Footer-seek open latency, measured separately (ns per open, many
    // opens per round — an open touches only the trailer + footer).
    let mut open_ns = f64::INFINITY;
    for round in 0..rounds {
        eprintln!("segments round {}/{rounds}…", round + 1);
        for (i, (_, op)) in ops.iter_mut().enumerate() {
            let start = Instant::now();
            black_box(op());
            let elapsed = start.elapsed();
            if elapsed < best[i] {
                best[i] = elapsed;
            }
        }
        const OPENS: u32 = 2_000;
        let start = Instant::now();
        for _ in 0..OPENS {
            black_box(
                SegmentedTraceFile::open(std::io::Cursor::new(&v2[..])).expect("fresh bytes"),
            );
        }
        let ns = start.elapsed().as_nanos() as f64 / OPENS as f64;
        if ns < open_ns {
            open_ns = ns;
        }
    }

    let mut lines = Vec::new();
    for (i, (name, _)) in ops.iter().enumerate() {
        let ev_per_s = events / best[i].as_secs_f64();
        eprintln!("{name:<24} {:>8.2} Mev/s", ev_per_s / 1e6);
        let comma = if i + 1 == ops.len() { "" } else { "," };
        lines.push(format!("    \"{name}\": {ev_per_s:.0}{comma}"));
    }
    eprintln!("footer_open             {open_ns:>8.1} ns/open");

    let secs = |name: &str| {
        let i = ops.iter().position(|(n, _)| *n == name).expect("known op");
        best[i].as_secs_f64()
    };
    let pipelined_vs_wave = secs("wave_replay_jobs1") / secs("parallel_replay_jobs1");
    let incremental_vs_cold = secs("cached_cold_jobs1") / secs("cached_incremental_jobs1");
    eprintln!("pipelined jobs1 is {pipelined_vs_wave:.2}x the wave scheduler");
    eprintln!(
        "incremental re-analysis ({appended_events} appended events, \
         {short_segments}/{incr_segments} segments reused) is {incremental_vs_cold:.2}x cold"
    );

    let json = format!(
        "{{\n  \"schema\": \"freshtrack/segments/v2\",\n  \"benchmark\": \"segments\",\n  \
         \"trace\": {{\"corpus\": \"{}\", \"scale\": {scale}, \"seed\": 0, \"events\": {}}},\n  \
         \"segment\": {{\"events_per_segment\": {}, \"segments\": {segment_count}}},\n  \
         \"sizes\": {{\"v1_bytes\": {}, \"v2_bytes\": {}, \"v2_overhead_pct\": {:.2}}},\n  \
         \"footer_open_ns\": {open_ns:.1},\n  \"rounds\": {rounds},\n  \
         \"pipeline\": {{\"jobs1_speedup_vs_wave\": {pipelined_vs_wave:.2}}},\n  \
         \"incremental\": {{\"events_per_segment\": {eps}, \
         \"appended_events\": {appended_events}, \
         \"appended_pct\": {:.2}, \"reused_segments\": {short_segments}, \
         \"total_segments\": {incr_segments}, \
         \"speedup_vs_cold\": {incremental_vs_cold:.2}}},\n  \
         \"note\": \"events/s, fastest of FT_ROUNDS interleaved rounds in one sitting; \
         replay points are the SO-3% engine over identical v2 bytes and assert \
         report parity with the sequential pass every round; footer_open_ns is the \
         cost of reading the trailer + footer index without touching segment data. \
         parallel_replay_jobsN is the bounded-channel pipeline (reader decodes \
         ahead, coordinator walks the sync plane, workers replay behind); at \
         jobs=1 it collapses to a single pass with no checkpoint round-trip, \
         and wave_replay_jobs1 keeps the retired barriered scheduler as the \
         comparison point. cached_cold_jobs1 runs the same pipeline while \
         recording a .ftc sidecar; cached_incremental_jobs1 resumes the sidecar \
         a ~95% prefix of the corpus left behind and replays only the appended \
         tail (sidecar decode, prefix CRC validation, and sidecar re-encode all \
         inside the timed region), asserting full reuse and report parity every \
         round; the cached pair segments at incremental.events_per_segment -- \
         a growing trace checkpoints at finer granularity than an archival \
         corpus file, since checkpoint spacing bounds the replay tail. v2_encode: per-segment batched CRC (slice-by-8 over the buffered \
         body, replacing per-varint checksumming that never reached the 8-byte \
         lanes), contiguous event-record writes, and the checkpoint tracker's \
         locality shortcuts lifted v2 encode from ~0.54x to ~0.6x of v1_encode; \
         the residual gap is the sync-queue feed, measured at ~7 ns/event on \
         this host even when reduced to one masked store + add (same-binary A/B \
         with the feed compiled out), so the no-tracker ceiling is ~0.85x v1 -- \
         and v1 itself swings 51-77 Mev/s with host load, so compare within one \
         sitting, not absolute Mev/s across files\",\n  \
         \"events_per_s\": {{\n{}\n  }}\n}}\n",
        json_escape(&bench_name),
        trace.len(),
        options.events_per_segment,
        v1.len(),
        v2.len(),
        (v2.len() as f64 / v1.len() as f64 - 1.0) * 100.0,
        appended_events as f64 / events * 100.0,
        lines.join("\n")
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

/// Accesses driven per `--access-cost` measurement round.
const ACCESS_COST_ACCESSES: u32 = 200_000;

/// One access-cost point: builds the façade (batched where sharded),
/// warms up, and times the shared access-heavy stream
/// ([`freshtrack_bench::access_stream`]). Returns ns per access event
/// — the quotient's denominator excludes the interleaved sync events
/// (0.4% of the stream), whose cost is treated as part of feeding a
/// realistic mix rather than subtracted out.
fn access_cost_point<D: SplitDetector + 'static>(
    detector: D,
    point: Option<(SyncMode, usize)>,
    batch: usize,
) -> f64 {
    let facade = sync_stream::Facade::new_batched(detector, point, batch);
    if let sync_stream::Facade::Sharded(f) = &facade {
        f.reserve_threads(access_stream::THREADS as usize);
    }
    access_stream::warm_up(&facade);
    let start = Instant::now();
    access_stream::drive_accesses(&facade, ACCESS_COST_ACCESSES);
    let elapsed = start.elapsed();
    elapsed.as_nanos() as f64 / f64::from(ACCESS_COST_ACCESSES)
}

/// The `--access-cost` mode: per-access ingestion cost across sampling
/// rates, each point measured with the hoisted decider enabled (the
/// lock-free skip path) *and* disabled ([`access_stream::InlineDecision`]
/// — the pre-hoist pipeline) in interleaved rounds, fastest kept — the
/// before/after pair comes from one sitting by construction.
fn run_access_cost(out_path: Option<String>, rounds_override: Option<u32>) {
    use freshtrack_bench::access_stream::InlineDecision;

    let rounds = rounds_override
        .unwrap_or_else(|| env_or("FT_ROUNDS", 5u32))
        .max(1);

    const RATES: [(&str, f64); 4] = [("0", 0.0), ("0.003", 0.003), ("0.03", 0.03), ("1", 1.0)];
    type Point = (&'static str, Option<(SyncMode, usize)>, usize);
    const POINTS: [Point; 5] = [
        ("single_mutex", None, 1),
        ("seqlock_n1_b1", Some((SyncMode::Seqlock, 1)), 1),
        ("seqlock_n1_b32", Some((SyncMode::Seqlock, 1)), 32),
        ("seqlock_n4_b1", Some((SyncMode::Seqlock, 4)), 1),
        ("seqlock_n4_b32", Some((SyncMode::Seqlock, 4)), 32),
    ];

    // best[rate][point] = (inline_ns, hoisted_ns), fastest per side.
    let mut best = vec![vec![(f64::INFINITY, f64::INFINITY); POINTS.len()]; RATES.len()];
    for round in 0..rounds {
        eprintln!("access-cost round {}/{rounds}…", round + 1);
        for (r, &(_, rate)) in RATES.iter().enumerate() {
            for (p, &(_, point, batch)) in POINTS.iter().enumerate() {
                let sampler = BernoulliSampler::new(rate, 7);
                let inline_ns =
                    access_cost_point(InlineDecision(DjitDetector::new(sampler)), point, batch);
                let hoisted_ns = access_cost_point(DjitDetector::new(sampler), point, batch);
                let slot = &mut best[r][p];
                slot.0 = slot.0.min(inline_ns);
                slot.1 = slot.1.min(hoisted_ns);
            }
        }
    }

    let mut sections = Vec::new();
    for (r, &(rate_key, rate)) in RATES.iter().enumerate() {
        let mut lines = Vec::new();
        for (p, &(name, _, _)) in POINTS.iter().enumerate() {
            let (inline_ns, hoisted_ns) = best[r][p];
            let speedup = inline_ns / hoisted_ns.max(0.001);
            eprintln!(
                "rate {rate:<6} {name:<16} inline {inline_ns:>7.1} ns  hoisted {hoisted_ns:>7.1} ns  ({speedup:.2}x)"
            );
            let comma = if p + 1 == POINTS.len() { "" } else { "," };
            lines.push(format!(
                "      \"{name}\": {{\"inline_ns\": {inline_ns:.1}, \"hoisted_ns\": {hoisted_ns:.1}, \"speedup\": {speedup:.2}}}{comma}"
            ));
        }
        let comma = if r + 1 == RATES.len() { "" } else { "," };
        sections.push(format!(
            "    \"{rate_key}\": {{\n{}\n    }}{comma}",
            lines.join("\n")
        ));
    }

    let json = format!(
        "{{\n  \"schema\": \"freshtrack/access-cost/v1\",\n  \"benchmark\": \"access_cost\",\n  \
         \"engine\": \"FT(bernoulli)\",\n  \"threads\": {},\n  \"vars\": {},\n  \
         \"accesses_per_round\": {ACCESS_COST_ACCESSES},\n  \"sync_every\": {},\n  \"rounds\": {rounds},\n  \
         \"note\": \"ns per access event, single-threaded feed; inline_ns disables the hoisted \
         decider (every access pays slot admission + shard routing + the shard/batch lock and the \
         engine decides inline — the pre-hoist pipeline), hoisted_ns is the lock-free skip path \
         (pure decision before any lock; sampled-out accesses return after two relaxed atomic \
         bumps — ARCHITECTURE.md invariant 10); rates are Bernoulli sampling probabilities, so \
         rate 0 is the pure skip path and rate 1 the pure analysis path; every point is the \
         fastest of its rounds, both sides interleaved in one sitting\",\n  \
         \"rates\": {{\n{}\n  }}\n}}\n",
        access_stream::THREADS,
        access_stream::VARS,
        access_stream::SYNC_EVERY,
        sections.join("\n")
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

/// The `--oracle` mode: streaming ground-truth verification cost. One
/// dense [`HbOracle`](freshtrack_core::HbOracle) pass over the corpus
/// trace pins the expected racy-event set (and times the O(N²)-bit
/// reference); then every
/// [`StreamingOracle`](freshtrack_core::StreamingOracle) point —
/// window sizes 16/256/4096, unbounded,
/// and a tiny-window + reservoir combination — replays identical
/// `.ftb` v2 bytes in interleaved rounds (fastest kept, one sitting by
/// construction) and must reproduce that set verbatim every round: the
/// windowed racy-event exactness guarantee, measured rather than
/// assumed. `FT_TRACE_BENCH`/`FT_TRACE_SCALE`/`FT_ROUNDS` as in
/// `--trace-io`.
fn run_oracle(out_path: Option<String>) {
    use freshtrack_core::{HbOracle, OracleConfig, OracleStats, StreamingOracle};
    use freshtrack_trace::{write_trace_binary_v2, SegmentOptions};

    let bench_name = std::env::var("FT_TRACE_BENCH").unwrap_or_else(|_| "derby".to_owned());
    let scale = std::env::var("FT_TRACE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0f64);
    let rounds = env_or("FT_ROUNDS", 5u32).max(1);
    let bench = corpus::by_name(&bench_name)
        .unwrap_or_else(|| panic!("unknown corpus benchmark `{bench_name}`"));
    let trace = bench.trace(scale, 0);
    let events = trace.len() as f64;

    let mut v2 = Vec::new();
    write_trace_binary_v2(&trace, &mut v2, &SegmentOptions::default()).expect("in-memory write");

    // Ground truth, once: the racy-event set every streaming point must
    // reproduce, and the O(N²) reference cost. Dropped immediately —
    // its ancestor bitsets are the memory wall this mode quantifies.
    let hb_start = Instant::now();
    let hb = HbOracle::new(&trace);
    let mask = HbOracle::sample_mask(&trace, AlwaysSampler::new());
    let expected = hb.racy_events(&mask);
    let hb_elapsed = hb_start.elapsed();
    drop(hb);
    let hb_ev_per_s = events / hb_elapsed.as_secs_f64();
    // Dense ancestor sets: one N-bit set per event.
    let hb_anc_bytes = (trace.len() as u64 * trace.len() as u64) / 8;
    eprintln!(
        "hb_exact                 {:>8.2} Mev/s  (anc ~{} MiB, {} racy events)",
        hb_ev_per_s / 1e6,
        hb_anc_bytes >> 20,
        expected.len()
    );

    type Point = (&'static str, usize, usize);
    let points: [Point; 5] = [
        ("window_16", 16, 0),
        ("window_256", 256, 0),
        ("window_4096", 4096, 0),
        ("unbounded", usize::MAX, 0),
        ("window_64_reservoir_256", 64, 256),
    ];

    let mut best = vec![Duration::MAX; points.len()];
    let mut stats: Vec<Option<OracleStats>> = vec![None; points.len()];
    for round in 0..rounds {
        eprintln!("oracle round {}/{rounds}…", round + 1);
        for (i, &(name, window, reservoir)) in points.iter().enumerate() {
            let config = OracleConfig {
                window,
                reservoir,
                seed: 7,
            };
            let oracle = StreamingOracle::new(AlwaysSampler::new(), config);
            let mut reader = BinaryEventReader::new(&v2[..]).expect("magic");
            let start = Instant::now();
            let outcome = oracle
                .run_source(&mut reader)
                .expect("well-formed v2 stream");
            let elapsed = start.elapsed();
            assert_eq!(
                outcome.racy_ids(),
                expected,
                "{name}: streamed racy events must match the exact oracle"
            );
            if elapsed < best[i] {
                best[i] = elapsed;
            }
            stats[i] = Some(outcome.stats);
        }
    }

    let mut lines = Vec::new();
    for (i, &(name, _, _)) in points.iter().enumerate() {
        let s = stats[i].as_ref().expect("at least one round");
        let ev_per_s = events / best[i].as_secs_f64();
        eprintln!(
            "{name:<24} {:>8.2} Mev/s  (state {} KiB, peak window {})",
            ev_per_s / 1e6,
            s.state_bytes >> 10,
            s.peak_window_len
        );
        let comma = if i + 1 == points.len() { "" } else { "," };
        lines.push(format!(
            "    \"{name}\": {{\"events_per_s\": {ev_per_s:.0}, \"state_bytes\": {}, \
             \"peak_window_len\": {}, \"evictions\": {}, \"window_checks\": {}, \
             \"summarized_races\": {}, \"reservoir_checks\": {}}}{comma}",
            s.state_bytes,
            s.peak_window_len,
            s.evictions,
            s.window_checks,
            s.summarized_races,
            s.reservoir_checks
        ));
    }

    let json = format!(
        "{{\n  \"schema\": \"freshtrack/oracle/v1\",\n  \"benchmark\": \"stream_oracle\",\n  \
         \"trace\": {{\"corpus\": \"{}\", \"scale\": {scale}, \"seed\": 0, \"events\": {}, \
         \"threads\": {}, \"locks\": {}, \"vars\": {}}},\n  \
         \"sampler\": \"always\",\n  \"racy_events\": {},\n  \"rounds\": {rounds},\n  \
         \"hb_reference\": {{\"events_per_s\": {hb_ev_per_s:.0}, \"anc_bytes\": {hb_anc_bytes}}},\n  \
         \"note\": \"events/s, fastest of FT_ROUNDS interleaved rounds in one sitting; every \
         point streams identical .ftb v2 bytes through StreamingOracle and must reproduce the \
         dense HbOracle's racy-event set verbatim (asserted every round); state_bytes is the \
         end-of-stream retained footprint, hb_reference the single-pass O(N^2)-bit oracle \
         this mode exists to displace\",\n  \
         \"points\": {{\n{}\n  }}\n}}\n",
        json_escape(&bench_name),
        trace.len(),
        trace.thread_count(),
        trace.lock_count(),
        trace.var_count(),
        expected.len(),
        lines.join("\n")
    );
    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

fn main() {
    let mut label = String::from("run");
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut samples = 40usize;
    let mut dbsim = false;
    let mut sync_cost = false;
    let mut trace_io = false;
    let mut segments = false;
    let mut oracle = false;
    let mut access_cost = false;
    let mut rounds_override: Option<u32> = None;
    let mut mix = String::from("ycsb");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--label" => label = args.next().expect("--label needs a value"),
            "--out" => out_path = Some(args.next().expect("--out needs a value")),
            "--baseline" => baseline_path = Some(args.next().expect("--baseline needs a value")),
            "--dbsim" => dbsim = true,
            "--sync-cost" => sync_cost = true,
            "--trace-io" => trace_io = true,
            "--segments" => segments = true,
            "--oracle" => oracle = true,
            "--access-cost" => access_cost = true,
            "--rounds" => {
                rounds_override = Some(
                    args.next()
                        .expect("--rounds needs a value")
                        .parse()
                        .expect("--rounds must be an integer"),
                )
            }
            "--mix" => mix = args.next().expect("--mix needs a value"),
            "--samples" => {
                samples = args
                    .next()
                    .expect("--samples needs a value")
                    .parse()
                    .expect("--samples must be an integer")
            }
            "--help" | "-h" => {
                eprintln!(
                    "record_baseline [--label NAME] [--out FILE] [--baseline FILE] [--samples N]\n\
                     record_baseline --dbsim [--mix NAME] [--out FILE]   (env: FT_WORKERS/FT_TXNS/FT_ROUNDS/FT_SEED)\n\
                     record_baseline --sync-cost [--out FILE]            (env: FT_ROUNDS/FT_CLOCK_WIDTH)\n\
                     record_baseline --trace-io [--out FILE]             (env: FT_ROUNDS/FT_TRACE_BENCH/FT_TRACE_SCALE)\n\
                     record_baseline --segments [--out FILE]             (env: FT_ROUNDS/FT_TRACE_BENCH/FT_TRACE_SCALE)\n\
                     record_baseline --oracle [--out FILE]               (env: FT_ROUNDS/FT_TRACE_BENCH/FT_TRACE_SCALE)\n\
                     record_baseline --access-cost [--rounds N] [--out FILE]  (env: FT_ROUNDS)"
                );
                return;
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    if access_cost {
        run_access_cost(out_path, rounds_override);
        return;
    }
    if oracle {
        run_oracle(out_path);
        return;
    }
    if segments {
        run_segments(out_path);
        return;
    }
    if trace_io {
        run_trace_io(out_path);
        return;
    }
    if sync_cost {
        run_sync_cost(out_path);
        return;
    }
    if dbsim {
        run_dbsim_scaling(&mix, out_path);
        return;
    }

    let ops = run_all(samples);
    let this_run = run_json(&label, &ops);

    let json = match &baseline_path {
        None => format!("{this_run}\n"),
        Some(path) => {
            let baseline = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
            let base_label = parse_label(&baseline);
            let base_medians = parse_medians(&baseline);
            let mut improvements = Vec::new();
            for op in &ops {
                if let Some((_, before)) = base_medians.iter().find(|(n, _)| n == op.name) {
                    let pct = (before - op.median_ns) / before * 100.0;
                    improvements.push((op.name, pct));
                    eprintln!(
                        "{:<32} {:>9.1} → {:>9.1} ns/op  ({:+.1}%)",
                        op.name, before, op.median_ns, -pct
                    );
                }
            }
            let mut out = String::new();
            out.push_str("{\n");
            out.push_str("  \"schema\": \"freshtrack/clock-ops-trajectory/v1\",\n");
            out.push_str("  \"benchmark\": \"clock_ops\",\n");
            out.push_str(&format!(
                "  \"note\": \"medians in ns/op; improvement_pct is ({}−{})/{} — positive means faster. Record both labels in one sitting: a cross-sitting pair previously showed phantom regressions (vc_join_redundant_64 −9.3%, shared_shallow_copy_64 −4.2%); a same-sitting re-record with the identical binary on both sides puts vc_join_redundant at +1.8% and shared_shallow_copy at −6.5%, i.e. inside this host's same-code noise floor (~±6%). Both ops are at their scalar floor — a predicted-not-taken scan and two uncontended Arc RMWs; a branchless join variant measured ~2x slower (see VectorClock::join).\",\n",
                json_escape(&base_label), json_escape(&label), json_escape(&base_label)
            ));
            out.push_str("  \"improvement_pct\": {\n");
            for (i, (name, pct)) in improvements.iter().enumerate() {
                let comma = if i + 1 == improvements.len() { "" } else { "," };
                out.push_str(&format!("    \"{name}\": {pct:.1}{comma}\n"));
            }
            out.push_str("  },\n");
            out.push_str("  \"runs\": {\n");
            out.push_str(&format!(
                "    \"{}\": {},\n",
                json_escape(&base_label),
                indent(baseline.trim(), "    ")
            ));
            out.push_str(&format!(
                "    \"{}\": {}\n",
                json_escape(&label),
                indent(&this_run, "    ")
            ));
            out.push_str("  }\n}\n");
            out
        }
    };

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
