//! Fig. 5(b): improvement in *algorithmic overhead* of SU and SO over
//! the naive sampling baseline ST, per sampling rate.
//!
//! `AO(S) = latency(S) − latency(ET)`; the plotted quantity is
//! `1 − AO(S)/AO(ST)`. The paper reports average improvements of ~37%
//! at 0.3%, ~17–19% at 3%, and ~3% at 10%, with the improvement
//! shrinking as the rate grows.

use freshtrack_bench::{run_online, run_options, OnlineConfig};
use freshtrack_rapid::report::{pct, Table};
use freshtrack_workloads::benchbase::benchbase_suite;

fn main() {
    let options = run_options();
    let rates = [0.003, 0.03, 0.10];

    println!(
        "Fig. 5(b): improvement in algorithmic overhead vs ST  (workers={}, txns/worker={})",
        options.workers, options.txns_per_worker
    );
    let mut table = Table::new(&[
        "benchmark",
        "SU-0.3%",
        "SU-3%",
        "SU-10%",
        "SO-0.3%",
        "SO-3%",
        "SO-10%",
    ]);
    let mut sums = [0.0f64; 6];
    let mut counted = 0usize;

    for workload in benchbase_suite() {
        let et = run_online(&workload, OnlineConfig::Et, &options)
            .mean_latency
            .as_nanos() as f64;
        let mut cells = vec![workload.name.to_string()];
        let mut su_cells = Vec::new();
        let mut so_cells = Vec::new();
        for (ri, &rate) in rates.iter().enumerate() {
            let st = run_online(&workload, OnlineConfig::St(rate), &options)
                .mean_latency
                .as_nanos() as f64;
            let su = run_online(&workload, OnlineConfig::Su(rate), &options)
                .mean_latency
                .as_nanos() as f64;
            let so = run_online(&workload, OnlineConfig::So(rate), &options)
                .mean_latency
                .as_nanos() as f64;
            let ao_st = (st - et).max(1.0);
            let impr_su = 1.0 - (su - et) / ao_st;
            let impr_so = 1.0 - (so - et) / ao_st;
            sums[ri] += impr_su;
            sums[3 + ri] += impr_so;
            su_cells.push(pct(impr_su));
            so_cells.push(pct(impr_so));
        }
        cells.extend(su_cells);
        cells.extend(so_cells);
        counted += 1;
        table.row_owned(cells);
    }

    let mut cells = vec!["mean".to_string()];
    for s in sums {
        cells.push(pct(s / counted as f64));
    }
    table.row_owned(cells);
    print!("{}", table.render());
    println!();
    println!("expected shape: improvement largest at 0.3%, shrinking toward 10%");
}
