//! Fig. 6(a): number of racy locations found by the sampling
//! configurations, relative to full FastTrack.
//!
//! The paper observes that even low rates uncover a substantial portion
//! of FT's racy locations, with no strong correlation between overhead
//! reduction and detection rate.

use freshtrack_bench::{racy_locations, run_online, run_options, OnlineConfig};
use freshtrack_rapid::report::{fmt3, Table};
use freshtrack_workloads::benchbase::benchbase_suite;

fn main() {
    let mut options = run_options();
    // Detecting a race under sampling needs *both* endpoints sampled —
    // an O(rate²) event. The paper runs each configuration for an hour;
    // we compensate with longer runs and a higher seeded-bug rate.
    options.txns_per_worker *= 8;
    let bug_rate = 0.1;

    println!(
        "Fig. 6(a): racy locations relative to FT  (workers={}, txns/worker={}, bug rate {bug_rate}/txn)",
        options.workers, options.txns_per_worker
    );
    let mut table = Table::new(&[
        "benchmark",
        "FT(abs)",
        "ST-0.3%",
        "ST-3%",
        "SU-0.3%",
        "SU-3%",
        "SO-0.3%",
        "SO-3%",
    ]);

    for mut workload in benchbase_suite() {
        workload.unprotected_fraction = bug_rate;
        let ft = run_online(&workload, OnlineConfig::Ft, &options);
        let ft_locs = racy_locations(&ft.reports).max(1);
        let configs = [
            OnlineConfig::St(0.003),
            OnlineConfig::St(0.03),
            OnlineConfig::Su(0.003),
            OnlineConfig::Su(0.03),
            OnlineConfig::So(0.003),
            OnlineConfig::So(0.03),
        ];
        let mut cells = vec![workload.name.to_string(), format!("{ft_locs}")];
        for &cfg in &configs {
            let run = run_online(&workload, cfg, &options);
            cells.push(fmt3(racy_locations(&run.reports) as f64 / ft_locs as f64));
        }
        table.row_owned(cells);
    }
    print!("{}", table.render());
    println!();
    println!("expected shape: ratios in (0,1], higher at 3% than 0.3%");
}
