//! Fig. 9 (appendix): the ordered-list saving ratio
//! `SavedTraversals / AllTraversals` over non-skipped acquires, for
//! SO-(3%) and SO-(100%).
//!
//! The paper reports consistently high ratios, with SO-(3%) always above
//! SO-(100%) — the data structure is *particularly* suited to sampling.

use freshtrack_bench::{offline_reps, offline_scale};
use freshtrack_rapid::report::{bar, pct, Table};
use freshtrack_rapid::{run_offline, EngineConfig, EngineKind};
use freshtrack_workloads::corpus::corpus;

fn main() {
    let reps = offline_reps();
    let scale = offline_scale();
    let engines = [
        EngineConfig::new(EngineKind::So, 0.03, 0),
        EngineConfig::new(EngineKind::So, 1.0, 0),
    ];

    println!("Fig. 9: ordered-list saving ratio  (reps={reps}, scale={scale})");
    let benchmarks = corpus();
    let summaries = run_offline(&benchmarks, &engines, reps, scale);

    let mut table = Table::new(&["benchmark", "SO-(3%)", "SO-(100%)", "SO-(3%) bar"]);
    let mut sampled_higher = 0usize;
    for bench in &benchmarks {
        let get = |label: &str| {
            summaries
                .iter()
                .find(|s| s.benchmark == bench.name && s.engine == label)
                .expect("summary present")
                .counters
                .saving_ratio()
        };
        let s3 = get("SO-(3%)");
        let s100 = get("SO-(100%)");
        if s3 >= s100 {
            sampled_higher += 1;
        }
        table.row_owned(vec![
            bench.name.to_string(),
            pct(s3),
            pct(s100),
            bar(s3, 20),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "SO-(3%) saving ratio ≥ SO-(100%) on {sampled_higher}/26 benchmarks \
         (paper: always higher under sampling)"
    );
}
