//! Fig. 6(c): work done by SO — average ordered-list entries traversed
//! per acquire operation.
//!
//! The paper reports ≤ 6 traversals per acquire for most runs —
//! far below the thread count (64) and TSan's fixed clock size (256).

use freshtrack_bench::{run_online, run_options, OnlineConfig};
use freshtrack_rapid::report::{fmt3, Table};
use freshtrack_workloads::benchbase::benchbase_suite;

fn main() {
    let options = run_options();
    let rates = [0.003, 0.03, 0.10];

    println!(
        "Fig. 6(c): SO ordered-list traversals per acquire  (workers={}, txns/worker={})",
        options.workers, options.txns_per_worker
    );
    let mut table = Table::new(&[
        "benchmark",
        "rate",
        "acquires",
        "entries",
        "per-acq",
        "≤3?",
        "≤6?",
    ]);
    let mut below6 = 0usize;
    let mut total = 0usize;

    for workload in benchbase_suite() {
        for &rate in &rates {
            let run = run_online(&workload, OnlineConfig::So(rate), &options);
            let c = &run.counters;
            let per = c.traversals_per_acquire();
            total += 1;
            if per <= 6.0 {
                below6 += 1;
            }
            table.row_owned(vec![
                workload.name.to_string(),
                format!("{}%", rate * 100.0),
                format!("{}", c.acquires),
                format!("{}", c.entries_traversed),
                fmt3(per),
                if per <= 3.0 { "yes" } else { "no" }.into(),
                if per <= 6.0 { "yes" } else { "no" }.into(),
            ]);
        }
    }
    print!("{}", table.render());
    println!();
    println!(
        "{below6}/{total} runs at ≤6 traversals/acquire \
         (paper: most runs ≤6, well below the thread count)"
    );
}
