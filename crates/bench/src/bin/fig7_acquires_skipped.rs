//! Fig. 7 (appendix): ratio of acquire events skipped over total
//! acquires, for SU-(3%), SO-(3%), SU-(100%), SO-(100%) across the
//! 26-benchmark offline corpus.
//!
//! The paper reports >50% skipped on 23/26 benchmarks and >80% on 16/26
//! for the 3% engines, with SU always skipping slightly more than SO
//! (SO's scalar lock freshness is a coarser filter than SU's full
//! freshness clock), and substantial skipping even at 100%.

use freshtrack_bench::{offline_reps, offline_scale};
use freshtrack_rapid::report::{bar, pct, Table};
use freshtrack_rapid::{run_offline, EngineConfig, EngineKind};
use freshtrack_workloads::corpus::corpus;

fn main() {
    let reps = offline_reps();
    let scale = offline_scale();
    let engines = [
        EngineConfig::new(EngineKind::Su, 0.03, 0),
        EngineConfig::new(EngineKind::So, 0.03, 0),
        EngineConfig::new(EngineKind::Su, 1.0, 0),
        EngineConfig::new(EngineKind::So, 1.0, 0),
    ];

    println!("Fig. 7: acquires skipped / total acquires  (reps={reps}, scale={scale})");
    let benchmarks = corpus();
    let summaries = run_offline(&benchmarks, &engines, reps, scale);

    let mut table = Table::new(&[
        "benchmark",
        "SU-(3%)",
        "SO-(3%)",
        "SU-(100%)",
        "SO-(100%)",
        "SU-(3%) bar",
    ]);
    let mut over50 = 0usize;
    let mut over80 = 0usize;
    for bench in &benchmarks {
        let ratios: Vec<f64> = engines
            .iter()
            .map(|e| {
                summaries
                    .iter()
                    .find(|s| s.benchmark == bench.name && s.engine == e.label())
                    .expect("summary present")
                    .counters
                    .acquire_skip_ratio()
            })
            .collect();
        if ratios[0] > 0.5 {
            over50 += 1;
        }
        if ratios[0] > 0.8 {
            over80 += 1;
        }
        table.row_owned(vec![
            bench.name.to_string(),
            pct(ratios[0]),
            pct(ratios[1]),
            pct(ratios[2]),
            pct(ratios[3]),
            bar(ratios[0], 20),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!(
        "SU-(3%) skipped >50% on {over50}/26 and >80% on {over80}/26 benchmarks \
         (paper: 23/26 and 16/26)"
    );
}
