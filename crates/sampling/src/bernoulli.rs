use freshtrack_trace::{Event, EventId};

use crate::{mix64, Sampler};

/// LiteRace-style independent sampling: each access event is in `S` with
/// a fixed probability.
///
/// This is the strategy the paper's evaluation uses ("each read or write
/// access event is sampled independently with a fixed probability",
/// Section 6.1). Decisions depend only on `(seed, event position)`, so
/// every engine analyzing the same trace with the same seed sees the same
/// sample set regardless of what other work it does.
///
/// # Example
///
/// ```
/// use freshtrack_sampling::{BernoulliSampler, Sampler};
/// use freshtrack_trace::{Event, EventId, EventKind, ThreadId, VarId};
///
/// let e = Event::new(ThreadId::new(0), EventKind::Read(VarId::new(0)));
/// let mut s = BernoulliSampler::new(1.0, 7);
/// assert!(s.sample(EventId::new(3), e)); // rate 1.0 samples everything
/// let mut never = BernoulliSampler::new(0.0, 7);
/// assert!(!never.sample(EventId::new(3), e));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BernoulliSampler {
    rate: f64,
    seed: u64,
    /// `⌈rate · 2⁵³⌉`, precomputed so `decide` is a pure integer
    /// compare on the skip path (no u64→f64 conversion per event).
    threshold: u64,
}

impl BernoulliSampler {
    /// Creates a sampler with the given rate in `[0, 1]` and seed.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not a finite number in `[0, 1]`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "sampling rate must be in [0, 1], got {rate}"
        );
        // Bit-exact with `to_unit(h) < rate`: the hash maps to the
        // 53-bit mantissa `m = h >> 11`, and both `m as f64` and the
        // division by 2⁵³ are exact, so `m / 2⁵³ < rate ⟺ m < rate·2⁵³
        // ⟺ m < ⌈rate·2⁵³⌉` (the last step because `m` is an integer;
        // when `rate·2⁵³` is itself an integer the ceiling is the
        // identity and strict `<` agrees). `rate·2⁵³` is computed
        // exactly too — scaling a finite f64 by a power of two only
        // shifts its exponent. Pinned against the f64 formula by
        // `integer_threshold_matches_f64_compare` below.
        let threshold = (rate * (1u64 << 53) as f64).ceil() as u64;
        BernoulliSampler {
            rate,
            seed,
            threshold,
        }
    }

    /// The configured sampling rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The configured seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Sampler for BernoulliSampler {
    fn decide(&self, id: EventId, _event: Event) -> bool {
        mix64(self.seed ^ mix64(id.as_u64())) >> 11 < self.threshold
    }

    fn nominal_rate(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_unit;
    use freshtrack_trace::{EventKind, ThreadId, VarId};

    fn access(i: u32) -> Event {
        Event::new(ThreadId::new(i % 4), EventKind::Write(VarId::new(i)))
    }

    #[test]
    fn empirical_rate_tracks_nominal() {
        for &rate in &[0.003, 0.03, 0.1, 0.5] {
            let mut s = BernoulliSampler::new(rate, 99);
            let n = 200_000;
            let hits = (0..n)
                .filter(|&i| s.sample(EventId::new(i), access(i as u32)))
                .count();
            let empirical = hits as f64 / n as f64;
            assert!(
                (empirical - rate).abs() < rate * 0.2 + 0.001,
                "rate {rate}: empirical {empirical}"
            );
        }
    }

    #[test]
    fn decisions_are_order_independent() {
        let mut forward = BernoulliSampler::new(0.3, 5);
        let mut backward = BernoulliSampler::new(0.3, 5);
        let fwd: Vec<bool> = (0..100)
            .map(|i| forward.sample(EventId::new(i), access(i as u32)))
            .collect();
        let mut bwd: Vec<bool> = (0..100)
            .rev()
            .map(|i| backward.sample(EventId::new(i), access(i as u32)))
            .collect();
        bwd.reverse();
        assert_eq!(fwd, bwd);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = BernoulliSampler::new(0.5, 1);
        let mut b = BernoulliSampler::new(0.5, 2);
        let same = (0..1000)
            .filter(|&i| {
                a.sample(EventId::new(i), access(i as u32))
                    == b.sample(EventId::new(i), access(i as u32))
            })
            .count();
        assert!(same < 1000);
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn rejects_out_of_range_rate() {
        let _ = BernoulliSampler::new(1.5, 0);
    }

    #[test]
    fn integer_threshold_matches_f64_compare() {
        // The precomputed-threshold decide must agree with the original
        // floating-point formulation on every event, including rates
        // whose 2⁵³-scaling is not an integer and the 0/1 endpoints.
        // Any divergence would silently change the sample set (and
        // with it every differential suite), so this is pinned hard.
        let rates = [
            0.0,
            1.0,
            0.003,
            0.03,
            0.1,
            0.5,
            1.0 / 3.0,
            f64::from_bits(0x3FEF_FFFF_FFFF_FFFF), // just below 1.0
            1e-12,
            5e-324, // smallest positive subnormal
        ];
        for (si, &rate) in rates.iter().enumerate() {
            let s = BernoulliSampler::new(rate, si as u64 * 77 + 1);
            for i in 0..50_000u64 {
                let id = EventId::new(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let via_f64 = to_unit(mix64(s.seed() ^ mix64(id.as_u64()))) < rate;
                assert_eq!(
                    s.decide(id, access(i as u32)),
                    via_f64,
                    "rate {rate} id {id:?}"
                );
            }
        }
    }
}
