use freshtrack_trace::{Event, EventId};

use crate::Sampler;

/// Samples every access event: `S` = all reads and writes.
///
/// Running one of the paper's engines with `AlwaysSampler` yields the
/// "100%" configurations (SU-(100%), SO-(100%)) of the offline
/// evaluation; note these do *not* degenerate to FastTrack — the sampling
/// timestamp still increments only at the first release after a sampled
/// event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AlwaysSampler;

impl AlwaysSampler {
    /// Creates the sampler.
    pub fn new() -> Self {
        AlwaysSampler
    }
}

impl Sampler for AlwaysSampler {
    fn decide(&self, _id: EventId, _event: Event) -> bool {
        true
    }

    fn nominal_rate(&self) -> f64 {
        1.0
    }
}

/// Samples nothing: `S = ∅`.
///
/// Useful as the analysis-free baseline (the paper's "Empty TSan"
/// analogue) — all synchronization handlers still run, but no race checks
/// or clock increments ever trigger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NeverSampler;

impl NeverSampler {
    /// Creates the sampler.
    pub fn new() -> Self {
        NeverSampler
    }
}

impl Sampler for NeverSampler {
    fn decide(&self, _id: EventId, _event: Event) -> bool {
        false
    }

    fn nominal_rate(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshtrack_trace::{EventKind, ThreadId, VarId};

    #[test]
    fn always_and_never_are_constant() {
        let e = Event::new(ThreadId::new(0), EventKind::Read(VarId::new(0)));
        assert!(AlwaysSampler::new().sample(EventId::new(0), e));
        assert!(!NeverSampler::new().sample(EventId::new(0), e));
        assert_eq!(AlwaysSampler::new().nominal_rate(), 1.0);
        assert_eq!(NeverSampler::new().nominal_rate(), 0.0);
    }
}
