use std::collections::HashSet;

use freshtrack_trace::{Event, EventId, VarId};

use crate::Sampler;

/// RaceMob-style targeted sampling: sample every access to a chosen set
/// of memory locations.
///
/// Static analysis (or a previous run) nominates suspicious locations;
/// the detector then observes all accesses to those and nothing else.
/// The paper notes (Section 3) that its Analysis-Problem formulation
/// subsumes this strategy.
///
/// # Example
///
/// ```
/// use freshtrack_sampling::{Sampler, TargetedSampler};
/// use freshtrack_trace::{Event, EventId, EventKind, ThreadId, VarId};
///
/// let hot = VarId::new(0);
/// let cold = VarId::new(1);
/// let mut s = TargetedSampler::new([hot]);
/// let read = |v| Event::new(ThreadId::new(0), EventKind::Read(v));
/// assert!(s.sample(EventId::new(0), read(hot)));
/// assert!(!s.sample(EventId::new(1), read(cold)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TargetedSampler {
    targets: HashSet<VarId>,
}

impl TargetedSampler {
    /// Creates a sampler targeting the given memory locations.
    pub fn new<I: IntoIterator<Item = VarId>>(targets: I) -> Self {
        TargetedSampler {
            targets: targets.into_iter().collect(),
        }
    }

    /// Adds a location to the target set.
    pub fn add_target(&mut self, var: VarId) {
        self.targets.insert(var);
    }

    /// The number of targeted locations.
    pub fn target_count(&self) -> usize {
        self.targets.len()
    }
}

impl Sampler for TargetedSampler {
    fn decide(&self, _id: EventId, event: Event) -> bool {
        event.kind.var().is_some_and(|v| self.targets.contains(&v))
    }

    fn nominal_rate(&self) -> f64 {
        // Unknown a priori — depends on the access distribution.
        f64::NAN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshtrack_trace::{EventKind, ThreadId};

    #[test]
    fn only_targets_are_sampled() {
        let mut s = TargetedSampler::new([VarId::new(2)]);
        s.add_target(VarId::new(5));
        assert_eq!(s.target_count(), 2);
        let mk = |v: u32| Event::new(ThreadId::new(0), EventKind::Write(VarId::new(v)));
        assert!(s.sample(EventId::new(0), mk(2)));
        assert!(s.sample(EventId::new(1), mk(5)));
        assert!(!s.sample(EventId::new(2), mk(3)));
    }
}
