//! Online sampling strategies for sampling-based race detection.
//!
//! The paper decomposes sampling-based race detection into the *Sampling
//! Problem* (which access events form the sample set `S`?) and the
//! *Analysis Problem* (detect races among `S`). This crate implements the
//! sampling side: small online deciders that a detector consults at every
//! read/write event. The detectors in `freshtrack-core` are generic over
//! [`Sampler`], mirroring the paper's claim that its timestamping
//! algorithms are agnostic to how `S` is chosen.
//!
//! Provided strategies:
//!
//! * [`BernoulliSampler`] — each access sampled independently with a fixed
//!   probability (the paper's evaluation strategy, after LiteRace).
//! * [`PeriodicSampler`] — Pacer-style alternating global sampling and
//!   non-sampling periods.
//! * [`TargetedSampler`] — RaceMob-style: sample all accesses to a chosen
//!   set of memory locations.
//! * [`AlwaysSampler`] / [`NeverSampler`] — the degenerate 100% / 0%
//!   strategies (useful as the FT-equivalent and instrumentation-only
//!   baselines).
//!
//! All randomized strategies are **deterministic functions of
//! `(seed, event position)`**, so different analysis engines observing the
//! same trace with the same seed see *exactly* the same sample set — the
//! apples-to-apples property the paper's offline evaluation relies on.
//!
//! # Example
//!
//! ```
//! use freshtrack_sampling::{BernoulliSampler, Sampler};
//! use freshtrack_trace::{Event, EventId, EventKind, ThreadId, VarId};
//!
//! let mut s = BernoulliSampler::new(0.5, 42);
//! let e = Event::new(ThreadId::new(0), EventKind::Write(VarId::new(0)));
//! let first = s.sample(EventId::new(0), e);
//! // Same position, same seed → same decision.
//! assert_eq!(first, BernoulliSampler::new(0.5, 42).sample(EventId::new(0), e));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bernoulli;
mod degenerate;
mod periodic;
mod targeted;

pub use bernoulli::BernoulliSampler;
pub use degenerate::{AlwaysSampler, NeverSampler};
pub use periodic::PeriodicSampler;
pub use targeted::TargetedSampler;

use freshtrack_trace::{Event, EventId};

/// An online decider for membership of access events in the sample set
/// `S`.
///
/// Detectors consult the sampler exactly once per read/write event, in
/// trace order. Implementations must be deterministic given their
/// construction parameters so that runs are reproducible; implementations
/// whose decision depends only on `(seed, id)` additionally guarantee
/// identical sample sets across different engines.
///
/// Decisions are **pure**: [`Sampler::decide`] takes `&self` and must
/// return the same answer for the same `(id, event)` no matter when, how
/// often, or from which thread it is asked. This is what lets the online
/// detectors hoist the decision out of their analysis locks — a skipped
/// access can be rejected before any shared state is touched, and a
/// re-query on the locked path (or on a replicated shard) agrees with the
/// hoisted answer. The `Clone + Send + Sync` supertraits exist for the
/// same reason: hoisted deciders are cloned out of the detector and
/// consulted concurrently.
pub trait Sampler: Clone + Send + Sync + 'static {
    /// Decides whether the access event `event` at trace position `id`
    /// belongs to the sample set. Pure: same inputs, same answer.
    fn decide(&self, id: EventId, event: Event) -> bool;

    /// Decides membership through a mutable handle.
    ///
    /// Kept for call-site convenience (historical API); forwards to
    /// [`Sampler::decide`], which is the method implementations provide.
    fn sample(&mut self, id: EventId, event: Event) -> bool {
        self.decide(id, event)
    }

    /// The nominal sampling rate in `[0, 1]`, for reporting purposes.
    fn nominal_rate(&self) -> f64;
}

impl<T: Sampler> Sampler for Box<T> {
    fn decide(&self, id: EventId, event: Event) -> bool {
        (**self).decide(id, event)
    }

    fn nominal_rate(&self) -> f64 {
        (**self).nominal_rate()
    }
}

/// SplitMix64 — a tiny, high-quality 64-bit mixer used to derive
/// order-independent per-event sampling decisions from `(seed, position)`.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform `f64` in `[0, 1)`.
pub(crate) fn to_unit(hash: u64) -> f64 {
    // Use the top 53 bits for a dyadic rational in [0,1).
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_spreads_consecutive_inputs() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        // Hamming distance should be substantial for an avalanche mixer.
        assert!((a ^ b).count_ones() > 16);
    }

    #[test]
    fn to_unit_is_in_range() {
        for x in [0u64, 1, u64::MAX, 0xdead_beef] {
            let u = to_unit(mix64(x));
            assert!((0.0..1.0).contains(&u));
        }
    }
}
