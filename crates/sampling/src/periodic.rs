use freshtrack_trace::{Event, EventId};

use crate::{mix64, to_unit, Sampler};

/// Pacer-style alternating sampling periods.
///
/// Pacer (Bond et al., PLDI 2010) divides the execution into fixed-length
/// periods and makes each period a *sampling period* with probability
/// equal to the target rate; during a sampling period every access is
/// observed, outside none are. This gives the same expected rate as
/// Bernoulli sampling but with strong temporal locality, which changes
/// how much redundant synchronization the freshness timestamp can skip —
/// an interesting contrast the paper's related-work section discusses.
///
/// Periods are measured in trace positions, so decisions remain pure
/// functions of `(seed, position)`.
///
/// # Example
///
/// ```
/// use freshtrack_sampling::{PeriodicSampler, Sampler};
/// use freshtrack_trace::{Event, EventId, EventKind, ThreadId, VarId};
///
/// let mut s = PeriodicSampler::new(0.25, 1_000, 7);
/// let e = Event::new(ThreadId::new(0), EventKind::Read(VarId::new(0)));
/// // Decisions within one period agree with each other.
/// let d0 = s.sample(EventId::new(0), e);
/// let d1 = s.sample(EventId::new(1), e);
/// assert_eq!(d0, d1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeriodicSampler {
    rate: f64,
    period: u64,
    seed: u64,
}

impl PeriodicSampler {
    /// Creates a sampler targeting `rate` with the given period length
    /// (in events).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]` or `period` is zero.
    pub fn new(rate: f64, period: u64, seed: u64) -> Self {
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "sampling rate must be in [0, 1], got {rate}"
        );
        assert!(period > 0, "period must be positive");
        PeriodicSampler { rate, period, seed }
    }

    /// The period length in events.
    pub fn period(&self) -> u64 {
        self.period
    }
}

impl Sampler for PeriodicSampler {
    fn decide(&self, id: EventId, _event: Event) -> bool {
        let window = id.as_u64() / self.period;
        to_unit(mix64(self.seed ^ mix64(window))) < self.rate
    }

    fn nominal_rate(&self) -> f64 {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshtrack_trace::{EventKind, ThreadId, VarId};

    fn access() -> Event {
        Event::new(ThreadId::new(0), EventKind::Write(VarId::new(0)))
    }

    #[test]
    fn whole_periods_share_a_decision() {
        let mut s = PeriodicSampler::new(0.5, 100, 3);
        for window in 0..20u64 {
            let first = s.sample(EventId::new(window * 100), access());
            for offset in 1..100 {
                assert_eq!(
                    first,
                    s.sample(EventId::new(window * 100 + offset), access())
                );
            }
        }
    }

    #[test]
    fn empirical_rate_tracks_nominal() {
        let mut s = PeriodicSampler::new(0.1, 50, 11);
        let n = 500_000u64;
        let hits = (0..n)
            .filter(|&i| s.sample(EventId::new(i), access()))
            .count();
        let empirical = hits as f64 / n as f64;
        assert!((empirical - 0.1).abs() < 0.03, "empirical {empirical}");
    }

    #[test]
    #[should_panic(expected = "period")]
    fn rejects_zero_period() {
        let _ = PeriodicSampler::new(0.5, 0, 0);
    }
}
