//! Property-based tests for sampler determinism.
//!
//! The offline evaluation's apples-to-apples guarantee (and the paper's
//! "same sample set ⇒ same races" theorems as exercised by the
//! differential harness) rests on one property: every sampler is a
//! **deterministic function of its construction parameters**, and the
//! randomized ones depend only on `(seed, event position)` — not on query
//! order, not on the event payload, not on global state. These tests pin
//! that contract down, extending the model-based style of
//! `crates/clock/tests/proptests.rs` to the sampling crate.

use freshtrack_sampling::{
    AlwaysSampler, BernoulliSampler, NeverSampler, PeriodicSampler, Sampler, TargetedSampler,
};
use freshtrack_trace::{Event, EventId, EventKind, ThreadId, VarId};
use proptest::prelude::*;

/// An access event with an arbitrary payload (the samplers under test
/// must not let the payload influence position-based decisions).
fn access(tid: u32, var: u32, write: bool) -> Event {
    let kind = if write {
        EventKind::Write(VarId::new(var))
    } else {
        EventKind::Read(VarId::new(var))
    };
    Event::new(ThreadId::new(tid), kind)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Two Bernoulli samplers with the same `(rate, seed)` produce the
    /// same sample set — even when one is queried in reverse order,
    /// because decisions depend only on `(seed, position)`.
    #[test]
    fn bernoulli_same_seed_same_sample_set_in_any_order(
        ids in prop::collection::vec(any::<u64>(), 1..200),
        seed in any::<u64>(),
        rate in 0.0f64..1.0,
    ) {
        let mut forward = BernoulliSampler::new(rate, seed);
        let mut backward = BernoulliSampler::new(rate, seed);
        let fwd: Vec<bool> = ids
            .iter()
            .map(|&i| forward.sample(EventId::new(i), access(0, 0, true)))
            .collect();
        let mut bwd: Vec<bool> = ids
            .iter()
            .rev()
            .map(|&i| backward.sample(EventId::new(i), access(1, 7, false)))
            .collect();
        bwd.reverse();
        prop_assert_eq!(fwd, bwd);
    }

    /// Re-running a whole sample-set computation from scratch reproduces
    /// it bit for bit (the determinism the offline harness relies on to
    /// hand *identical* sample sets to every engine).
    #[test]
    fn bernoulli_runs_are_reproducible(
        n in 1usize..500,
        seed in any::<u64>(),
        rate in 0.0f64..1.0,
    ) {
        let run = |mut s: BernoulliSampler| -> Vec<bool> {
            (0..n as u64)
                .map(|i| s.sample(EventId::new(i), access(i as u32 % 3, i as u32 % 5, i % 2 == 0)))
                .collect()
        };
        prop_assert_eq!(
            run(BernoulliSampler::new(rate, seed)),
            run(BernoulliSampler::new(rate, seed))
        );
    }

    /// The event payload (thread, variable, read/write) never influences
    /// a position-based decision.
    #[test]
    fn bernoulli_ignores_event_payload(
        id in any::<u64>(),
        seed in any::<u64>(),
        rate in 0.0f64..1.0,
        tid in 0u32..64,
        var in 0u32..1024,
        write in any::<bool>(),
    ) {
        let mut a = BernoulliSampler::new(rate, seed);
        let mut b = BernoulliSampler::new(rate, seed);
        prop_assert_eq!(
            a.sample(EventId::new(id), access(0, 0, true)),
            b.sample(EventId::new(id), access(tid, var, write))
        );
    }

    /// Rate 0 samples nothing; rate 1 samples everything.
    #[test]
    fn bernoulli_rate_extremes(
        ids in prop::collection::vec(any::<u64>(), 1..100),
        seed in any::<u64>(),
    ) {
        let mut never = BernoulliSampler::new(0.0, seed);
        let mut always = BernoulliSampler::new(1.0, seed);
        for &i in &ids {
            prop_assert!(!never.sample(EventId::new(i), access(0, 0, true)));
            prop_assert!(always.sample(EventId::new(i), access(0, 0, true)));
        }
    }

    /// Periodic decisions are constant within a window and reproducible
    /// across instances with the same `(rate, period, seed)`.
    #[test]
    fn periodic_is_constant_within_windows_and_reproducible(
        id in any::<u64>(),
        period in 1u64..1_000,
        seed in any::<u64>(),
        rate in 0.0f64..1.0,
    ) {
        let mut a = PeriodicSampler::new(rate, period, seed);
        let mut b = PeriodicSampler::new(rate, period, seed);
        let window_start = (id / period) * period;
        prop_assert_eq!(
            a.sample(EventId::new(id), access(0, 0, true)),
            b.sample(EventId::new(window_start), access(2, 3, false))
        );
    }

    /// The targeted sampler is a pure membership test on the accessed
    /// location: position, order and seed play no role.
    #[test]
    fn targeted_samples_exactly_the_target_set(
        targets in prop::collection::vec(0u32..64, 0..12),
        queries in prop::collection::vec((any::<u64>(), 0u32..64, any::<bool>()), 0..100),
    ) {
        let mut s = TargetedSampler::new(targets.iter().copied().map(VarId::new));
        for &(id, var, write) in &queries {
            let expected = targets.contains(&var);
            prop_assert_eq!(
                s.sample(EventId::new(id), access(0, var, write)),
                expected,
                "var {} (targets {:?})", var, targets
            );
        }
    }

    /// The degenerate samplers are constant functions, and nominal rates
    /// are consistent with behaviour.
    #[test]
    fn degenerate_samplers_are_constant(
        ids in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        let mut always = AlwaysSampler::new();
        let mut never = NeverSampler::new();
        for &i in &ids {
            prop_assert!(always.sample(EventId::new(i), access(0, 0, false)));
            prop_assert!(!never.sample(EventId::new(i), access(0, 0, false)));
        }
        prop_assert_eq!(always.nominal_rate(), 1.0);
        prop_assert_eq!(never.nominal_rate(), 0.0);
    }
}
