//! Structured workload patterns.
//!
//! Each generator produces a valid trace (locking discipline holds) whose
//! synchronization *shape* matches a well-known concurrent-programming
//! idiom. The shapes matter for the paper's algorithms: lock locality,
//! self-acquires, and reverse-order lock handoffs all change how many
//! synchronization events the freshness timestamp can prove redundant.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use freshtrack_trace::{Trace, TraceBuilder};

use crate::WorkloadConfig;

/// Producers and consumers exchanging items through a lock-protected
/// ring buffer, with an unprotected statistics counter (race-prone when
/// `unprotected_fraction > 0`).
pub fn producer_consumer(config: &WorkloadConfig) -> Trace {
    let mut rng = StdRng::seed_from_u64(config.rng_seed);
    let mut b = TraceBuilder::new();
    let buf_lock = b.lock("buffer");
    let slots: Vec<_> = (0..config.n_vars.max(4))
        .map(|i| b.var(&format!("slot{i}")))
        .collect();
    let count = b.var("count");
    let stats = b.var("stats");
    let threads = config.n_threads.max(2);

    while b.len() < config.n_events {
        let t = rng.gen_range(0..threads);
        let producing = t < threads / 2 || threads == 2 && t == 0;
        let slot = slots[rng.gen_range(0..slots.len())];
        b.acquire(t, buf_lock);
        if producing {
            b.write(t, slot);
            b.write(t, count);
        } else {
            b.read(t, slot);
            b.write(t, count);
        }
        b.release(t, buf_lock);
        if rng.gen_bool(config.unprotected_fraction) {
            b.write(t, stats); // deliberate race
        }
    }
    b.build()
}

/// A linear pipeline: item `i` passes through every stage in order; each
/// stage's hand-off cell is protected by its own lock.
pub fn pipeline(config: &WorkloadConfig) -> Trace {
    let mut rng = StdRng::seed_from_u64(config.rng_seed);
    let mut b = TraceBuilder::new();
    let stages = config.n_threads.max(2);
    let locks: Vec<_> = (0..stages).map(|s| b.lock(&format!("stage{s}"))).collect();
    let cells: Vec<_> = (0..stages).map(|s| b.var(&format!("cell{s}"))).collect();
    let scratch: Vec<_> = (0..stages).map(|s| b.var(&format!("scratch{s}"))).collect();

    // item → next stage to run. A bounded window of items is in flight.
    // Every access to cell `k` happens under lock `k`, so hand-offs are
    // race-free.
    let window = (stages as usize) * 2;
    let mut next_stage: Vec<u32> = vec![0; window];
    while b.len() < config.n_events {
        let item = rng.gen_range(0..window);
        let s = next_stage[item];
        let t = s; // stage s is executed by thread s
        b.acquire(t, locks[s as usize]);
        b.read(t, cells[s as usize]);
        b.release(t, locks[s as usize]);
        // Private compute between hand-offs.
        b.write(t, scratch[s as usize]);
        let next = ((s + 1) % stages) as usize;
        b.acquire(t, locks[next]);
        b.write(t, cells[next]);
        b.release(t, locks[next]);
        next_stage[item] = (s + 1) % stages;
    }
    b.build()
}

/// A main thread forks workers over disjoint partitions, then joins them
/// and reads every partition — the classic structured-parallelism shape.
pub fn fork_join(config: &WorkloadConfig) -> Trace {
    let mut rng = StdRng::seed_from_u64(config.rng_seed);
    let mut b = TraceBuilder::new();
    let workers = config.n_threads.max(2) - 1;
    let part: Vec<Vec<_>> = (0..workers)
        .map(|w| (0..4).map(|i| b.var(&format!("part{w}_{i}"))).collect())
        .collect();
    let shared_lock = b.lock("shared");
    let shared = b.var("shared");

    let rounds = (config.n_events / ((workers as usize) * 12 + 4)).max(1);
    for _ in 0..rounds {
        for w in 0..workers {
            b.fork(0, w + 1);
        }
        // Workers interleave: random schedule of per-worker steps.
        let mut budget: Vec<u32> = vec![8; workers as usize];
        while budget.iter().any(|&x| x > 0) {
            let w = rng.gen_range(0..workers as usize);
            if budget[w] == 0 {
                continue;
            }
            budget[w] -= 1;
            let t = (w + 1) as u32;
            if rng.gen_bool(0.3) {
                b.acquire(t, shared_lock);
                b.write(t, shared);
                b.release(t, shared_lock);
            } else {
                let v = part[w][rng.gen_range(0..part[w].len())];
                if rng.gen_bool(config.write_fraction) {
                    b.write(t, v);
                } else {
                    b.read(t, v);
                }
            }
        }
        for w in 0..workers {
            b.join(0, w + 1);
        }
        // Main reads everything — ordered by the joins.
        for w in 0..workers {
            b.read(0, part[w as usize][0]);
        }
    }
    b.build()
}

/// Alternating compute/sync phases: every thread writes its partition,
/// all threads cross a token barrier, then every thread reads the other
/// partitions. Correct by construction; races only via the optional
/// unprotected stats counter.
pub fn barrier_phases(config: &WorkloadConfig) -> Trace {
    let mut rng = StdRng::seed_from_u64(config.rng_seed);
    let mut b = TraceBuilder::new();
    let threads = config.n_threads.max(2);
    let part: Vec<_> = (0..threads).map(|t| b.var(&format!("part{t}"))).collect();
    let stats = b.var("stats");
    let arrive: Vec<_> = (0..threads)
        .map(|t| b.lock(&format!("arrive{t}")))
        .collect();
    let depart: Vec<_> = (0..threads)
        .map(|t| b.lock(&format!("depart{t}")))
        .collect();

    // Rough events per phase: writes + barrier tokens + reads.
    let per_phase = (threads as usize) * (2 + 4 + 2 * (threads as usize - 1).min(3));
    let phases = (config.n_events / per_phase).max(1);
    for _ in 0..phases {
        // Compute: each thread writes its own partition (random order).
        let mut order: Vec<u32> = (0..threads).collect();
        shuffle(&mut rng, &mut order);
        for &t in &order {
            b.write(t, part[t as usize]);
            if rng.gen_bool(config.unprotected_fraction) {
                b.write(t, stats); // deliberate race
            }
        }
        // Barrier, leader = thread 0: workers signal arrival, leader
        // collects, then signals departure.
        for &t in order.iter().filter(|&&t| t != 0) {
            b.acquire(t, arrive[t as usize])
                .release(t, arrive[t as usize]);
        }
        for t in 1..threads {
            b.acquire(0, arrive[t as usize])
                .release(0, arrive[t as usize]);
        }
        for t in 1..threads {
            b.acquire(0, depart[t as usize])
                .release(0, depart[t as usize]);
        }
        shuffle(&mut rng, &mut order);
        for &t in order.iter().filter(|&&t| t != 0) {
            b.acquire(t, depart[t as usize])
                .release(t, depart[t as usize]);
        }
        // Read neighbours' partitions — ordered through the barrier.
        shuffle(&mut rng, &mut order);
        for &t in &order {
            for d in 1..=(threads - 1).min(3) {
                let other = ((t + d) % threads) as usize;
                b.read(t, part[other]);
            }
        }
        // Second barrier: the next phase's writes must be ordered after
        // this phase's reads, exactly as a real phase barrier ensures.
        for &t in order.iter().filter(|&&t| t != 0) {
            b.acquire(t, arrive[t as usize])
                .release(t, arrive[t as usize]);
        }
        for t in 1..threads {
            b.acquire(0, arrive[t as usize])
                .release(0, arrive[t as usize]);
        }
        for t in 1..threads {
            b.acquire(0, depart[t as usize])
                .release(0, depart[t as usize]);
        }
        shuffle(&mut rng, &mut order);
        for &t in order.iter().filter(|&&t| t != 0) {
            b.acquire(t, depart[t as usize])
                .release(t, depart[t as usize]);
        }
    }
    b.build()
}

/// The nested lock ladder of the paper's Fig. 1, generalized to repeated
/// rounds over rotating thread pairs: one thread releases a stack of
/// locks rung by rung while a partner re-acquires them, writing a shared
/// location between rungs.
pub fn lock_ladder(config: &WorkloadConfig) -> Trace {
    let mut rng = StdRng::seed_from_u64(config.rng_seed);
    let mut b = TraceBuilder::new();
    let rungs = config.n_locks.clamp(2, 16) as usize;
    let locks: Vec<_> = (0..rungs).map(|l| b.lock(&format!("rung{l}"))).collect();
    let x = b.var("x");
    let threads = config.n_threads.max(2);

    while b.len() < config.n_events {
        let a = rng.gen_range(0..threads);
        let mut c = rng.gen_range(0..threads);
        if c == a {
            c = (c + 1) % threads;
        }
        // a takes the whole ladder top-down.
        for l in (0..rungs).rev() {
            b.acquire(a, locks[l]);
        }
        b.write(a, x);
        // a releases bottom-up; c chases, writing between rungs.
        for &lock in locks.iter().take(rungs) {
            b.release(a, lock);
            b.write(a, x);
            b.acquire(c, lock);
            b.write(c, x);
            b.release(c, lock);
        }
    }
    b.build()
}

/// The exact 18-event execution of the paper's Fig. 1 (threads `t1, t2`
/// → `T0, T1`), plus the trace positions of the marked events
/// `S = {e5, e15, e16}`.
pub fn fig1_trace() -> (Trace, Vec<usize>) {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let l1 = b.lock("l1");
    let l2 = b.lock("l2");
    let l3 = b.lock("l3");
    let l4 = b.lock("l4");
    b.acquire(0, l4); // e1
    b.acquire(0, l3); // e2
    b.acquire(0, l2); // e3
    b.acquire(0, l1); // e4
    b.write(0, x); //    e5  ∈ S
    b.release(0, l1); // e6
    b.write(0, x); //    e7
    b.acquire(1, l1); // e8
    b.write(1, x); //    e9
    b.release(0, l2); // e10
    b.write(0, x); //    e11
    b.acquire(1, l2); // e12
    b.release(0, l3); // e13
    b.acquire(1, l3); // e14
    b.write(0, x); //    e15 ∈ S
    b.write(0, x); //    e16 ∈ S
    b.release(0, l4); // e17
    b.acquire(1, l4); // e18
    (b.build(), vec![4, 14, 15])
}

fn shuffle(rng: &mut StdRng, xs: &mut [u32]) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pattern;

    fn config(pattern: Pattern) -> WorkloadConfig {
        WorkloadConfig::named("t")
            .events(2_000)
            .threads(4)
            .pattern(pattern)
            .seed(11)
    }

    #[test]
    fn fig1_has_expected_shape() {
        let (trace, marks) = fig1_trace();
        assert_eq!(trace.len(), 18);
        assert_eq!(trace.thread_count(), 2);
        assert_eq!(trace.lock_count(), 4);
        assert!(trace.validate().is_ok());
        assert_eq!(marks, vec![4, 14, 15]);
    }

    #[test]
    fn producer_consumer_is_valid_and_contended() {
        let trace = producer_consumer(&config(Pattern::ProducerConsumer));
        assert!(trace.validate().is_ok());
        let stats = trace.stats();
        // Single buffer lock: heavy sync traffic.
        assert!(stats.sync_ratio() > 0.3);
    }

    #[test]
    fn pipeline_stages_hand_off_in_order() {
        let trace = pipeline(&config(Pattern::Pipeline));
        assert!(trace.validate().is_ok());
        assert!(trace.thread_count() >= 2);
    }

    #[test]
    fn fork_join_traces_are_race_free_in_partitions() {
        use freshtrack_core::{Detector, DjitDetector};
        use freshtrack_sampling::AlwaysSampler;
        let trace = fork_join(&config(Pattern::ForkJoin));
        assert!(trace.validate().is_ok());
        let races = DjitDetector::new(AlwaysSampler::new()).run(&trace);
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn barrier_phases_are_race_free_without_stats() {
        use freshtrack_core::{Detector, DjitDetector};
        use freshtrack_sampling::AlwaysSampler;
        let mut c = config(Pattern::BarrierPhases);
        c.unprotected_fraction = 0.0;
        let trace = barrier_phases(&c);
        assert!(trace.validate().is_ok());
        let races = DjitDetector::new(AlwaysSampler::new()).run(&trace);
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn barrier_phases_with_stats_race() {
        use freshtrack_core::{Detector, DjitDetector};
        use freshtrack_sampling::AlwaysSampler;
        let mut c = config(Pattern::BarrierPhases);
        c.unprotected_fraction = 0.5;
        let trace = barrier_phases(&c);
        let races = DjitDetector::new(AlwaysSampler::new()).run(&trace);
        assert!(!races.is_empty());
    }

    #[test]
    fn lock_ladder_is_valid() {
        let trace = lock_ladder(&config(Pattern::LockLadder));
        assert!(trace.validate().is_ok());
    }
}
