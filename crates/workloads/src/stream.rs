//! Lazy workload generation: an [`EventSource`] that *generates* events
//! on demand instead of materializing them.
//!
//! [`MixedSource`] is the mixed-pattern scheduler of
//! [`generate`](crate::generate) restructured as a pull-based state
//! machine: the same RNG, the same decision sequence, the same events —
//! `Trace::from_source(MixedSource::new(c))` *is*
//! [`generate(c)`](crate::generate) for the mixed pattern (and is how
//! `generate` is implemented). Because nothing is buffered beyond one
//! pending event, a corpus-scale trace can be generated, analyzed, and
//! serialized in constant memory — generation, detection
//! ([`Detector::run_source`](freshtrack_core), via the seam in
//! `freshtrack-trace`) and the binary writer compose without ever
//! holding the event vector.
//!
//! The structured patterns (producer/consumer, pipeline, fork/join,
//! barrier phases, lock ladder) are builder-driven and bounded by
//! construction; [`stream`] materializes those internally and wraps
//! them in an owning trace source, so every pattern exposes the same
//! [`WorkloadSource`] interface while the unbounded "server" shape —
//! the one the corpus stand-ins scale — streams truly lazily.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use freshtrack_trace::{
    Event, EventKind, EventSource, LockId, SourceError, ThreadId, Trace, TraceSource, VarId,
};

use crate::{generate, Pattern, WorkloadConfig};

/// Per-thread state of the mixed-pattern scheduler.
#[derive(Clone, Debug)]
struct ThreadSim {
    /// Locks currently held (indices into the lock table), newest last.
    held: Vec<usize>,
    /// Remaining accesses inside the current critical section.
    section_left: u32,
    /// The lock this thread used most recently (locality target).
    last_lock: usize,
}

/// The mixed-pattern workload generator as a lazy [`EventSource`].
///
/// Deterministic in the config (seed included) and event-for-event
/// identical to [`generate`](crate::generate) with
/// [`Pattern::Mixed`] — enforced by the `stream_matches_generate`
/// tests and used as `generate`'s implementation.
#[derive(Clone, Debug)]
pub struct MixedSource {
    rng: StdRng,
    n_threads: u32,
    n_locks: usize,
    n_vars: usize,
    n_events: usize,
    sync_ratio: f64,
    write_fraction: f64,
    lock_locality: f64,
    hot_fraction: f64,
    unprotected_fraction: f64,
    hot: usize,
    lock_names: Vec<String>,
    var_names: Vec<String>,
    holder: Vec<Option<u32>>,
    threads: Vec<ThreadSim>,
    /// Events created so far (the builder's `len()` in the batch shape).
    produced: usize,
    /// Second event of a two-event step (access + closing release).
    pending: Option<Event>,
    /// Next thread to drain during the close-out phase.
    close_cursor: usize,
    observed_threads: u32,
}

impl MixedSource {
    /// Creates a lazy generator for the mixed pattern of `config`.
    ///
    /// The `pattern` field of the config is ignored — this *is* the
    /// mixed pattern; use [`stream`] to dispatch on it.
    pub fn new(config: &WorkloadConfig) -> Self {
        let n_vars = config.n_vars as usize;
        let n_locks = config.n_locks as usize;
        MixedSource {
            rng: StdRng::seed_from_u64(config.rng_seed),
            n_threads: config.n_threads,
            n_locks,
            n_vars,
            n_events: config.n_events,
            sync_ratio: config.sync_ratio,
            write_fraction: config.write_fraction,
            lock_locality: config.lock_locality,
            hot_fraction: config.hot_fraction,
            unprotected_fraction: config.unprotected_fraction,
            hot: (n_vars / 16).max(1),
            lock_names: (0..n_locks).map(|l| format!("l{l}")).collect(),
            var_names: (0..n_vars).map(|v| format!("x{v}")).collect(),
            holder: vec![None; n_locks],
            threads: (0..config.n_threads)
                .map(|t| ThreadSim {
                    held: Vec::new(),
                    section_left: 0,
                    last_lock: (t as usize) % n_locks,
                })
                .collect(),
            produced: 0,
            pending: None,
            close_cursor: 0,
            observed_threads: 0,
        }
    }

    fn emit(&mut self, tid: u32, kind: EventKind) -> Event {
        self.produced += 1;
        self.observed_threads = self.observed_threads.max(tid + 1);
        Event::new(ThreadId::new(tid), kind)
    }

    /// One variable choice, honouring the hot-set fraction. RNG call
    /// order matches the batch generator exactly.
    fn pick_var(&mut self) -> VarId {
        let idx = if self.rng.gen_bool(self.hot_fraction) {
            self.rng.gen_range(0..self.hot)
        } else {
            self.rng.gen_range(0..self.n_vars)
        };
        VarId::new(idx as u32)
    }

    fn pick_access(&mut self, var: VarId) -> EventKind {
        if self.rng.gen_bool(self.write_fraction) {
            EventKind::Write(var)
        } else {
            EventKind::Read(var)
        }
    }

    /// One scheduler step: picks a thread and produces its next one or
    /// two events (an access that ends a critical section also emits
    /// the release). Returns the first; a second waits in `pending`.
    fn step(&mut self) -> Event {
        let t = self.rng.gen_range(0..self.n_threads);
        let ti = t as usize;

        if self.threads[ti].section_left > 0 && !self.threads[ti].held.is_empty() {
            // Inside a critical section: access protected data.
            self.threads[ti].section_left -= 1;
            let var = self.pick_var();
            let kind = self.pick_access(var);
            let first = self.emit(t, kind);
            if self.threads[ti].section_left == 0 {
                let l = self.threads[ti]
                    .held
                    .pop()
                    .expect("section implies a held lock");
                self.holder[l] = None;
                self.pending = Some(self.emit(t, EventKind::Release(LockId::new(l as u32))));
            }
            return first;
        }

        if self.rng.gen_bool(self.unprotected_fraction) {
            // An unprotected access (the race-prone portion).
            let var = self.pick_var();
            let kind = self.pick_access(var);
            return self.emit(t, kind);
        }

        // Try to start a critical section. Lock choice honours locality.
        let l = if self.rng.gen_bool(self.lock_locality) {
            self.threads[ti].last_lock
        } else {
            self.rng.gen_range(0..self.n_locks)
        };
        if self.holder[l].is_none() {
            self.holder[l] = Some(t);
            self.threads[ti].held.push(l);
            self.threads[ti].last_lock = l;
            // Section length derived from the target sync ratio: a
            // section of k accesses contributes 2 sync events, so
            // k ≈ 2·(1−r)/r accesses per acquire/release pair.
            let r = self.sync_ratio.max(0.01);
            let mean = (2.0 * (1.0 - r) / r).max(0.5);
            let len = self.rng.gen_range(1..=(2.0 * mean).ceil() as u32 + 1);
            self.threads[ti].section_left = len;
            self.emit(t, EventKind::Acquire(LockId::new(l as u32)))
        } else {
            // Lock busy: do an unprotected-but-benign read of a private
            // location instead (models spinning/other work).
            let var = VarId::new(((ti * 31 + l) % self.n_vars) as u32);
            self.emit(t, EventKind::Read(var))
        }
    }

    /// Closes any open critical sections so the stream also works as a
    /// complete execution, one release per pull.
    fn close_out(&mut self) -> Option<Event> {
        while self.close_cursor < self.threads.len() {
            if let Some(l) = self.threads[self.close_cursor].held.pop() {
                self.holder[l] = None;
                let t = self.close_cursor as u32;
                return Some(self.emit(t, EventKind::Release(LockId::new(l as u32))));
            }
            self.close_cursor += 1;
        }
        None
    }
}

impl EventSource for MixedSource {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        if let Some(event) = self.pending.take() {
            return Ok(Some(event));
        }
        if self.produced >= self.n_events {
            return Ok(self.close_out());
        }
        Ok(Some(self.step()))
    }

    fn declared_threads(&self) -> u32 {
        // Threads are observed from events, matching TraceBuilder: a
        // config thread that never gets scheduled is not in the trace.
        0
    }

    fn observed_threads(&self) -> u32 {
        self.observed_threads
    }

    fn lock_count(&self) -> usize {
        self.lock_names.len()
    }

    fn var_count(&self) -> usize {
        self.var_names.len()
    }

    fn lock_name(&self, index: usize) -> &str {
        &self.lock_names[index]
    }

    fn var_name(&self, index: usize) -> &str {
        &self.var_names[index]
    }
}

/// A workload as an [`EventSource`]: lazily generated where the pattern
/// supports it, materialized-and-wrapped where it does not.
#[derive(Debug)]
pub enum WorkloadSource {
    /// The mixed pattern, generated event by event in constant memory.
    Mixed(MixedSource),
    /// A structured pattern, generated eagerly and streamed from the
    /// materialized trace.
    Materialized(TraceSource<Trace>),
}

/// Streams a workload configuration as an [`EventSource`].
///
/// [`Pattern::Mixed`] — the unbounded "server" shape the corpus
/// stand-ins scale — is generated lazily; the structured patterns are
/// builder-driven and bounded, so they are generated eagerly and
/// wrapped. Either way the stream is event-identical to
/// [`generate`](crate::generate) with the same config.
pub fn stream(config: &WorkloadConfig) -> WorkloadSource {
    match config.pattern {
        Pattern::Mixed => WorkloadSource::Mixed(MixedSource::new(config)),
        _ => WorkloadSource::Materialized(generate(config).into_source()),
    }
}

impl EventSource for WorkloadSource {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        match self {
            WorkloadSource::Mixed(s) => s.next_event(),
            WorkloadSource::Materialized(s) => s.next_event(),
        }
    }

    fn declared_threads(&self) -> u32 {
        match self {
            WorkloadSource::Mixed(s) => s.declared_threads(),
            WorkloadSource::Materialized(s) => s.declared_threads(),
        }
    }

    fn observed_threads(&self) -> u32 {
        match self {
            WorkloadSource::Mixed(s) => s.observed_threads(),
            WorkloadSource::Materialized(s) => s.observed_threads(),
        }
    }

    fn lock_count(&self) -> usize {
        match self {
            WorkloadSource::Mixed(s) => s.lock_count(),
            WorkloadSource::Materialized(s) => s.lock_count(),
        }
    }

    fn var_count(&self) -> usize {
        match self {
            WorkloadSource::Mixed(s) => s.var_count(),
            WorkloadSource::Materialized(s) => s.var_count(),
        }
    }

    fn lock_name(&self, index: usize) -> &str {
        match self {
            WorkloadSource::Mixed(s) => s.lock_name(index),
            WorkloadSource::Materialized(s) => s.lock_name(index),
        }
    }

    fn var_name(&self, index: usize) -> &str {
        match self {
            WorkloadSource::Mixed(s) => s.var_name(index),
            WorkloadSource::Materialized(s) => s.var_name(index),
        }
    }

    fn remaining_hint(&self) -> Option<usize> {
        match self {
            WorkloadSource::Mixed(_) => None,
            WorkloadSource::Materialized(s) => s.remaining_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_stream_matches_generate(config: &WorkloadConfig) {
        let batch = generate(config);
        let streamed = Trace::from_source(&mut stream(config)).expect("generation is infallible");
        assert_eq!(batch.events(), streamed.events(), "{}", config.name);
        assert_eq!(batch.thread_count(), streamed.thread_count());
        assert_eq!(batch.lock_count(), streamed.lock_count());
        assert_eq!(batch.var_count(), streamed.var_count());
        for v in 0..batch.var_count() {
            assert_eq!(batch.var_name(v), streamed.var_name(v));
        }
        for l in 0..batch.lock_count() {
            assert_eq!(batch.lock_name(l), streamed.lock_name(l));
        }
    }

    #[test]
    fn mixed_stream_is_event_identical_to_generate() {
        for seed in [0u64, 7, 123_456] {
            assert_stream_matches_generate(
                &WorkloadConfig::named("lazy")
                    .events(4_000)
                    .threads(6)
                    .unprotected(0.05)
                    .seed(seed),
            );
        }
        // Config extremes: sync-heavy, hot-set, tiny.
        assert_stream_matches_generate(&WorkloadConfig::named("sync").sync_ratio(0.8).seed(3));
        assert_stream_matches_generate(
            &WorkloadConfig::named("hot")
                .vars(4)
                .hot_fraction(0.9)
                .seed(5),
        );
        assert_stream_matches_generate(&WorkloadConfig::named("tiny").events(7).seed(1));
    }

    #[test]
    fn every_pattern_streams_identically() {
        for pattern in [
            Pattern::Mixed,
            Pattern::ProducerConsumer,
            Pattern::Pipeline,
            Pattern::ForkJoin,
            Pattern::BarrierPhases,
            Pattern::LockLadder,
        ] {
            assert_stream_matches_generate(
                &WorkloadConfig::named("p")
                    .events(1_500)
                    .threads(4)
                    .pattern(pattern)
                    .seed(11),
            );
        }
    }

    #[test]
    fn mixed_stream_closes_critical_sections() {
        let config = WorkloadConfig::named("close").events(999).seed(2);
        let trace = Trace::from_source(&mut stream(&config)).unwrap();
        assert!(trace.validate().is_ok());
        let stats = trace.stats();
        assert_eq!(stats.acquires, stats.releases, "all sections closed");
    }

    #[test]
    fn mixed_metadata_is_complete_upfront() {
        let config = WorkloadConfig::named("meta").vars(10).locks(3);
        let source = MixedSource::new(&config);
        assert_eq!(source.var_count(), 10);
        assert_eq!(source.lock_count(), 3);
        assert_eq!(source.var_name(9), "x9");
        assert_eq!(source.lock_name(0), "l0");
    }
}
