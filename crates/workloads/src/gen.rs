use freshtrack_trace::Trace;

use crate::patterns;
use crate::stream::MixedSource;

/// The structural pattern a generated workload follows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Pattern {
    /// Threads run independent lock-protected sessions with occasional
    /// unprotected accesses (the general "server" shape).
    #[default]
    Mixed,
    /// Producers and consumers exchanging items through a shared,
    /// lock-protected buffer.
    ProducerConsumer,
    /// A linear pipeline: each stage hands work to the next through a
    /// dedicated lock.
    Pipeline,
    /// A main thread forks workers, they compute, main joins them.
    ForkJoin,
    /// Alternating compute/sync phases over a barrier-like lock chain.
    BarrierPhases,
    /// The nested lock-ladder of the paper's Fig. 1, generalized.
    LockLadder,
}

/// Parameters of a synthetic workload.
///
/// Build one fluently from [`WorkloadConfig::named`]; every knob has a
/// reasonable default. The same config (including seed) always generates
/// the same trace.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// Display name (used in experiment reports).
    pub name: String,
    /// Number of threads.
    pub n_threads: u32,
    /// Number of application locks.
    pub n_locks: u32,
    /// Number of shared memory locations.
    pub n_vars: u32,
    /// Approximate number of events to generate.
    pub n_events: usize,
    /// Fraction of events that are synchronization events (acquire +
    /// release), for patterns that honour it.
    pub sync_ratio: f64,
    /// Fraction of accesses that are writes.
    pub write_fraction: f64,
    /// Probability that a thread reuses its previously used lock rather
    /// than picking a fresh one (lock locality / contention knob).
    pub lock_locality: f64,
    /// Fraction of accesses directed at a small "hot" location set.
    pub hot_fraction: f64,
    /// Fraction of accesses performed outside any critical section
    /// (the race-prone portion).
    pub unprotected_fraction: f64,
    /// RNG seed.
    pub rng_seed: u64,
    /// Structural pattern.
    pub pattern: Pattern,
}

impl WorkloadConfig {
    /// Creates a config with defaults: 4 threads, 8 locks, 64 vars,
    /// 10 000 events, 30% sync, 40% writes, mixed pattern.
    pub fn named(name: &str) -> Self {
        WorkloadConfig {
            name: name.to_owned(),
            n_threads: 4,
            n_locks: 8,
            n_vars: 64,
            n_events: 10_000,
            sync_ratio: 0.3,
            write_fraction: 0.4,
            lock_locality: 0.5,
            hot_fraction: 0.1,
            unprotected_fraction: 0.02,
            rng_seed: 0,
            pattern: Pattern::Mixed,
        }
    }

    /// Sets the thread count.
    pub fn threads(mut self, n: u32) -> Self {
        self.n_threads = n.max(1);
        self
    }

    /// Sets the lock count.
    pub fn locks(mut self, n: u32) -> Self {
        self.n_locks = n.max(1);
        self
    }

    /// Sets the shared-location count.
    pub fn vars(mut self, n: u32) -> Self {
        self.n_vars = n.max(1);
        self
    }

    /// Sets the approximate event count.
    pub fn events(mut self, n: usize) -> Self {
        self.n_events = n;
        self
    }

    /// Sets the sync-event fraction.
    pub fn sync_ratio(mut self, r: f64) -> Self {
        self.sync_ratio = r.clamp(0.0, 0.95);
        self
    }

    /// Sets the write fraction of accesses.
    pub fn write_fraction(mut self, r: f64) -> Self {
        self.write_fraction = r.clamp(0.0, 1.0);
        self
    }

    /// Sets the lock-locality probability.
    pub fn lock_locality(mut self, r: f64) -> Self {
        self.lock_locality = r.clamp(0.0, 1.0);
        self
    }

    /// Sets the hot-location access fraction.
    pub fn hot_fraction(mut self, r: f64) -> Self {
        self.hot_fraction = r.clamp(0.0, 1.0);
        self
    }

    /// Sets the unprotected (race-prone) access fraction.
    pub fn unprotected(mut self, r: f64) -> Self {
        self.unprotected_fraction = r.clamp(0.0, 1.0);
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Sets the structural pattern.
    pub fn pattern(mut self, pattern: Pattern) -> Self {
        self.pattern = pattern;
        self
    }
}

/// Generates a trace from a workload configuration.
///
/// The output always satisfies the locking discipline
/// ([`Trace::validate`] succeeds) and is a deterministic function of the
/// config. For the mixed pattern this materializes the lazy
/// [`MixedSource`] event stream — [`crate::stream`] exposes the same
/// events without ever building the vector.
pub fn generate(config: &WorkloadConfig) -> Trace {
    match config.pattern {
        Pattern::Mixed => Trace::from_source(&mut MixedSource::new(config))
            .expect("workload generation is infallible"),
        Pattern::ProducerConsumer => patterns::producer_consumer(config),
        Pattern::Pipeline => patterns::pipeline(config),
        Pattern::ForkJoin => patterns::fork_join(config),
        Pattern::BarrierPhases => patterns::barrier_phases(config),
        Pattern::LockLadder => patterns::lock_ladder(config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_size_approximately() {
        let trace = generate(&WorkloadConfig::named("t").events(5_000));
        assert!(trace.len() >= 5_000);
        assert!(trace.len() < 5_200);
    }

    #[test]
    fn traces_satisfy_locking_discipline() {
        for pattern in [
            Pattern::Mixed,
            Pattern::ProducerConsumer,
            Pattern::Pipeline,
            Pattern::ForkJoin,
            Pattern::BarrierPhases,
            Pattern::LockLadder,
        ] {
            let config = WorkloadConfig::named("t")
                .events(3_000)
                .threads(5)
                .pattern(pattern)
                .seed(3);
            let trace = generate(&config);
            assert!(trace.validate().is_ok(), "{pattern:?}");
            assert!(trace.len() > 100, "{pattern:?} too small");
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let c = WorkloadConfig::named("t").events(2_000).seed(42);
        let a = generate(&c);
        let b = generate(&c);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&WorkloadConfig::named("t").events(2_000).seed(1));
        let b = generate(&WorkloadConfig::named("t").events(2_000).seed(2));
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn sync_ratio_is_roughly_honoured() {
        for &target in &[0.1, 0.3, 0.6] {
            let trace = generate(
                &WorkloadConfig::named("t")
                    .events(30_000)
                    .sync_ratio(target)
                    .unprotected(0.0),
            );
            let actual = trace.stats().sync_ratio();
            assert!(
                (actual - target).abs() < target * 0.5 + 0.05,
                "target {target}, actual {actual}"
            );
        }
    }

    #[test]
    fn unprotected_knob_creates_races() {
        use freshtrack_core::{Detector, DjitDetector};
        use freshtrack_sampling::AlwaysSampler;
        let racy = generate(
            &WorkloadConfig::named("t")
                .events(5_000)
                .unprotected(0.2)
                .hot_fraction(0.8),
        );
        let races = DjitDetector::new(AlwaysSampler::new()).run(&racy);
        assert!(!races.is_empty());
    }
}
