//! BenchBase-style database workload mixes.
//!
//! The paper's online evaluation runs MySQL under 15 BenchBase
//! benchmarks (minus three documented exclusions, leaving 12 reported).
//! This module defines the corresponding 12 workload mixes as parameter
//! points for the `freshtrack-dbsim` database: transaction length,
//! read/write mix, table count, access skew, and the latch/lock pressure
//! each benchmark is known for. The absolute throughput differs from
//! MySQL's, but the *relative* behaviour across detector configurations
//! — which is what Figs. 5–6 plot — is driven by these mix parameters.

/// A database workload mix (one BenchBase-style benchmark).
#[derive(Clone, Debug, PartialEq)]
pub struct DbWorkload {
    /// Benchmark name.
    pub name: &'static str,
    /// Number of tables in the schema.
    pub tables: u32,
    /// Rows per table.
    pub rows_per_table: u32,
    /// Operations per transaction: sampled uniformly from this range.
    pub txn_ops: (u32, u32),
    /// Fraction of operations that are writes (UPDATE/INSERT).
    pub write_fraction: f64,
    /// Zipf-ish skew toward hot rows in `[0, 1)`; higher = hotter.
    pub hot_row_skew: f64,
    /// Fraction of row accesses that bypass row locking (models the
    /// benign-looking unsynchronized counters real servers contain —
    /// the seeded races of the evaluation).
    pub unprotected_fraction: f64,
    /// Local (unshared) operations between shared accesses, modelling
    /// per-request compute.
    pub think_ops: u32,
    /// Number of lock stripes protecting rows. Real engines guard rows
    /// with a bounded pool of hash-striped latches rather than one mutex
    /// per row; the stripe count controls how hot each latch runs.
    pub lock_stripes: u32,
}

impl DbWorkload {
    /// Average operations per transaction.
    pub fn avg_ops(&self) -> f64 {
        (self.txn_ops.0 + self.txn_ops.1) as f64 / 2.0
    }
}

fn mix(
    name: &'static str,
    tables: u32,
    rows_per_table: u32,
    txn_ops: (u32, u32),
    write_fraction: f64,
    hot_row_skew: f64,
    think_ops: u32,
) -> DbWorkload {
    DbWorkload {
        name,
        tables,
        rows_per_table,
        txn_ops,
        write_fraction,
        hot_row_skew,
        unprotected_fraction: 0.002,
        think_ops,
        lock_stripes: 128,
    }
}

/// The 12 reported BenchBase-style mixes (the paper excludes `noop`,
/// `resourcestresser` and `ot-metrics` for documented reasons; so do
/// we).
pub fn benchbase_suite() -> Vec<DbWorkload> {
    vec![
        // OLTP heavyweights: long transactions, mixed writes.
        mix("tpcc", 9, 2_000, (8, 24), 0.55, 0.3, 6),
        mix("tatp", 4, 4_000, (2, 5), 0.2, 0.2, 2),
        mix("smallbank", 3, 3_000, (3, 6), 0.5, 0.4, 2),
        mix("voter", 3, 1_000, (2, 4), 0.7, 0.6, 1),
        // Web-style read-mostly mixes.
        mix("wikipedia", 6, 4_000, (3, 10), 0.1, 0.5, 4),
        mix("twitter", 5, 4_000, (2, 8), 0.15, 0.7, 3),
        mix("epinions", 5, 3_000, (3, 9), 0.12, 0.4, 3),
        mix("seats", 8, 2_500, (5, 14), 0.35, 0.3, 4),
        mix("auctionmark", 9, 2_500, (5, 16), 0.4, 0.5, 5),
        // Synthetic stressors.
        mix("ycsb", 1, 8_000, (1, 4), 0.5, 0.6, 1),
        mix("sibench", 1, 500, (2, 3), 0.5, 0.8, 1),
        mix("hyadapt", 1, 4_000, (4, 10), 0.3, 0.2, 8),
    ]
}

/// Looks a mix up by name.
pub fn by_name(name: &str) -> Option<DbWorkload> {
    benchbase_suite().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_12_unique_mixes() {
        let suite = benchbase_suite();
        assert_eq!(suite.len(), 12);
        let mut names: Vec<_> = suite.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn parameters_are_sane() {
        for w in benchbase_suite() {
            assert!(w.tables >= 1, "{}", w.name);
            assert!(w.rows_per_table >= 100, "{}", w.name);
            assert!(w.txn_ops.0 <= w.txn_ops.1, "{}", w.name);
            assert!((0.0..=1.0).contains(&w.write_fraction), "{}", w.name);
            assert!((0.0..1.0).contains(&w.hot_row_skew), "{}", w.name);
            assert!(w.avg_ops() >= 1.0, "{}", w.name);
        }
    }

    #[test]
    fn excluded_benchmarks_are_absent() {
        for name in [
            "noop",
            "resourcestresser",
            "ot-metrics",
            "chbenchmark",
            "tpcds",
        ] {
            assert!(by_name(name).is_none(), "{name} should be excluded");
        }
    }
}
