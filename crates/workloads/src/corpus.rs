//! The offline benchmark corpus.
//!
//! The paper's appendix evaluates on 26 Java execution traces (IBM
//! Contest, DaCapo, SIR, Java Grande, and standalone benchmarks) run
//! through the RAPID framework. Those traces are not redistributable, so
//! this module defines 26 *synthetic stand-ins* with matching names,
//! ordered as in the paper's Figs. 7–9 (by total number of acquires),
//! whose generator parameters reproduce the characteristics that drive
//! the paper's metrics: thread count, lock count, sync density, lock
//! locality (self-acquire frequency), and overall size.
//!
//! Absolute event counts are scaled down (the originals range up to
//! billions of events) — uniformly, so the cross-benchmark ordering is
//! preserved. `scale` lets experiments trade fidelity for runtime.

use freshtrack_trace::Trace;

use crate::{generate, Pattern, WorkloadConfig};

/// One named benchmark of the corpus.
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusBenchmark {
    /// Benchmark name (matching the paper's figure labels).
    pub name: &'static str,
    config: WorkloadConfig,
}

impl CorpusBenchmark {
    /// The generator configuration (without seed applied).
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Generates the benchmark trace at the given scale and seed.
    ///
    /// `scale` multiplies the event count (1.0 = the corpus default).
    pub fn trace(&self, scale: f64, seed: u64) -> Trace {
        generate(&self.scaled(scale, seed))
    }

    /// Streams the benchmark as a lazy
    /// [`EventSource`](freshtrack_trace::EventSource) — event-identical
    /// to [`trace`](CorpusBenchmark::trace), but mixed-pattern
    /// benchmarks never materialize the event vector, so scale is
    /// bounded by runtime rather than memory.
    pub fn stream(&self, scale: f64, seed: u64) -> crate::WorkloadSource {
        crate::stream(&self.scaled(scale, seed))
    }

    fn scaled(&self, scale: f64, seed: u64) -> WorkloadConfig {
        let mut config = self.config.clone();
        config.n_events = ((config.n_events as f64) * scale).max(100.0) as usize;
        config.rng_seed = seed;
        config
    }
}

#[allow(clippy::too_many_arguments)]
fn bench(
    name: &'static str,
    threads: u32,
    locks: u32,
    vars: u32,
    events: usize,
    sync_ratio: f64,
    lock_locality: f64,
    pattern: Pattern,
) -> CorpusBenchmark {
    let config = WorkloadConfig::named(name)
        .threads(threads)
        .locks(locks)
        .vars(vars)
        .events(events)
        .sync_ratio(sync_ratio)
        .lock_locality(lock_locality)
        .unprotected(0.01)
        .pattern(pattern);
    CorpusBenchmark { name, config }
}

/// The 26 benchmarks, ordered by total number of acquires as in Fig. 7.
///
/// Shapes: contest-style microbenchmarks are tiny and lock-light;
/// DaCapo-style applications are large with many locks and high lock
/// locality; `sor`/`cassandra` are sync-heavy at the far end.
pub fn corpus() -> Vec<CorpusBenchmark> {
    use Pattern::*;
    vec![
        bench("wronglock", 3, 2, 8, 800, 0.25, 0.3, Mixed),
        bench("twostage", 3, 2, 8, 1_000, 0.3, 0.4, Mixed),
        bench(
            "producerconsumer",
            4,
            1,
            16,
            1_500,
            0.45,
            0.9,
            ProducerConsumer,
        ),
        bench("mergesort", 5, 4, 32, 2_000, 0.2, 0.5, ForkJoin),
        bench("lusearch", 8, 8, 128, 3_000, 0.25, 0.6, Mixed),
        bench("tsp", 6, 4, 64, 4_000, 0.2, 0.5, Mixed),
        bench("bubblesort", 4, 4, 48, 5_000, 0.35, 0.4, Mixed),
        bench("clean", 3, 3, 16, 6_000, 0.3, 0.5, Mixed),
        bench("graphchi", 8, 8, 256, 8_000, 0.2, 0.6, BarrierPhases),
        bench("biojava", 4, 6, 96, 10_000, 0.25, 0.7, Mixed),
        bench("sunflow", 8, 6, 256, 12_000, 0.15, 0.7, ForkJoin),
        bench("linkedlist", 4, 1, 32, 15_000, 0.5, 0.9, ProducerConsumer),
        bench("jigsaw", 8, 12, 128, 18_000, 0.3, 0.5, Mixed),
        bench("bufwriter", 5, 2, 24, 22_000, 0.4, 0.85, ProducerConsumer),
        bench("readerswriters", 6, 2, 32, 26_000, 0.45, 0.9, Mixed),
        bench("zxing", 8, 10, 192, 32_000, 0.25, 0.6, Mixed),
        bench("ftpserver", 10, 12, 128, 40_000, 0.35, 0.6, Mixed),
        bench("luindex", 4, 6, 96, 48_000, 0.3, 0.7, Mixed),
        bench("derby", 12, 16, 256, 60_000, 0.35, 0.6, Mixed),
        bench("tradesoap", 12, 12, 192, 72_000, 0.3, 0.6, Pipeline),
        bench("tradebeans", 12, 12, 192, 85_000, 0.3, 0.6, Pipeline),
        bench("cryptorsa", 8, 4, 64, 100_000, 0.2, 0.8, ForkJoin),
        bench("hsqldb", 12, 16, 256, 120_000, 0.4, 0.7, Mixed),
        bench("xalan", 8, 12, 192, 140_000, 0.45, 0.5, Mixed),
        bench("sor", 6, 4, 64, 170_000, 0.5, 0.9, BarrierPhases),
        bench("cassandra", 16, 24, 512, 200_000, 0.45, 0.6, Mixed),
    ]
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<CorpusBenchmark> {
    corpus().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_26_unique_benchmarks() {
        let c = corpus();
        assert_eq!(c.len(), 26);
        let mut names: Vec<_> = c.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn ordered_by_size() {
        let c = corpus();
        for pair in c.windows(2) {
            assert!(
                pair[0].config().n_events <= pair[1].config().n_events,
                "{} vs {}",
                pair[0].name,
                pair[1].name
            );
        }
    }

    #[test]
    fn traces_generate_and_validate_at_small_scale() {
        for b in corpus() {
            let trace = b.trace(0.05, 1);
            assert!(trace.validate().is_ok(), "{}", b.name);
            assert!(!trace.is_empty(), "{}", b.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("cassandra").is_some());
        assert!(by_name("nonesuch").is_none());
    }
}
