//! Seeded synthetic workloads for race-detection experiments.
//!
//! The paper evaluates on two substrates neither of which is available to
//! a pure-Rust reproduction: MySQL driven by BenchBase (online), and the
//! RAPID corpus of Java execution traces (offline). This crate provides
//! their stand-ins:
//!
//! * [`WorkloadConfig`] + [`generate`] — a parametric, seeded trace
//!   generator covering the axes that drive the paper's results: thread
//!   count, lock count and reuse, sync/access ratio, write fraction, hot
//!   locations, and the fraction of unprotected (race-prone) accesses.
//!   [`stream`] exposes the same events as a lazy
//!   [`EventSource`](freshtrack_trace::EventSource), so corpus-scale
//!   traces can be generated, analyzed and serialized without ever
//!   materializing the event vector.
//! * [`patterns`] — structured generators (producer/consumer, pipeline,
//!   barrier phases, fork/join, and the paper's Fig. 1 lock ladder).
//! * [`corpus`] — 26 named configurations shaped after the RAPID
//!   benchmark corpus used in the paper's appendix (Figs. 7–9).
//! * [`benchbase`] — 12 named database workload mixes shaped after the
//!   BenchBase suite used in the paper's online evaluation (Figs. 5–6),
//!   consumed by `freshtrack-dbsim`.
//!
//! All generators are deterministic functions of their seed.
//!
//! # Example
//!
//! ```
//! use freshtrack_workloads::{generate, WorkloadConfig};
//!
//! let trace = generate(&WorkloadConfig::named("demo").events(5_000).threads(4).seed(7));
//! assert!(trace.validate().is_ok());
//! let again = generate(&WorkloadConfig::named("demo").events(5_000).threads(4).seed(7));
//! assert_eq!(trace.len(), again.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchbase;
pub mod corpus;
mod gen;
pub mod patterns;
mod stream;

pub use benchbase::DbWorkload;
pub use corpus::CorpusBenchmark;
pub use gen::{generate, Pattern, WorkloadConfig};
pub use stream::{stream, MixedSource, WorkloadSource};
