//! End-to-end smoke tests for the `freshtrack` CLI: every subcommand is
//! driven through the library entry point ([`freshtrack_cli::run`]) on a
//! tiny generated trace, exactly as `main` would.

use std::path::PathBuf;

use freshtrack_cli::run;
use freshtrack_trace::read_trace;

fn run_cli(args: &[&str]) -> (i32, String) {
    let raw: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let code = run(&raw, &mut out);
    (code, String::from_utf8(out).expect("CLI output is UTF-8"))
}

/// A temp file that cleans up after itself (no tempfile dependency).
struct TempTrace(PathBuf);

impl TempTrace {
    fn write(name: &str, contents: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "freshtrack-smoke-{}-{name}.trace",
            std::process::id()
        ));
        std::fs::write(&path, contents).expect("write temp trace");
        TempTrace(path)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for TempTrace {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Generates the tiny shared workload through the CLI itself.
fn tiny_trace(name: &str) -> TempTrace {
    let (code, text) = run_cli(&[
        "generate",
        "--events",
        "400",
        "--threads",
        "4",
        "--unprotected",
        "0.1",
        "--seed",
        "7",
    ]);
    assert_eq!(code, 0, "generate failed:\n{text}");
    let trace = read_trace(&text).expect("generated trace parses");
    assert!(trace.validate().is_ok(), "generated trace validates");
    assert!(trace.len() >= 400, "asked for 400 events");
    TempTrace::write(name, &text)
}

#[test]
fn help_and_error_paths() {
    let (code, text) = run_cli(&["help"]);
    assert_eq!(code, 0);
    assert!(text.contains("USAGE"), "{text}");

    let (code, text) = run_cli(&[]);
    assert_eq!(code, 0, "bare invocation prints usage");
    assert!(text.contains("USAGE"));

    let (code, text) = run_cli(&["frobnicate"]);
    assert_eq!(code, 1);
    assert!(text.contains("unknown command"), "{text}");

    let (code, text) = run_cli(&["analyze", "/no/such/file.trace"]);
    assert_eq!(code, 1);
    assert!(text.contains("cannot read"), "{text}");
}

#[test]
fn stats_reports_the_trace_shape() {
    let trace = tiny_trace("stats");
    let (code, text) = run_cli(&["stats", trace.path()]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("sync ratio"), "{text}");
}

#[test]
fn analyze_runs_every_engine_and_engines_agree() {
    let trace = tiny_trace("analyze");
    let mut sampling_reports: Vec<(String, String)> = Vec::new();
    for engine in ["ft", "st", "sam", "su", "so"] {
        let (code, text) = run_cli(&[
            "analyze",
            trace.path(),
            "--engine",
            engine,
            "--rate",
            "1.0",
            "--counters",
        ]);
        assert_eq!(code, 0, "engine {engine} failed:\n{text}");
        assert!(text.contains("race report(s)"), "{engine}: {text}");
        let first = text.lines().next().unwrap_or("").to_string();
        let count = first.split(": ").nth(1).unwrap_or("").to_string();
        if engine != "ft" {
            sampling_reports.push((engine.to_string(), count));
        }
    }
    // The CLI surfaces the same equivalence the differential harness
    // asserts in-process: all sampling engines report identically.
    let (_, reference) = &sampling_reports[0];
    for (engine, count) in &sampling_reports {
        assert_eq!(count, reference, "engine {engine} disagrees");
    }
}

#[test]
fn oracle_lists_ground_truth_races() {
    let trace = tiny_trace("oracle");
    let (code, text) = run_cli(&["oracle", trace.path(), "--rate", "1.0"]);
    assert_eq!(code, 0, "{text}");
    assert!(
        text.contains("racy event(s) among the sampled set"),
        "{text}"
    );
}

#[test]
fn oracle_streaming_modes_match_exact_mode() {
    let trace = tiny_trace("oracle-stream");
    let (code, exact) = run_cli(&["oracle", trace.path(), "--rate", "1.0"]);
    assert_eq!(code, 0, "{exact}");
    // The streaming oracle's racy events are exact at every window
    // size, so each mode reproduces the exact oracle's output verbatim.
    for extra in [
        &["--stream"][..],
        &["--window", "64"][..],
        &["--window", "1", "--reservoir", "8"][..],
    ] {
        let args = [&["oracle", trace.path(), "--rate", "1.0"], extra].concat();
        let (code, streamed) = run_cli(&args);
        assert_eq!(code, 0, "{streamed}");
        assert_eq!(streamed, exact, "{extra:?} diverged from exact mode");
    }
    // `--stats` appends diagnostics after the identical body.
    let (code, with_stats) = run_cli(&["oracle", trace.path(), "--window", "64", "--stats"]);
    assert_eq!(code, 0, "{with_stats}");
    assert!(with_stats.starts_with(&exact), "{with_stats}");
    assert!(with_stats.contains("state:"), "{with_stats}");
}

#[test]
fn corpus_lists_and_emits_benchmarks() {
    let (code, text) = run_cli(&["corpus", "--list"]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("wronglock"), "{text}");

    let (code, text) = run_cli(&[
        "corpus",
        "--bench",
        "wronglock",
        "--scale",
        "0.05",
        "--seed",
        "1",
    ]);
    assert_eq!(code, 0, "{text}");
    let trace = read_trace(&text).expect("corpus trace parses");
    assert!(trace.validate().is_ok());

    let (code, text) = run_cli(&["corpus", "--bench", "nonexistent"]);
    assert_eq!(code, 1);
    assert!(text.contains("unknown corpus benchmark"), "{text}");
}

#[test]
fn dbsim_runs_a_small_online_benchmark() {
    let (code, text) = run_cli(&[
        "dbsim",
        "--mix",
        "ycsb",
        "--engine",
        "su",
        "--rate",
        "0.1",
        "--workers",
        "2",
        "--txns",
        "10",
        "--seed",
        "3",
    ]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("txns"), "{text}");
    assert!(text.contains("sampled="), "{text}");
}
