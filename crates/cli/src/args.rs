//! A small, dependency-free command-line argument parser.
//!
//! Supports `--flag`, `--key value`, `--key=value` and positional
//! arguments, with typed accessors and unknown-option detection.

use std::collections::HashMap;
use std::fmt;

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// An argument-parsing or validation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments. `known_flags` lists options that take no
    /// value; everything else starting with `--` expects one.
    pub fn parse<I, S>(raw: I, known_flags: &[&str]) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    args.options.insert(key.to_owned(), value.to_owned());
                } else if known_flags.contains(&name) {
                    args.flags.push(name.to_owned());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError(format!("--{name} expects a value")))?;
                    args.options.insert(name.to_owned(), value);
                }
            } else {
                args.positional.push(arg);
            }
        }
        Ok(args)
    }

    /// The positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Whether `--name` was given as a flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The raw value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A typed option with a default.
    ///
    /// # Errors
    ///
    /// Fails if the value is present but does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("invalid value for --{name}: `{v}`"))),
        }
    }

    /// A required typed option.
    ///
    /// # Errors
    ///
    /// Fails if missing or unparsable.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgError> {
        let v = self
            .get(name)
            .ok_or_else(|| ArgError(format!("missing required option --{name}")))?;
        v.parse()
            .map_err(|_| ArgError(format!("invalid value for --{name}: `{v}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_positional_options_and_flags() {
        let args = Args::parse(
            ["input.trace", "--rate", "0.03", "--counters", "--seed=7"],
            &["counters"],
        )
        .unwrap();
        assert_eq!(args.positional(), &["input.trace".to_string()]);
        assert!(args.flag("counters"));
        assert_eq!(args.get("rate"), Some("0.03"));
        assert_eq!(args.get_or("seed", 0u64).unwrap(), 7);
    }

    #[test]
    fn typed_accessors_validate() {
        let args = Args::parse(["--rate", "abc"], &[]).unwrap();
        assert!(args.get_or("rate", 0.5f64).is_err());
        assert_eq!(args.get_or("missing", 3u32).unwrap(), 3);
        assert!(args.require::<u32>("missing").is_err());
    }

    #[test]
    fn dangling_option_is_an_error() {
        assert!(Args::parse(["--rate"], &[]).is_err());
    }
}
