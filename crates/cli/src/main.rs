fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = std::io::stdout().lock();
    std::process::exit(freshtrack_cli::run(&args, &mut out));
}
