//! The `freshtrack` command-line interface.
//!
//! Subcommands:
//!
//! * `analyze <trace>` — run a detector engine over a trace, streamed
//!   in constant memory; `--jobs N` replays a segmented `.ftb` v2 file
//!   in parallel with byte-identical output, and `--cache` keeps a
//!   `.ftc` sidecar so re-analysis after an append costs O(appended).
//! * `oracle <trace>` — ground-truth racy events. The default exact
//!   mode materializes (200k-event cap, enforced while streaming);
//!   `--window N` / `--reservoir K` / `--stream` switch to the
//!   bounded-memory [`StreamingOracle`] — same racy-event output at
//!   any window size, unbounded input length.
//!
//! [`StreamingOracle`]: freshtrack_core::StreamingOracle
//! * `stats <trace>` — trace statistics, streamed in constant memory.
//! * `convert <trace>` — re-encode between the text, binary (`.ftb`)
//!   and segmented (`.ftb` v2, `--to binary-v2`) formats.
//! * `segments <file>` — verify a v2 file and print its footer index.
//! * `generate` — generate a synthetic workload trace.
//! * `corpus` — list or emit the offline benchmark corpus.
//! * `dbsim` — run the online database benchmark with a detector.
//!
//! Trace-consuming commands accept `-` for stdin and auto-detect the
//! text vs binary (`.ftb`) format from the input's first bytes, so
//! `freshtrack generate | freshtrack convert - --to binary |
//! freshtrack analyze -` pipes end to end without temporary files.
//!
//! Run `freshtrack help` for full usage. The library entry point
//! [`run`] is separated from `main` so commands are unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;

pub use args::{ArgError, Args};
pub use commands::run;

/// The top-level usage text.
pub const USAGE: &str = "\
freshtrack — sampling-based happens-before race detection

USAGE:
    freshtrack <command> [options]

COMMANDS:
    analyze <trace>   run a detector over a trace, streaming in
                      constant memory (`-` = stdin; text or binary
                      input is auto-detected)
                      --engine ft|st|sam|su|so (default so)
                      --rate <0..1> (default 0.03)  --seed <n>
                      --counters    print work counters
                      --jobs <n>    parallel checkpointed replay of a
                      segmented `.ftb` v2 file (default 1; N>=2 needs
                      a real file path, byte-identical output)
                      --cache[=PATH]  reuse + rewrite a `.ftc` analysis
                      sidecar (default PATH: trace path with `.ftc`);
                      re-analysis after an append costs O(appended),
                      output stays byte-identical to a cold run
                      --no-cache    ignore any sidecar even if --cache
    oracle <trace>    ground-truth racy events (`-` = stdin; text or
                      binary input auto-detected, exactly as analyze)
                      --rate <0..1> (default 1.0)   --seed <n>
                      default: exact O(N^2) oracle, capped at 200k
                      events (enforced while streaming)
                      --stream          bounded-memory streaming oracle
                      --window <n>      per-var access window (implies
                      --stream; racy events stay exact, racy pairs
                      are reported while windowed)
                      --reservoir <k>   also check pairs against a
                      uniform reservoir of k accesses (implies --stream)
                      --stats           print run statistics
    stats <trace>     print trace statistics (streaming, constant
                      memory; `-` = stdin, format auto-detected)
    convert <trace>   re-encode a trace to stdout (`-` = stdin,
                      input format auto-detected)
                      --to text|binary|binary-v2   target (required)
                      --segment-events <n>  v2 segment size
                      (default 4096)
    segments <file>   verify a segmented `.ftb` v2 file and print its
                      footer index
                      --cache[=PATH]  also show, per segment, whether
                      the `.ftc` sidecar entry is a hit, stale, or
                      missing (`-`)
    generate          generate a workload trace to stdout
                      --pattern mixed|pc|pipeline|forkjoin|barrier|ladder
                      --events <n> --threads <n> --locks <n> --vars <n>
                      --sync-ratio <f> --unprotected <f> --seed <n>
    corpus            --list, or --bench <name> [--scale <f>] [--seed <n>]
                      to emit a corpus trace to stdout
    dbsim             run the online database benchmark
                      --mix <name> (default ycsb) --engine ft|st|su|so
                      --rate <f> --workers <n> --txns <n> --seed <n>
                      --shards <n>  access shards (default 1 =
                      single analysis mutex; N>=2 shards access
                      analysis by variable, same verdicts)
                      --sync seqlock|shared|replicated  sync-plane mode
                      for N>=2 (default seqlock: lock-free published
                      clock views; shared: mutex-slot views;
                      replicated: legacy N-way fan-out)
                      --batch <n>  accesses buffered per shard-lock
                      acquisition (default 1 = unbatched)
    help              show this message
";
