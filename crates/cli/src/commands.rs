use std::io::{Read, Write};

use freshtrack_core::{
    analyze_segments, analyze_segments_cached, CheckpointState, Counters, Detector, DjitDetector,
    FastTrackDetector, FreshnessDetector, HbOracle, NaiveSamplingDetector, OracleConfig,
    OrderedListDetector, RaceReport, SegmentedAnalysis, SplitDetector, StreamingOracle, SyncMode,
    CACHE_STATE_VERSION,
};
use freshtrack_dbsim::{run_detector, run_sharded, RunOptions};
use freshtrack_rapid::report::{pct, Table};
use freshtrack_sampling::{BernoulliSampler, Sampler};
use freshtrack_trace::{
    is_binary_trace, write_source, write_source_binary, write_source_binary_v2, write_trace,
    AnalysisCache, BinaryEventReader, CacheConfig, EventReader, EventSource, SegmentOptions,
    SegmentedTraceFile, Trace, TraceStats, Validated,
};
use freshtrack_workloads::{benchbase, corpus, generate, Pattern, WorkloadConfig};

use crate::{ArgError, Args, USAGE};

/// Runs the CLI with the given arguments (excluding the program name),
/// writing to `out`. Returns the process exit code.
pub fn run<W: std::io::Write>(raw: &[String], out: &mut W) -> i32 {
    match dispatch(raw, out) {
        Ok(()) => 0,
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            let _ = writeln!(out, "run `freshtrack help` for usage");
            1
        }
    }
}

fn dispatch<W: std::io::Write>(raw: &[String], out: &mut W) -> Result<(), ArgError> {
    let Some((command, rest)) = raw.split_first() else {
        let _ = write!(out, "{USAGE}");
        return Ok(());
    };
    match command.as_str() {
        "analyze" => analyze(rest, out),
        "oracle" => oracle(rest, out),
        "stats" => stats(rest, out),
        "convert" => convert(rest, out),
        "segments" => segments_cmd(rest, out),
        "generate" => generate_cmd(rest, out),
        "corpus" => corpus_cmd(rest, out),
        "dbsim" => dbsim_cmd(rest, out),
        "help" | "--help" | "-h" => {
            let _ = write!(out, "{USAGE}");
            Ok(())
        }
        other => Err(ArgError(format!("unknown command `{other}`"))),
    }
}

/// Opens `path` (or stdin for `-`) as an [`EventSource`], sniffing the
/// text vs binary format from the first bytes
/// ([`BINARY_MAGIC`](freshtrack_trace::BINARY_MAGIC)).
fn open_input(path: &str) -> Result<Box<dyn EventSource>, ArgError> {
    let mut reader: Box<dyn Read> = if path == "-" {
        Box::new(std::io::stdin())
    } else {
        Box::new(
            std::fs::File::open(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?,
        )
    };
    // Sniff up to 8 bytes, then stitch them back in front: stdin
    // cannot be reopened, so detection must not consume the stream.
    let mut head = [0u8; 8];
    let mut sniffed = 0;
    while sniffed < head.len() {
        match reader.read(&mut head[sniffed..]) {
            Ok(0) => break,
            Ok(n) => sniffed += n,
            Err(e) => return Err(ArgError(format!("cannot read {path}: {e}"))),
        }
    }
    let binary = is_binary_trace(&head[..sniffed]);
    let stitched = std::io::Cursor::new(head[..sniffed].to_vec()).chain(reader);
    Ok(if binary {
        Box::new(BinaryEventReader::new(stitched).map_err(|e| ArgError(format!("{path}: {e}")))?)
    } else {
        Box::new(EventReader::new(stitched))
    })
}

fn input_path(args: &Args) -> Result<&str, ArgError> {
    args.positional()
        .first()
        .map(String::as_str)
        .ok_or_else(|| ArgError("expected a trace file argument (or `-` for stdin)".into()))
}

/// A boxed input stream with the streaming lock-discipline check.
type ValidatedInput = Validated<Box<dyn EventSource>>;

/// Opens the positional trace argument as a discipline-checked stream.
fn open_validated(args: &Args) -> Result<(ValidatedInput, &str), ArgError> {
    let path = input_path(args)?;
    Ok((Validated::new(open_input(path)?), path))
}

fn analyze<W: std::io::Write>(rest: &[String], out: &mut W) -> Result<(), ArgError> {
    let args = Args::parse(rest.iter().cloned(), &["counters", "cache", "no-cache"])?;
    let engine: String = args.get_or("engine", "so".to_owned())?;
    let rate: f64 = args.get_or("rate", 0.03)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let jobs: usize = args.get_or("jobs", 1)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(ArgError(format!("--rate must be in [0,1], got {rate}")));
    }
    if jobs == 0 {
        return Err(ArgError("--jobs must be at least 1".into()));
    }
    let want_cache = args.flag("cache") || args.get("cache").is_some();
    if want_cache && !args.flag("no-cache") {
        return analyze_cached(&args, &engine, rate, seed, jobs, out);
    }
    if jobs >= 2 {
        return analyze_parallel(&args, &engine, rate, seed, jobs, out);
    }
    let (mut source, path) = open_validated(&args)?;
    let sampler = BernoulliSampler::new(rate, seed);

    // The trace streams through the engine in constant memory; event
    // ids are stream positions, so text, binary, and stdin inputs all
    // produce byte-identical reports.
    fn drive<D: Detector>(
        mut d: D,
        source: &mut dyn EventSource,
        path: &str,
    ) -> Result<(&'static str, Vec<RaceReport>, Counters), ArgError> {
        let reports = d
            .run_source(source)
            .map_err(|e| ArgError(format!("{path}: {e}")))?;
        Ok((d.name(), reports, *d.counters()))
    }
    let (name, reports, counters) = match engine.as_str() {
        "ft" => drive(
            FastTrackDetector::new(BernoulliSampler::new(1.0, seed)),
            &mut source,
            path,
        )?,
        "st" => drive(DjitDetector::new(sampler), &mut source, path)?,
        "sam" => drive(NaiveSamplingDetector::new(sampler), &mut source, path)?,
        "su" => drive(FreshnessDetector::new(sampler), &mut source, path)?,
        "so" => drive(OrderedListDetector::new(sampler), &mut source, path)?,
        other => return Err(ArgError(format!("unknown engine `{other}`"))),
    };

    let _ = writeln!(
        out,
        "{name} over {} events ({} sampled, {} skipped, skip {:.1}%): {} race report(s)",
        counters.events,
        counters.sampled_accesses,
        counters.skipped_accesses(),
        100.0 * counters.skip_ratio(),
        reports.len()
    );
    print_reports(|v| source.var_name(v), &reports, out);
    if args.flag("counters") {
        let _ = writeln!(out, "{counters}");
    }
    Ok(())
}

/// Runs `analyze --jobs N` (N ≥ 2): checkpointed parallel replay of a
/// segmented `.ftb` v2 file, printing output byte-identical to the
/// sequential path (the CI smoke step diffs the two).
fn analyze_parallel<W: std::io::Write>(
    args: &Args,
    engine: &str,
    rate: f64,
    seed: u64,
    jobs: usize,
    out: &mut W,
) -> Result<(), ArgError> {
    let path = input_path(args)?;
    if path == "-" {
        return Err(ArgError(
            "--jobs needs a seekable segmented file, not stdin (pipe through \
             `convert --to binary-v2` first)"
                .into(),
        ));
    }
    let file =
        std::fs::File::open(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let mut seg = SegmentedTraceFile::open(file).map_err(|e| ArgError(format!("{path}: {e}")))?;

    fn drive<D, S, R, W>(
        detector: D,
        sampler: S,
        seg: &mut SegmentedTraceFile<R>,
        path: &str,
        jobs: usize,
        counters_flag: bool,
        out: &mut W,
    ) -> Result<(), ArgError>
    where
        D: SplitDetector,
        D::Sync: CheckpointState,
        D::Access: CheckpointState,
        S: Sampler + Clone + Send,
        R: Read + std::io::Seek + Send,
        W: std::io::Write,
    {
        let analysis = analyze_segments(seg, &detector, &sampler, jobs)
            .map_err(|e| ArgError(format!("{path}: {e}")))?;
        print_analysis(detector.name(), &analysis, counters_flag, out);
        Ok(())
    }

    let counters_flag = args.flag("counters");
    let sampler = BernoulliSampler::new(rate, seed);
    match engine {
        "ft" => {
            let full = BernoulliSampler::new(1.0, seed);
            drive(
                FastTrackDetector::new(full),
                full,
                &mut seg,
                path,
                jobs,
                counters_flag,
                out,
            )
        }
        "st" => drive(
            DjitDetector::new(sampler),
            sampler,
            &mut seg,
            path,
            jobs,
            counters_flag,
            out,
        ),
        "su" => drive(
            FreshnessDetector::new(sampler),
            sampler,
            &mut seg,
            path,
            jobs,
            counters_flag,
            out,
        ),
        "so" => drive(
            OrderedListDetector::new(sampler),
            sampler,
            &mut seg,
            path,
            jobs,
            counters_flag,
            out,
        ),
        "sam" => Err(ArgError(
            "engine `sam` has no sync/access split and cannot run with --jobs >= 2".into(),
        )),
        other => Err(ArgError(format!("unknown engine `{other}`"))),
    }
}

/// The shared `analyze` output body for segmented runs; byte-identical
/// to the sequential path's output for the same analysis (the cached
/// and parallel modes are optimizations, never different results).
fn print_analysis<W: std::io::Write>(
    name: &str,
    analysis: &SegmentedAnalysis,
    counters_flag: bool,
    out: &mut W,
) {
    let _ = writeln!(
        out,
        "{} over {} events ({} sampled, {} skipped, skip {:.1}%): {} race report(s)",
        name,
        analysis.counters.events,
        analysis.counters.sampled_accesses,
        analysis.counters.skipped_accesses(),
        100.0 * analysis.counters.skip_ratio(),
        analysis.reports.len()
    );
    print_reports(|v| analysis.var_names[v].as_str(), &analysis.reports, out);
    if counters_flag {
        let _ = writeln!(out, "{}", analysis.counters);
    }
}

/// The sidecar path for a trace: an explicit `--cache=PATH`, else the
/// trace path with `.ftb` swapped for `.ftc` (or `.ftc` appended).
fn cache_path_for(args: &Args, trace_path: &str) -> String {
    match args.get("cache") {
        Some(explicit) => explicit.to_owned(),
        None => match trace_path.strip_suffix(".ftb") {
            Some(stem) => format!("{stem}.ftc"),
            None => format!("{trace_path}.ftc"),
        },
    }
}

/// The sampler identity string for the cache fingerprint. Samplers are
/// pure in (seed, event id), so rate + seed pin every decision; `ft`
/// runs its sampler at rate 1.0 regardless of `--rate`.
fn sampler_identity(engine: &str, rate: f64, seed: u64) -> String {
    if engine == "ft" {
        format!("bernoulli:1:{seed}")
    } else {
        format!("bernoulli:{rate}:{seed}")
    }
}

/// Runs `analyze --cache[=PATH]`: incremental re-analysis of a
/// segmented `.ftb` v2 file against its `.ftc` sidecar. Stdout is
/// byte-identical to the uncached path (cache status goes to stderr);
/// the rewritten sidecar covering the whole file is saved back.
fn analyze_cached<W: std::io::Write>(
    args: &Args,
    engine: &str,
    rate: f64,
    seed: u64,
    jobs: usize,
    out: &mut W,
) -> Result<(), ArgError> {
    let path = input_path(args)?;
    if path == "-" {
        return Err(ArgError(
            "--cache needs a seekable segmented file, not stdin (pipe through \
             `convert --to binary-v2` first)"
                .into(),
        ));
    }
    let file =
        std::fs::File::open(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let mut seg = SegmentedTraceFile::open(file).map_err(|e| ArgError(format!("{path}: {e}")))?;
    let cache_path = cache_path_for(args, path);
    // The sidecar is advisory: unreadable or malformed means cold run.
    let prior = std::fs::read(&cache_path)
        .ok()
        .and_then(|bytes| AnalysisCache::decode(&bytes).ok());

    /// Everything `drive` needs besides the engine-specific halves.
    struct Ctx<'a> {
        config: &'a CacheConfig,
        prior: Option<&'a AnalysisCache>,
        path: &'a str,
        cache_path: &'a str,
        jobs: usize,
        counters: bool,
    }

    fn drive<D, S, R, W>(
        detector: D,
        sampler: S,
        seg: &mut SegmentedTraceFile<R>,
        ctx: &Ctx<'_>,
        out: &mut W,
    ) -> Result<(), ArgError>
    where
        D: SplitDetector,
        D::Sync: CheckpointState,
        D::Access: CheckpointState,
        S: Sampler + Clone + Send,
        R: Read + std::io::Seek + Send,
        W: std::io::Write,
    {
        let run =
            analyze_segments_cached(seg, &detector, &sampler, ctx.jobs, ctx.config, ctx.prior)
                .map_err(|e| ArgError(format!("{}: {e}", ctx.path)))?;
        // Status on stderr so stdout stays byte-identical to the
        // uncached path (the CI smoke step diffs the two).
        eprintln!(
            "cache: reused {}/{} segment(s) via {}",
            run.reused_segments, run.total_segments, ctx.cache_path
        );
        if let Err(e) = std::fs::write(ctx.cache_path, run.cache.encode()) {
            eprintln!(
                "warning: cannot write analysis cache {}: {e}",
                ctx.cache_path
            );
        }
        print_analysis(detector.name(), &run.analysis, ctx.counters, out);
        Ok(())
    }

    let sampler = BernoulliSampler::new(rate, seed);
    let config = CacheConfig {
        engine: engine.to_owned(),
        sampler: sampler_identity(engine, rate, seed),
        options: String::new(),
        state_version: CACHE_STATE_VERSION,
        jobs: jobs as u32,
    };
    let ctx = Ctx {
        config: &config,
        prior: prior.as_ref(),
        path,
        cache_path: &cache_path,
        jobs,
        counters: args.flag("counters"),
    };
    match engine {
        "ft" => {
            let full = BernoulliSampler::new(1.0, seed);
            drive(FastTrackDetector::new(full), full, &mut seg, &ctx, out)
        }
        "st" => drive(DjitDetector::new(sampler), sampler, &mut seg, &ctx, out),
        "su" => drive(
            FreshnessDetector::new(sampler),
            sampler,
            &mut seg,
            &ctx,
            out,
        ),
        "so" => drive(
            OrderedListDetector::new(sampler),
            sampler,
            &mut seg,
            &ctx,
            out,
        ),
        "sam" => Err(ArgError(
            "engine `sam` has no sync/access split and cannot use the segmented \
             analysis cache"
                .into(),
        )),
        other => Err(ArgError(format!("unknown engine `{other}`"))),
    }
}

fn print_reports<'a, W>(var_name: impl Fn(usize) -> &'a str, reports: &[RaceReport], out: &mut W)
where
    W: std::io::Write,
{
    for report in reports {
        let _ = writeln!(
            out,
            "  {} at event {}: {} of `{}` unordered with earlier {}",
            report.tid,
            report.event,
            report.access,
            var_name(report.var.index()),
            match (report.with_write, report.with_read) {
                (true, true) => "write and read",
                (true, false) => "write",
                _ => "read",
            }
        );
    }
}

fn convert<W: std::io::Write>(rest: &[String], out: &mut W) -> Result<(), ArgError> {
    let args = Args::parse(rest.iter().cloned(), &[])?;
    let path = input_path(&args)?;
    let to: String = args.require("to")?;
    // Conversion is a pure re-encoding pipe: the input streams straight
    // into the opposite writer, declarations and all, in constant
    // memory — no Trace is ever materialized. The writers issue many
    // small writes (per record, per varint byte) and `main` hands us
    // line-buffered stdout, so buffer the sink or every 0x0A byte in
    // the binary output becomes a flush syscall.
    let mut source = open_input(path)?;
    let mut sink = std::io::BufWriter::new(out);
    let result = match to.as_str() {
        "binary" => write_source_binary(&mut source, &mut sink),
        "binary-v2" => {
            let events_per_segment: usize = args.get_or("segment-events", 4096)?;
            if events_per_segment == 0 {
                return Err(ArgError("--segment-events must be at least 1".into()));
            }
            write_source_binary_v2(
                &mut source,
                &mut sink,
                &SegmentOptions { events_per_segment },
            )
        }
        "text" => write_source(&mut source, &mut sink),
        other => {
            return Err(ArgError(format!(
                "--to must be `text` or `binary` or `binary-v2`, got `{other}`"
            )))
        }
    };
    result.map_err(|e| ArgError(format!("{path}: {e}")))?;
    sink.flush()
        .map_err(|e| ArgError(format!("{path}: write failed: {e}")))
}

/// `segments <file>`: the v2 footer index as a table, after a full
/// checksum-and-decode verification pass. With `--cache[=PATH]` an
/// extra column shows, per segment, whether the `.ftc` sidecar entry
/// would be reused (`hit`), has gone stale, or does not exist (`-`).
fn segments_cmd<W: std::io::Write>(rest: &[String], out: &mut W) -> Result<(), ArgError> {
    let args = Args::parse(rest.iter().cloned(), &["cache"])?;
    let path = input_path(&args)?;
    if path == "-" {
        return Err(ArgError("segments needs a seekable file, not stdin".into()));
    }
    let file =
        std::fs::File::open(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let mut seg = SegmentedTraceFile::open(file).map_err(|e| ArgError(format!("{path}: {e}")))?;
    seg.verify().map_err(|e| ArgError(format!("{path}: {e}")))?;

    let want_cache = args.flag("cache") || args.get("cache").is_some();
    let cache = if want_cache {
        let cache_path = cache_path_for(&args, path);
        let decoded = std::fs::read(&cache_path)
            .ok()
            .and_then(|bytes| AnalysisCache::decode(&bytes).ok());
        Some((cache_path, decoded))
    } else {
        None
    };
    // The reusable prefix by the same byte-identity rule the analyzer
    // applies (the config fingerprint is the analyzer's to check — it
    // depends on engine/sampler arguments `segments` does not take).
    let prefix = match &cache {
        Some((_, Some(sidecar))) => {
            let mut k = 0;
            while k < sidecar.entries.len().min(seg.segment_count()) {
                let meta = seg.meta(k).clone();
                let crc = seg
                    .segment_crc32(k)
                    .map_err(|e| ArgError(format!("{path}: {e}")))?;
                if !sidecar.entries[k].matches(&meta) || crc != meta.crc32 {
                    break;
                }
                k += 1;
            }
            k
        }
        _ => 0,
    };

    let mut headers = vec![
        "segment",
        "offset",
        "bytes",
        "events",
        "first id",
        "ckpt bytes",
        "locks",
        "vars",
    ];
    if cache.is_some() {
        headers.push("cache");
    }
    let mut table = Table::new(&headers);
    for (k, meta) in seg.metas().iter().enumerate() {
        let mut row = vec![
            k.to_string(),
            meta.offset.to_string(),
            meta.byte_len.to_string(),
            meta.event_count.to_string(),
            meta.first_event_id.to_string(),
            meta.checkpoint_len.to_string(),
            meta.locks_before.to_string(),
            meta.vars_before.to_string(),
        ];
        if let Some((_, sidecar)) = &cache {
            let entries = sidecar.as_ref().map_or(0, |c| c.entries.len());
            row.push(
                if k < prefix {
                    "hit"
                } else if k < entries {
                    "stale"
                } else {
                    "-"
                }
                .to_string(),
            );
        }
        table.row_owned(row);
    }
    let _ = writeln!(
        out,
        "{}: {} segment(s), {} events, footer at byte {}; all checksums verified",
        path,
        seg.segment_count(),
        seg.event_count(),
        seg.footer_offset()
    );
    match &cache {
        Some((cache_path, Some(sidecar))) => {
            let c = &sidecar.config;
            let _ = writeln!(
                out,
                "cache {cache_path}: {} entr{} for engine={} sampler={} jobs={} \
                 (state v{}); {prefix} reusable",
                sidecar.entries.len(),
                if sidecar.entries.len() == 1 {
                    "y"
                } else {
                    "ies"
                },
                c.engine,
                c.sampler,
                c.jobs,
                c.state_version,
            );
        }
        Some((cache_path, None)) => {
            let _ = writeln!(out, "cache {cache_path}: none (a cached run will write it)");
        }
        None => {}
    }
    let _ = write!(out, "{}", table.render());
    Ok(())
}

/// The oracle's event cap: `HbOracle` is `O(N²)` memory, so the guard
/// must trip while *streaming* — materializing an oversized trace just
/// to count it would buffer the very input the cap exists to reject.
const ORACLE_EVENT_CAP: usize = 200_000;

fn oracle<W: std::io::Write>(rest: &[String], out: &mut W) -> Result<(), ArgError> {
    let args = Args::parse(rest.iter().cloned(), &["stream", "stats"])?;
    let rate: f64 = args.get_or("rate", 1.0)?;
    let seed: u64 = args.get_or("seed", 0)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(ArgError(format!("--rate must be in [0,1], got {rate}")));
    }
    // `--window`/`--reservoir`/`--stream` select the bounded-memory
    // streaming oracle; otherwise the exact materializing oracle runs
    // under its event cap. Both paths share `open_validated`, so text,
    // binary v1/v2 and stdin inputs behave identically (as `analyze`).
    let streaming =
        args.flag("stream") || args.get("window").is_some() || args.get("reservoir").is_some();
    let (mut input, path) = open_validated(&args)?;
    let sampler = BernoulliSampler::new(rate, seed);
    if streaming {
        let config = OracleConfig {
            window: args.get_or("window", usize::MAX)?,
            reservoir: args.get_or("reservoir", 0usize)?,
            seed,
        };
        let outcome = StreamingOracle::new(sampler, config)
            .run_source(&mut input)
            .map_err(|e| ArgError(format!("{path}: {e}")))?;
        // Same body as the materializing path (racy events are exact at
        // every window size), so cross-mode output is byte-identical.
        let _ = writeln!(
            out,
            "{} racy event(s) among the sampled set:",
            outcome.racy_events.len()
        );
        for &(id, event) in &outcome.racy_events {
            let _ = writeln!(out, "  {id} {event}");
        }
        if args.flag("stats") {
            let s = outcome.stats;
            let _ = writeln!(
                out,
                "racy pairs: {} windowed, {} via reservoir ({} distinct)",
                outcome.window_pairs.len(),
                outcome.reservoir_pairs.len(),
                outcome.pairs().len()
            );
            let _ = writeln!(
                out,
                "events: {} ({} sampled, {} sync); window: {} evicted, \
                 peak {}; checks: {} windowed, {} reservoir; \
                 checkpoint-only races: {}; state: {} bytes",
                s.events,
                s.sampled_accesses,
                s.sync_events,
                s.evictions,
                s.peak_window_len,
                s.window_checks,
                s.reservoir_checks,
                s.summarized_races,
                s.state_bytes
            );
        }
        return Ok(());
    }
    let trace = Trace::from_source_limited(&mut input, ORACLE_EVENT_CAP)
        .map_err(|e| ArgError(format!("{path}: {e}")))?
        .ok_or_else(|| {
            ArgError(format!(
                "trace exceeds {ORACLE_EVENT_CAP} events; the exact oracle is O(N²) \
                 memory — pass --window/--reservoir to stream in bounded memory"
            ))
        })?;
    let oracle = HbOracle::new(&trace);
    let mask = HbOracle::sample_mask(&trace, sampler);
    let racy = oracle.racy_events(&mask);
    let _ = writeln!(out, "{} racy event(s) among the sampled set:", racy.len());
    for e in racy {
        let _ = writeln!(out, "  {} {}", e, trace.event(e));
    }
    Ok(())
}

fn stats<W: std::io::Write>(rest: &[String], out: &mut W) -> Result<(), ArgError> {
    let args = Args::parse(rest.iter().cloned(), &[])?;
    // Counts accumulate per event and entity counts come from the
    // source metadata: constant memory regardless of trace size.
    let (mut source, path) = open_validated(&args)?;
    let s = TraceStats::from_source(&mut source).map_err(|e| ArgError(format!("{path}: {e}")))?;
    let _ = writeln!(out, "{s}");
    let _ = writeln!(out, "sync ratio: {}", pct(s.sync_ratio()));
    Ok(())
}

fn parse_pattern(name: &str) -> Result<Pattern, ArgError> {
    Ok(match name {
        "mixed" => Pattern::Mixed,
        "pc" | "producerconsumer" => Pattern::ProducerConsumer,
        "pipeline" => Pattern::Pipeline,
        "forkjoin" => Pattern::ForkJoin,
        "barrier" => Pattern::BarrierPhases,
        "ladder" => Pattern::LockLadder,
        other => return Err(ArgError(format!("unknown pattern `{other}`"))),
    })
}

fn generate_cmd<W: std::io::Write>(rest: &[String], out: &mut W) -> Result<(), ArgError> {
    let args = Args::parse(rest.iter().cloned(), &[])?;
    let pattern = parse_pattern(&args.get_or("pattern", "mixed".to_owned())?)?;
    let config = WorkloadConfig::named("cli")
        .pattern(pattern)
        .events(args.get_or("events", 10_000usize)?)
        .threads(args.get_or("threads", 4u32)?)
        .locks(args.get_or("locks", 8u32)?)
        .vars(args.get_or("vars", 64u32)?)
        .sync_ratio(args.get_or("sync-ratio", 0.3f64)?)
        .unprotected(args.get_or("unprotected", 0.02f64)?)
        .seed(args.get_or("seed", 0u64)?);
    let trace = generate(&config);
    let _ = write!(out, "{}", write_trace(&trace));
    Ok(())
}

fn corpus_cmd<W: std::io::Write>(rest: &[String], out: &mut W) -> Result<(), ArgError> {
    let args = Args::parse(rest.iter().cloned(), &["list"])?;
    if args.flag("list") || args.get("bench").is_none() {
        let mut table = Table::new(&["benchmark", "threads", "locks", "events"]);
        for b in corpus::corpus() {
            let c = b.config();
            table.row_owned(vec![
                b.name.to_string(),
                format!("{}", c.n_threads),
                format!("{}", c.n_locks),
                format!("{}", c.n_events),
            ]);
        }
        let _ = write!(out, "{}", table.render());
        return Ok(());
    }
    let name: String = args.require("bench")?;
    let bench = corpus::by_name(&name)
        .ok_or_else(|| ArgError(format!("unknown corpus benchmark `{name}`")))?;
    let scale: f64 = args.get_or("scale", 1.0)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let trace = bench.trace(scale, seed);
    let _ = write!(out, "{}", write_trace(&trace));
    Ok(())
}

fn dbsim_cmd<W: std::io::Write>(rest: &[String], out: &mut W) -> Result<(), ArgError> {
    let args = Args::parse(rest.iter().cloned(), &[])?;
    let mix: String = args.get_or("mix", "ycsb".to_owned())?;
    let workload = benchbase::by_name(&mix)
        .ok_or_else(|| ArgError(format!("unknown workload mix `{mix}`")))?;
    let options = RunOptions {
        workers: args.get_or("workers", 8u32)?,
        txns_per_worker: args.get_or("txns", 300u32)?,
        seed: args.get_or("seed", 0u64)?,
    };
    let engine: String = args.get_or("engine", "so".to_owned())?;
    let rate: f64 = args.get_or("rate", 0.03)?;
    let shards: usize = args.get_or("shards", 1usize)?;
    if shards == 0 {
        return Err(ArgError("--shards must be at least 1".into()));
    }
    let mode = match args.get_or("sync", "seqlock".to_owned())?.as_str() {
        "seqlock" => SyncMode::Seqlock,
        "shared" => SyncMode::Shared,
        "replicated" => SyncMode::Replicated,
        other => {
            return Err(ArgError(format!(
                "--sync must be `seqlock`, `shared` or `replicated`, got `{other}`"
            )))
        }
    };
    let batch: usize = args.get_or("batch", 1usize)?;
    if batch == 0 {
        return Err(ArgError("--batch must be at least 1".into()));
    }
    let sampler = BernoulliSampler::new(rate, options.seed);

    // Monomorphized per engine; the run/report plumbing is shared.
    // `--shards 1` (the default) is the paper-faithful single analysis
    // mutex; `--shards N` routes ingestion through N access shards in
    // the `--sync` mode (seqlock-published sync plane by default, the
    // mutex-slot or replicated constructions on request), buffering
    // `--batch B` accesses per shard-lock acquisition.
    fn go<D: SplitDetector + 'static, W: std::io::Write>(
        detector: D,
        workload: &freshtrack_workloads::DbWorkload,
        options: &RunOptions,
        shards: usize,
        mode: SyncMode,
        batch: usize,
        out: &mut W,
    ) {
        let name = detector.name();
        let (stats, reports, counters) = if shards >= 2 {
            run_sharded(workload, options, detector, shards, mode, batch)
        } else {
            let (stats, detector, reports) = run_detector(workload, options, detector);
            let counters = *detector.counters();
            (stats, reports, counters)
        };
        let suffix = if shards >= 2 {
            let tag = match mode {
                SyncMode::Seqlock => "",
                SyncMode::Shared => ", shared",
                SyncMode::Replicated => ", replicated",
            };
            let batch_tag = if batch > 1 {
                format!(", batch={batch}")
            } else {
                String::new()
            };
            format!(" (shards={shards}{tag}{batch_tag})")
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{name}{suffix}: {} txns, mean latency {:.1} µs, p95 {} µs",
            stats.transactions,
            stats.mean_us(),
            stats.percentile_us(95.0)
        );
        // Replicated merges sum skip counts across shards while the
        // replicated acquires are counted once (`Counters::merge`), so
        // that mode's skip ratio averages over shards; the two-plane
        // construction keeps sync counters once by design.
        let skip_shards = match mode {
            SyncMode::Replicated if shards >= 2 => shards as u64,
            _ => 1,
        };
        let skip_ratio = if counters.acquires == 0 {
            0.0
        } else {
            counters.acquires_skipped as f64 / (counters.acquires * skip_shards) as f64
        };
        // Accesses route to exactly one shard in every mode, so the
        // sampled/skipped split needs no per-mode normalization: the
        // skip-path hit rate is the headline number for the hoisted
        // fast path (invariant 10).
        let _ = writeln!(
            out,
            "events={} sampled={} skipped={} (skip {:.1}%) races={} acquires skipped={}",
            counters.events,
            counters.sampled_accesses,
            counters.skipped_accesses(),
            100.0 * counters.skip_ratio(),
            reports.len(),
            pct(skip_ratio)
        );
    }

    match engine.as_str() {
        "ft" => go(
            FastTrackDetector::new(BernoulliSampler::new(1.0, options.seed)),
            &workload,
            &options,
            shards,
            mode,
            batch,
            out,
        ),
        "st" => go(
            DjitDetector::new(sampler),
            &workload,
            &options,
            shards,
            mode,
            batch,
            out,
        ),
        "su" => go(
            FreshnessDetector::new(sampler),
            &workload,
            &options,
            shards,
            mode,
            batch,
            out,
        ),
        "so" => go(
            OrderedListDetector::new(sampler),
            &workload,
            &options,
            shards,
            mode,
            batch,
            out,
        ),
        other => return Err(ArgError(format!("unknown engine `{other}`"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshtrack_trace::read_trace;

    fn run_cli(args: &[&str]) -> (i32, String) {
        let raw: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let code = run(&raw, &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    #[test]
    fn no_args_prints_usage() {
        let (code, out) = run_cli(&[]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_fails() {
        let (code, out) = run_cli(&["frobnicate"]);
        assert_eq!(code, 1);
        assert!(out.contains("unknown command"));
    }

    #[test]
    fn generate_then_analyze_round_trip() {
        let dir = std::env::temp_dir().join("freshtrack-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");

        let (code, out) = run_cli(&[
            "generate",
            "--events",
            "2000",
            "--unprotected",
            "0.1",
            "--seed",
            "1",
        ]);
        assert_eq!(code, 0);
        std::fs::write(&path, &out).unwrap();

        let path_s = path.to_str().unwrap();
        let (code, out) = run_cli(&[
            "analyze",
            path_s,
            "--engine",
            "so",
            "--rate",
            "1.0",
            "--counters",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("race report"), "{out}");
        assert!(out.contains("events="), "{out}");

        let (code, out) = run_cli(&["stats", path_s]);
        assert_eq!(code, 0);
        assert!(out.contains("sync ratio"), "{out}");

        let (code, out) = run_cli(&["oracle", path_s, "--rate", "1.0"]);
        assert_eq!(code, 0);
        assert!(out.contains("racy event"), "{out}");
    }

    fn run_cli_bytes(args: &[&str]) -> (i32, Vec<u8>) {
        let raw: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let code = run(&raw, &mut out);
        (code, out)
    }

    #[test]
    fn convert_round_trips_text_and_binary() {
        let dir = std::env::temp_dir().join("freshtrack-cli-convert");
        std::fs::create_dir_all(&dir).unwrap();
        let text_path = dir.join("t.trace");
        let bin_path = dir.join("t.ftb");

        let (code, text) = run_cli(&["generate", "--events", "1500", "--seed", "3"]);
        assert_eq!(code, 0);
        std::fs::write(&text_path, &text).unwrap();

        let (code, bin) =
            run_cli_bytes(&["convert", text_path.to_str().unwrap(), "--to", "binary"]);
        assert_eq!(code, 0);
        assert!(freshtrack_trace::is_binary_trace(&bin));
        assert!(bin.len() < text.len(), "binary should be denser");
        std::fs::write(&bin_path, &bin).unwrap();

        // binary → text reproduces the original normal form exactly.
        let (code, back) = run_cli(&["convert", bin_path.to_str().unwrap(), "--to", "text"]);
        assert_eq!(code, 0);
        assert_eq!(back, text);

        // Converting binary → binary is the identity too.
        let (code, bin2) =
            run_cli_bytes(&["convert", bin_path.to_str().unwrap(), "--to", "binary"]);
        assert_eq!(code, 0);
        assert_eq!(bin2, bin);
    }

    #[test]
    fn analyze_and_stats_agree_across_formats() {
        let dir = std::env::temp_dir().join("freshtrack-cli-formats");
        std::fs::create_dir_all(&dir).unwrap();
        let text_path = dir.join("t.trace");
        let bin_path = dir.join("t.ftb");

        let (code, text) = run_cli(&[
            "generate",
            "--events",
            "2000",
            "--unprotected",
            "0.1",
            "--seed",
            "5",
        ]);
        assert_eq!(code, 0);
        std::fs::write(&text_path, &text).unwrap();
        let (code, bin) =
            run_cli_bytes(&["convert", text_path.to_str().unwrap(), "--to", "binary"]);
        assert_eq!(code, 0);
        std::fs::write(&bin_path, &bin).unwrap();

        let analyze_args = ["--engine", "su", "--rate", "1.0", "--counters"];
        let (code, from_text) =
            run_cli(&[&["analyze", text_path.to_str().unwrap()], &analyze_args[..]].concat());
        assert_eq!(code, 0, "{from_text}");
        assert!(from_text.contains("race report"), "{from_text}");
        let (code, from_bin) =
            run_cli(&[&["analyze", bin_path.to_str().unwrap()], &analyze_args[..]].concat());
        assert_eq!(code, 0, "{from_bin}");
        // Byte-identical reports whether the input was text or binary.
        assert_eq!(from_text, from_bin);

        let (code, stats_text) = run_cli(&["stats", text_path.to_str().unwrap()]);
        assert_eq!(code, 0);
        let (code, stats_bin) = run_cli(&["stats", bin_path.to_str().unwrap()]);
        assert_eq!(code, 0);
        assert_eq!(stats_text, stats_bin);
        assert!(stats_text.contains("sync ratio"), "{stats_text}");
    }

    #[test]
    fn oracle_agrees_across_formats_and_modes() {
        let dir = std::env::temp_dir().join("freshtrack-cli-oracle-formats");
        std::fs::create_dir_all(&dir).unwrap();
        let text_path = dir.join("t.trace");
        let v1_path = dir.join("t.ftb");
        let v2_path = dir.join("t.v2.ftb");

        let (code, text) = run_cli(&[
            "generate",
            "--events",
            "2000",
            "--unprotected",
            "0.1",
            "--seed",
            "5",
        ]);
        assert_eq!(code, 0);
        std::fs::write(&text_path, &text).unwrap();
        let (code, v1) = run_cli_bytes(&["convert", text_path.to_str().unwrap(), "--to", "binary"]);
        assert_eq!(code, 0);
        std::fs::write(&v1_path, &v1).unwrap();
        let (code, v2) =
            run_cli_bytes(&["convert", text_path.to_str().unwrap(), "--to", "binary-v2"]);
        assert_eq!(code, 0);
        std::fs::write(&v2_path, &v2).unwrap();

        // Every input format × oracle mode prints byte-identical racy
        // events: the exact materializing oracle, the unbounded stream,
        // and a windowed stream (racy events are exact at any window).
        let common = ["--rate", "0.8", "--seed", "9"];
        let mut outputs = Vec::new();
        for path in [&text_path, &v1_path, &v2_path] {
            for mode in [&[][..], &["--stream"][..], &["--window", "64"][..]] {
                let args = [&["oracle", path.to_str().unwrap()], &common[..], mode].concat();
                let (code, out) = run_cli(&args);
                assert_eq!(code, 0, "{args:?}: {out}");
                assert!(out.contains("racy event(s)"), "{args:?}: {out}");
                outputs.push((format!("{args:?}"), out));
            }
        }
        let (ref_label, reference) = &outputs[0];
        for (label, out) in &outputs[1..] {
            assert_eq!(out, reference, "{label} diverged from {ref_label}");
        }
    }

    #[test]
    fn convert_validates_its_arguments() {
        let (code, out) = run_cli(&["convert", "/nonexistent", "--to", "binary"]);
        assert_eq!(code, 1);
        assert!(out.contains("cannot read"), "{out}");
        let (code, out) = run_cli(&["convert", "/nonexistent"]);
        assert_eq!(code, 1);
        assert!(out.contains("--to"), "{out}");
        let dir = std::env::temp_dir().join("freshtrack-cli-convert-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        std::fs::write(&path, "T0|w(x)\n").unwrap();
        let (code, out) = run_cli(&["convert", path.to_str().unwrap(), "--to", "xml"]);
        assert_eq!(code, 1);
        assert!(out.contains("`text` or `binary`"), "{out}");
    }

    #[test]
    fn analyze_streams_invalid_traces_to_an_error() {
        let dir = std::env::temp_dir().join("freshtrack-cli-invalid");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.trace");
        std::fs::write(&path, "T0|acq(l)\nT1|rel(l)\n").unwrap();
        let (code, out) = run_cli(&["analyze", path.to_str().unwrap()]);
        assert_eq!(code, 1);
        assert!(out.contains("invalid trace"), "{out}");
        let (code, out) = run_cli(&["stats", path.to_str().unwrap()]);
        assert_eq!(code, 1);
        assert!(out.contains("invalid trace"), "{out}");
    }

    #[test]
    fn corpus_list_shows_26() {
        let (code, out) = run_cli(&["corpus", "--list"]);
        assert_eq!(code, 0);
        assert_eq!(out.lines().count(), 28); // header + rule + 26 rows
        assert!(out.contains("cassandra"));
    }

    #[test]
    fn corpus_emits_trace() {
        let (code, out) = run_cli(&["corpus", "--bench", "wronglock", "--scale", "0.1"]);
        assert_eq!(code, 0);
        assert!(read_trace(&out).is_ok());
    }

    #[test]
    fn analyze_rejects_bad_engine_and_rate() {
        let (code, out) = run_cli(&["analyze", "/nonexistent", "--engine", "xx"]);
        assert_eq!(code, 1);
        assert!(out.contains("error"));
        let (code, _) = run_cli(&["analyze", "/nonexistent", "--rate", "7"]);
        assert_eq!(code, 1);
    }

    #[test]
    fn oracle_cap_trips_while_streaming() {
        let dir = std::env::temp_dir().join("freshtrack-cli-oracle-cap");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("big.trace");
        // One event over the cap. The old guard materialized the whole
        // trace before counting; the streaming guard gives up on the
        // 200_001st event without buffering past the limit.
        let mut text = String::with_capacity((ORACLE_EVENT_CAP + 1) * 8);
        for _ in 0..=ORACLE_EVENT_CAP {
            text.push_str("T0|w(x)\n");
        }
        std::fs::write(&path, &text).unwrap();
        let (code, out) = run_cli(&["oracle", path.to_str().unwrap()]);
        assert_eq!(code, 1);
        assert!(out.contains("exceeds 200000 events"), "{out}");
        // The refusal names the streaming escape hatch, which handles
        // the same over-cap input in bounded memory.
        assert!(out.contains("--window"), "{out}");
        let (code, out) = run_cli(&["oracle", path.to_str().unwrap(), "--window", "16"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("0 racy event(s)"), "{out}");

        // At the cap the oracle still runs (single-thread: no races).
        let at_cap = &text[..text.len() - "T0|w(x)\n".len()];
        std::fs::write(&path, at_cap).unwrap();
        let (code, out) = run_cli(&["oracle", path.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("0 racy event(s)"), "{out}");
    }

    /// Writes a racy generated workload as text, v1 binary, and v2
    /// segmented files; returns their paths.
    fn trace_fixture(dir_name: &str, events: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::create_dir_all(&dir).unwrap();
        let text_path = dir.join("t.trace");
        let v2_path = dir.join("t.ftb2");
        let (code, text) = run_cli(&[
            "generate",
            "--events",
            events,
            "--unprotected",
            "0.1",
            "--seed",
            "7",
        ]);
        assert_eq!(code, 0);
        std::fs::write(&text_path, &text).unwrap();
        let (code, v2) = run_cli_bytes(&[
            "convert",
            text_path.to_str().unwrap(),
            "--to",
            "binary-v2",
            "--segment-events",
            "256",
        ]);
        assert_eq!(code, 0);
        std::fs::write(&v2_path, &v2).unwrap();
        (text_path, v2_path)
    }

    #[test]
    fn analyze_jobs_output_is_byte_identical_to_sequential() {
        let (text_path, v2_path) = trace_fixture("freshtrack-cli-jobs", "3000");
        for engine in ["st", "ft", "su", "so"] {
            let tail = ["--engine", engine, "--rate", "1.0", "--counters"];
            let (code, sequential) =
                run_cli(&[&["analyze", text_path.to_str().unwrap()], &tail[..]].concat());
            assert_eq!(code, 0, "{sequential}");
            for jobs in ["1", "2", "3"] {
                let (code, parallel) = run_cli(
                    &[
                        &["analyze", v2_path.to_str().unwrap()],
                        &tail[..],
                        &["--jobs", jobs][..],
                    ]
                    .concat(),
                );
                assert_eq!(code, 0, "{parallel}");
                assert_eq!(
                    parallel, sequential,
                    "engine {engine} jobs {jobs} must match the sequential output"
                );
            }
        }
    }

    #[test]
    fn analyze_jobs_rejects_stdin_sam_and_unsegmented_input() {
        let (text_path, v2_path) = trace_fixture("freshtrack-cli-jobs-err", "500");

        let (code, out) = run_cli(&["analyze", "-", "--jobs", "2"]);
        assert_eq!(code, 1);
        assert!(out.contains("stdin"), "{out}");

        let (code, out) = run_cli(&[
            "analyze",
            v2_path.to_str().unwrap(),
            "--jobs",
            "2",
            "--engine",
            "sam",
        ]);
        assert_eq!(code, 1);
        assert!(out.contains("sam"), "{out}");

        // Text (and v1) inputs are turned away with conversion
        // guidance rather than decoded as garbage.
        let (code, out) = run_cli(&["analyze", text_path.to_str().unwrap(), "--jobs", "2"]);
        assert_eq!(code, 1);
        assert!(out.contains("magic"), "{out}");

        let (code, out) = run_cli(&["analyze", v2_path.to_str().unwrap(), "--jobs", "0"]);
        assert_eq!(code, 1);
        assert!(out.contains("--jobs"), "{out}");
    }

    #[test]
    fn convert_v1_to_v2_to_v1_is_byte_identical() {
        let dir = std::env::temp_dir().join("freshtrack-cli-v2-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let text_path = dir.join("t.trace");
        let v1_path = dir.join("t.ftb");
        let v2_path = dir.join("t.ftb2");

        let (code, text) = run_cli(&["generate", "--events", "2000", "--seed", "11"]);
        assert_eq!(code, 0);
        std::fs::write(&text_path, &text).unwrap();
        let (code, v1) = run_cli_bytes(&["convert", text_path.to_str().unwrap(), "--to", "binary"]);
        assert_eq!(code, 0);
        std::fs::write(&v1_path, &v1).unwrap();

        let (code, v2) = run_cli_bytes(&[
            "convert",
            v1_path.to_str().unwrap(),
            "--to",
            "binary-v2",
            "--segment-events",
            "128",
        ]);
        assert_eq!(code, 0);
        assert!(freshtrack_trace::is_binary_trace(&v2));
        std::fs::write(&v2_path, &v2).unwrap();

        let (code, v1_again) =
            run_cli_bytes(&["convert", v2_path.to_str().unwrap(), "--to", "binary"]);
        assert_eq!(code, 0);
        assert_eq!(v1_again, v1, "v1 -> v2 -> v1 must reproduce every byte");

        let (code, out) = run_cli(&["convert", v2_path.to_str().unwrap(), "--to", "xml"]);
        assert_eq!(code, 1);
        assert!(out.contains("`text` or `binary`"), "{out}");
        let (code, out) = run_cli(&[
            "convert",
            v1_path.to_str().unwrap(),
            "--to",
            "binary-v2",
            "--segment-events",
            "0",
        ]);
        assert_eq!(code, 1);
        assert!(out.contains("--segment-events"), "{out}");
    }

    #[test]
    fn segments_verifies_and_prints_the_footer_index() {
        let (text_path, v2_path) = trace_fixture("freshtrack-cli-segments", "1000");

        let (code, out) = run_cli(&["segments", v2_path.to_str().unwrap()]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("all checksums verified"), "{out}");
        // The generator may pad past the requested 1000 events with
        // fork/join bookkeeping; parse the count rather than pin it.
        let summary = out.lines().next().unwrap();
        let events: usize = summary
            .split(" events")
            .next()
            .and_then(|s| s.rsplit(' ').next())
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("no event count in {summary:?}"));
        assert!((1000..1256).contains(&events), "{summary}");
        // Up to ~1255 events at 256 per segment = 4 segments.
        assert!(out.contains("4 segment(s)"), "{out}");
        assert!(out.contains("first id"), "{out}");

        // Corruption is reported, not tabulated.
        let mut bytes = std::fs::read(&v2_path).unwrap();
        bytes[40] ^= 0x5a;
        let bad = v2_path.with_extension("bad");
        std::fs::write(&bad, &bytes).unwrap();
        let (code, _) = run_cli(&["segments", bad.to_str().unwrap()]);
        assert_eq!(code, 1);

        let (code, _) = run_cli(&["segments", "-"]);
        assert_eq!(code, 1);
        let (code, out) = run_cli(&["segments", text_path.to_str().unwrap()]);
        assert_eq!(code, 1);
        assert!(out.contains("magic"), "{out}");
    }

    #[test]
    fn dbsim_smoke() {
        let (code, out) = run_cli(&[
            "dbsim",
            "--mix",
            "sibench",
            "--workers",
            "2",
            "--txns",
            "20",
            "--engine",
            "so",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("mean latency"), "{out}");
    }

    #[test]
    fn dbsim_sharded_smoke() {
        let (code, out) = run_cli(&[
            "dbsim",
            "--mix",
            "sibench",
            "--workers",
            "2",
            "--txns",
            "20",
            "--engine",
            "ft",
            "--shards",
            "4",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("(shards=4)"), "{out}");
        assert!(out.contains("mean latency"), "{out}");

        let (code, out) = run_cli(&["dbsim", "--shards", "0"]);
        assert_eq!(code, 1);
        assert!(out.contains("--shards"), "{out}");
    }

    #[test]
    fn dbsim_sync_mode_flag() {
        let (code, out) = run_cli(&[
            "dbsim",
            "--mix",
            "sibench",
            "--workers",
            "2",
            "--txns",
            "20",
            "--engine",
            "st",
            "--shards",
            "2",
            "--sync",
            "replicated",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("(shards=2, replicated)"), "{out}");

        let (code, out) = run_cli(&["dbsim", "--sync", "bogus"]);
        assert_eq!(code, 1);
        assert!(out.contains("--sync"), "{out}");
        assert!(out.contains("seqlock"), "{out}");
    }

    #[test]
    fn dbsim_batch_flag() {
        let (code, out) = run_cli(&[
            "dbsim",
            "--mix",
            "sibench",
            "--workers",
            "2",
            "--txns",
            "20",
            "--engine",
            "st",
            "--shards",
            "2",
            "--sync",
            "shared",
            "--batch",
            "16",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("(shards=2, shared, batch=16)"), "{out}");

        let (code, out) = run_cli(&["dbsim", "--batch", "0"]);
        assert_eq!(code, 1);
        assert!(out.contains("--batch"), "{out}");
    }

    #[test]
    fn analyze_cache_is_byte_identical_and_persists_a_sidecar() {
        let (_text_path, v2_path) = trace_fixture("freshtrack-cli-cache", "3000");
        let v2 = v2_path.to_str().unwrap();
        let tail = [
            "--engine",
            "so",
            "--rate",
            "0.5",
            "--seed",
            "3",
            "--counters",
        ];
        let (code, cold) = run_cli(&[&["analyze", v2], &tail[..]].concat());
        assert_eq!(code, 0, "{cold}");

        // Default sidecar path: the trace path plus `.ftc`.
        let sidecar = std::path::PathBuf::from(format!("{v2}.ftc"));
        let _ = std::fs::remove_file(&sidecar);
        let (code, first_run) = run_cli(&[&["analyze", v2, "--cache"], &tail[..]].concat());
        assert_eq!(code, 0, "{first_run}");
        assert_eq!(
            first_run, cold,
            "a cold cached run must print the uncached output"
        );
        let written = std::fs::read(&sidecar).expect("the cached run writes a sidecar");
        assert!(!written.is_empty());

        // A fully-warm rerun: same stdout, and the rewritten sidecar is
        // byte-identical (invariant 11 observed end to end).
        let (code, warm) = run_cli(&[&["analyze", v2, "--cache"], &tail[..]].concat());
        assert_eq!(code, 0, "{warm}");
        assert_eq!(warm, cold);
        assert_eq!(std::fs::read(&sidecar).unwrap(), written);

        // --no-cache wins over --cache and leaves the sidecar alone.
        std::fs::write(&sidecar, b"junk").unwrap();
        let (code, plain) =
            run_cli(&[&["analyze", v2, "--cache", "--no-cache"], &tail[..]].concat());
        assert_eq!(code, 0, "{plain}");
        assert_eq!(plain, cold);
        assert_eq!(std::fs::read(&sidecar).unwrap(), b"junk");

        // A corrupt sidecar is advisory: ignored, then rewritten.
        let (code, recovered) = run_cli(&[&["analyze", v2, "--cache"], &tail[..]].concat());
        assert_eq!(code, 0, "{recovered}");
        assert_eq!(recovered, cold);
        assert_eq!(std::fs::read(&sidecar).unwrap(), written);

        // A different engine must not reuse the sidecar (fingerprint
        // mismatch) yet still matches its own cold output.
        let ft_tail = ["--engine", "ft", "--counters"];
        let (code, ft_cold) = run_cli(&[&["analyze", v2], &ft_tail[..]].concat());
        assert_eq!(code, 0, "{ft_cold}");
        let (code, ft_cached) = run_cli(&[&["analyze", v2, "--cache"], &ft_tail[..]].concat());
        assert_eq!(code, 0, "{ft_cached}");
        assert_eq!(ft_cached, ft_cold);
    }

    #[test]
    fn analyze_cache_append_reuses_the_prefix() {
        let dir = std::env::temp_dir().join("freshtrack-cli-cache-append");
        std::fs::create_dir_all(&dir).unwrap();
        let (code, text) = run_cli(&[
            "generate",
            "--events",
            "3000",
            "--unprotected",
            "0.1",
            "--seed",
            "7",
        ]);
        assert_eq!(code, 0);
        // Non-directive text lines map 1:1 to events, so a line prefix
        // cut after the 2048th event is exactly the trace as it stood
        // before its tail was appended — and 2048 is a multiple of the
        // segment size, which keeps the shared segments byte-equal.
        let lines: Vec<&str> = text.lines().collect();
        let mut events_seen = 0usize;
        let mut cut = 0usize;
        for (i, line) in lines.iter().enumerate() {
            if !line.starts_with('#') && !line.trim().is_empty() {
                events_seen += 1;
                if events_seen == 2048 {
                    cut = i + 1;
                    break;
                }
            }
        }
        assert_eq!(events_seen, 2048, "generated trace too short");
        let short_text: String = lines[..cut].iter().map(|l| format!("{l}\n")).collect();
        let short_path = dir.join("short.trace");
        let full_path = dir.join("full.trace");
        std::fs::write(&short_path, &short_text).unwrap();
        std::fs::write(&full_path, &text).unwrap();
        let to_v2 = |name: &str, text_path: &std::path::Path| {
            let (code, bytes) = run_cli_bytes(&[
                "convert",
                text_path.to_str().unwrap(),
                "--to",
                "binary-v2",
                "--segment-events",
                "256",
            ]);
            assert_eq!(code, 0);
            let p = dir.join(name);
            std::fs::write(&p, &bytes).unwrap();
            p
        };
        let short_v2 = to_v2("short.ftb2", &short_path);
        let full_v2 = to_v2("full.ftb2", &full_path);
        let cache = dir.join("trace.ftc");
        let _ = std::fs::remove_file(&cache);
        let cache_arg = format!("--cache={}", cache.to_str().unwrap());

        let tail = [
            "--engine",
            "su",
            "--rate",
            "0.4",
            "--seed",
            "13",
            "--counters",
        ];
        let (code, cold_full) =
            run_cli(&[&["analyze", full_v2.to_str().unwrap()], &tail[..]].concat());
        assert_eq!(code, 0, "{cold_full}");

        // Analyze the pre-append trace, seeding the sidecar.
        let (code, short_out) = run_cli(
            &[
                &["analyze", short_v2.to_str().unwrap(), &cache_arg],
                &tail[..],
            ]
            .concat(),
        );
        assert_eq!(code, 0, "{short_out}");
        assert!(cache.exists());

        // The appended file shares its first 8 segments (2048 events at
        // 256 per segment) with the short one; `segments --cache` sees
        // them as hits and the appended tail as uncached.
        let (code, seg_out) = run_cli(&["segments", full_v2.to_str().unwrap(), &cache_arg]);
        assert_eq!(code, 0, "{seg_out}");
        assert_eq!(seg_out.matches(" hit").count(), 8, "{seg_out}");
        assert!(!seg_out.contains("stale"), "{seg_out}");
        assert!(seg_out.contains("8 reusable"), "{seg_out}");

        // Incremental re-analysis after the append: byte-identical
        // stdout, and the rewritten sidecar equals a cold cached run's.
        let (code, warm_full) = run_cli(
            &[
                &["analyze", full_v2.to_str().unwrap(), &cache_arg],
                &tail[..],
            ]
            .concat(),
        );
        assert_eq!(code, 0, "{warm_full}");
        assert_eq!(warm_full, cold_full);
        let incremental_sidecar = std::fs::read(&cache).unwrap();

        std::fs::remove_file(&cache).unwrap();
        let (code, cold_cached) = run_cli(
            &[
                &["analyze", full_v2.to_str().unwrap(), &cache_arg],
                &tail[..],
            ]
            .concat(),
        );
        assert_eq!(code, 0, "{cold_cached}");
        assert_eq!(cold_cached, cold_full);
        assert_eq!(std::fs::read(&cache).unwrap(), incremental_sidecar);
    }

    #[test]
    fn analyze_cache_rejects_stdin_and_sam() {
        let (code, out) = run_cli(&["analyze", "-", "--cache"]);
        assert_eq!(code, 1);
        assert!(out.contains("stdin"), "{out}");

        let (_text_path, v2_path) = trace_fixture("freshtrack-cli-cache-err", "500");
        let (code, out) = run_cli(&[
            "analyze",
            v2_path.to_str().unwrap(),
            "--cache",
            "--engine",
            "sam",
        ]);
        assert_eq!(code, 1);
        assert!(out.contains("sam"), "{out}");
    }

    #[test]
    fn segments_cache_column_reports_hit_stale_and_missing() {
        let (_text_path, v2_a) = trace_fixture("freshtrack-cli-segcache", "1000");
        let a = v2_a.to_str().unwrap();
        let sidecar = format!("{a}.ftc");
        let _ = std::fs::remove_file(&sidecar);

        // Before any cached run: the column renders, every cell `-`.
        let (code, out) = run_cli(&["segments", a, "--cache"]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("none (a cached run will write it)"), "{out}");
        assert!(out.contains("cache"), "{out}");
        assert!(!out.contains("hit"), "{out}");

        let (code, out) = run_cli(&["analyze", a, "--cache", "--engine", "so", "--rate", "1.0"]);
        assert_eq!(code, 0, "{out}");

        // After: every segment is a hit against its own sidecar.
        let (code, out) = run_cli(&["segments", a, "--cache"]);
        assert_eq!(code, 0, "{out}");
        assert_eq!(out.matches(" hit").count(), 4, "{out}");
        assert!(out.contains("4 reusable"), "{out}");
        assert!(out.contains("engine=so"), "{out}");

        // Same sidecar against a different trace: stale from segment 0.
        let dir = std::env::temp_dir().join("freshtrack-cli-segcache-b");
        std::fs::create_dir_all(&dir).unwrap();
        let (code, text) = run_cli(&[
            "generate",
            "--events",
            "1000",
            "--unprotected",
            "0.1",
            "--seed",
            "8",
        ]);
        assert_eq!(code, 0);
        let text_b = dir.join("b.trace");
        std::fs::write(&text_b, &text).unwrap();
        let (code, v2) = run_cli_bytes(&[
            "convert",
            text_b.to_str().unwrap(),
            "--to",
            "binary-v2",
            "--segment-events",
            "256",
        ]);
        assert_eq!(code, 0);
        let v2_b = dir.join("b.ftb2");
        std::fs::write(&v2_b, &v2).unwrap();

        let cache_arg = format!("--cache={sidecar}");
        let (code, out) = run_cli(&["segments", v2_b.to_str().unwrap(), &cache_arg]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("stale"), "{out}");
        assert!(out.contains("0 reusable"), "{out}");
        assert!(!out.contains(" hit"), "{out}");
    }
}
