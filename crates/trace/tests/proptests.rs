//! Property-based tests for the trace substrate: the text format
//! round-trips, the builder always produces discipline-valid traces,
//! statistics are consistent, and the `.ftc` analysis-cache sidecar
//! codec round-trips and rejects every corruption.

use freshtrack_trace::{
    read_trace, write_trace, AnalysisCache, CacheConfig, CacheEntry, EventKind, TraceBuilder,
};
use proptest::prelude::*;

/// Raw fuel interpreted into a valid trace (same scheme as the core
/// crate's equivalence tests).
fn build(fuel: &[(u8, u8, u8)], threads: u8, locks: u8, vars: u8) -> freshtrack_trace::Trace {
    let mut b = TraceBuilder::new();
    let var_ids: Vec<_> = (0..vars).map(|v| b.var(&format!("v{v}"))).collect();
    let lock_ids: Vec<_> = (0..locks).map(|l| b.lock(&format!("m{l}"))).collect();
    let mut holder: Vec<Option<u8>> = vec![None; locks as usize];
    let mut forked: Vec<bool> = vec![false; threads as usize];

    for &(t, action, operand) in fuel {
        let t = t % threads;
        match action % 6 {
            0 => {
                let l = (operand % locks) as usize;
                if holder[l].is_none() {
                    holder[l] = Some(t);
                    b.acquire(t as u32, lock_ids[l]);
                } else {
                    b.read(t as u32, var_ids[(operand % vars) as usize]);
                }
            }
            1 => {
                if let Some(l) = holder.iter().position(|&h| h == Some(t)) {
                    holder[l] = None;
                    b.release(t as u32, lock_ids[l]);
                } else {
                    b.write(t as u32, var_ids[(operand % vars) as usize]);
                }
            }
            2 => {
                b.read(t as u32, var_ids[(operand % vars) as usize]);
            }
            3 => {
                b.write(t as u32, var_ids[(operand % vars) as usize]);
            }
            4 => {
                let child = operand % threads;
                if child != t && !forked[child as usize] {
                    forked[child as usize] = true;
                    b.fork(t as u32, child as u32);
                } else {
                    b.read(t as u32, var_ids[(operand % vars) as usize]);
                }
            }
            _ => {
                let child = operand % threads;
                if child != t && forked[child as usize] {
                    forked[child as usize] = false;
                    b.join(t as u32, child as u32);
                } else {
                    b.write(t as u32, var_ids[(operand % vars) as usize]);
                }
            }
        }
    }
    b.build()
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..24)
}

fn arb_name() -> impl Strategy<Value = String> {
    prop::collection::vec(b'a'..=b'z', 0..6)
        .prop_map(|bytes| String::from_utf8(bytes).expect("ascii range"))
}

fn arb_entry() -> impl Strategy<Value = CacheEntry> {
    (
        (
            any::<u32>(),
            any::<u64>(),
            0u64..1 << 40,
            any::<u64>(),
            any::<u64>(),
        ),
        (0usize..1000, 0usize..1000, any::<u32>()),
        (
            prop::collection::vec(arb_name(), 0..4),
            prop::collection::vec(arb_name(), 0..4),
            prop::collection::vec(any::<bool>(), 0..8),
        ),
        (arb_payload(), arb_payload(), arb_payload(), arb_payload()),
        prop::collection::vec(arb_payload(), 0..4),
    )
        .prop_map(|(ids, watermarks, tables, payloads, access_deltas)| {
            let (crc32, offset, byte_len, event_count, first_event_id) = ids;
            let (locks_before, vars_before, threads) = watermarks;
            let (new_locks, new_vars, pending) = tables;
            let (discipline, counters, sync_delta, reports) = payloads;
            CacheEntry {
                crc32,
                offset,
                byte_len,
                event_count,
                first_event_id,
                locks_before,
                vars_before,
                new_locks,
                new_vars,
                threads,
                pending,
                discipline,
                counters,
                sync_delta,
                access_deltas,
                reports,
            }
        })
}

fn arb_cache() -> impl Strategy<Value = AnalysisCache> {
    (
        (arb_name(), arb_name(), arb_name(), any::<u32>(), 1u32..8),
        prop::collection::vec(arb_entry(), 0..6),
    )
        .prop_map(
            |((engine, sampler, options, state_version, jobs), entries)| AnalysisCache {
                config: CacheConfig {
                    engine,
                    sampler,
                    options,
                    state_version,
                    jobs,
                },
                entries,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sidecar_round_trips(cache in arb_cache()) {
        let encoded = cache.encode();
        let decoded = AnalysisCache::decode(&encoded).expect("own encoding must decode");
        prop_assert_eq!(decoded, cache);
    }

    #[test]
    fn sidecar_bit_flips_are_rejected_or_visibly_different(
        cache in arb_cache(),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let mut mutant = cache.encode();
        let pos = pos % mutant.len();
        mutant[pos] ^= 1 << bit;
        // A corrupted sidecar must never silently decode back to the
        // original state — that would let a cache mask trace damage.
        if let Ok(decoded) = AnalysisCache::decode(&mutant) {
            prop_assert!(decoded != cache, "flip at byte {} bit {} went unnoticed", pos, bit);
        }
    }

    #[test]
    fn sidecar_truncations_are_rejected(
        cache in arb_cache(),
        cut in any::<usize>(),
    ) {
        let encoded = cache.encode();
        let cut = cut % encoded.len();
        prop_assert!(AnalysisCache::decode(&encoded[..cut]).is_err());
    }

    #[test]
    fn builder_traces_always_validate(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..200),
    ) {
        let trace = build(&fuel, 5, 4, 3);
        prop_assert!(trace.validate().is_ok());
    }

    #[test]
    fn text_format_round_trips(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..150),
    ) {
        let trace = build(&fuel, 4, 3, 3);
        let text = write_trace(&trace);
        let parsed = read_trace(&text).expect("parses");
        prop_assert_eq!(trace.len(), parsed.len());
        // The writer is a normal form: writing the parse reproduces it.
        prop_assert_eq!(&text, &write_trace(&parsed));
        prop_assert!(parsed.validate().is_ok());
        // Event shape is preserved position by position.
        for (a, b) in trace.events().iter().zip(parsed.events()) {
            prop_assert_eq!(a.tid, b.tid);
            prop_assert_eq!(
                std::mem::discriminant(&a.kind),
                std::mem::discriminant(&b.kind)
            );
        }
    }

    #[test]
    fn stats_partition_event_count(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..150),
    ) {
        let trace = build(&fuel, 4, 3, 3);
        let s = trace.stats();
        prop_assert_eq!(s.events, trace.len());
        prop_assert_eq!(s.reads + s.writes + s.acquires + s.releases, s.events);
        prop_assert_eq!(s.accesses() + s.syncs(), s.events);
        // Locking discipline implies balanced-or-pending acquires.
        prop_assert!(s.releases <= s.acquires);
        prop_assert_eq!(s.threads, trace.thread_count());
    }

    #[test]
    fn every_acquire_release_pair_is_well_formed(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..200),
    ) {
        // Replay the trace and confirm release always matches the holder
        // — i.e. `validate` agrees with a straightforward re-simulation.
        let trace = build(&fuel, 5, 4, 3);
        let mut holder = vec![None; trace.lock_count()];
        for event in trace.events() {
            match event.kind {
                EventKind::Acquire(l) => {
                    prop_assert!(holder[l.index()].is_none());
                    holder[l.index()] = Some(event.tid);
                }
                EventKind::Release(l) => {
                    prop_assert_eq!(holder[l.index()], Some(event.tid));
                    holder[l.index()] = None;
                }
                _ => {}
            }
        }
    }
}
