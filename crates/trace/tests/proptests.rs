//! Property-based tests for the trace substrate: the text format
//! round-trips, the builder always produces discipline-valid traces, and
//! statistics are consistent.

use freshtrack_trace::{read_trace, write_trace, EventKind, TraceBuilder};
use proptest::prelude::*;

/// Raw fuel interpreted into a valid trace (same scheme as the core
/// crate's equivalence tests).
fn build(fuel: &[(u8, u8, u8)], threads: u8, locks: u8, vars: u8) -> freshtrack_trace::Trace {
    let mut b = TraceBuilder::new();
    let var_ids: Vec<_> = (0..vars).map(|v| b.var(&format!("v{v}"))).collect();
    let lock_ids: Vec<_> = (0..locks).map(|l| b.lock(&format!("m{l}"))).collect();
    let mut holder: Vec<Option<u8>> = vec![None; locks as usize];
    let mut forked: Vec<bool> = vec![false; threads as usize];

    for &(t, action, operand) in fuel {
        let t = t % threads;
        match action % 6 {
            0 => {
                let l = (operand % locks) as usize;
                if holder[l].is_none() {
                    holder[l] = Some(t);
                    b.acquire(t as u32, lock_ids[l]);
                } else {
                    b.read(t as u32, var_ids[(operand % vars) as usize]);
                }
            }
            1 => {
                if let Some(l) = holder.iter().position(|&h| h == Some(t)) {
                    holder[l] = None;
                    b.release(t as u32, lock_ids[l]);
                } else {
                    b.write(t as u32, var_ids[(operand % vars) as usize]);
                }
            }
            2 => {
                b.read(t as u32, var_ids[(operand % vars) as usize]);
            }
            3 => {
                b.write(t as u32, var_ids[(operand % vars) as usize]);
            }
            4 => {
                let child = operand % threads;
                if child != t && !forked[child as usize] {
                    forked[child as usize] = true;
                    b.fork(t as u32, child as u32);
                } else {
                    b.read(t as u32, var_ids[(operand % vars) as usize]);
                }
            }
            _ => {
                let child = operand % threads;
                if child != t && forked[child as usize] {
                    forked[child as usize] = false;
                    b.join(t as u32, child as u32);
                } else {
                    b.write(t as u32, var_ids[(operand % vars) as usize]);
                }
            }
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn builder_traces_always_validate(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..200),
    ) {
        let trace = build(&fuel, 5, 4, 3);
        prop_assert!(trace.validate().is_ok());
    }

    #[test]
    fn text_format_round_trips(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..150),
    ) {
        let trace = build(&fuel, 4, 3, 3);
        let text = write_trace(&trace);
        let parsed = read_trace(&text).expect("parses");
        prop_assert_eq!(trace.len(), parsed.len());
        // The writer is a normal form: writing the parse reproduces it.
        prop_assert_eq!(&text, &write_trace(&parsed));
        prop_assert!(parsed.validate().is_ok());
        // Event shape is preserved position by position.
        for (a, b) in trace.events().iter().zip(parsed.events()) {
            prop_assert_eq!(a.tid, b.tid);
            prop_assert_eq!(
                std::mem::discriminant(&a.kind),
                std::mem::discriminant(&b.kind)
            );
        }
    }

    #[test]
    fn stats_partition_event_count(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..150),
    ) {
        let trace = build(&fuel, 4, 3, 3);
        let s = trace.stats();
        prop_assert_eq!(s.events, trace.len());
        prop_assert_eq!(s.reads + s.writes + s.acquires + s.releases, s.events);
        prop_assert_eq!(s.accesses() + s.syncs(), s.events);
        // Locking discipline implies balanced-or-pending acquires.
        prop_assert!(s.releases <= s.acquires);
        prop_assert_eq!(s.threads, trace.thread_count());
    }

    #[test]
    fn every_acquire_release_pair_is_well_formed(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..200),
    ) {
        // Replay the trace and confirm release always matches the holder
        // — i.e. `validate` agrees with a straightforward re-simulation.
        let trace = build(&fuel, 5, 4, 3);
        let mut holder = vec![None; trace.lock_count()];
        for event in trace.events() {
            match event.kind {
                EventKind::Acquire(l) => {
                    prop_assert!(holder[l.index()].is_none());
                    holder[l.index()] = Some(event.tid);
                }
                EventKind::Release(l) => {
                    prop_assert_eq!(holder[l.index()], Some(event.tid));
                    holder[l.index()] = None;
                }
                _ => {}
            }
        }
    }
}
