//! Truncation and version-negotiation hardening for the binary formats.
//!
//! The contract: a truncated `.ftb` file is an **error**, never a
//! silently shortened trace. v1 ends with an end marker, so any strict
//! prefix fails; v2 additionally carries a footer and a fixed 12-byte
//! trailer, so the only cuts a *streaming* reader can survive are
//! inside the trailer it does not need — and the seeking reader
//! ([`SegmentedTraceFile`]) rejects even those.

use freshtrack_trace::{
    is_binary_trace, write_trace_binary, write_trace_binary_v2, BinaryEventReader, Event,
    EventReader, EventSource, SegmentOptions, SegmentedTraceFile, Trace, TraceBuilder,
};

fn sample_trace() -> Trace {
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    let l = b.lock("l");
    for t in 0..3u32 {
        b.acquire(t, l).write(t, x).release(t, l);
        b.read(t, y);
        b.write(t, y);
    }
    b.fork(0, 3);
    b.write(3, x);
    b.join(0, 3);
    b.build()
}

/// Streams every event out of a byte prefix, or the first error.
fn stream_all(bytes: &[u8]) -> Result<Vec<Event>, String> {
    let mut reader = BinaryEventReader::new(bytes).map_err(|e| e.to_string())?;
    let mut events = Vec::new();
    loop {
        match reader.next_event() {
            Ok(Some(event)) => events.push(event),
            Ok(None) => return Ok(events),
            Err(e) => return Err(e.to_string()),
        }
    }
}

#[test]
fn v1_truncated_at_every_byte_is_an_error() {
    let trace = sample_trace();
    let mut bytes = Vec::new();
    write_trace_binary(&trace, &mut bytes).unwrap();

    assert_eq!(stream_all(&bytes).unwrap(), trace.events());
    for cut in 0..bytes.len() {
        assert!(
            stream_all(&bytes[..cut]).is_err(),
            "v1 prefix of {cut}/{} bytes must not decode",
            bytes.len()
        );
    }
}

#[test]
fn v2_truncated_at_every_byte_is_an_error_or_the_complete_trace() {
    let trace = sample_trace();
    let mut bytes = Vec::new();
    write_trace_binary_v2(
        &trace,
        &mut bytes,
        &SegmentOptions {
            events_per_segment: 4,
        },
    )
    .unwrap();

    assert_eq!(stream_all(&bytes).unwrap(), trace.events());
    // [TAG_END][8-byte footer offset][`FTBi`] — 13 trailing bytes the
    // streaming reader does not consult.
    let trailer_start = bytes.len() - 13;
    for cut in 0..bytes.len() {
        match stream_all(&bytes[..cut]) {
            Err(_) => {}
            Ok(events) => {
                assert_eq!(
                    events,
                    trace.events(),
                    "a surviving cut must still yield the complete trace (cut {cut})"
                );
                assert!(
                    cut > trailer_start,
                    "only trailer cuts may survive streaming, got {cut}/{}",
                    bytes.len()
                );
            }
        }
        // The seeking reader needs the trailer, so *every* strict
        // prefix is rejected at open.
        assert!(
            SegmentedTraceFile::open(std::io::Cursor::new(&bytes[..cut])).is_err(),
            "v2 prefix of {cut}/{} bytes must not open",
            bytes.len()
        );
    }
}

#[test]
fn unsupported_future_versions_are_named_not_garbled() {
    for digit in [b'3', b'7', b'9'] {
        let mut bytes = vec![b'F', b'T', b'B', digit, b'\r', b'\n', 0x1a, b'\n'];
        bytes.push(0xF6); // whatever follows, the magic decides
        let err = BinaryEventReader::new(&bytes[..]).unwrap_err();
        assert!(
            err.to_string().contains(&format!(
                "unsupported binary trace version {}",
                digit - b'0'
            )),
            "{err}"
        );
        assert!(
            is_binary_trace(&bytes),
            "future versions still sniff as binary so they reach the reader"
        );
    }
}

#[test]
fn non_magic_inputs_are_not_binary_traces() {
    let err = BinaryEventReader::new(&b"T0|w(x)\n"[..]).unwrap_err();
    assert!(err.to_string().contains("not a binary trace"), "{err}");
    assert!(!is_binary_trace(b"T0|w(x)\n"));
    assert!(!is_binary_trace(b"FTBx\r\n\x1a\n"));
    assert!(!is_binary_trace(b"FTB"));

    let mut v1 = Vec::new();
    write_trace_binary(&sample_trace(), &mut v1).unwrap();
    assert!(is_binary_trace(&v1));
    let mut v2 = Vec::new();
    write_trace_binary_v2(&sample_trace(), &mut v2, &SegmentOptions::default()).unwrap();
    assert!(is_binary_trace(&v2));
}

#[test]
fn from_source_limited_stops_buffering_at_the_cap() {
    let trace = sample_trace();
    let n = trace.len();

    let at_cap = Trace::from_source_limited(&mut trace.source(), n).unwrap();
    assert_eq!(at_cap.expect("exactly at the cap fits").len(), n);

    let over_cap = Trace::from_source_limited(&mut trace.source(), n - 1).unwrap();
    assert!(over_cap.is_none(), "one event over the cap must give up");

    // A malformed oversized input is malformed, not merely oversized:
    // the error wins over the cap.
    let mut reader = EventReader::new(&b"T0|w(x)\nbogus\n"[..]);
    let err = Trace::from_source_limited(&mut reader, 1).unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");
}
