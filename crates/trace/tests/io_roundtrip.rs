//! Round-trip tests for the text trace format over *generated
//! workloads*: `write_trace` → `read_trace` is the identity on every
//! pattern the workload generator produces (fork/join desugaring, token
//! locks, many threads), not just on fuzzed builder traces.

use freshtrack_trace::{read_trace, write_trace, Trace};
use freshtrack_workloads::{generate, Pattern, WorkloadConfig};

const PATTERNS: [Pattern; 6] = [
    Pattern::Mixed,
    Pattern::ProducerConsumer,
    Pattern::Pipeline,
    Pattern::ForkJoin,
    Pattern::BarrierPhases,
    Pattern::LockLadder,
];

fn assert_identity_roundtrip(label: &str, trace: &Trace) {
    let text = write_trace(trace);
    let parsed = read_trace(&text).unwrap_or_else(|e| panic!("[{label}] reparse failed: {e:?}"));

    // Event streams are identical, position by position.
    assert_eq!(trace.len(), parsed.len(), "[{label}] length");
    assert_eq!(trace.events(), parsed.events(), "[{label}] events");

    // Entity tables survive: counts and names.
    assert_eq!(trace.thread_count(), parsed.thread_count(), "[{label}]");
    assert_eq!(trace.lock_count(), parsed.lock_count(), "[{label}]");
    assert_eq!(trace.var_count(), parsed.var_count(), "[{label}]");
    for v in 0..trace.var_count() {
        assert_eq!(trace.var_name(v), parsed.var_name(v), "[{label}] var {v}");
    }
    for l in 0..trace.lock_count() {
        assert_eq!(
            trace.lock_name(l),
            parsed.lock_name(l),
            "[{label}] lock {l}"
        );
    }

    // The writer is a normal form, and validity survives the trip.
    assert_eq!(text, write_trace(&parsed), "[{label}] normal form");
    assert!(parsed.validate().is_ok(), "[{label}] validity");

    // Derived statistics are a function of the events alone.
    assert_eq!(trace.stats(), parsed.stats(), "[{label}] stats");
}

#[test]
fn generated_workloads_roundtrip_identically() {
    for pattern in PATTERNS {
        for seed in [3u64, 77, 123_456] {
            let trace = generate(
                &WorkloadConfig::named("roundtrip")
                    .pattern(pattern)
                    .events(1_500)
                    .threads(6)
                    .seed(seed),
            );
            assert_identity_roundtrip(&format!("{pattern:?}/{seed}"), &trace);
        }
    }
}

#[test]
fn corpus_and_benchbase_shaped_configs_roundtrip() {
    // Configs exercising the extremes: many locks, high sync ratio, hot
    // location contention, and an all-unprotected free-for-all.
    let configs = [
        WorkloadConfig::named("locky").locks(32).sync_ratio(0.8),
        WorkloadConfig::named("hot").vars(4).hot_fraction(0.9),
        WorkloadConfig::named("wild").unprotected(1.0),
        WorkloadConfig::named("wide").threads(32).events(3_000),
    ];
    for config in configs {
        let trace = generate(&config.events(2_000).seed(9));
        assert_identity_roundtrip(&trace.stats().events.to_string(), &trace);
    }
}

#[test]
fn empty_trace_roundtrips() {
    let trace = generate(&WorkloadConfig::named("empty").events(0));
    assert_identity_roundtrip("empty", &trace);
}
