//! Cross-format round-trip tests: the text format and the binary
//! (`.ftb`) format are both *identities* under `read ∘ write`, on every
//! pattern the workload generator produces (fork/join desugaring, token
//! locks, many threads) **and** on arbitrary fuzzed builder traces —
//! and converting between the formats never changes the trace.
//!
//! The matrix each trace goes through:
//!
//! * text:   `read_trace(write_trace(t)) == t` (plus normal-form
//!   idempotence of the writer),
//! * binary: `read_trace_binary(write_trace_binary(t)) == t`,
//! * cross:  text → binary → text and binary → text → binary are both
//!   identities (streamed through the lazy converters, not
//!   re-materialized),
//! * stream: decoding the binary event by event yields exactly the
//!   batch decoding.

use freshtrack_trace::{
    read_trace, read_trace_binary, write_source, write_source_binary, write_source_binary_v2,
    write_trace, write_trace_binary, BinaryEventReader, Event, EventReader, EventSource,
    SegmentOptions, Trace, TraceBuilder,
};
use freshtrack_workloads::{generate, Pattern, WorkloadConfig};
use proptest::prelude::*;

const PATTERNS: [Pattern; 6] = [
    Pattern::Mixed,
    Pattern::ProducerConsumer,
    Pattern::Pipeline,
    Pattern::ForkJoin,
    Pattern::BarrierPhases,
    Pattern::LockLadder,
];

fn assert_traces_equal(label: &str, a: &Trace, b: &Trace) {
    assert_eq!(a.len(), b.len(), "[{label}] length");
    assert_eq!(a.events(), b.events(), "[{label}] events");
    assert_eq!(a.thread_count(), b.thread_count(), "[{label}] threads");
    assert_eq!(a.lock_count(), b.lock_count(), "[{label}] locks");
    assert_eq!(a.var_count(), b.var_count(), "[{label}] vars");
    for v in 0..a.var_count() {
        assert_eq!(a.var_name(v), b.var_name(v), "[{label}] var {v}");
    }
    for l in 0..a.lock_count() {
        assert_eq!(a.lock_name(l), b.lock_name(l), "[{label}] lock {l}");
    }
    assert_eq!(a.stats(), b.stats(), "[{label}] stats");
}

fn assert_identity_roundtrip(label: &str, trace: &Trace) {
    // Text: read ∘ write = id, and the writer is a normal form.
    let text = write_trace(trace);
    let parsed = read_trace(&text).unwrap_or_else(|e| panic!("[{label}] reparse failed: {e:?}"));
    assert_traces_equal(&format!("{label}/text"), trace, &parsed);
    assert_eq!(text, write_trace(&parsed), "[{label}] normal form");
    assert!(parsed.validate().is_ok(), "[{label}] validity");

    // Binary: read ∘ write = id, same entity-table guarantees.
    let mut bytes = Vec::new();
    write_trace_binary(trace, &mut bytes).expect("in-memory write");
    let decoded = read_trace_binary(&bytes)
        .unwrap_or_else(|e| panic!("[{label}] binary decode failed: {e:?}"));
    assert_traces_equal(&format!("{label}/binary"), trace, &decoded);

    // Cross-format, streamed through the converters (never
    // re-materialized): text → binary → text reproduces the normal
    // form byte for byte, binary → text → binary likewise.
    let mut bin_from_text = Vec::new();
    write_source_binary(&mut EventReader::new(text.as_bytes()), &mut bin_from_text)
        .unwrap_or_else(|e| panic!("[{label}] text→binary failed: {e}"));
    let mut text_again = Vec::new();
    write_source(
        &mut BinaryEventReader::new(&bin_from_text[..]).expect("magic"),
        &mut text_again,
    )
    .unwrap_or_else(|e| panic!("[{label}] binary→text failed: {e}"));
    assert_eq!(
        text,
        String::from_utf8(text_again).expect("utf8"),
        "[{label}] text→binary→text"
    );
    assert_traces_equal(
        &format!("{label}/cross"),
        trace,
        &read_trace_binary(&bin_from_text).expect("cross decode"),
    );

    // Streaming the binary event by event matches batch decoding.
    let mut reader = BinaryEventReader::new(&bytes[..]).expect("magic");
    let mut streamed: Vec<Event> = Vec::new();
    while let Some(event) = reader.next_event().expect("stream decode") {
        streamed.push(event);
    }
    assert_eq!(trace.events(), &streamed[..], "[{label}] streamed events");
    assert_eq!(reader.threads(), trace.thread_count() as u32, "[{label}]");
    assert_eq!(reader.lock_count(), trace.lock_count(), "[{label}]");
    assert_eq!(reader.var_count(), trace.var_count(), "[{label}]");
}

#[test]
fn generated_workloads_roundtrip_identically() {
    for pattern in PATTERNS {
        for seed in [3u64, 77, 123_456] {
            let trace = generate(
                &WorkloadConfig::named("roundtrip")
                    .pattern(pattern)
                    .events(1_500)
                    .threads(6)
                    .seed(seed),
            );
            assert_identity_roundtrip(&format!("{pattern:?}/{seed}"), &trace);
        }
    }
}

#[test]
fn corpus_and_benchbase_shaped_configs_roundtrip() {
    // Configs exercising the extremes: many locks, high sync ratio, hot
    // location contention, and an all-unprotected free-for-all.
    let configs = [
        WorkloadConfig::named("locky").locks(32).sync_ratio(0.8),
        WorkloadConfig::named("hot").vars(4).hot_fraction(0.9),
        WorkloadConfig::named("wild").unprotected(1.0),
        WorkloadConfig::named("wide").threads(32).events(3_000),
    ];
    for config in configs {
        let trace = generate(&config.events(2_000).seed(9));
        assert_identity_roundtrip(&trace.stats().events.to_string(), &trace);
    }
}

#[test]
fn empty_trace_roundtrips() {
    let trace = generate(&WorkloadConfig::named("empty").events(0));
    assert_identity_roundtrip("empty", &trace);
}

#[test]
fn wide_operand_spaces_roundtrip() {
    // Operand ids beyond the binary format's inline window (0..=28) and
    // a sparse, large thread space.
    let mut b = TraceBuilder::new();
    let vars: Vec<_> = (0..100).map(|v| b.var(&format!("wide-var-{v}"))).collect();
    let locks: Vec<_> = (0..40).map(|l| b.lock(&format!("wide-lock-{l}"))).collect();
    for i in 0..200u32 {
        let t = (i * 37) % 300;
        b.acquire(t, locks[(i as usize * 7) % locks.len()]);
        b.write(t, vars[(i as usize * 13) % vars.len()]);
        b.release(t, locks[(i as usize * 7) % locks.len()]);
    }
    let trace = b.build();
    assert_identity_roundtrip("wide-operands", &trace);
}

/// Raw fuel interpreted into a valid trace (same scheme as the core
/// crate's equivalence tests): arbitrary builder traces with fork/join,
/// silent declared threads, and odd-but-legal name usage.
fn build_fuel_trace(fuel: &[(u8, u8, u8)], threads: u8, locks: u8, vars: u8) -> Trace {
    let mut b = TraceBuilder::new();
    let var_ids: Vec<_> = (0..vars).map(|v| b.var(&format!("v{v}"))).collect();
    let lock_ids: Vec<_> = (0..locks).map(|l| b.lock(&format!("m{l}"))).collect();
    let mut holder: Vec<Option<u8>> = vec![None; locks as usize];
    let mut forked: Vec<bool> = vec![false; threads as usize];

    for &(t, action, operand) in fuel {
        let t = t % threads;
        match action % 6 {
            0 => {
                let l = (operand % locks) as usize;
                if holder[l].is_none() {
                    holder[l] = Some(t);
                    b.acquire(t as u32, lock_ids[l]);
                } else {
                    b.read(t as u32, var_ids[(operand % vars) as usize]);
                }
            }
            1 => {
                if let Some(l) = holder.iter().position(|&h| h == Some(t)) {
                    holder[l] = None;
                    b.release(t as u32, lock_ids[l]);
                } else {
                    b.write(t as u32, var_ids[(operand % vars) as usize]);
                }
            }
            2 => {
                b.read(t as u32, var_ids[(operand % vars) as usize]);
            }
            3 => {
                b.write(t as u32, var_ids[(operand % vars) as usize]);
            }
            4 => {
                let child = operand % threads;
                if child != t && !forked[child as usize] {
                    forked[child as usize] = true;
                    b.fork(t as u32, child as u32);
                } else {
                    b.read(t as u32, var_ids[(operand % vars) as usize]);
                }
            }
            _ => {
                let child = operand % threads;
                if child != t && forked[child as usize] {
                    forked[child as usize] = false;
                    b.join(t as u32, child as u32);
                } else {
                    b.write(t as u32, var_ids[(operand % vars) as usize]);
                }
            }
        }
    }
    if fuel.first().map(|&(t, _, _)| t % 2 == 0).unwrap_or(false) {
        // Half the cases carry a silent declared-thread surplus, so the
        // round trips must preserve thread counts events alone cannot.
        b.declare_threads(threads as u32 + 3);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The full conformance matrix (text, binary, cross-format,
    /// streamed decode) over arbitrary fuzzed builder traces.
    #[test]
    fn arbitrary_traces_roundtrip_across_formats(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..200),
    ) {
        let trace = build_fuel_trace(&fuel, 5, 4, 3);
        assert_identity_roundtrip("fuzz", &trace);
    }

    /// text → v2 → text byte-identity, in process: the segmented v2
    /// encoding (checksummed segments + checkpoints + footer) streams
    /// back out as exactly the text normal form it came from, at
    /// several segment sizes including mid-trace and degenerate ones.
    /// (Before this test only the CI `cmp` smoke covered the path.)
    #[test]
    fn text_to_v2_to_text_is_byte_identical(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..200),
        seg_raw in any::<u16>(),
    ) {
        let trace = build_fuel_trace(&fuel, 5, 4, 3);
        let text = write_trace(&trace);
        let events_per_segment = (seg_raw as usize % 64).max(1);
        let mut v2 = Vec::new();
        write_source_binary_v2(
            &mut EventReader::new(text.as_bytes()),
            &mut v2,
            &SegmentOptions { events_per_segment },
        )
        .expect("text→v2 encode");
        let mut text_again = Vec::new();
        write_source(
            &mut BinaryEventReader::new(&v2[..]).expect("v2 magic"),
            &mut text_again,
        )
        .expect("v2→text decode");
        prop_assert_eq!(
            text.as_bytes(),
            &text_again[..],
            "text→v2({})→text drifted", events_per_segment
        );
    }

    /// v1 → v2 → v1 byte-identity, in process: re-encoding a v1 `.ftb`
    /// stream through the segmented v2 format and back reproduces the
    /// original v1 bytes exactly — the two binary containers carry the
    /// same event stream and entity tables.
    #[test]
    fn v1_to_v2_to_v1_is_byte_identical(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..200),
        seg_raw in any::<u16>(),
    ) {
        let trace = build_fuel_trace(&fuel, 5, 4, 3);
        let mut v1 = Vec::new();
        write_trace_binary(&trace, &mut v1).expect("v1 encode");
        let events_per_segment = (seg_raw as usize % 64).max(1);
        let mut v2 = Vec::new();
        write_source_binary_v2(
            &mut BinaryEventReader::new(&v1[..]).expect("v1 magic"),
            &mut v2,
            &SegmentOptions { events_per_segment },
        )
        .expect("v1→v2 encode");
        prop_assert!(v1 != v2, "v2 container must differ from v1");
        let mut v1_again = Vec::new();
        write_source_binary(
            &mut BinaryEventReader::new(&v2[..]).expect("v2 magic"),
            &mut v1_again,
        )
        .expect("v2→v1 encode");
        prop_assert_eq!(
            &v1,
            &v1_again,
            "v1→v2({})→v1 drifted", events_per_segment
        );
    }

    /// Streaming a binary file event-by-event through `next_event`
    /// yields exactly the batch decoding — metadata included — even
    /// when the binary was produced by the *lazy* writer (interleaved
    /// definition records) rather than the full-header writer.
    #[test]
    fn lazy_and_batch_binary_encodings_decode_identically(
        fuel in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..150),
    ) {
        let trace = build_fuel_trace(&fuel, 4, 3, 3);
        // Batch encoding: full header first.
        let mut batch_bytes = Vec::new();
        write_trace_binary(&trace, &mut batch_bytes).expect("in-memory write");
        // Lazy encoding: headerless text streamed through the binary
        // writer, so definitions interleave with events.
        let headerless: String = write_trace(&trace)
            .lines()
            .filter(|l| !l.starts_with("#!"))
            .map(|l| format!("{l}\n"))
            .collect();
        let mut lazy_bytes = Vec::new();
        write_source_binary(&mut EventReader::new(headerless.as_bytes()), &mut lazy_bytes)
            .expect("lazy encode");
        let batch = read_trace_binary(&batch_bytes).expect("batch decode");
        let lazy = read_trace_binary(&lazy_bytes).expect("lazy decode");
        prop_assert_eq!(trace.events(), batch.events());
        // The headerless re-encoding interns ids in first-use order, so
        // ids may be renamed — but the *name-resolved* event streams
        // must be identical.
        prop_assert_eq!(batch.len(), lazy.len());
        for (a, b) in batch.events().iter().zip(lazy.events()) {
            prop_assert_eq!(a.tid, b.tid);
            let resolve = |t: &Trace, e: &freshtrack_trace::Event| match e.kind {
                freshtrack_trace::EventKind::Read(v) => format!("r:{}", t.var_name(v.index())),
                freshtrack_trace::EventKind::Write(v) => format!("w:{}", t.var_name(v.index())),
                freshtrack_trace::EventKind::Acquire(l) => format!("a:{}", t.lock_name(l.index())),
                freshtrack_trace::EventKind::Release(l) => format!("q:{}", t.lock_name(l.index())),
            };
            prop_assert_eq!(resolve(&batch, a), resolve(&lazy, b));
        }
    }
}
