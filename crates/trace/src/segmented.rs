//! The segmented `.ftb` **v2** store: the v1 record grammar partitioned
//! into independently decodable segments, each preceded by a sync-plane
//! checkpoint, closed by a footer index that makes a flat file randomly
//! addressable.
//!
//! # Layout
//!
//! ```text
//! magic      8 bytes        "FTB2\r\n\x1a\n"
//! segment 0  0xF3 <varint 0> <records…>
//! ckpt 1     0xF4 <varint len> <checkpoint bytes>
//! segment 1  0xF3 <varint 1> <records…>
//! …
//! footer     0xF5 <varint len> <footer body>
//! end        0xF7
//! trailer    8-byte LE offset of the 0xF5 byte, then "FTBi"
//! ```
//!
//! `<records…>` is exactly the v1 grammar (declarations interleaved with
//! event records), with one added rule: the same-thread delta resets at
//! each segment start, so a segment decodes without its predecessors'
//! bytes. Converting v1→v2→v1 is therefore byte-identical — the record
//! sequence is unchanged; only the markers come and go.
//!
//! The **checkpoint** before segment `k` is the canonical sync-plane
//! state after segments `< k`: every thread clock and lock clock under
//! Djit+ semantics (thread `t` starts at `⊥[t ↦ 1]`; acquire joins the
//! lock clock into the thread clock; release copies the thread clock to
//! the lock and bumps the local component). This state is a pure
//! function of the acquire/release prefix — no sampler, no access plane
//! — which is what makes it engine-agnostic: any detector's sync engine
//! can be reconstructed from it (or, for sampling-dependent engines,
//! re-derived deterministically by a sequential coordinator), and the
//! access plane needs nothing else to replay a segment. That argument
//! is spelled out in `ARCHITECTURE.md` § Segmented store & checkpoints.
//!
//! The **footer body** is, per segment: record-range offset and byte
//! length, event count, first [`EventId`](crate::EventId), name-table
//! and thread watermarks at segment start, checkpoint location, and a
//! CRC-32 of the record range — then a CRC-32 of the footer body
//! itself. The 12-byte trailer lets a reader find the footer by
//! seeking to the end, CAR-index style.
//!
//! Sequential consumers never come here:
//! [`BinaryEventReader`](crate::BinaryEventReader) streams v2 files by
//! skipping the markers. This module adds the random-access path
//! ([`SegmentedTraceFile`], [`decode_segment`]) and the segmented
//! writer ([`write_source_binary_v2`]).

use std::io::{Read, Seek, SeekFrom, Write};

use freshtrack_clock::wire::{self, WireError, WireReader};
use freshtrack_clock::{ThreadId, VectorClock};

use crate::binary::{
    flush_binary_meta, magic_version, write_event_record, write_varint, BinaryEventReader,
    BINARY_MAGIC_V2, TAG_CHECKPOINT, TAG_END, TAG_FOOTER, TAG_SEGMENT, TAG_THREADS,
};
use crate::io::{EmittedMeta, WriteSourceError};
use crate::source::{EventSource, Interner, SourceError};
use crate::{BinaryTraceError, Event, EventKind, LockId, Trace};

/// The 4-byte magic closing a v2 file, preceded by the 8-byte LE footer
/// offset — the seek target for [`SegmentedTraceFile::open`].
pub(crate) const TRAILER_MAGIC: [u8; 4] = *b"FTBi";

/// Trailer size: 8-byte LE footer offset + 4-byte magic.
const TRAILER_LEN: u64 = 12;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the polynomial zlib/PNG use), slice-by-8 and
// dependency-free: eight lookup tables fold 8 input bytes per step, so
// the checksum keeps up with the varint encoder instead of gating it.
// ---------------------------------------------------------------------

const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    // tables[t][b] = CRC of byte `b` followed by `t` zero bytes, so one
    // step can fold 8 bytes with 8 independent lookups.
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xff) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = crc32_tables();

fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    let mut c = state;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = CRC_TABLES[7][(lo & 0xff) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xff) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32 of `bytes` (IEEE, init `!0`, final xor `!0`).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Canonical sync-plane checkpoint.
// ---------------------------------------------------------------------

/// The canonical sync-plane state stored before each segment: every
/// thread clock and lock clock under Djit+ semantics (see the module
/// docs for the exact update rules).
///
/// The state is a pure function of the acquire/release prefix — it does
/// not depend on any sampler or on the access plane — so one checkpoint
/// serves every detector configuration analyzing the file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SyncCheckpoint {
    /// Thread clocks, dense by thread index; thread `t` is created as
    /// `⊥[t ↦ 1]` when first observed.
    pub threads: Vec<VectorClock>,
    /// Lock clocks, dense by lock index; `⊥` until first released.
    pub locks: Vec<VectorClock>,
}

impl SyncCheckpoint {
    /// Serializes the checkpoint (clock-count-prefixed clock lists).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_varint(&mut out, self.threads.len() as u64);
        for clock in &self.threads {
            wire::put_clock(&mut out, clock);
        }
        wire::put_varint(&mut out, self.locks.len() as u64);
        for clock in &self.locks {
            wire::put_clock(&mut out, clock);
        }
        out
    }

    /// Decodes a checkpoint written by [`encode`](Self::encode),
    /// consuming the whole slice.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] for truncated or malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let decode_clocks = |r: &mut WireReader<'_>| -> Result<Vec<VectorClock>, WireError> {
            let n = r.get_varint()?;
            if n > bytes.len() as u64 {
                // Each clock costs at least one byte; a corrupt count
                // must not size an allocation.
                return Err(WireError::Truncated);
            }
            (0..n).map(|_| r.get_clock()).collect()
        };
        let threads = decode_clocks(&mut r)?;
        let locks = decode_clocks(&mut r)?;
        r.finish()?;
        Ok(SyncCheckpoint { threads, locks })
    }
}

/// The writer-side incremental form of [`SyncCheckpoint`]: applies each
/// event's Djit+ sync semantics as it is serialized.
#[derive(Debug, Default)]
struct SyncTracker {
    threads: Vec<VectorClock>,
    /// Per-thread join counter: bumped whenever a cross-thread acquire
    /// may have changed entries other than the thread's own. Release
    /// increments touch only the own entry and deliberately do *not*
    /// bump it — that is what makes the same-thread re-release
    /// shortcut in [`apply_sync`](Self::apply_sync) sound.
    thread_joins: Vec<u64>,
    locks: Vec<VectorClock>,
    /// Per-lock provenance of the stored clock: `(releaser tid + 1,
    /// releaser's join counter at that release)`; `(0, 0)` before the
    /// first release. Lets the hot acquire/release pairs of a
    /// thread-local lock skip the O(threads) clock operations.
    lock_sources: Vec<(u32, u64)>,
    /// One past the highest thread index observed.
    watermark: u32,
}

impl SyncTracker {
    fn ensure_thread(&mut self, tid: ThreadId) {
        while self.threads.len() <= tid.index() {
            let next = ThreadId::new(self.threads.len() as u32);
            self.threads.push(VectorClock::bottom_with(next, 1));
        }
        self.thread_joins.resize(self.threads.len(), 0);
        self.watermark = self.watermark.max(tid.as_u32() + 1);
    }

    fn ensure_lock(&mut self, lock: LockId) {
        if self.locks.len() <= lock.index() {
            self.locks.resize_with(lock.index() + 1, VectorClock::new);
            self.lock_sources.resize(self.locks.len(), (0, 0));
        }
    }

    /// Advances the tracked sync state by one acquire or release.
    /// Access events never touch clock state — they only matter for
    /// the thread watermark, which the writer folds in separately —
    /// so the writer queues sync events and replays them here in a
    /// burst at segment boundaries. Thread clocks grow lazily on the
    /// first sync event of a thread; [`checkpoint`](Self::checkpoint)
    /// pads clocks for threads that have only performed accesses,
    /// keeping the encoded bytes identical to eager growth.
    ///
    /// Two locality shortcuts keep the clocks bit-identical to the
    /// naive algorithm (replay parity over fuzzed traces in
    /// `io_roundtrip` pins this):
    ///
    /// - *Same-thread reacquire*: if this thread was the last to
    ///   release the lock, the lock's clock is a past snapshot of this
    ///   thread's own clock, and thread clocks only grow — the join is
    ///   a no-op and is skipped.
    /// - *Same-thread re-release*: if additionally the thread has
    ///   joined nothing since that release (its join counter is
    ///   unchanged), the only entry that moved is its own release
    ///   count, so the O(threads) `assign_from` collapses to one
    ///   `set`.
    ///
    /// With the corpus's lock locality most acquire/release pairs hit
    /// both shortcuts, which roughly halves the tracker's share of v2
    /// encode time.
    fn apply_sync(&mut self, event: Event) {
        self.ensure_thread(event.tid);
        let t = event.tid.index();
        match event.kind {
            EventKind::Read(_) | EventKind::Write(_) => unreachable!("access on sync path"),
            EventKind::Acquire(lock) => {
                self.ensure_lock(lock);
                let l = lock.index();
                if self.lock_sources[l].0 != event.tid.as_u32() + 1 {
                    self.threads[t].join(&self.locks[l]);
                    self.thread_joins[t] += 1;
                }
            }
            EventKind::Release(lock) => {
                self.ensure_lock(lock);
                let l = lock.index();
                let source = (event.tid.as_u32() + 1, self.thread_joins[t]);
                let clock = &mut self.threads[t];
                if self.lock_sources[l] == source {
                    self.locks[l].set(event.tid, clock.get(event.tid));
                } else {
                    self.locks[l].assign_from(clock);
                    self.lock_sources[l] = source;
                }
                clock.increment(event.tid);
            }
        }
    }

    fn checkpoint(&self) -> SyncCheckpoint {
        let mut threads = self.threads.clone();
        // Threads seen only through access events have no stored clock
        // yet; their state is the initial `⟨tid: 1⟩`, exactly what
        // eager growth would have pushed.
        while threads.len() < self.watermark as usize {
            let next = ThreadId::new(threads.len() as u32);
            threads.push(VectorClock::bottom_with(next, 1));
        }
        SyncCheckpoint {
            threads,
            locks: self.locks.clone(),
        }
    }
}

// ---------------------------------------------------------------------
// Footer metadata.
// ---------------------------------------------------------------------

/// One segment's footer entry: where its records live, what they
/// contain, and where its checkpoint is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentMeta {
    /// File offset of the first record byte (just past the `0xF3
    /// <varint index>` marker).
    pub offset: u64,
    /// Byte length of the record range.
    pub byte_len: u64,
    /// Number of event records in the segment (declaration records are
    /// not counted).
    pub event_count: u64,
    /// Stream position of the segment's first event — its
    /// [`EventId`](crate::EventId) under the sequential numbering.
    pub first_event_id: u64,
    /// Lock names defined before this segment (operand ids below this
    /// resolve to earlier segments' definitions).
    pub locks_before: usize,
    /// Variable names defined before this segment.
    pub vars_before: usize,
    /// Effective thread count (declared or observed, whichever is
    /// larger) before this segment.
    pub threads_before: u32,
    /// File offset of the checkpoint bytes (0 for segment 0, which
    /// starts from the empty initial state).
    pub checkpoint_offset: u64,
    /// Byte length of the checkpoint (0 for segment 0).
    pub checkpoint_len: u64,
    /// CRC-32 of the record range.
    pub crc32: u32,
}

fn encode_footer(metas: &[SegmentMeta]) -> Vec<u8> {
    let mut body = Vec::new();
    wire::put_varint(&mut body, metas.len() as u64);
    for meta in metas {
        wire::put_varint(&mut body, meta.offset);
        wire::put_varint(&mut body, meta.byte_len);
        wire::put_varint(&mut body, meta.event_count);
        wire::put_varint(&mut body, meta.first_event_id);
        wire::put_varint(&mut body, meta.locks_before as u64);
        wire::put_varint(&mut body, meta.vars_before as u64);
        wire::put_varint(&mut body, u64::from(meta.threads_before));
        wire::put_varint(&mut body, meta.checkpoint_offset);
        wire::put_varint(&mut body, meta.checkpoint_len);
        wire::put_varint(&mut body, u64::from(meta.crc32));
    }
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    body
}

fn decode_footer(body: &[u8], at: u64) -> Result<Vec<SegmentMeta>, BinaryTraceError> {
    let fail = |what: String| BinaryTraceError::new(at, what);
    if body.len() < 4 {
        return Err(fail("footer too short for its checksum".to_owned()));
    }
    let (payload, crc_bytes) = body.split_at(body.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("split at len - 4"));
    if crc32(payload) != stored {
        return Err(fail("footer checksum mismatch".to_owned()));
    }
    let mut r = WireReader::new(payload);
    let wire_fail = |e: WireError| BinaryTraceError::new(at, format!("malformed footer: {e}"));
    let count = r.get_varint().map_err(wire_fail)?;
    if count == 0 {
        return Err(fail("footer lists no segments".to_owned()));
    }
    if count > payload.len() as u64 {
        // Each entry costs several bytes; a corrupt count must not
        // size an allocation.
        return Err(fail("footer segment count exceeds footer size".to_owned()));
    }
    let mut metas = Vec::with_capacity(count as usize);
    for _ in 0..count {
        metas.push(SegmentMeta {
            offset: r.get_varint().map_err(wire_fail)?,
            byte_len: r.get_varint().map_err(wire_fail)?,
            event_count: r.get_varint().map_err(wire_fail)?,
            first_event_id: r.get_varint().map_err(wire_fail)?,
            locks_before: r.get_usize().map_err(wire_fail)?,
            vars_before: r.get_usize().map_err(wire_fail)?,
            threads_before: r.get_u32().map_err(wire_fail)?,
            checkpoint_offset: r.get_varint().map_err(wire_fail)?,
            checkpoint_len: r.get_varint().map_err(wire_fail)?,
            crc32: r.get_u32().map_err(wire_fail)?,
        });
    }
    r.finish().map_err(wire_fail)?;
    Ok(metas)
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

/// Options for the segmented writer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentOptions {
    /// Events per segment (the last segment may be shorter; 0 is
    /// treated as 1). Default: 4096.
    pub events_per_segment: usize,
}

impl Default for SegmentOptions {
    fn default() -> Self {
        SegmentOptions {
            events_per_segment: 4096,
        }
    }
}

/// A `Write` adapter tracking the absolute offset — how the writer
/// records segment ranges in one pass over a non-seekable sink.
///
/// Segment checksums are deliberately *not* computed here: record
/// emission writes 1–6-byte chunks (tag bytes, varints), and a CRC fed
/// per chunk never reaches the slice-by-8 main loop — it runs the
/// bytewise tail every call, which measurably dominated v2 encode.
/// Instead the writer buffers each segment body and CRCs it in one
/// [`crc32`] pass at flush time (see [`flush_segment`]).
struct CountingWriter<'a, W> {
    inner: &'a mut W,
    offset: u64,
}

impl<'a, W: Write> CountingWriter<'a, W> {
    fn new(inner: &'a mut W) -> Self {
        CountingWriter { inner, offset: 0 }
    }

    fn offset(&self) -> u64 {
        self.offset
    }
}

impl<W: Write> Write for CountingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.offset += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A segment being written: everything [`SegmentMeta`] needs that is
/// only known once the segment closes stays implicit in the writer.
struct OpenSegment {
    start: u64,
    first_event_id: u64,
    events: u64,
    locks_before: usize,
    vars_before: usize,
    threads_before: u32,
    checkpoint_offset: u64,
    checkpoint_len: u64,
}

/// Replays queued sync events into the tracker. Outlined and cold so
/// the clock plumbing cannot leak into the encode loop's register
/// allocation — the drain runs once per chunk/segment, the loop runs
/// once per event.
#[cold]
#[inline(never)]
fn drain_sync(tracker: &mut SyncTracker, queued: &[Event]) {
    for &e in queued {
        tracker.apply_sync(e);
    }
}

fn begin_segment<W: Write>(
    out: &mut CountingWriter<'_, W>,
    tracker: &SyncTracker,
    emitted: &EmittedMeta,
    index: usize,
    first_event_id: u64,
) -> std::io::Result<OpenSegment> {
    let (checkpoint_offset, checkpoint_len) = if index == 0 {
        (0, 0)
    } else {
        let bytes = tracker.checkpoint().encode();
        out.write_all(&[TAG_CHECKPOINT])?;
        write_varint(out, bytes.len() as u64)?;
        let offset = out.offset();
        out.write_all(&bytes)?;
        (offset, bytes.len() as u64)
    };
    out.write_all(&[TAG_SEGMENT])?;
    write_varint(out, index as u64)?;
    let start = out.offset();
    Ok(OpenSegment {
        start,
        first_event_id,
        events: 0,
        locks_before: emitted.locks,
        vars_before: emitted.vars,
        threads_before: emitted.threads.max(tracker.watermark),
        checkpoint_offset,
        checkpoint_len,
    })
}

/// Closes a segment: checksums the buffered body in one slice-by-8
/// pass, writes it to the sink in one call, and returns its metadata.
///
/// Between [`begin_segment`] and this call nothing else may touch the
/// sink — the body must land exactly at `seg.start` for the recorded
/// range to be right (debug-asserted below).
fn flush_segment<W: Write>(
    out: &mut CountingWriter<'_, W>,
    seg: OpenSegment,
    body: &[u8],
) -> std::io::Result<SegmentMeta> {
    debug_assert_eq!(seg.start, out.offset(), "segment body misplaced");
    out.write_all(body)?;
    Ok(SegmentMeta {
        offset: seg.start,
        byte_len: body.len() as u64,
        event_count: seg.events,
        first_event_id: seg.first_event_id,
        locks_before: seg.locks_before,
        vars_before: seg.vars_before,
        threads_before: seg.threads_before,
        checkpoint_offset: seg.checkpoint_offset,
        checkpoint_len: seg.checkpoint_len,
        crc32: crc32(body),
    })
}

/// Streams any [`EventSource`] to the segmented v2 format, in memory
/// bounded by the segment size (for the checkpoint clocks and one
/// segment body, buffered so its CRC runs as a single slice-by-8 pass
/// instead of per record) — the sink need not be seekable; offsets are
/// tracked, not sought.
///
/// Record order is identical to the v1 output of
/// [`write_source_binary`](crate::write_source_binary) — segment,
/// checkpoint and
/// footer records are interposed, never reordered — so converting
/// v1→v2→v1 reproduces the original file byte for byte.
///
/// # Errors
///
/// Propagates the first source error or I/O failure.
pub fn write_source_binary_v2<S, W>(
    source: &mut S,
    out: &mut W,
    options: &SegmentOptions,
) -> Result<(), WriteSourceError>
where
    S: EventSource + ?Sized,
    W: Write,
{
    let per_segment = options.events_per_segment.max(1) as u64;
    let mut out = CountingWriter::new(out);
    out.write_all(&BINARY_MAGIC_V2)?;
    let mut emitted = EmittedMeta::default();
    let mut tracker = SyncTracker::default();
    let mut metas: Vec<SegmentMeta> = Vec::new();
    let mut prev_tid: Option<ThreadId> = None;
    // Records accumulate here per segment; the buffer is written (and
    // checksummed) in one shot when the segment closes, then reused.
    let mut body: Vec<u8> = Vec::new();
    // Events wait here until the segment closes; the tracker replays
    // them in one tight loop right before the next checkpoint is cut.
    // Interleaving `tracker.apply` with record emission measurably
    // degrades the encode loop's codegen (~6 ns/event), and the sync
    // state is only ever *read* at segment boundaries.
    // The encode loop must not touch `tracker`, and must not branch on
    // whether an event is sync: a direct `tracker.apply(event)` here —
    // even one whose fast path is two compares — measured ~7 ns/event
    // (~17% of v2 encode), and a conditional `push` of the ~35%
    // randomly-interleaved sync events mispredicts. Instead every
    // event is stored into the chunk buffer unconditionally and the
    // cursor advances only for sync events (a flag add, no branch);
    // the tracker replays the queued sync events in a burst whenever
    // the chunk fills and at each segment boundary — the boundary is
    // the only place the sync state is ever read, so mid-segment
    // drains are free to happen anywhere. The thread watermark rides
    // in a local for the same reason.
    const SYNC_CHUNK: usize = 4096;
    let dummy = Event::new(ThreadId::new(0), EventKind::Read(crate::VarId::new(0)));
    let mut sync_buf: Box<[Event; SYNC_CHUNK]> = Box::new([dummy; SYNC_CHUNK]);
    let mut sync_len = 0usize;
    let mut seen_threads = 0u32;
    let mut seg = begin_segment(&mut out, &tracker, &emitted, 0, 0)?;
    flush_binary_meta(&mut emitted, source, &mut body)?;
    while let Some(event) = source.next_event()? {
        if seg.events == per_segment {
            drain_sync(&mut tracker, &sync_buf[..sync_len]);
            sync_len = 0;
            tracker.watermark = tracker.watermark.max(seen_threads);
            let next_first = seg.first_event_id + seg.events;
            metas.push(flush_segment(&mut out, seg, &body)?);
            body.clear();
            seg = begin_segment(&mut out, &tracker, &emitted, metas.len(), next_first)?;
            prev_tid = None;
        }
        seen_threads = seen_threads.max(event.tid.as_u32() + 1);
        // The mask is a no-op (`sync_len < SYNC_CHUNK` always) but
        // proves the index in range, so the store carries no
        // bounds-check panic path into the loop.
        sync_buf[sync_len & (SYNC_CHUNK - 1)] = event;
        sync_len += usize::from(!matches!(
            event.kind,
            EventKind::Read(_) | EventKind::Write(_)
        ));
        if sync_len == SYNC_CHUNK {
            drain_sync(&mut tracker, &sync_buf[..sync_len]);
            sync_len = 0;
        }
        flush_binary_meta(&mut emitted, source, &mut body)?;
        write_event_record(&mut body, event, &mut prev_tid)?;
        seg.events += 1;
    }
    // Trailing declarations and the final effective thread count land
    // in the last segment, exactly where the v1 writer puts them.
    flush_binary_meta(&mut emitted, source, &mut body)?;
    let threads = source.threads();
    if threads > emitted.threads {
        body.push(TAG_THREADS);
        write_varint(&mut body, u64::from(threads))?;
    }
    metas.push(flush_segment(&mut out, seg, &body)?);
    let footer_offset = out.offset();
    let body = encode_footer(&metas);
    out.write_all(&[TAG_FOOTER])?;
    write_varint(&mut out, body.len() as u64)?;
    out.write_all(&body)?;
    out.write_all(&[TAG_END])?;
    out.write_all(&footer_offset.to_le_bytes())?;
    out.write_all(&TRAILER_MAGIC)?;
    Ok(())
}

/// Serializes a materialized trace to the segmented v2 format — the v2
/// twin of [`write_trace_binary`](crate::write_trace_binary).
///
/// # Errors
///
/// Propagates I/O failures from `out`.
pub fn write_trace_binary_v2<W: Write>(
    trace: &Trace,
    out: &mut W,
    options: &SegmentOptions,
) -> std::io::Result<()> {
    write_source_binary_v2(&mut trace.source(), out, options).map_err(|e| match e {
        WriteSourceError::Io(e) => e,
        WriteSourceError::Source(e) => {
            unreachable!("materialized traces never fail to stream: {e}")
        }
    })
}

// ---------------------------------------------------------------------
// Seeking reader.
// ---------------------------------------------------------------------

/// A randomly addressable view of a v2 file: the footer index, plus
/// seek-and-read access to each segment's record bytes and checkpoint.
///
/// I/O is deliberately split from decoding:
/// [`read_segment_bytes`](Self::read_segment_bytes) does the
/// (sequential) seek+read, and the
/// free function [`decode_segment`] is a pure function of those bytes —
/// so a parallel analyzer reads segments on one thread and decodes them
/// on many.
#[derive(Debug)]
pub struct SegmentedTraceFile<R> {
    input: R,
    metas: Vec<SegmentMeta>,
    footer_offset: u64,
}

impl<R: Read + Seek> SegmentedTraceFile<R> {
    /// Opens a v2 file: checks the magic, seeks the trailer, reads and
    /// validates the footer index.
    ///
    /// # Errors
    ///
    /// Fails on v1 files (with a pointer to `convert --to binary-v2`),
    /// non-binary input, a missing or corrupt trailer/footer, and any
    /// footer entry whose ranges fall outside the file or whose event
    /// numbering is not cumulative.
    pub fn open(mut input: R) -> Result<Self, BinaryTraceError> {
        let io_fail =
            |at: u64, e: std::io::Error| BinaryTraceError::new(at, format!("cannot read: {e}"));
        let len = input.seek(SeekFrom::End(0)).map_err(|e| io_fail(0, e))?;
        if len < 8 + 1 + TRAILER_LEN {
            return Err(BinaryTraceError::new(
                len,
                "too short to be a segmented binary trace",
            ));
        }
        input.seek(SeekFrom::Start(0)).map_err(|e| io_fail(0, e))?;
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic).map_err(|e| io_fail(0, e))?;
        match magic_version(&magic) {
            Some(2) => {}
            Some(v) => {
                return Err(BinaryTraceError::new(
                    0,
                    format!(
                        "segmented access needs a version-2 binary trace, found version {v} \
                         (`convert --to binary-v2` upgrades it)"
                    ),
                ))
            }
            None => return Err(BinaryTraceError::new(0, "not a binary trace (bad magic)")),
        }
        let trailer_at = len - TRAILER_LEN;
        input
            .seek(SeekFrom::Start(trailer_at))
            .map_err(|e| io_fail(trailer_at, e))?;
        let mut trailer = [0u8; TRAILER_LEN as usize];
        input
            .read_exact(&mut trailer)
            .map_err(|e| io_fail(trailer_at, e))?;
        if trailer[8..] != TRAILER_MAGIC {
            return Err(BinaryTraceError::new(
                trailer_at,
                "missing segment-index trailer (truncated file?)",
            ));
        }
        let footer_offset = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        // The footer record needs at least tag + 1-byte length + body
        // before the end marker and trailer.
        if footer_offset < 8 || footer_offset + 2 > trailer_at {
            return Err(BinaryTraceError::new(
                trailer_at,
                format!("footer offset {footer_offset} out of bounds"),
            ));
        }
        input
            .seek(SeekFrom::Start(footer_offset))
            .map_err(|e| io_fail(footer_offset, e))?;
        let mut at = footer_offset;
        let tag = read_byte_at(&mut input, &mut at)?;
        if tag != TAG_FOOTER {
            return Err(BinaryTraceError::new(
                footer_offset,
                format!("trailer points at tag {tag:#04x}, not a footer record"),
            ));
        }
        let body_len = read_varint_at(&mut input, &mut at)?;
        if at + body_len + 1 != trailer_at {
            return Err(BinaryTraceError::new(
                at,
                format!("footer body length {body_len} does not reach the end marker"),
            ));
        }
        let mut body = vec![0u8; body_len as usize];
        input.read_exact(&mut body).map_err(|e| io_fail(at, e))?;
        let metas = decode_footer(&body, footer_offset)?;
        let mut expected_first = 0u64;
        let mut prev_end = 8u64;
        for (k, meta) in metas.iter().enumerate() {
            let bad = |what: String| BinaryTraceError::new(meta.offset, what);
            if meta.offset < prev_end || meta.offset + meta.byte_len > footer_offset {
                return Err(bad(format!("segment {k} range out of bounds")));
            }
            if meta.first_event_id != expected_first {
                return Err(bad(format!(
                    "segment {k} starts at event {} but {expected_first} events precede it",
                    meta.first_event_id
                )));
            }
            expected_first += meta.event_count;
            let has_checkpoint = meta.checkpoint_len > 0 || meta.checkpoint_offset > 0;
            if (k == 0) == has_checkpoint {
                return Err(bad(format!(
                    "segment {k} {} a checkpoint",
                    if k == 0 {
                        "must not carry"
                    } else {
                        "is missing"
                    }
                )));
            }
            if meta.checkpoint_offset + meta.checkpoint_len > footer_offset {
                return Err(bad(format!("segment {k} checkpoint out of bounds")));
            }
            prev_end = meta.offset + meta.byte_len;
        }
        Ok(SegmentedTraceFile {
            input,
            metas,
            footer_offset,
        })
    }

    /// Number of segments in the file (always at least 1).
    pub fn segment_count(&self) -> usize {
        self.metas.len()
    }

    /// The footer entry for segment `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.segment_count()`.
    pub fn meta(&self, k: usize) -> &SegmentMeta {
        &self.metas[k]
    }

    /// All footer entries, in segment order.
    pub fn metas(&self) -> &[SegmentMeta] {
        &self.metas
    }

    /// File offset of the footer record.
    pub fn footer_offset(&self) -> u64 {
        self.footer_offset
    }

    /// Total number of events across all segments.
    pub fn event_count(&self) -> u64 {
        self.metas.iter().map(|m| m.event_count).sum()
    }

    /// Reads segment `k`'s raw record bytes (sequential I/O; decoding
    /// is [`decode_segment`], callable elsewhere and in parallel).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.segment_count()`.
    pub fn read_segment_bytes(&mut self, k: usize) -> Result<Vec<u8>, BinaryTraceError> {
        let meta = &self.metas[k];
        // `open` validated the range against the file size, so the
        // allocation is bounded by real bytes.
        let mut bytes = vec![0u8; meta.byte_len as usize];
        self.input
            .seek(SeekFrom::Start(meta.offset))
            .and_then(|_| self.input.read_exact(&mut bytes))
            .map_err(|e| {
                BinaryTraceError::new(meta.offset, format!("cannot read segment {k}: {e}"))
            })?;
        Ok(bytes)
    }

    /// Reads segment `k`'s bytes and recomputes their CRC-32 — the
    /// cheap integrity probe incremental analysis runs over a cached
    /// prefix: a reused segment is never decoded or replayed, but its
    /// bytes must still hash to the footer's checksum, so a bit flip
    /// anywhere in the prefix demotes the cache instead of being
    /// silently trusted.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.segment_count()`.
    pub fn segment_crc32(&mut self, k: usize) -> Result<u32, BinaryTraceError> {
        Ok(crc32(&self.read_segment_bytes(k)?))
    }

    /// Reads and decodes the checkpoint preceding segment `k` — the
    /// canonical sync state after segments `< k`. Segment 0 yields the
    /// empty initial state (the file stores no record for it).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and malformed checkpoint encodings.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.segment_count()`.
    pub fn read_checkpoint(&mut self, k: usize) -> Result<SyncCheckpoint, BinaryTraceError> {
        let meta = &self.metas[k];
        if k == 0 {
            return Ok(SyncCheckpoint::default());
        }
        let mut bytes = vec![0u8; meta.checkpoint_len as usize];
        self.input
            .seek(SeekFrom::Start(meta.checkpoint_offset))
            .and_then(|_| self.input.read_exact(&mut bytes))
            .map_err(|e| {
                BinaryTraceError::new(
                    meta.checkpoint_offset,
                    format!("cannot read checkpoint {k}: {e}"),
                )
            })?;
        SyncCheckpoint::decode(&bytes).map_err(|e| {
            BinaryTraceError::new(
                meta.checkpoint_offset,
                format!("malformed checkpoint for segment {k}: {e}"),
            )
        })
    }

    /// Fully verifies the file: every segment's checksum, record
    /// decoding and event count, and every checkpoint's encoding.
    ///
    /// # Errors
    ///
    /// Returns the first mismatch found, naming the failing segment's
    /// index and start offset (corruption errors from the inner decoder
    /// keep their precise byte position too).
    pub fn verify(&mut self) -> Result<(), BinaryTraceError> {
        for k in 0..self.segment_count() {
            let bytes = self.read_segment_bytes(k)?;
            let meta = self.metas[k].clone();
            decode_segment_indexed(k, &bytes, &meta)?;
            self.read_checkpoint(k)?;
        }
        Ok(())
    }
}

/// [`decode_segment`] with position context: any failure is annotated
/// with the segment's index and start offset, so corruption reports
/// from `verify`, `segments`, and the parallel analyzer name the
/// segment instead of only a raw byte position.
///
/// # Errors
///
/// As [`decode_segment`], with the annotated reason.
pub fn decode_segment_indexed(
    k: usize,
    bytes: &[u8],
    meta: &SegmentMeta,
) -> Result<SegmentData, BinaryTraceError> {
    decode_segment(bytes, meta).map_err(|e| {
        BinaryTraceError::new(
            e.offset,
            format!("segment {k} (starts at byte {}): {}", meta.offset, e.reason),
        )
    })
}

/// One decoded segment: its events and the metadata *delta* it
/// contributes beyond what earlier segments defined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentData {
    /// The segment's events, in stream order; event `i` has
    /// [`EventId`](crate::EventId) `meta.first_event_id + i`.
    pub events: Vec<Event>,
    /// Lock names this segment defines (ids `meta.locks_before..`).
    pub new_locks: Vec<String>,
    /// Variable names this segment defines (ids `meta.vars_before..`).
    pub new_vars: Vec<String>,
    /// The largest thread count declared *within* this segment (0 when
    /// it declares none).
    pub declared_threads: u32,
    /// One past the highest thread id observed within this segment.
    pub observed_threads: u32,
}

/// Decodes one segment's record bytes against its footer entry —
/// checksum first, then the v1 record grammar with name tables
/// pre-seeded to the segment's watermarks. A pure function of its
/// inputs, safe to fan out across threads.
///
/// # Errors
///
/// Fails on a checksum mismatch, any malformed record (errors carry
/// absolute file offsets), or an event count disagreeing with the
/// footer.
pub fn decode_segment(bytes: &[u8], meta: &SegmentMeta) -> Result<SegmentData, BinaryTraceError> {
    if bytes.len() as u64 != meta.byte_len {
        return Err(BinaryTraceError::new(
            meta.offset,
            format!(
                "segment is {} bytes, footer claims {}",
                bytes.len(),
                meta.byte_len
            ),
        ));
    }
    if crc32(bytes) != meta.crc32 {
        return Err(BinaryTraceError::new(
            meta.offset,
            "segment checksum mismatch (corrupt or truncated file)",
        ));
    }
    let mut reader = BinaryEventReader::for_segment(
        bytes,
        meta.offset,
        Interner::with_placeholders(meta.locks_before),
        Interner::with_placeholders(meta.vars_before),
        0,
    );
    // Each event record costs at least one byte, so this cannot
    // over-allocate even if the (checksummed) footer were corrupt.
    let mut events = Vec::with_capacity((meta.event_count as usize).min(bytes.len()));
    loop {
        match reader.next_event() {
            Ok(Some(event)) => events.push(event),
            Ok(None) => break,
            Err(SourceError::Binary(e)) => return Err(e),
            Err(other) => {
                return Err(BinaryTraceError::new(meta.offset, format!("{other}")));
            }
        }
    }
    if events.len() as u64 != meta.event_count {
        return Err(BinaryTraceError::new(
            meta.offset,
            format!(
                "segment decodes {} events, footer claims {}",
                events.len(),
                meta.event_count
            ),
        ));
    }
    let new_locks = (meta.locks_before..reader.lock_count())
        .map(|i| reader.lock_name(i).to_owned())
        .collect();
    let new_vars = (meta.vars_before..reader.var_count())
        .map(|i| reader.var_name(i).to_owned())
        .collect();
    Ok(SegmentData {
        events,
        new_locks,
        new_vars,
        declared_threads: reader.declared_threads(),
        observed_threads: reader.observed_threads(),
    })
}

fn read_byte_at<R: Read>(input: &mut R, at: &mut u64) -> Result<u8, BinaryTraceError> {
    let mut byte = [0u8];
    input
        .read_exact(&mut byte)
        .map_err(|e| BinaryTraceError::new(*at, format!("truncated input: {e}")))?;
    *at += 1;
    Ok(byte[0])
}

fn read_varint_at<R: Read>(input: &mut R, at: &mut u64) -> Result<u64, BinaryTraceError> {
    let mut value = 0u64;
    for shift in (0..64).step_by(7) {
        let byte = read_byte_at(input, at)?;
        if shift == 63 && byte > 1 {
            return Err(BinaryTraceError::new(*at, "varint overflows u64"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(BinaryTraceError::new(*at, "varint overflows u64"))
}

#[cfg(test)]
mod tests {
    use std::io::Cursor;

    use super::*;
    use crate::{read_trace_binary, write_source_binary, write_trace_binary, TraceBuilder};

    fn opts(n: usize) -> SegmentOptions {
        SegmentOptions {
            events_per_segment: n,
        }
    }

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("late-y");
        let l = b.lock("l");
        let m = b.lock("m");
        for t in 0..3 {
            b.acquire(t, l).write(t, x).release(t, l);
        }
        b.read(1, x);
        b.fork(1, 3);
        b.acquire(3, m).write(3, y).release(3, m);
        b.join(1, 3);
        b.declare_threads(6);
        b.build()
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_slice_by_8_matches_bytewise_at_every_length_and_phase() {
        // Reference: the classic one-byte-at-a-time loop over table 0.
        fn bytewise(bytes: &[u8]) -> u32 {
            let mut c = 0xFFFF_FFFFu32;
            for &b in bytes {
                c = CRC_TABLES[0][((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
            }
            c ^ 0xFFFF_FFFF
        }
        let data: Vec<u8> = (0..257u32).map(|i| (i.wrapping_mul(0x9d)) as u8).collect();
        // Every prefix length exercises all chunk remainders 0..=7; the
        // offset start exercises an unaligned phase through the
        // incremental-update path.
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), bytewise(&data[..len]), "len {len}");
        }
        let split = crc32_update(crc32_update(0xFFFF_FFFF, &data[..13]), &data[13..]) ^ 0xFFFF_FFFF;
        assert_eq!(split, bytewise(&data));
    }

    #[test]
    fn v2_streams_back_to_the_identical_trace() {
        let trace = sample();
        for per_segment in [1, 2, 3, 100] {
            let mut bytes = Vec::new();
            write_trace_binary_v2(&trace, &mut bytes, &opts(per_segment)).unwrap();
            let back = read_trace_binary(&bytes).unwrap();
            assert_eq!(trace.events(), back.events());
            assert_eq!(trace.thread_count(), back.thread_count());
            assert_eq!(trace.lock_names, back.lock_names);
            assert_eq!(trace.var_names, back.var_names);
        }
    }

    #[test]
    fn v1_to_v2_to_v1_is_byte_identical() {
        let trace = sample();
        let mut v1 = Vec::new();
        write_trace_binary(&trace, &mut v1).unwrap();
        for per_segment in [1, 4, 1000] {
            let mut v2 = Vec::new();
            let mut reader = BinaryEventReader::new(&v1[..]).unwrap();
            write_source_binary_v2(&mut reader, &mut v2, &opts(per_segment)).unwrap();
            let mut v1_again = Vec::new();
            let mut reader = BinaryEventReader::new(&v2[..]).unwrap();
            write_source_binary(&mut reader, &mut v1_again).unwrap();
            assert_eq!(v1, v1_again, "per_segment={per_segment}");
        }
    }

    #[test]
    fn footer_index_is_cumulative_and_decodes_every_segment() {
        let trace = sample();
        let mut bytes = Vec::new();
        write_trace_binary_v2(&trace, &mut bytes, &opts(4)).unwrap();
        let mut file = SegmentedTraceFile::open(Cursor::new(&bytes)).unwrap();
        assert_eq!(
            file.segment_count(),
            trace.len().div_ceil(4),
            "count for {} events",
            trace.len()
        );
        assert_eq!(file.event_count(), trace.len() as u64);
        file.verify().unwrap();

        let mut all_events = Vec::new();
        let mut locks = Vec::new();
        let mut vars = Vec::new();
        for k in 0..file.segment_count() {
            let meta = file.meta(k).clone();
            assert_eq!(meta.first_event_id, all_events.len() as u64);
            assert_eq!(meta.locks_before, locks.len());
            assert_eq!(meta.vars_before, vars.len());
            let data = decode_segment(&file.read_segment_bytes(k).unwrap(), &meta).unwrap();
            all_events.extend(data.events);
            locks.extend(data.new_locks);
            vars.extend(data.new_vars);
        }
        assert_eq!(all_events, trace.events());
        assert_eq!(locks, trace.lock_names);
        assert_eq!(vars, trace.var_names);
    }

    /// The textbook vector-clock update, one event at a time, with no
    /// locality shortcuts and eager clock growth — the reference the
    /// production tracker must match bit for bit.
    fn naive_apply(t: &mut SyncTracker, event: Event) {
        while t.threads.len() <= event.tid.index() {
            let next = ThreadId::new(t.threads.len() as u32);
            t.threads.push(VectorClock::bottom_with(next, 1));
        }
        t.watermark = t.watermark.max(event.tid.as_u32() + 1);
        match event.kind {
            EventKind::Read(_) | EventKind::Write(_) => {}
            EventKind::Acquire(lock) => {
                if t.locks.len() <= lock.index() {
                    t.locks.resize_with(lock.index() + 1, VectorClock::new);
                }
                t.threads[event.tid.index()].join(&t.locks[lock.index()]);
            }
            EventKind::Release(lock) => {
                if t.locks.len() <= lock.index() {
                    t.locks.resize_with(lock.index() + 1, VectorClock::new);
                }
                let clock = &mut t.threads[event.tid.index()];
                t.locks[lock.index()].assign_from(clock);
                clock.increment(event.tid);
            }
        }
    }

    #[test]
    fn checkpoints_replay_the_sync_prefix() {
        let trace = sample();
        let mut bytes = Vec::new();
        write_trace_binary_v2(&trace, &mut bytes, &opts(3)).unwrap();
        let mut file = SegmentedTraceFile::open(Cursor::new(&bytes)).unwrap();
        assert!(file.segment_count() > 2);
        for k in 0..file.segment_count() {
            // Independently replay the canonical (naive, shortcut-free)
            // semantics over the prefix and compare to the stored
            // checkpoint — a differential check on the writer tracker's
            // locality shortcuts and deferred sync replay.
            let mut tracker = SyncTracker::default();
            for &event in &trace.events()[..file.meta(k).first_event_id as usize] {
                naive_apply(&mut tracker, event);
            }
            let stored = file.read_checkpoint(k).unwrap();
            assert_eq!(stored, tracker.checkpoint(), "segment {k}");
            assert_eq!(stored, SyncCheckpoint::decode(&stored.encode()).unwrap());
        }
    }

    #[test]
    fn corrupt_segment_bytes_fail_the_checksum() {
        let trace = sample();
        let mut bytes = Vec::new();
        write_trace_binary_v2(&trace, &mut bytes, &opts(4)).unwrap();
        let meta = SegmentedTraceFile::open(Cursor::new(&bytes))
            .unwrap()
            .meta(1)
            .clone();
        // Flip a bit inside segment 1's record range.
        bytes[meta.offset as usize] ^= 0x40;
        let mut file = SegmentedTraceFile::open(Cursor::new(&bytes)).unwrap();
        let err = file.verify().unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn open_rejects_other_formats_with_version_guidance() {
        let trace = sample();
        let mut v1 = Vec::new();
        write_trace_binary(&trace, &mut v1).unwrap();
        let err = SegmentedTraceFile::open(Cursor::new(&v1)).unwrap_err();
        assert!(err.to_string().contains("version 1"), "{err}");
        assert!(err.to_string().contains("binary-v2"), "{err}");
        let err =
            SegmentedTraceFile::open(Cursor::new(b"#! threads 2\nT0|w(x)\n".to_vec())).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        let err = SegmentedTraceFile::open(Cursor::new(b"FT".to_vec())).unwrap_err();
        assert!(err.to_string().contains("too short"), "{err}");
    }

    #[test]
    fn truncated_files_are_rejected_at_open() {
        let trace = sample();
        let mut bytes = Vec::new();
        write_trace_binary_v2(&trace, &mut bytes, &opts(4)).unwrap();
        // Any truncation destroys the trailer (it no longer sits at the
        // end), except cuts inside the trailer itself, which destroy
        // the magic.
        for cut in [bytes.len() - 1, bytes.len() - TRAILER_LEN as usize, 40] {
            let err = SegmentedTraceFile::open(Cursor::new(&bytes[..cut])).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("trailer") || msg.contains("too short"),
                "cut={cut}: {msg}"
            );
        }
    }

    #[test]
    fn empty_trace_still_carries_one_segment() {
        let trace = TraceBuilder::new().build();
        let mut bytes = Vec::new();
        write_trace_binary_v2(&trace, &mut bytes, &SegmentOptions::default()).unwrap();
        let mut file = SegmentedTraceFile::open(Cursor::new(&bytes)).unwrap();
        assert_eq!(file.segment_count(), 1);
        assert_eq!(file.event_count(), 0);
        file.verify().unwrap();
        let back = read_trace_binary(&bytes).unwrap();
        assert_eq!(back.len(), 0);
    }

    #[test]
    fn segment_errors_carry_absolute_offsets() {
        let trace = sample();
        let mut bytes = Vec::new();
        write_trace_binary_v2(&trace, &mut bytes, &opts(4)).unwrap();
        let mut file = SegmentedTraceFile::open(Cursor::new(&bytes)).unwrap();
        let meta = file.meta(1).clone();
        let seg = file.read_segment_bytes(1).unwrap();
        // Truncate the segment's bytes: the checksum catches it before
        // any decoding happens.
        let err = decode_segment(&seg[..seg.len() - 1], &meta).unwrap_err();
        assert!(err.offset >= meta.offset);
        // A same-length corruption is caught by the checksum too.
        let mut corrupt = seg.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        let err = decode_segment(&corrupt, &meta).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn decoded_segments_resolve_cross_segment_operands() {
        // Segment boundaries fall so that segment 1+ reference names
        // defined in segment 0: placeholders must make the ids resolve
        // and the real names must come only from the owning segment.
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        for t in 0..6 {
            b.write(t, x);
        }
        let trace = b.build();
        let mut bytes = Vec::new();
        write_trace_binary_v2(&trace, &mut bytes, &opts(2)).unwrap();
        let mut file = SegmentedTraceFile::open(Cursor::new(&bytes)).unwrap();
        assert_eq!(file.segment_count(), 3);
        let meta = file.meta(1).clone();
        assert_eq!(meta.vars_before, 1);
        let data = decode_segment(&file.read_segment_bytes(1).unwrap(), &meta).unwrap();
        assert!(data.new_vars.is_empty());
        assert_eq!(data.events.len(), 2);
        assert_eq!(data.events[0], trace.events()[2]);
    }
}
