//! Streaming trace input: analyze arbitrarily large trace files without
//! materializing a [`Trace`](crate::Trace) in memory.
//!
//! [`EventReader`] parses the text format line by line, interning names
//! and checking the locking discipline on the fly — exactly the shape a
//! streaming detector wants. Fork/join lines are desugared to token-lock
//! operations just like [`TraceBuilder`](crate::TraceBuilder) does.

use std::collections::HashMap;
use std::io::BufRead;

use freshtrack_clock::ThreadId;

use crate::{Event, EventKind, LockId, ParseTraceError, VarId};

/// A streaming reader over the text trace format.
///
/// Yields `Result<Event, ParseTraceError>` items; parsing stops at the
/// first malformed line. The reader does **not** check the locking
/// discipline (a streaming consumer may want prefixes); run
/// [`Trace::validate`](crate::Trace::validate) on materialized traces
/// when that matters.
///
/// # Example
///
/// ```
/// use freshtrack_trace::{EventKind, EventReader};
///
/// let text = "T0|acq(l)\nT0|w(x)\nT0|rel(l)\n";
/// let events: Result<Vec<_>, _> = EventReader::new(text.as_bytes()).collect();
/// let events = events.unwrap();
/// assert_eq!(events.len(), 3);
/// assert!(matches!(events[1].kind, EventKind::Write(_)));
/// ```
pub struct EventReader<R> {
    lines: std::io::Lines<std::io::BufReader<R>>,
    line_no: usize,
    locks: HashMap<String, LockId>,
    vars: HashMap<String, VarId>,
    /// Pending desugared events (from fork/join lines).
    pending: std::collections::VecDeque<Event>,
    /// Fork tokens each thread must take before its next event.
    pending_acquire: HashMap<ThreadId, Vec<LockId>>,
    /// Thread count from `#! threads` declarations.
    declared_threads: u32,
    failed: bool,
}

impl<R: std::io::Read> EventReader<R> {
    /// Creates a reader over a byte source.
    pub fn new(source: R) -> Self {
        EventReader {
            lines: std::io::BufReader::new(source).lines(),
            line_no: 0,
            locks: HashMap::new(),
            vars: HashMap::new(),
            pending: std::collections::VecDeque::new(),
            pending_acquire: HashMap::new(),
            declared_threads: 0,
            failed: false,
        }
    }

    /// The thread count declared by `#! threads` headers seen so far
    /// (0 when the input has no header).
    pub fn declared_threads(&self) -> u32 {
        self.declared_threads
    }

    /// Number of distinct locks seen so far (including token locks).
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// Number of distinct variables seen so far.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    fn lock(&mut self, name: &str) -> LockId {
        let next = LockId::new(self.locks.len() as u32);
        *self.locks.entry(name.to_owned()).or_insert(next)
    }

    fn var(&mut self, name: &str) -> VarId {
        let next = VarId::new(self.vars.len() as u32);
        *self.vars.entry(name.to_owned()).or_insert(next)
    }

    fn err(&mut self, reason: String) -> ParseTraceError {
        self.failed = true;
        ParseTraceError {
            line: self.line_no,
            reason,
        }
    }

    /// Queues `tid`'s pending fork-token acquisitions, then `event`.
    fn enqueue_with_tokens(&mut self, tid: ThreadId, event: Event) {
        if let Some(tokens) = self.pending_acquire.remove(&tid) {
            for token in tokens {
                self.pending
                    .push_back(Event::new(tid, EventKind::Acquire(token)));
                self.pending
                    .push_back(Event::new(tid, EventKind::Release(token)));
            }
        }
        self.pending.push_back(event);
    }

    /// Applies one `#!` declaration, interning names in declared order
    /// so streaming and batch parsing assign identical ids. The grammar
    /// itself lives in [`crate::io::Directive`], shared with
    /// [`read_trace`](crate::read_trace).
    fn apply_directive(&mut self, directive: &str) -> Result<(), ParseTraceError> {
        match crate::io::Directive::parse(directive) {
            Ok(crate::io::Directive::Threads(n)) => {
                self.declared_threads = self.declared_threads.max(n);
            }
            Ok(crate::io::Directive::Lock(name)) => {
                self.lock(name);
            }
            Ok(crate::io::Directive::Var(name)) => {
                self.var(name);
            }
            Err(reason) => return Err(self.err(reason)),
        }
        Ok(())
    }

    fn parse_line(&mut self, line: &str) -> Result<(), ParseTraceError> {
        let (thread, op) = line
            .split_once('|')
            .ok_or_else(|| self.err("missing `|` separator".into()))?;
        let tid: u32 = thread
            .trim()
            .strip_prefix('T')
            .ok_or_else(|| self.err("thread must look like `T0`".into()))?
            .parse()
            .map_err(|e| self.err(format!("bad thread index: {e}")))?;
        let tid = ThreadId::new(tid);
        let op = op.trim();
        let open = op
            .find('(')
            .ok_or_else(|| self.err("missing `(` in operation".into()))?;
        if !op.ends_with(')') {
            return Err(self.err("missing `)` in operation".into()));
        }
        let (name, operand) = (&op[..open], op[open + 1..op.len() - 1].trim());
        if operand.is_empty() {
            return Err(self.err("empty operand".into()));
        }
        match name {
            "r" => {
                let v = self.var(operand);
                self.enqueue_with_tokens(tid, Event::new(tid, EventKind::Read(v)));
            }
            "w" => {
                let v = self.var(operand);
                self.enqueue_with_tokens(tid, Event::new(tid, EventKind::Write(v)));
            }
            "acq" => {
                let l = self.lock(operand);
                self.enqueue_with_tokens(tid, Event::new(tid, EventKind::Acquire(l)));
            }
            "rel" => {
                let l = self.lock(operand);
                self.enqueue_with_tokens(tid, Event::new(tid, EventKind::Release(l)));
            }
            "fork" => {
                let child: u32 = operand
                    .parse()
                    .map_err(|e| self.err(format!("bad fork operand: {e}")))?;
                let token = self.lock(&format!("$fork:{child}"));
                self.enqueue_with_tokens(tid, Event::new(tid, EventKind::Acquire(token)));
                self.pending
                    .push_back(Event::new(tid, EventKind::Release(token)));
                self.pending_acquire
                    .entry(ThreadId::new(child))
                    .or_default()
                    .push(token);
            }
            "join" => {
                let child: u32 = operand
                    .parse()
                    .map_err(|e| self.err(format!("bad join operand: {e}")))?;
                let token = self.lock(&format!("$join:{child}"));
                let child = ThreadId::new(child);
                self.enqueue_with_tokens(child, Event::new(child, EventKind::Acquire(token)));
                self.pending
                    .push_back(Event::new(child, EventKind::Release(token)));
                self.enqueue_with_tokens(tid, Event::new(tid, EventKind::Acquire(token)));
                self.pending
                    .push_back(Event::new(tid, EventKind::Release(token)));
            }
            other => return Err(self.err(format!("unknown operation `{other}`"))),
        }
        Ok(())
    }
}

impl<R: std::io::Read> Iterator for EventReader<R> {
    type Item = Result<Event, ParseTraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(event) = self.pending.pop_front() {
                return Some(Ok(event));
            }
            if self.failed {
                return None;
            }
            let raw = match self.lines.next()? {
                Ok(raw) => raw,
                Err(e) => {
                    self.line_no += 1;
                    return Some(Err(self.err(format!("I/O error: {e}"))));
                }
            };
            self.line_no += 1;
            let line = raw.trim();
            if let Some(directive) = line.strip_prefix("#!") {
                if let Err(e) = self.apply_directive(directive.trim()) {
                    return Some(Err(e));
                }
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Err(e) = self.parse_line(line) {
                return Some(Err(e));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_trace, write_trace};

    #[test]
    fn streams_the_same_events_as_batch_parsing() {
        let text = "T0|w(x)\nT0|fork(1)\nT1|r(x)\nT0|join(1)\nT0|acq(l)\nT0|rel(l)\n";
        let batch = read_trace(text).unwrap();
        let streamed: Result<Vec<Event>, _> = EventReader::new(text.as_bytes()).collect();
        let streamed = streamed.unwrap();
        assert_eq!(batch.events(), &streamed[..]);
    }

    #[test]
    fn stops_at_first_error_with_line_number() {
        let text = "T0|w(x)\nbogus line\nT0|w(x)\n";
        let mut reader = EventReader::new(text.as_bytes());
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(reader.next().is_none());
    }

    #[test]
    fn interning_matches_batch_reader() {
        let mut b = crate::TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        b.acquire(0, l).write(0, x).release(0, l);
        b.acquire(1, l).read(1, x).release(1, l);
        let text = write_trace(&b.build());
        let streamed: Result<Vec<Event>, _> = EventReader::new(text.as_bytes()).collect();
        let streamed = streamed.unwrap();
        let batch = read_trace(&text).unwrap();
        assert_eq!(batch.events(), &streamed[..]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# hello\n\n  \nT0|w(x)\n";
        let events: Result<Vec<_>, _> = EventReader::new(text.as_bytes()).collect();
        assert_eq!(events.unwrap().len(), 1);
    }
}
