//! Streaming trace input: analyze arbitrarily large trace files without
//! materializing a [`Trace`](crate::Trace) in memory.
//!
//! [`EventReader`] parses the text format line by line, interning names
//! and desugaring fork/join lines to token-lock operations exactly like
//! [`TraceBuilder`](crate::TraceBuilder) does. It implements
//! [`EventSource`], which is how detectors and the CLI consume it; the
//! batch [`read_trace`](crate::read_trace) is the same reader drained
//! through [`Trace::from_source`](crate::Trace::from_source), so the two
//! paths share one grammar ([`crate::io::Line`]) and one interner.

use std::collections::VecDeque;
use std::io::BufRead;

use freshtrack_clock::ThreadId;

use crate::io::{Directive, Line, Op};
use crate::source::{EventSource, Interner, SourceError};
use crate::{Event, EventKind, LockId, ParseTraceError, VarId};

/// A streaming reader over the text trace format.
///
/// Yields `Result<Event, ParseTraceError>` items; parsing stops at the
/// first malformed line. The reader does **not** check the locking
/// discipline (a streaming consumer may want prefixes); wrap it in
/// [`crate::Validated`] — or run [`Trace::validate`](crate::Trace::validate)
/// on materialized traces — when that matters.
///
/// # Example
///
/// ```
/// use freshtrack_trace::{EventKind, EventReader};
///
/// let text = "T0|acq(l)\nT0|w(x)\nT0|rel(l)\n";
/// let events: Result<Vec<_>, _> = EventReader::new(text.as_bytes()).collect();
/// let events = events.unwrap();
/// assert_eq!(events.len(), 3);
/// assert!(matches!(events[1].kind, EventKind::Write(_)));
/// ```
pub struct EventReader<R> {
    lines: std::io::Lines<std::io::BufReader<R>>,
    line_no: usize,
    locks: Interner,
    vars: Interner,
    /// Pending desugared events (from fork/join lines).
    pending: VecDeque<Event>,
    /// Fork tokens each thread must take before its next event.
    pending_acquire: std::collections::HashMap<ThreadId, Vec<LockId>>,
    /// Thread count from `#! threads` declarations.
    declared_threads: u32,
    /// One past the highest thread id seen (events and fork children).
    observed_threads: u32,
    failed: bool,
}

impl<R: std::io::Read> EventReader<R> {
    /// Creates a reader over a byte source.
    pub fn new(source: R) -> Self {
        EventReader {
            lines: std::io::BufReader::new(source).lines(),
            line_no: 0,
            locks: Interner::default(),
            vars: Interner::default(),
            pending: VecDeque::new(),
            pending_acquire: std::collections::HashMap::new(),
            declared_threads: 0,
            observed_threads: 0,
            failed: false,
        }
    }

    /// The thread count declared by `#! threads` headers seen so far
    /// (0 when the input has no header).
    pub fn declared_threads(&self) -> u32 {
        self.declared_threads
    }

    /// Number of distinct locks seen so far (including token locks).
    pub fn lock_count(&self) -> usize {
        self.locks.len()
    }

    /// Number of distinct variables seen so far.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    fn lock(&mut self, name: &str) -> LockId {
        LockId::new(self.locks.intern(name))
    }

    fn var(&mut self, name: &str) -> VarId {
        VarId::new(self.vars.intern(name))
    }

    fn observe_thread(&mut self, tid: u32) {
        self.observed_threads = self.observed_threads.max(tid + 1);
    }

    fn err(&mut self, reason: String) -> ParseTraceError {
        self.failed = true;
        ParseTraceError {
            line: self.line_no,
            reason,
        }
    }

    /// Queues `tid`'s pending fork-token acquisitions, then `event`.
    fn enqueue_with_tokens(&mut self, tid: ThreadId, event: Event) {
        self.observe_thread(tid.as_u32());
        if let Some(tokens) = self.pending_acquire.remove(&tid) {
            for token in tokens {
                self.pending
                    .push_back(Event::new(tid, EventKind::Acquire(token)));
                self.pending
                    .push_back(Event::new(tid, EventKind::Release(token)));
            }
        }
        self.pending.push_back(event);
    }

    /// Applies one `#!` declaration, interning names in declared order
    /// so streaming and batch parsing assign identical ids. The grammar
    /// itself lives in [`Directive`], shared with
    /// [`read_trace`](crate::read_trace).
    fn apply_directive(&mut self, directive: &str) -> Result<(), ParseTraceError> {
        match Directive::parse(directive) {
            Ok(Directive::Threads(n)) => {
                self.declared_threads = self.declared_threads.max(n);
            }
            Ok(Directive::Lock(name)) => {
                self.lock(name);
            }
            Ok(Directive::Var(name)) => {
                self.var(name);
            }
            Err(reason) => return Err(self.err(reason)),
        }
        Ok(())
    }

    /// Applies one parsed event line ([`Line`], the grammar shared with
    /// the batch reader), enqueueing the event and any desugared
    /// fork/join token operations.
    fn apply_line(&mut self, line: Line<'_>) {
        let tid = ThreadId::new(line.tid);
        match line.op {
            Op::Read(var) => {
                let v = self.var(var);
                self.enqueue_with_tokens(tid, Event::new(tid, EventKind::Read(v)));
            }
            Op::Write(var) => {
                let v = self.var(var);
                self.enqueue_with_tokens(tid, Event::new(tid, EventKind::Write(v)));
            }
            Op::Acquire(lock) => {
                let l = self.lock(lock);
                self.enqueue_with_tokens(tid, Event::new(tid, EventKind::Acquire(l)));
            }
            Op::Release(lock) => {
                let l = self.lock(lock);
                self.enqueue_with_tokens(tid, Event::new(tid, EventKind::Release(l)));
            }
            Op::Fork(child) => {
                let token = self.lock(&format!("$fork:{child}"));
                self.enqueue_with_tokens(tid, Event::new(tid, EventKind::Acquire(token)));
                self.pending
                    .push_back(Event::new(tid, EventKind::Release(token)));
                self.pending_acquire
                    .entry(ThreadId::new(child))
                    .or_default()
                    .push(token);
                // A forked-but-silent child still counts as a thread,
                // matching TraceBuilder::fork.
                self.observe_thread(child);
            }
            Op::Join(child) => {
                let token = self.lock(&format!("$join:{child}"));
                let child = ThreadId::new(child);
                self.enqueue_with_tokens(child, Event::new(child, EventKind::Acquire(token)));
                self.pending
                    .push_back(Event::new(child, EventKind::Release(token)));
                self.enqueue_with_tokens(tid, Event::new(tid, EventKind::Acquire(token)));
                self.pending
                    .push_back(Event::new(tid, EventKind::Release(token)));
            }
        }
    }
}

impl<R: std::io::Read> Iterator for EventReader<R> {
    type Item = Result<Event, ParseTraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(event) = self.pending.pop_front() {
                return Some(Ok(event));
            }
            if self.failed {
                return None;
            }
            let raw = match self.lines.next()? {
                Ok(raw) => raw,
                Err(e) => {
                    self.line_no += 1;
                    return Some(Err(self.err(format!("I/O error: {e}"))));
                }
            };
            self.line_no += 1;
            let line = raw.trim();
            if let Some(directive) = line.strip_prefix("#!") {
                if let Err(e) = self.apply_directive(directive.trim()) {
                    return Some(Err(e));
                }
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match Line::parse(line) {
                Ok(parsed) => self.apply_line(parsed),
                Err(reason) => return Some(Err(self.err(reason))),
            }
        }
    }
}

impl<R: std::io::Read> EventSource for EventReader<R> {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        match self.next() {
            None => Ok(None),
            Some(Ok(event)) => Ok(Some(event)),
            Some(Err(e)) => Err(e.into()),
        }
    }

    fn declared_threads(&self) -> u32 {
        self.declared_threads
    }

    fn observed_threads(&self) -> u32 {
        self.observed_threads
    }

    fn lock_count(&self) -> usize {
        self.locks.len()
    }

    fn var_count(&self) -> usize {
        self.vars.len()
    }

    fn lock_name(&self, index: usize) -> &str {
        self.locks.name(index)
    }

    fn var_name(&self, index: usize) -> &str {
        self.vars.name(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_trace, write_trace, Trace};

    #[test]
    fn streams_the_same_events_as_batch_parsing() {
        let text = "T0|w(x)\nT0|fork(1)\nT1|r(x)\nT0|join(1)\nT0|acq(l)\nT0|rel(l)\n";
        let batch = read_trace(text).unwrap();
        let streamed: Result<Vec<Event>, _> = EventReader::new(text.as_bytes()).collect();
        let streamed = streamed.unwrap();
        assert_eq!(batch.events(), &streamed[..]);
    }

    #[test]
    fn stops_at_first_error_with_line_number() {
        let text = "T0|w(x)\nbogus line\nT0|w(x)\n";
        let mut reader = EventReader::new(text.as_bytes());
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(reader.next().is_none());
    }

    #[test]
    fn interning_matches_batch_reader() {
        let mut b = crate::TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        b.acquire(0, l).write(0, x).release(0, l);
        b.acquire(1, l).read(1, x).release(1, l);
        let text = write_trace(&b.build());
        let streamed: Result<Vec<Event>, _> = EventReader::new(text.as_bytes()).collect();
        let streamed = streamed.unwrap();
        let batch = read_trace(&text).unwrap();
        assert_eq!(batch.events(), &streamed[..]);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# hello\n\n  \nT0|w(x)\n";
        let events: Result<Vec<_>, _> = EventReader::new(text.as_bytes()).collect();
        assert_eq!(events.unwrap().len(), 1);
    }

    #[test]
    fn event_source_metadata_grows_with_the_stream() {
        let text = "#! threads 4\nT0|w(x)\nT2|acq(l)\nT2|rel(l)\n";
        let mut reader = EventReader::new(text.as_bytes());
        assert_eq!(EventSource::declared_threads(&reader), 0);
        let first = reader.next_event().unwrap().unwrap();
        assert!(matches!(first.kind, EventKind::Write(_)));
        assert_eq!(EventSource::declared_threads(&reader), 4);
        assert_eq!(EventSource::var_count(&reader), 1);
        assert_eq!(reader.var_name(0), "x");
        while reader.next_event().unwrap().is_some() {}
        assert_eq!(reader.observed_threads(), 3);
        assert_eq!(reader.threads(), 4);
        assert_eq!(reader.lock_name(0), "l");
    }

    #[test]
    fn from_source_over_the_reader_equals_read_trace() {
        let text = "#! threads 6\n#! var quiet\nT0|w(x)\nT0|fork(2)\nT2|r(x)\n";
        let batch = read_trace(text).unwrap();
        let mut reader = EventReader::new(text.as_bytes());
        let streamed = Trace::from_source(&mut reader).unwrap();
        assert_eq!(batch.events(), streamed.events());
        assert_eq!(batch.thread_count(), streamed.thread_count());
        assert_eq!(batch.var_count(), streamed.var_count());
        assert_eq!(batch.var_name(0), streamed.var_name(0));
        assert_eq!(batch.lock_name(0), streamed.lock_name(0));
    }
}
