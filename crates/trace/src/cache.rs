//! The `.ftc` analysis-cache sidecar format.
//!
//! A sidecar makes re-analysis of a growing `.ftb` v2 trace
//! *O(appended)*: it records, per segment, enough to (a) prove the
//! segment is byte-identical to what a previous run analyzed and (b)
//! resume the analysis right after it. Concretely each entry carries
//! the segment's footer identity (CRC-32, offset, length, event range,
//! name-table watermarks), the name/thread/pending/discipline deltas
//! the coordinator accumulated through it, the segment's race reports
//! and cumulative counters, and a delta-encoded engine checkpoint at
//! the segment's end boundary. The checkpoint, counter and report
//! payloads are **opaque bytes** here — `freshtrack-core` owns those
//! encodings (its `CheckpointState` wire formats plus the byte-level
//! delta codec); this module owns only the container, exactly like
//! [`SegmentedTraceFile`](crate::SegmentedTraceFile) owns segment
//! blocks without knowing what an engine does with them.
//!
//! Layout (all integers are the varints of
//! [`freshtrack_clock::wire`]):
//!
//! ```text
//! [magic "FTC1\r\n\x1a\n"]
//! [header body: format version, config strings, state version,
//!  jobs, entry count][u32 LE CRC-32 of the header body]
//! entry × count: [entry body][u32 LE CRC-32 of the entry body]
//! ```
//!
//! Every block is CRC-framed with the same slice-by-8 CRC-32 the v2
//! trace format uses, so a flipped bit anywhere in the sidecar is a
//! clean [`CacheError`] — the analyzer then falls back to a cold run
//! and rewrites the file. A cache is *advisory*: decoding failure is
//! never an analysis failure.

use freshtrack_clock::wire::{self, WireError, WireReader};

use crate::segmented::crc32;
use crate::SegmentMeta;

/// The 8-byte magic opening a `.ftc` sidecar (same shape as the v2
/// trace magic: CRLF/CtrlZ/LF guards against text-mode mangling).
pub const CACHE_MAGIC: [u8; 8] = *b"FTC1\r\n\x1a\n";

/// Container format version; bump on any layout change.
const CACHE_FORMAT_VERSION: u64 = 1;

/// A malformed, truncated, or corrupted sidecar.
///
/// Deliberately *not* convertible into an analysis error: callers
/// treat any `CacheError` as "no usable cache" and run cold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheError(String);

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid analysis cache: {}", self.0)
    }
}

impl std::error::Error for CacheError {}

impl From<WireError> for CacheError {
    fn from(e: WireError) -> Self {
        CacheError(e.to_string())
    }
}

/// The configuration fingerprint a sidecar was produced under.
///
/// A cached prefix is only reusable when every field matches the
/// current run exactly — a different engine, sampler, seed, segment
/// geometry, worker count, or payload encoding must reject the cache
/// rather than silently reuse state computed under other rules.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheConfig {
    /// Engine identifier (e.g. `"so"`).
    pub engine: String,
    /// Sampler identity including rate bits and seed.
    pub sampler: String,
    /// Segmentation and other run options, as a canonical string.
    pub options: String,
    /// Version of the opaque checkpoint/counter/report payload
    /// encodings (owned by `freshtrack-core`); a format change there
    /// invalidates every older sidecar.
    pub state_version: u32,
    /// Worker count the checkpoints were partitioned for (the access
    /// plane is sharded per worker).
    pub jobs: u32,
}

/// One segment's cache entry: identity, coordinator deltas, and the
/// end-of-segment checkpoint payloads.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheEntry {
    /// CRC-32 of the segment's record bytes (must equal the footer's).
    pub crc32: u32,
    /// Segment start offset in the trace file.
    pub offset: u64,
    /// Segment length in bytes.
    pub byte_len: u64,
    /// Events in the segment.
    pub event_count: u64,
    /// Event id of the segment's first event.
    pub first_event_id: u64,
    /// Lock-name watermark before the segment.
    pub locks_before: usize,
    /// Var-name watermark before the segment.
    pub vars_before: usize,
    /// Lock names the segment defines.
    pub new_locks: Vec<String>,
    /// Variable names the segment defines.
    pub new_vars: Vec<String>,
    /// Thread count (declared or observed) after the segment.
    pub threads: u32,
    /// Pending `RelAfter_S` bits after the segment.
    pub pending: Vec<bool>,
    /// Lock-discipline holder table after the segment
    /// ([`DisciplineChecker::export_wire`](crate::DisciplineChecker::export_wire)).
    pub discipline: Vec<u8>,
    /// Cumulative merged counters after the segment (opaque; core's
    /// counter encoding).
    pub counters: Vec<u8>,
    /// Sync-plane checkpoint after the segment, delta-encoded against
    /// the previous entry's (opaque; chain base is the empty byte
    /// string).
    pub sync_delta: Vec<u8>,
    /// Per-worker access-plane checkpoints after the segment, each
    /// delta-encoded against the previous entry's for the same worker
    /// (opaque; chain bases are empty).
    pub access_deltas: Vec<Vec<u8>>,
    /// The segment's race reports (opaque; core's report encoding).
    pub reports: Vec<u8>,
}

impl CacheEntry {
    /// Does this entry describe exactly the segment `meta` indexes?
    /// True only when the byte identity (CRC + extent) *and* the
    /// stream position (event range, name watermarks) agree — the
    /// prefix-validation rule of the incremental analyzer.
    pub fn matches(&self, meta: &SegmentMeta) -> bool {
        self.crc32 == meta.crc32
            && self.offset == meta.offset
            && self.byte_len == meta.byte_len
            && self.event_count == meta.event_count
            && self.first_event_id == meta.first_event_id
            && self.locks_before == meta.locks_before
            && self.vars_before == meta.vars_before
    }
}

/// A decoded `.ftc` sidecar: the fingerprint plus one entry per
/// analyzed segment, in file order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnalysisCache {
    /// The fingerprint the entries were computed under.
    pub config: CacheConfig,
    /// Per-segment entries, index-aligned with the trace's segments.
    pub entries: Vec<CacheEntry>,
}

impl AnalysisCache {
    /// An empty cache for `config`.
    pub fn new(config: CacheConfig) -> Self {
        AnalysisCache {
            config,
            entries: Vec::new(),
        }
    }

    /// Serializes the sidecar (magic, CRC-framed header, CRC-framed
    /// entries).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CACHE_MAGIC);

        let mut body = Vec::new();
        wire::put_varint(&mut body, CACHE_FORMAT_VERSION);
        put_string(&mut body, &self.config.engine);
        put_string(&mut body, &self.config.sampler);
        put_string(&mut body, &self.config.options);
        wire::put_varint(&mut body, u64::from(self.config.state_version));
        wire::put_varint(&mut body, u64::from(self.config.jobs));
        wire::put_varint(&mut body, self.entries.len() as u64);
        put_block(&mut out, &body);

        for entry in &self.entries {
            body.clear();
            wire::put_varint(&mut body, u64::from(entry.crc32));
            wire::put_varint(&mut body, entry.offset);
            wire::put_varint(&mut body, entry.byte_len);
            wire::put_varint(&mut body, entry.event_count);
            wire::put_varint(&mut body, entry.first_event_id);
            wire::put_varint(&mut body, entry.locks_before as u64);
            wire::put_varint(&mut body, entry.vars_before as u64);
            put_strings(&mut body, &entry.new_locks);
            put_strings(&mut body, &entry.new_vars);
            wire::put_varint(&mut body, u64::from(entry.threads));
            wire::put_varint(&mut body, entry.pending.len() as u64);
            for &bit in &entry.pending {
                wire::put_bool(&mut body, bit);
            }
            put_payload(&mut body, &entry.discipline);
            put_payload(&mut body, &entry.counters);
            put_payload(&mut body, &entry.sync_delta);
            wire::put_varint(&mut body, entry.access_deltas.len() as u64);
            for delta in &entry.access_deltas {
                put_payload(&mut body, delta);
            }
            put_payload(&mut body, &entry.reports);
            put_block(&mut out, &body);
        }
        out
    }

    /// Decodes a sidecar, verifying every CRC frame.
    ///
    /// # Errors
    ///
    /// Any structural problem — bad magic, truncation, a checksum
    /// mismatch, malformed varints, trailing bytes — is a
    /// [`CacheError`]; the caller should discard the cache and run
    /// cold.
    pub fn decode(bytes: &[u8]) -> Result<Self, CacheError> {
        let fail = |what: &str| CacheError(what.to_owned());
        let rest = bytes
            .strip_prefix(&CACHE_MAGIC[..])
            .ok_or_else(|| fail("bad magic"))?;

        let (header, mut rest) = take_block(rest, "header")?;
        let mut r = WireReader::new(&header);
        let version = r.get_varint()?;
        if version != CACHE_FORMAT_VERSION {
            return Err(CacheError(format!(
                "unsupported cache format version {version}"
            )));
        }
        let config = CacheConfig {
            engine: get_string(&mut r)?,
            sampler: get_string(&mut r)?,
            options: get_string(&mut r)?,
            state_version: r.get_u32()?,
            jobs: r.get_u32()?,
        };
        let entry_count = r.get_usize()?;
        r.finish().map_err(|_| fail("trailing header bytes"))?;
        if entry_count > bytes.len() {
            // Each entry costs at least a CRC frame; a corrupt count
            // must not size an allocation.
            return Err(fail("entry count exceeds sidecar size"));
        }

        let mut entries = Vec::with_capacity(entry_count);
        for k in 0..entry_count {
            let (body, after) = take_block(rest, "entry")?;
            rest = after;
            let mut r = WireReader::new(&body);
            let entry = decode_entry(&mut r).map_err(|e| CacheError(format!("entry {k}: {e}")))?;
            r.finish()
                .map_err(|_| CacheError(format!("entry {k}: trailing bytes")))?;
            entries.push(entry);
        }
        if !rest.is_empty() {
            return Err(fail("trailing bytes after the last entry"));
        }
        Ok(AnalysisCache { config, entries })
    }
}

fn decode_entry(r: &mut WireReader<'_>) -> Result<CacheEntry, WireError> {
    let crc32 = r.get_u32()?;
    let offset = r.get_varint()?;
    let byte_len = r.get_varint()?;
    let event_count = r.get_varint()?;
    let first_event_id = r.get_varint()?;
    let locks_before = r.get_usize()?;
    let vars_before = r.get_usize()?;
    let new_locks = get_strings(r)?;
    let new_vars = get_strings(r)?;
    let threads = r.get_u32()?;
    let n = guarded_count(r)?;
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        pending.push(r.get_bool()?);
    }
    let discipline = get_payload(r)?;
    let counters = get_payload(r)?;
    let sync_delta = get_payload(r)?;
    let n = guarded_count(r)?;
    let mut access_deltas = Vec::with_capacity(n);
    for _ in 0..n {
        access_deltas.push(get_payload(r)?);
    }
    let reports = get_payload(r)?;
    Ok(CacheEntry {
        crc32,
        offset,
        byte_len,
        event_count,
        first_event_id,
        locks_before,
        vars_before,
        new_locks,
        new_vars,
        threads,
        pending,
        discipline,
        counters,
        sync_delta,
        access_deltas,
        reports,
    })
}

/// Appends `[varint len][body][u32 LE CRC-32(body)]`.
fn put_block(out: &mut Vec<u8>, body: &[u8]) {
    wire::put_varint(out, body.len() as u64);
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
}

/// Splits one CRC-framed block off `bytes`, verifying its checksum.
fn take_block<'a>(bytes: &'a [u8], what: &str) -> Result<(Vec<u8>, &'a [u8]), CacheError> {
    let mut r = WireReader::new(bytes);
    let len = r.get_usize()?;
    let consumed = bytes.len() - r.remaining();
    let rest = &bytes[consumed..];
    if rest.len() < len + 4 {
        return Err(CacheError(format!("truncated {what} block")));
    }
    let (body, rest) = rest.split_at(len);
    let (crc_bytes, rest) = rest.split_at(4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("split_at(4)"));
    if crc32(body) != stored {
        return Err(CacheError(format!("{what} checksum mismatch")));
    }
    Ok((body.to_vec(), rest))
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    wire::put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_string(r: &mut WireReader<'_>) -> Result<String, WireError> {
    let len = r.get_usize()?;
    let bytes = r.get_bytes(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid("non-UTF-8 string"))
}

fn put_strings(out: &mut Vec<u8>, strings: &[String]) {
    wire::put_varint(out, strings.len() as u64);
    for s in strings {
        put_string(out, s);
    }
}

fn get_strings(r: &mut WireReader<'_>) -> Result<Vec<String>, WireError> {
    let n = guarded_count(r)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_string(r)?);
    }
    Ok(out)
}

fn put_payload(out: &mut Vec<u8>, payload: &[u8]) {
    wire::put_varint(out, payload.len() as u64);
    out.extend_from_slice(payload);
}

fn get_payload(r: &mut WireReader<'_>) -> Result<Vec<u8>, WireError> {
    let len = r.get_usize()?;
    Ok(r.get_bytes(len)?.to_vec())
}

/// Reads an element count, rejecting counts larger than the remaining
/// input (every element costs at least one byte) so corrupt counts
/// cannot size allocations.
fn guarded_count(r: &mut WireReader<'_>) -> Result<usize, WireError> {
    let n = r.get_usize()?;
    if n > r.remaining() {
        return Err(WireError::Truncated);
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AnalysisCache {
        AnalysisCache {
            config: CacheConfig {
                engine: "so".to_owned(),
                sampler: "bernoulli/rate=3fa47ae147ae147b/seed=7".to_owned(),
                options: "events_per_segment=4096".to_owned(),
                state_version: 1,
                jobs: 2,
            },
            entries: vec![
                CacheEntry {
                    crc32: 0xDEAD_BEEF,
                    offset: 24,
                    byte_len: 100,
                    event_count: 7,
                    first_event_id: 0,
                    new_locks: vec!["l".to_owned()],
                    new_vars: vec!["x".to_owned(), "y".to_owned()],
                    threads: 3,
                    pending: vec![true, false, true],
                    discipline: vec![1, 2, 3],
                    counters: vec![9; 18],
                    sync_delta: vec![0xAA; 40],
                    access_deltas: vec![vec![1; 10], vec![2; 12]],
                    reports: vec![5, 6],
                    ..CacheEntry::default()
                },
                CacheEntry {
                    crc32: 1,
                    offset: 124,
                    byte_len: 60,
                    event_count: 5,
                    first_event_id: 7,
                    locks_before: 1,
                    vars_before: 2,
                    access_deltas: vec![Vec::new(), Vec::new()],
                    ..CacheEntry::default()
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let cache = sample();
        let bytes = cache.encode();
        assert_eq!(AnalysisCache::decode(&bytes).unwrap(), cache);
    }

    #[test]
    fn empty_cache_round_trips() {
        let cache = AnalysisCache::new(CacheConfig::default());
        assert_eq!(AnalysisCache::decode(&cache.encode()).unwrap(), cache);
    }

    #[test]
    fn any_single_bit_flip_is_rejected_or_differs() {
        // CRC framing: flipping any bit either fails decoding or (for
        // bits inside length varints that happen to re-frame
        // consistently) must never produce the original value.
        let cache = sample();
        let bytes = cache.encode();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << (i % 8);
            match AnalysisCache::decode(&corrupt) {
                Err(_) => {}
                Ok(decoded) => assert_ne!(
                    decoded, cache,
                    "flip at byte {i} decoded back to the original"
                ),
            }
        }
    }

    #[test]
    fn truncation_at_any_point_is_rejected() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(
                AnalysisCache::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes decoded"
            );
        }
    }
}
