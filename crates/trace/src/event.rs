use std::fmt;

use freshtrack_clock::ThreadId;

/// A dense identifier for a lock (or other synchronization object).
///
/// Token locks synthesized for fork/join edges also live in this space;
/// see [`crate::TraceBuilder`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LockId(u32);

impl LockId {
    /// Creates a lock id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        LockId(index)
    }

    /// The dense index, suitable for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for LockId {
    fn from(index: u32) -> Self {
        LockId(index)
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A dense identifier for a shared memory location.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VarId(u32);

impl VarId {
    /// Creates a variable id from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        VarId(index)
    }

    /// The dense index, suitable for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VarId {
    fn from(index: u32) -> Self {
        VarId(index)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// The position of an event in its trace (trace order `≤tr`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EventId(u64);

impl EventId {
    /// Creates an event id from a trace position.
    #[inline]
    pub const fn new(index: u64) -> Self {
        EventId(index)
    }

    /// The trace position as an array index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The trace position as a raw `u64`.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl From<u64> for EventId {
    fn from(index: u64) -> Self {
        EventId(index)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The operation performed by an event (Section 2 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EventKind {
    /// A read access `r(x)`.
    Read(VarId),
    /// A write access `w(x)`.
    Write(VarId),
    /// A lock acquire `acq(ℓ)`.
    Acquire(LockId),
    /// A lock release `rel(ℓ)`.
    Release(LockId),
}

impl EventKind {
    /// Returns `true` for read/write accesses (the events eligible for
    /// sampling).
    #[inline]
    pub const fn is_access(self) -> bool {
        matches!(self, EventKind::Read(_) | EventKind::Write(_))
    }

    /// Returns `true` for acquire/release synchronization events.
    #[inline]
    pub const fn is_sync(self) -> bool {
        matches!(self, EventKind::Acquire(_) | EventKind::Release(_))
    }

    /// The accessed variable, if this is an access event.
    #[inline]
    pub const fn var(self) -> Option<VarId> {
        match self {
            EventKind::Read(v) | EventKind::Write(v) => Some(v),
            _ => None,
        }
    }

    /// The lock, if this is a synchronization event.
    #[inline]
    pub const fn lock(self) -> Option<LockId> {
        match self {
            EventKind::Acquire(l) | EventKind::Release(l) => Some(l),
            _ => None,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Read(v) => write!(f, "r({v})"),
            EventKind::Write(v) => write!(f, "w({v})"),
            EventKind::Acquire(l) => write!(f, "acq({l})"),
            EventKind::Release(l) => write!(f, "rel({l})"),
        }
    }
}

/// One event of an execution: an operation performed by a thread.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Event {
    /// The thread performing the event (`thr(e)`).
    pub tid: ThreadId,
    /// The operation (`op(e)`).
    pub kind: EventKind,
}

impl Event {
    /// Creates an event.
    #[inline]
    pub const fn new(tid: ThreadId, kind: EventKind) -> Self {
        Event { tid, kind }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.tid, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        let x = VarId::new(0);
        let l = LockId::new(0);
        assert!(EventKind::Read(x).is_access());
        assert!(EventKind::Write(x).is_access());
        assert!(!EventKind::Acquire(l).is_access());
        assert!(EventKind::Acquire(l).is_sync());
        assert!(EventKind::Release(l).is_sync());
        assert!(!EventKind::Write(x).is_sync());
    }

    #[test]
    fn accessors_extract_operands() {
        let x = VarId::new(3);
        let l = LockId::new(7);
        assert_eq!(EventKind::Read(x).var(), Some(x));
        assert_eq!(EventKind::Read(x).lock(), None);
        assert_eq!(EventKind::Release(l).lock(), Some(l));
        assert_eq!(EventKind::Release(l).var(), None);
    }

    #[test]
    fn display_matches_paper_notation() {
        let e = Event::new(ThreadId::new(1), EventKind::Acquire(LockId::new(2)));
        assert_eq!(e.to_string(), "T1:acq(L2)");
        assert_eq!(EventKind::Write(VarId::new(0)).to_string(), "w(x0)");
    }
}
