//! A line-oriented text format for traces, in the spirit of RAPID's
//! standard format.
//!
//! Each non-empty, non-comment line is `<thread>|<op>(<operand>)`:
//!
//! ```text
//! #! threads 2
//! #! lock l
//! #! var x
//! # comment
//! T0|acq(l)
//! T0|w(x)
//! T0|rel(l)
//! T1|r(x)
//! ```
//!
//! Operands are free-form names interned by the reader (surrounding
//! whitespace is trimmed, in event lines and declarations alike);
//! threads must be written `T<index>` with dense indices.
//!
//! Lines starting with `#!` are **declarations**: `#! threads <n>`
//! declares the thread count and `#! lock <name>` / `#! var <name>`
//! pre-intern entity names in id order. [`write_trace`] always emits a
//! full declaration header, which makes `read_trace(write_trace(t))`
//! the *identity* — entity tables, id assignment and silent threads all
//! survive the round trip, not just the event shapes. Headerless input
//! (plain RAPID-style traces) still parses; ids are then assigned in
//! first-use order.
//!
//! There is exactly **one grammar implementation**: [`Line`] (event
//! lines) and [`Directive`] (`#!` lines) are parsed in one place, the
//! streaming [`EventReader`](crate::EventReader) is built on them, and
//! [`read_trace`] is `Trace::from_source` over that reader — the batch
//! and streaming paths cannot diverge because they are the same path.
//! The writer is symmetric: [`write_source`] serializes any
//! [`EventSource`] incrementally (declarations are emitted as names are
//! interned), and [`write_trace`] is that writer over a materialized
//! trace's source.

use std::io::Write;

use crate::source::{EventSource, SourceError};
use crate::{EventKind, Trace};

/// Serializes a trace to the text format.
///
/// The output parses back to an equivalent trace via [`read_trace`].
pub fn write_trace(trace: &Trace) -> String {
    let mut out = Vec::with_capacity(trace.len() * 12);
    write_source(&mut trace.source(), &mut out)
        .expect("writing a materialized trace to memory cannot fail");
    String::from_utf8(out).expect("the text format is ASCII-framed UTF-8")
}

/// Streams any [`EventSource`] to the text format, in constant memory.
///
/// Declarations (`#! threads/lock/var`) are emitted as soon as the
/// source interns the corresponding entity, so a materialized trace
/// produces the same full-header normal form as [`write_trace`], while
/// a lazy source interleaves declarations with event lines — both parse
/// back to identical traces, because declaration order *is* id order.
///
/// # Errors
///
/// Propagates the first source error or I/O failure.
pub fn write_source<S, W>(source: &mut S, out: &mut W) -> Result<(), WriteSourceError>
where
    S: EventSource + ?Sized,
    W: Write,
{
    let mut emitted = EmittedMeta::default();
    emitted.flush_text(source, out)?;
    while let Some(event) = source.next_event()? {
        // The event we just pulled may have interned new names; their
        // declarations must precede the line that references them.
        emitted.flush_text(source, out)?;
        let tid = event.tid;
        match event.kind {
            EventKind::Read(v) => writeln!(out, "{tid}|r({})", source.var_name(v.index()))?,
            EventKind::Write(v) => writeln!(out, "{tid}|w({})", source.var_name(v.index()))?,
            EventKind::Acquire(l) => writeln!(out, "{tid}|acq({})", source.lock_name(l.index()))?,
            EventKind::Release(l) => writeln!(out, "{tid}|rel({})", source.lock_name(l.index()))?,
        }
    }
    // Trailing declarations (silent entities, late `#! threads`), then
    // the final effective thread count: fork/join desugaring erases the
    // lines that named a silent child, so a lazy source's observed
    // threads must be declared explicitly to survive the round trip.
    emitted.flush_text(source, out)?;
    let threads = source.threads();
    if threads > emitted.threads {
        writeln!(out, "#! threads {threads}")?;
    }
    Ok(())
}

/// Tracks which entity declarations have been written so far, for the
/// incremental writers (text here, binary in [`crate::binary`]).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct EmittedMeta {
    pub(crate) threads: u32,
    pub(crate) locks: usize,
    pub(crate) vars: usize,
}

impl EmittedMeta {
    /// Emits `#!` declarations for everything the source has interned
    /// beyond what was already written.
    fn flush_text<S, W>(&mut self, source: &S, out: &mut W) -> Result<(), WriteSourceError>
    where
        S: EventSource + ?Sized,
        W: Write,
    {
        let declared = source.declared_threads();
        if declared > self.threads {
            self.threads = declared;
            writeln!(out, "#! threads {declared}")?;
        }
        for l in self.locks..source.lock_count() {
            writeln!(out, "#! lock {}", source.lock_name(l))?;
        }
        self.locks = source.lock_count();
        for v in self.vars..source.var_count() {
            writeln!(out, "#! var {}", source.var_name(v))?;
        }
        self.vars = source.var_count();
        Ok(())
    }
}

/// An error from the streaming writers ([`write_source`],
/// [`crate::write_source_binary`]): either the source failed mid-stream
/// or the output sink did.
#[derive(Debug)]
pub enum WriteSourceError {
    /// The output sink failed.
    Io(std::io::Error),
    /// The source reported an error while being drained.
    Source(SourceError),
}

impl std::fmt::Display for WriteSourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteSourceError::Io(e) => write!(f, "write failed: {e}"),
            WriteSourceError::Source(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WriteSourceError {}

impl From<std::io::Error> for WriteSourceError {
    fn from(e: std::io::Error) -> Self {
        WriteSourceError::Io(e)
    }
}

impl From<SourceError> for WriteSourceError {
    fn from(e: SourceError) -> Self {
        WriteSourceError::Source(e)
    }
}

/// Parses a trace from the text format.
///
/// This is [`Trace::from_source`] over the streaming
/// [`EventReader`](crate::EventReader) — one grammar, one parser for
/// both the batch and streaming paths.
///
/// # Errors
///
/// Returns [`ParseTraceError`] identifying the first malformed line.
pub fn read_trace(text: &str) -> Result<Trace, ParseTraceError> {
    let mut reader = crate::EventReader::new(text.as_bytes());
    Trace::from_source(&mut reader).map_err(|e| match e {
        SourceError::Parse(e) => e,
        other => unreachable!("the text reader only yields parse errors, got {other:?}"),
    })
}

/// One parsed `#!` declaration. Together with [`Line`] this is the
/// single grammar shared by [`read_trace`] and the streaming
/// [`EventReader`](crate::EventReader), so the two can never diverge on
/// the same input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Directive<'a> {
    /// `#! threads <n>` — declares the thread count.
    Threads(u32),
    /// `#! lock <name>` — pre-interns a lock name.
    Lock(&'a str),
    /// `#! var <name>` — pre-interns a variable name.
    Var(&'a str),
}

impl<'a> Directive<'a> {
    /// Parses the text after the `#!` marker.
    pub(crate) fn parse(directive: &'a str) -> Result<Self, String> {
        let (keyword, operand) = directive
            .trim()
            .split_once(char::is_whitespace)
            .ok_or_else(|| "declaration needs an operand".to_owned())?;
        let operand = operand.trim();
        if operand.is_empty() {
            return Err("empty declaration operand".to_owned());
        }
        match keyword {
            "threads" => {
                let n: u32 = operand
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
                Ok(Directive::Threads(n))
            }
            "lock" => Ok(Directive::Lock(operand)),
            "var" => Ok(Directive::Var(operand)),
            other => Err(format!("unknown declaration `{other}`")),
        }
    }
}

/// One parsed event line: the shared `T<idx>|op(operand)` grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Line<'a> {
    /// The acting thread's dense index.
    pub(crate) tid: u32,
    /// The operation and its raw operand.
    pub(crate) op: Op<'a>,
}

/// The operation of a [`Line`], with its operand still un-interned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Op<'a> {
    /// `r(<var>)`
    Read(&'a str),
    /// `w(<var>)`
    Write(&'a str),
    /// `acq(<lock>)`
    Acquire(&'a str),
    /// `rel(<lock>)`
    Release(&'a str),
    /// `fork(<child tid>)`
    Fork(u32),
    /// `join(<child tid>)`
    Join(u32),
}

impl<'a> Line<'a> {
    /// Parses one non-comment, non-declaration line.
    pub(crate) fn parse(line: &'a str) -> Result<Self, String> {
        let (thread, op) = line
            .split_once('|')
            .ok_or_else(|| "missing `|` separator".to_owned())?;
        let tid: u32 = thread
            .trim()
            .strip_prefix('T')
            .ok_or_else(|| "thread must look like `T0`".to_owned())?
            .parse()
            .map_err(|e| format!("bad thread index: {e}"))?;
        // Thread *counts* (`tid + 1`) must fit a u32 too.
        if tid == u32::MAX {
            return Err(format!("thread index {tid} too large"));
        }
        let op = op.trim();
        let open = op
            .find('(')
            .ok_or_else(|| "missing `(` in operation".to_owned())?;
        if !op.ends_with(')') {
            return Err("missing `)` in operation".to_owned());
        }
        let (name, operand) = (&op[..open], op[open + 1..op.len() - 1].trim());
        if operand.is_empty() {
            return Err("empty operand".to_owned());
        }
        let child = |what: &str| -> Result<u32, String> {
            let child: u32 = operand
                .parse()
                .map_err(|e| format!("bad {what} operand: {e}"))?;
            if child == u32::MAX {
                return Err(format!("{what} child {child} too large"));
            }
            Ok(child)
        };
        let op = match name {
            "r" => Op::Read(operand),
            "w" => Op::Write(operand),
            "acq" => Op::Acquire(operand),
            "rel" => Op::Release(operand),
            "fork" => Op::Fork(child("fork")?),
            "join" => Op::Join(child("join")?),
            other => return Err(format!("unknown operation `{other}`")),
        };
        Ok(Line { tid, op })
    }
}

/// An error from [`read_trace`], pointing at the offending line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the malformed line.
    pub line: usize,
    pub(crate) reason: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    #[test]
    fn round_trips_simple_trace() {
        let text = "T0|acq(l)\nT0|w(x)\nT0|rel(l)\nT1|r(x)\n";
        let trace = read_trace(text).unwrap();
        assert_eq!(trace.len(), 4);
        // The writer prepends the declaration header (its normal form)…
        let written = write_trace(&trace);
        assert_eq!(
            written,
            "#! threads 2\n#! lock l\n#! var x\nT0|acq(l)\nT0|w(x)\nT0|rel(l)\nT1|r(x)\n"
        );
        // …and writing is idempotent from there.
        assert_eq!(write_trace(&read_trace(&written).unwrap()), written);
    }

    #[test]
    fn declarations_preserve_silent_entities_and_id_order() {
        let text = "#! threads 5\n#! var quiet\n#! var x\nT0|w(x)\n";
        let trace = read_trace(text).unwrap();
        assert_eq!(trace.thread_count(), 5);
        assert_eq!(trace.var_count(), 2);
        assert_eq!(trace.var_name(0), "quiet");
        // `x` got id 1 from its declaration, not id 0 from first use.
        assert!(matches!(trace[0].kind, EventKind::Write(v) if v.index() == 1));
    }

    #[test]
    fn malformed_declarations_are_rejected() {
        for bad in ["#! threads many", "#! threads", "#! widget w", "#! lock "] {
            let err = read_trace(&format!("{bad}\nT0|w(x)\n")).unwrap_err();
            assert_eq!(err.line, 1, "{bad}");
        }
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\nT0|w(x)\n";
        let trace = read_trace(text).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn fork_and_join_desugar() {
        let text = "T0|w(x)\nT0|fork(1)\nT1|r(x)\nT0|join(1)\n";
        let trace = read_trace(text).unwrap();
        assert!(trace.validate().is_ok());
        // 1 write + 2 fork-token + 2 (child flush) + 1 read + 4 join-token
        assert_eq!(trace.len(), 10);
    }

    #[test]
    fn forked_but_silent_child_still_counts_as_a_thread() {
        // TraceBuilder::fork observes the child; the reader must agree.
        let trace = read_trace("T0|w(x)\nT0|fork(3)\n").unwrap();
        assert_eq!(trace.thread_count(), 4);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let err = read_trace("T0|w(x)\nbogus\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_unknown_ops_and_bad_threads() {
        assert!(read_trace("T0|frob(x)").is_err());
        assert!(read_trace("0|w(x)").is_err());
        assert!(read_trace("T0|w()").is_err());
        assert!(read_trace("T0|w(x").is_err());
    }

    #[test]
    fn streaming_writer_interleaves_declarations_for_lazy_sources() {
        // A headerless input streamed straight through the writer: names
        // are declared at first use, and the output parses back to the
        // same trace.
        let text = "T0|w(x)\nT0|acq(l)\nT0|rel(l)\nT1|r(y)\n";
        let mut reader = crate::EventReader::new(text.as_bytes());
        let mut out = Vec::new();
        write_source(&mut reader, &mut out).unwrap();
        let rewritten = String::from_utf8(out).unwrap();
        assert_eq!(
            rewritten,
            "#! var x\nT0|w(x)\n#! lock l\nT0|acq(l)\nT0|rel(l)\n#! var y\nT1|r(y)\n#! threads 2\n"
        );
        let a = read_trace(text).unwrap();
        let b = read_trace(&rewritten).unwrap();
        assert_eq!(a.events(), b.events());
        assert_eq!(a.thread_count(), b.thread_count());
    }

    #[test]
    fn line_grammar_accepts_whitespace_and_rejects_garbage() {
        let line = Line::parse(" T3 | acq( l0 ) ".trim()).unwrap();
        assert_eq!(line.tid, 3);
        assert_eq!(line.op, Op::Acquire("l0"));
        assert!(Line::parse("T1|fork(x)").is_err());
        assert_eq!(Line::parse("T1|join(2)").unwrap().op, Op::Join(2));
    }
}
