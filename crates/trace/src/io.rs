//! A line-oriented text format for traces, in the spirit of RAPID's
//! standard format.
//!
//! Each non-empty, non-comment line is `<thread>|<op>(<operand>)`:
//!
//! ```text
//! #! threads 2
//! #! lock l
//! #! var x
//! # comment
//! T0|acq(l)
//! T0|w(x)
//! T0|rel(l)
//! T1|r(x)
//! ```
//!
//! Operands are free-form names interned by the reader (surrounding
//! whitespace is trimmed, in event lines and declarations alike);
//! threads must be written `T<index>` with dense indices.
//!
//! Lines starting with `#!` are **declarations**: `#! threads <n>`
//! declares the thread count and `#! lock <name>` / `#! var <name>`
//! pre-intern entity names in id order. [`write_trace`] always emits a
//! full declaration header, which makes `read_trace(write_trace(t))`
//! the *identity* — entity tables, id assignment and silent threads all
//! survive the round trip, not just the event shapes. Headerless input
//! (plain RAPID-style traces) still parses; ids are then assigned in
//! first-use order.

use std::fmt::Write as _;

use crate::{EventKind, Trace, TraceBuilder};

/// Serializes a trace to the text format.
///
/// The output parses back to an equivalent trace via [`read_trace`].
pub fn write_trace(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 12);
    if trace.thread_count() > 0 {
        let _ = writeln!(out, "#! threads {}", trace.thread_count());
    }
    for l in 0..trace.lock_count() {
        let _ = writeln!(out, "#! lock {}", trace.lock_name(l));
    }
    for v in 0..trace.var_count() {
        let _ = writeln!(out, "#! var {}", trace.var_name(v));
    }
    for event in trace.events() {
        let _ = match event.kind {
            EventKind::Read(v) => writeln!(out, "{}|r({})", event.tid, trace.var_name(v.index())),
            EventKind::Write(v) => writeln!(out, "{}|w({})", event.tid, trace.var_name(v.index())),
            EventKind::Acquire(l) => {
                writeln!(out, "{}|acq({})", event.tid, trace.lock_name(l.index()))
            }
            EventKind::Release(l) => {
                writeln!(out, "{}|rel({})", event.tid, trace.lock_name(l.index()))
            }
        };
    }
    out
}

/// Parses a trace from the text format.
///
/// # Errors
///
/// Returns [`ParseTraceError`] identifying the first malformed line.
pub fn read_trace(text: &str) -> Result<Trace, ParseTraceError> {
    let mut builder = TraceBuilder::new();
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if let Some(directive) = line.strip_prefix("#!") {
            let directive = Directive::parse(directive).map_err(|reason| ParseTraceError {
                line: line_no + 1,
                reason,
            })?;
            match directive {
                Directive::Threads(n) => {
                    builder.declare_threads(n);
                }
                Directive::Lock(name) => {
                    builder.lock(name);
                }
                Directive::Var(name) => {
                    builder.var(name);
                }
            }
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        parse_line(&mut builder, line).map_err(|reason| ParseTraceError {
            line: line_no + 1,
            reason,
        })?;
    }
    Ok(builder.build())
}

/// One parsed `#!` declaration. The single grammar shared by the batch
/// reader ([`read_trace`]) and the streaming reader
/// ([`EventReader`](crate::EventReader)), so the two can never diverge
/// on the same input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Directive<'a> {
    /// `#! threads <n>` — declares the thread count.
    Threads(u32),
    /// `#! lock <name>` — pre-interns a lock name.
    Lock(&'a str),
    /// `#! var <name>` — pre-interns a variable name.
    Var(&'a str),
}

impl<'a> Directive<'a> {
    /// Parses the text after the `#!` marker.
    pub(crate) fn parse(directive: &'a str) -> Result<Self, String> {
        let (keyword, operand) = directive
            .trim()
            .split_once(char::is_whitespace)
            .ok_or_else(|| "declaration needs an operand".to_owned())?;
        let operand = operand.trim();
        if operand.is_empty() {
            return Err("empty declaration operand".to_owned());
        }
        match keyword {
            "threads" => {
                let n: u32 = operand
                    .parse()
                    .map_err(|e| format!("bad thread count: {e}"))?;
                Ok(Directive::Threads(n))
            }
            "lock" => Ok(Directive::Lock(operand)),
            "var" => Ok(Directive::Var(operand)),
            other => Err(format!("unknown declaration `{other}`")),
        }
    }
}

fn parse_line(builder: &mut TraceBuilder, line: &str) -> Result<(), String> {
    let (thread, op) = line
        .split_once('|')
        .ok_or_else(|| "missing `|` separator".to_owned())?;
    let tid: u32 = thread
        .trim()
        .strip_prefix('T')
        .ok_or_else(|| "thread must look like `T0`".to_owned())?
        .parse()
        .map_err(|e| format!("bad thread index: {e}"))?;
    let op = op.trim();
    let open = op
        .find('(')
        .ok_or_else(|| "missing `(` in operation".to_owned())?;
    if !op.ends_with(')') {
        return Err("missing `)` in operation".to_owned());
    }
    let (name, operand) = (&op[..open], op[open + 1..op.len() - 1].trim());
    if operand.is_empty() {
        return Err("empty operand".to_owned());
    }
    match name {
        "r" => {
            let v = builder.var(operand);
            builder.read(tid, v);
        }
        "w" => {
            let v = builder.var(operand);
            builder.write(tid, v);
        }
        "acq" => {
            let l = builder.lock(operand);
            builder.acquire(tid, l);
        }
        "rel" => {
            let l = builder.lock(operand);
            builder.release(tid, l);
        }
        "fork" => {
            let child: u32 = operand
                .parse()
                .map_err(|e| format!("bad fork operand: {e}"))?;
            builder.fork(tid, child);
        }
        "join" => {
            let child: u32 = operand
                .parse()
                .map_err(|e| format!("bad join operand: {e}"))?;
            builder.join(tid, child);
        }
        other => return Err(format!("unknown operation `{other}`")),
    }
    Ok(())
}

/// An error from [`read_trace`], pointing at the offending line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the malformed line.
    pub line: usize,
    pub(crate) reason: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_simple_trace() {
        let text = "T0|acq(l)\nT0|w(x)\nT0|rel(l)\nT1|r(x)\n";
        let trace = read_trace(text).unwrap();
        assert_eq!(trace.len(), 4);
        // The writer prepends the declaration header (its normal form)…
        let written = write_trace(&trace);
        assert_eq!(
            written,
            "#! threads 2\n#! lock l\n#! var x\nT0|acq(l)\nT0|w(x)\nT0|rel(l)\nT1|r(x)\n"
        );
        // …and writing is idempotent from there.
        assert_eq!(write_trace(&read_trace(&written).unwrap()), written);
    }

    #[test]
    fn declarations_preserve_silent_entities_and_id_order() {
        let text = "#! threads 5\n#! var quiet\n#! var x\nT0|w(x)\n";
        let trace = read_trace(text).unwrap();
        assert_eq!(trace.thread_count(), 5);
        assert_eq!(trace.var_count(), 2);
        assert_eq!(trace.var_name(0), "quiet");
        // `x` got id 1 from its declaration, not id 0 from first use.
        assert!(matches!(trace[0].kind, EventKind::Write(v) if v.index() == 1));
    }

    #[test]
    fn malformed_declarations_are_rejected() {
        for bad in ["#! threads many", "#! threads", "#! widget w", "#! lock "] {
            let err = read_trace(&format!("{bad}\nT0|w(x)\n")).unwrap_err();
            assert_eq!(err.line, 1, "{bad}");
        }
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\nT0|w(x)\n";
        let trace = read_trace(text).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn fork_and_join_desugar() {
        let text = "T0|w(x)\nT0|fork(1)\nT1|r(x)\nT0|join(1)\n";
        let trace = read_trace(text).unwrap();
        assert!(trace.validate().is_ok());
        // 1 write + 2 fork-token + 2 (child flush) + 1 read + 4 join-token
        assert_eq!(trace.len(), 10);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let err = read_trace("T0|w(x)\nbogus\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_unknown_ops_and_bad_threads() {
        assert!(read_trace("T0|frob(x)").is_err());
        assert!(read_trace("0|w(x)").is_err());
        assert!(read_trace("T0|w()").is_err());
        assert!(read_trace("T0|w(x").is_err());
    }
}
