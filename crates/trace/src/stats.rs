use std::fmt;

use crate::{EventKind, Trace};

/// Summary statistics of a trace, used for workload characterization and
/// experiment reports.
///
/// # Example
///
/// ```
/// use freshtrack_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// let l = b.lock("l");
/// b.acquire(0, l).write(0, x).release(0, l);
/// let stats = b.build().stats();
/// assert_eq!(stats.acquires, 1);
/// assert_eq!(stats.writes, 1);
/// assert!((stats.sync_ratio() - 2.0 / 3.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total number of events `N`.
    pub events: usize,
    /// Number of read events.
    pub reads: usize,
    /// Number of write events.
    pub writes: usize,
    /// Number of acquire events.
    pub acquires: usize,
    /// Number of release events.
    pub releases: usize,
    /// Number of threads `T`.
    pub threads: usize,
    /// Number of locks `L`.
    pub locks: usize,
    /// Number of memory locations.
    pub vars: usize,
}

impl TraceStats {
    /// Computes statistics by draining an
    /// [`EventSource`](crate::EventSource), in constant memory:
    /// event-kind counts accumulate per event, and the entity
    /// counts come from the source's metadata once the stream ends.
    ///
    /// For a materialized trace's source this agrees exactly with
    /// [`TraceStats::of`].
    ///
    /// # Errors
    ///
    /// Propagates the first error the source reports.
    pub fn from_source<S>(source: &mut S) -> Result<Self, crate::SourceError>
    where
        S: crate::EventSource + ?Sized,
    {
        let mut stats = TraceStats::default();
        while let Some(event) = source.next_event()? {
            stats.events += 1;
            match event.kind {
                EventKind::Read(_) => stats.reads += 1,
                EventKind::Write(_) => stats.writes += 1,
                EventKind::Acquire(_) => stats.acquires += 1,
                EventKind::Release(_) => stats.releases += 1,
            }
        }
        stats.threads = source.threads() as usize;
        stats.locks = source.lock_count();
        stats.vars = source.var_count();
        Ok(stats)
    }

    /// Computes the statistics of a trace.
    pub fn of(trace: &Trace) -> Self {
        let mut stats = TraceStats {
            events: trace.len(),
            threads: trace.thread_count(),
            locks: trace.lock_count(),
            vars: trace.var_count(),
            ..TraceStats::default()
        };
        for event in trace.events() {
            match event.kind {
                EventKind::Read(_) => stats.reads += 1,
                EventKind::Write(_) => stats.writes += 1,
                EventKind::Acquire(_) => stats.acquires += 1,
                EventKind::Release(_) => stats.releases += 1,
            }
        }
        stats
    }

    /// Number of access (read/write) events.
    pub fn accesses(&self) -> usize {
        self.reads + self.writes
    }

    /// Number of synchronization (acquire/release) events.
    pub fn syncs(&self) -> usize {
        self.acquires + self.releases
    }

    /// Fraction of events that are synchronization events.
    ///
    /// Returns `0.0` for the empty trace.
    pub fn sync_ratio(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.syncs() as f64 / self.events as f64
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "events={} (r={} w={} acq={} rel={}) threads={} locks={} vars={}",
            self.events,
            self.reads,
            self.writes,
            self.acquires,
            self.releases,
            self.threads,
            self.locks,
            self.vars
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::TraceBuilder;

    #[test]
    fn counts_every_kind() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let l = b.lock("l");
        b.acquire(0, l).read(0, x).write(0, y).release(0, l);
        b.read(1, x);
        let stats = b.build().stats();
        assert_eq!(stats.events, 5);
        assert_eq!(stats.reads, 2);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.acquires, 1);
        assert_eq!(stats.releases, 1);
        assert_eq!(stats.accesses(), 3);
        assert_eq!(stats.syncs(), 2);
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.vars, 2);
        assert_eq!(stats.locks, 1);
    }

    #[test]
    fn empty_trace_has_zero_ratio() {
        let stats = TraceBuilder::new().build().stats();
        assert_eq!(stats.sync_ratio(), 0.0);
    }

    #[test]
    fn streaming_stats_agree_with_batch_stats() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        b.acquire(0, l).read(0, x).release(0, l);
        b.write(2, x);
        b.declare_threads(6);
        let trace = b.build();
        let streamed = super::TraceStats::from_source(&mut trace.source()).unwrap();
        assert_eq!(streamed, trace.stats());
        assert_eq!(streamed.threads, 6);
    }
}
