use std::fmt;
use std::ops::Index;

use freshtrack_clock::{wire, ThreadId};

use crate::{Event, EventId, EventKind, TraceStats};

/// A complete execution trace: a sequence of events plus name tables for
/// locks and variables.
///
/// Construct traces with [`crate::TraceBuilder`] (which desugars
/// fork/join and keeps the name tables consistent) or by parsing the text
/// format via [`crate::read_trace`].
#[derive(Clone, Debug, Default)]
pub struct Trace {
    pub(crate) events: Vec<Event>,
    pub(crate) n_threads: u32,
    pub(crate) lock_names: Vec<String>,
    pub(crate) var_names: Vec<String>,
}

impl Trace {
    /// Number of events `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` for the empty trace.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of threads `T` (dense: ids are `0..T`).
    #[inline]
    pub fn thread_count(&self) -> usize {
        self.n_threads as usize
    }

    /// Number of locks `L`, including synthesized fork/join token locks.
    #[inline]
    pub fn lock_count(&self) -> usize {
        self.lock_names.len()
    }

    /// Number of memory locations.
    #[inline]
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// The events in trace order.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterates events together with their [`EventId`]s.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, Event)> + '_ {
        self.events
            .iter()
            .enumerate()
            .map(|(idx, &event)| (EventId::new(idx as u64), event))
    }

    /// The event at a given position.
    #[inline]
    pub fn event(&self, id: EventId) -> Event {
        self.events[id.index()]
    }

    /// The display name of a lock.
    pub fn lock_name(&self, index: usize) -> &str {
        &self.lock_names[index]
    }

    /// The display name of a variable.
    pub fn var_name(&self, index: usize) -> &str {
        &self.var_names[index]
    }

    /// Computes summary statistics (event-kind counts, sync ratio, …).
    pub fn stats(&self) -> TraceStats {
        TraceStats::of(self)
    }

    /// Checks the locking discipline of Section 2: a lock is held by at
    /// most one thread at a time, releases are performed by the holder,
    /// and acquires of a held lock do not occur.
    ///
    /// The streaming equivalent is [`crate::Validated`], which applies
    /// the same per-event check to any [`crate::EventSource`].
    ///
    /// # Errors
    ///
    /// Returns the first violation found, identifying the offending event.
    pub fn validate(&self) -> Result<(), ValidateTraceError> {
        let mut checker = DisciplineChecker::new();
        for (idx, &event) in self.events.iter().enumerate() {
            checker.check(EventId::new(idx as u64), event)?;
        }
        Ok(())
    }
}

/// The incremental locking-discipline check shared by [`Trace::validate`]
/// and the streaming [`crate::Validated`] wrapper: `O(L)` holder state,
/// one step per event.
///
/// Public so drivers that cannot route their events through a single
/// [`crate::Validated`] source — the segmented parallel analyzer feeds
/// decoded segments, not one stream — can still apply the identical
/// check with persistent holder state across segment boundaries.
#[derive(Clone, Debug, Default)]
pub struct DisciplineChecker {
    /// holder\[l\] = Some(t) iff lock l is currently held by thread t.
    holder: Vec<Option<ThreadId>>,
}

impl DisciplineChecker {
    /// A checker with no locks held.
    pub fn new() -> Self {
        DisciplineChecker::default()
    }

    /// Applies one event; fails on the first discipline violation.
    ///
    /// # Errors
    ///
    /// Returns the violation, identifying the offending event as `id`.
    pub fn check(&mut self, id: EventId, event: Event) -> Result<(), ValidateTraceError> {
        let Some(l) = event.kind.lock() else {
            return Ok(());
        };
        if l.index() >= self.holder.len() {
            self.holder.resize(l.index() + 1, None);
        }
        let slot = &mut self.holder[l.index()];
        let reason = match (event.kind, &slot) {
            (EventKind::Acquire(_), None) => {
                *slot = Some(event.tid);
                return Ok(());
            }
            (EventKind::Acquire(_), Some(_)) => ValidateReason::AcquireHeldLock,
            (EventKind::Release(_), Some(t)) if *t == event.tid => {
                *slot = None;
                return Ok(());
            }
            (EventKind::Release(_), Some(_)) => ValidateReason::ReleaseByNonHolder,
            (EventKind::Release(_), None) => ValidateReason::ReleaseUnheldLock,
            _ => unreachable!("kind.lock() filtered to sync events"),
        };
        Err(ValidateTraceError { event: id, reason })
    }

    /// Serializes the holder table so a checkpointed analysis can
    /// resume the discipline check mid-stream (the `.ftc` sidecar
    /// stores this per segment boundary): one count, then per lock a
    /// presence bool and the holding thread id.
    pub fn export_wire(&self, out: &mut Vec<u8>) {
        wire::put_varint(out, self.holder.len() as u64);
        for slot in &self.holder {
            wire::put_bool(out, slot.is_some());
            if let Some(tid) = slot {
                wire::put_varint(out, u64::from(tid.as_u32()));
            }
        }
    }

    /// Rebuilds a checker from [`Self::export_wire`] bytes.
    ///
    /// # Errors
    ///
    /// Fails on truncated or trailing bytes.
    pub fn import_wire(bytes: &[u8]) -> Result<Self, wire::WireError> {
        let mut r = wire::WireReader::new(bytes);
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(wire::WireError::Truncated);
        }
        let mut holder = Vec::with_capacity(n);
        for _ in 0..n {
            holder.push(if r.get_bool()? {
                Some(ThreadId::new(r.get_u32()?))
            } else {
                None
            });
        }
        r.finish()?;
        Ok(DisciplineChecker { holder })
    }
}

impl Index<usize> for Trace {
    type Output = Event;

    fn index(&self, index: usize) -> &Event {
        &self.events[index]
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (idx, event) in self.events.iter().enumerate() {
            writeln!(f, "{idx:>6}  {event}")?;
        }
        Ok(())
    }
}

/// A violation of the locking discipline found by [`Trace::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ValidateTraceError {
    /// The offending event.
    pub event: EventId,
    reason: ValidateReason,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ValidateReason {
    AcquireHeldLock,
    ReleaseByNonHolder,
    ReleaseUnheldLock,
}

impl fmt::Display for ValidateTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.reason {
            ValidateReason::AcquireHeldLock => "acquire of a lock that is already held",
            ValidateReason::ReleaseByNonHolder => "release by a thread that does not hold the lock",
            ValidateReason::ReleaseUnheldLock => "release of a lock that is not held",
        };
        write!(f, "{what} at event {}", self.event)
    }
}

impl std::error::Error for ValidateTraceError {}

#[cfg(test)]
mod tests {
    use crate::TraceBuilder;
    // Validation and display tests; event/builder behaviours are covered
    // in their own modules.

    #[test]
    fn validate_accepts_well_nested_locking() {
        let mut b = TraceBuilder::new();
        let l = b.lock("l");
        let m = b.lock("m");
        b.acquire(0, l).acquire(0, m).release(0, m).release(0, l);
        b.acquire(1, l).release(1, l);
        assert!(b.build().validate().is_ok());
    }

    #[test]
    fn validate_rejects_double_acquire() {
        let mut b = TraceBuilder::new();
        let l = b.lock("l");
        b.acquire(0, l);
        b.acquire(1, l);
        let err = b.build().validate().unwrap_err();
        assert_eq!(err.event.index(), 1);
        assert!(err.to_string().contains("already held"));
    }

    #[test]
    fn validate_rejects_stray_release() {
        let mut b = TraceBuilder::new();
        let l = b.lock("l");
        b.release(0, l);
        assert!(b.build().validate().is_err());
    }

    #[test]
    fn validate_rejects_release_by_non_holder() {
        let mut b = TraceBuilder::new();
        let l = b.lock("l");
        b.acquire(0, l);
        b.release(1, l);
        assert!(b.build().validate().is_err());
    }

    #[test]
    fn display_lists_events() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x);
        let s = b.build().to_string();
        assert!(s.contains("w(x0)"));
    }
}
