use std::collections::HashMap;

use freshtrack_clock::ThreadId;

use crate::{Event, EventKind, LockId, Trace, VarId};

/// An incremental builder for [`Trace`]s.
///
/// The builder interns lock and variable names, tracks the set of threads,
/// and desugars [`fork`](TraceBuilder::fork) / [`join`](TraceBuilder::join)
/// edges into acquire/release pairs on dedicated single-use *token locks*
/// (named `$fork:<tid>` / `$join:<tid>`), so downstream detectors only
/// need the four core operations of the paper.
///
/// # Example
///
/// ```
/// use freshtrack_trace::{EventKind, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// b.write(0, x);
/// b.fork(0, 1); // thread 0 forks thread 1
/// b.read(1, x); // ordered after the write via the fork token
/// b.join(0, 1);
/// let trace = b.build();
///
/// // fork = acq+rel of $fork:1 by T0, then acq+rel by T1 before T1's
/// // first event — a single-use token lock carrying the HB edge.
/// assert!(matches!(trace[2].kind, EventKind::Release(_)));
/// assert!(matches!(trace[3].kind, EventKind::Acquire(_)));
/// assert_eq!(trace.thread_count(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TraceBuilder {
    events: Vec<Event>,
    n_threads: u32,
    lock_names: Vec<String>,
    var_names: Vec<String>,
    lock_ids: HashMap<String, LockId>,
    var_ids: HashMap<String, VarId>,
    /// Fork tokens a child thread must acquire before its first event.
    pending_acquire: HashMap<ThreadId, Vec<LockId>>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Interns a variable name, returning its id (idempotent).
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.var_ids.get(name) {
            return id;
        }
        let id = VarId::new(self.var_names.len() as u32);
        self.var_names.push(name.to_owned());
        self.var_ids.insert(name.to_owned(), id);
        id
    }

    /// Interns a lock name, returning its id (idempotent).
    pub fn lock(&mut self, name: &str) -> LockId {
        if let Some(&id) = self.lock_ids.get(name) {
            return id;
        }
        let id = LockId::new(self.lock_names.len() as u32);
        self.lock_names.push(name.to_owned());
        self.lock_ids.insert(name.to_owned(), id);
        id
    }

    /// Appends a read of `var` by thread `tid`.
    pub fn read(&mut self, tid: u32, var: VarId) -> &mut Self {
        self.push(tid, EventKind::Read(var))
    }

    /// Appends a write of `var` by thread `tid`.
    pub fn write(&mut self, tid: u32, var: VarId) -> &mut Self {
        self.push(tid, EventKind::Write(var))
    }

    /// Appends an acquire of `lock` by thread `tid`.
    pub fn acquire(&mut self, tid: u32, lock: LockId) -> &mut Self {
        self.push(tid, EventKind::Acquire(lock))
    }

    /// Appends a release of `lock` by thread `tid`.
    pub fn release(&mut self, tid: u32, lock: LockId) -> &mut Self {
        self.push(tid, EventKind::Release(lock))
    }

    /// Appends a whole critical section: `acq(lock)`, the events produced
    /// by `body`, then `rel(lock)`.
    pub fn critical<F>(&mut self, tid: u32, lock: LockId, body: F) -> &mut Self
    where
        F: FnOnce(&mut Self),
    {
        self.acquire(tid, lock);
        body(self);
        self.release(tid, lock)
    }

    /// Records that `parent` forks `child`.
    ///
    /// Desugared as a release of the token lock `$fork:<child>` by
    /// `parent` here, and an acquire of the same token by `child`
    /// immediately before `child`'s first subsequent event.
    pub fn fork(&mut self, parent: u32, child: u32) -> &mut Self {
        let token = self.lock(&format!("$fork:{child}"));
        // The parent must hold the token before releasing it so the trace
        // satisfies the locking discipline.
        self.push(parent, EventKind::Acquire(token));
        self.push(parent, EventKind::Release(token));
        self.pending_acquire
            .entry(ThreadId::new(child))
            .or_default()
            .push(token);
        self.observe_thread(child);
        self
    }

    /// Records that `parent` joins `child`.
    ///
    /// Desugared as a release of the token lock `$join:<child>` by `child`
    /// (placed here, i.e. after all of `child`'s events in trace order),
    /// immediately acquired by `parent`.
    pub fn join(&mut self, parent: u32, child: u32) -> &mut Self {
        let token = self.lock(&format!("$join:{child}"));
        self.push(child, EventKind::Acquire(token));
        self.push(child, EventKind::Release(token));
        self.push(parent, EventKind::Acquire(token));
        self.push(parent, EventKind::Release(token));
        self
    }

    /// Appends a raw event.
    pub fn push(&mut self, tid: u32, kind: EventKind) -> &mut Self {
        self.observe_thread(tid);
        let thread = ThreadId::new(tid);
        if let Some(tokens) = self.pending_acquire.remove(&thread) {
            for token in tokens {
                self.events
                    .push(Event::new(thread, EventKind::Acquire(token)));
                self.events
                    .push(Event::new(thread, EventKind::Release(token)));
            }
        }
        self.events.push(Event::new(thread, kind));
        self
    }

    /// Number of events appended so far (including desugared ones).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if no events have been appended.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Declares that the trace has (at least) `n` threads, even if some
    /// of them perform no events.
    ///
    /// Threads are normally observed from events; this exists so trace
    /// I/O can preserve the thread count of traces whose trailing
    /// threads are silent (e.g. a prefix cut before a thread's first
    /// event).
    pub fn declare_threads(&mut self, n: u32) -> &mut Self {
        self.n_threads = self.n_threads.max(n);
        self
    }

    /// Finishes the trace.
    pub fn build(self) -> Trace {
        Trace {
            events: self.events,
            n_threads: self.n_threads,
            lock_names: self.lock_names,
            var_names: self.var_names,
        }
    }

    fn observe_thread(&mut self, tid: u32) {
        self.n_threads = self.n_threads.max(tid + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut b = TraceBuilder::new();
        let x1 = b.var("x");
        let x2 = b.var("x");
        let y = b.var("y");
        assert_eq!(x1, x2);
        assert_ne!(x1, y);
        let l1 = b.lock("l");
        let l2 = b.lock("l");
        assert_eq!(l1, l2);
    }

    #[test]
    fn thread_count_tracks_max_tid() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(5, x);
        assert_eq!(b.build().thread_count(), 6);
    }

    #[test]
    fn fork_token_orders_parent_before_child() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x);
        b.fork(0, 1);
        b.read(1, x);
        let trace = b.build();
        // w(x)@0, acq(tok)@0, rel(tok)@0, acq(tok)@1, rel(tok)@1, r(x)@1
        assert_eq!(trace.len(), 6);
        assert!(trace.validate().is_ok());
        assert_eq!(trace[3].tid, ThreadId::new(1));
        assert!(matches!(trace[3].kind, EventKind::Acquire(_)));
    }

    #[test]
    fn join_token_orders_child_before_parent() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.fork(0, 1);
        b.write(1, x);
        b.join(0, 1);
        b.read(0, x);
        let trace = b.build();
        assert!(trace.validate().is_ok());
        // The final read by T0 comes after T1's release of the join token.
        let last = trace.events().last().unwrap();
        assert!(matches!(last.kind, EventKind::Read(_)));
    }

    #[test]
    fn forked_thread_with_no_events_is_counted() {
        let mut b = TraceBuilder::new();
        b.fork(0, 3);
        let trace = b.build();
        assert_eq!(trace.thread_count(), 4);
        assert!(trace.validate().is_ok());
    }

    #[test]
    fn critical_wraps_body_in_lock_pair() {
        let mut b = TraceBuilder::new();
        let l = b.lock("l");
        let x = b.var("x");
        b.critical(0, l, |b| {
            b.write(0, x);
        });
        let trace = b.build();
        assert_eq!(trace.len(), 3);
        assert!(matches!(trace[0].kind, EventKind::Acquire(_)));
        assert!(matches!(trace[1].kind, EventKind::Write(_)));
        assert!(matches!(trace[2].kind, EventKind::Release(_)));
    }

    #[test]
    fn multiple_pending_forks_flush_in_order() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        // Two different parents fork thread 2 — unusual but allowed at the
        // trace level (e.g. re-created worker); both tokens must be taken.
        b.fork(0, 2);
        b.fork(1, 2);
        b.write(2, x);
        let trace = b.build();
        assert!(trace.validate().is_ok());
        let acquires = trace
            .events()
            .iter()
            .filter(|e| e.tid == ThreadId::new(2) && matches!(e.kind, EventKind::Acquire(_)))
            .count();
        assert_eq!(acquires, 2);
    }
}
