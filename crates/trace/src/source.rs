//! The streaming seam of the offline pipeline: [`EventSource`].
//!
//! Every consumer below the trace layer — detectors, the RAPID-style
//! offline runner, the CLI — drives an `EventSource` rather than a
//! materialized [`Trace`]. A source yields events one at a time
//! (fallibly: parse errors, I/O errors, discipline violations surface
//! mid-stream) and exposes the entity metadata a consumer needs to
//! pre-size state and render reports: declared/observed thread counts
//! and the lock/variable name tables *as interned so far*.
//!
//! Implementations in this crate:
//!
//! * [`TraceSource`] — a cursor over a materialized [`Trace`]
//!   (infallible; metadata complete from the start).
//! * [`EventReader`](crate::EventReader) — the streaming text parser.
//! * [`BinaryEventReader`](crate::BinaryEventReader) — the streaming
//!   binary (`.ftb`) decoder.
//! * [`Validated`] — a wrapper enforcing the locking discipline on the
//!   fly, in `O(L)` memory.
//!
//! [`Trace::from_source`] materializes any source back into a `Trace`,
//! and is the one place the identity guarantees of the text and binary
//! formats are anchored: `from_source(reader(write(t))) == t`.

use std::borrow::Borrow;
use std::collections::HashMap;

use crate::trace::DisciplineChecker;
use crate::{Event, EventId, ParseTraceError, Trace, ValidateTraceError};

/// A fallible stream of trace events plus the entity metadata known so
/// far.
///
/// The metadata methods report the state *after* the events yielded so
/// far: streaming readers intern names and observe threads as the input
/// is consumed, so `lock_count()`/`var_count()`/`observed_threads()`
/// grow over the life of the stream and are complete once
/// [`next_event`](EventSource::next_event) has returned `Ok(None)`.
/// Materialized sources ([`TraceSource`]) expose complete metadata from
/// the start.
///
/// The trait is object-safe: detectors accept `&mut dyn EventSource`,
/// which is how [`Trace`], readers, and workload generators all feed the
/// same analysis loop.
pub trait EventSource {
    /// Pulls the next event; `Ok(None)` marks the end of the stream.
    ///
    /// # Errors
    ///
    /// Returns the first malformed input (parse error, truncated binary
    /// record, I/O failure, or — for [`Validated`] — a locking
    /// discipline violation). After an error the stream is poisoned;
    /// further calls may return `Ok(None)`.
    fn next_event(&mut self) -> Result<Option<Event>, SourceError>;

    /// The thread count declared by headers (`#!` lines / binary thread
    /// records) seen so far; 0 when the input carries no declaration.
    fn declared_threads(&self) -> u32;

    /// One past the highest thread id observed so far (event threads
    /// and fork/join children both count, matching
    /// [`TraceBuilder`](crate::TraceBuilder)).
    fn observed_threads(&self) -> u32;

    /// Number of distinct locks interned so far (including fork/join
    /// token locks).
    fn lock_count(&self) -> usize;

    /// Number of distinct variables interned so far.
    fn var_count(&self) -> usize;

    /// The display name of a lock already interned.
    ///
    /// # Panics
    ///
    /// May panic if `index >= self.lock_count()`.
    fn lock_name(&self, index: usize) -> &str;

    /// The display name of a variable already interned.
    ///
    /// # Panics
    ///
    /// May panic if `index >= self.var_count()`.
    fn var_name(&self, index: usize) -> &str;

    /// The effective thread count: declared or observed, whichever is
    /// larger — the same rule [`TraceBuilder`](crate::TraceBuilder)
    /// applies.
    fn threads(&self) -> u32 {
        self.declared_threads().max(self.observed_threads())
    }

    /// Remaining events, when the source knows (materialized traces
    /// do; streaming readers return `None`). Used to pre-size buffers.
    fn remaining_hint(&self) -> Option<usize> {
        None
    }
}

/// Forwarding impls so `Box<dyn EventSource>` (and `&mut S`) are
/// themselves sources — consumers that pick an input representation at
/// runtime (the CLI's text/binary/stdin auto-detection) can return a
/// boxed source instead of hand-writing a delegating enum.
impl<S: EventSource + ?Sized> EventSource for Box<S> {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        (**self).next_event()
    }

    fn declared_threads(&self) -> u32 {
        (**self).declared_threads()
    }

    fn observed_threads(&self) -> u32 {
        (**self).observed_threads()
    }

    fn lock_count(&self) -> usize {
        (**self).lock_count()
    }

    fn var_count(&self) -> usize {
        (**self).var_count()
    }

    fn lock_name(&self, index: usize) -> &str {
        (**self).lock_name(index)
    }

    fn var_name(&self, index: usize) -> &str {
        (**self).var_name(index)
    }

    fn remaining_hint(&self) -> Option<usize> {
        (**self).remaining_hint()
    }
}

impl<S: EventSource + ?Sized> EventSource for &mut S {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        (**self).next_event()
    }

    fn declared_threads(&self) -> u32 {
        (**self).declared_threads()
    }

    fn observed_threads(&self) -> u32 {
        (**self).observed_threads()
    }

    fn lock_count(&self) -> usize {
        (**self).lock_count()
    }

    fn var_count(&self) -> usize {
        (**self).var_count()
    }

    fn lock_name(&self, index: usize) -> &str {
        (**self).lock_name(index)
    }

    fn var_name(&self, index: usize) -> &str {
        (**self).var_name(index)
    }

    fn remaining_hint(&self) -> Option<usize> {
        (**self).remaining_hint()
    }
}

/// An error surfaced while pulling events from an [`EventSource`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceError {
    /// A malformed line in the text format (or an I/O failure, which
    /// the text reader reports at its line).
    Parse(ParseTraceError),
    /// A malformed record in the binary format (or an I/O failure at
    /// its byte offset).
    Binary(crate::BinaryTraceError),
    /// A locking-discipline violation found by [`Validated`].
    Discipline(ValidateTraceError),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Parse(e) => write!(f, "{e}"),
            SourceError::Binary(e) => write!(f, "{e}"),
            SourceError::Discipline(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<ParseTraceError> for SourceError {
    fn from(e: ParseTraceError) -> Self {
        SourceError::Parse(e)
    }
}

impl From<crate::BinaryTraceError> for SourceError {
    fn from(e: crate::BinaryTraceError) -> Self {
        SourceError::Binary(e)
    }
}

impl From<ValidateTraceError> for SourceError {
    fn from(e: ValidateTraceError) -> Self {
        SourceError::Discipline(e)
    }
}

/// A cursor over a materialized [`Trace`] — the `EventSource` view every
/// in-memory trace provides.
///
/// Metadata is complete from the start (the trace's own tables), and
/// iteration is infallible: [`next_event`](EventSource::next_event)
/// never returns `Err`.
#[derive(Clone, Debug)]
pub struct TraceSource<T: Borrow<Trace>> {
    trace: T,
    pos: usize,
}

impl<T: Borrow<Trace>> TraceSource<T> {
    fn trace(&self) -> &Trace {
        self.trace.borrow()
    }
}

impl Trace {
    /// A borrowing [`EventSource`] over this trace.
    pub fn source(&self) -> TraceSource<&Trace> {
        TraceSource {
            trace: self,
            pos: 0,
        }
    }

    /// An owning [`EventSource`], for handing a generated trace to a
    /// streaming consumer.
    pub fn into_source(self) -> TraceSource<Trace> {
        TraceSource {
            trace: self,
            pos: 0,
        }
    }

    /// Materializes any [`EventSource`] into a `Trace`, draining it to
    /// the end.
    ///
    /// The resulting trace carries the source's final name tables and
    /// thread count (declared or observed, whichever is larger) — the
    /// same rule [`TraceBuilder`](crate::TraceBuilder) applies — which
    /// is what makes `from_source(reader(write(t))) == t` an identity
    /// for both trace formats.
    ///
    /// # Errors
    ///
    /// Propagates the first error the source reports.
    pub fn from_source<S: EventSource + ?Sized>(source: &mut S) -> Result<Trace, SourceError> {
        match Trace::from_source_limited(source, usize::MAX)? {
            Some(trace) => Ok(trace),
            None => unreachable!("no trace exceeds usize::MAX events"),
        }
    }

    /// Materializes a source like [`Trace::from_source`], but gives up
    /// with `Ok(None)` as soon as the stream exceeds `limit` events —
    /// **before** buffering more than `limit + 1` of them.
    ///
    /// This is the bounded-memory guard for consumers with superlinear
    /// cost in the trace length (the CLI's O(N²)-memory `oracle`): a cap
    /// checked after materialization would OOM on the oversized input it
    /// exists to reject.
    ///
    /// # Errors
    ///
    /// Propagates the first error the source reports (checked before
    /// the limit: a malformed oversized input is malformed, not merely
    /// oversized).
    pub fn from_source_limited<S: EventSource + ?Sized>(
        source: &mut S,
        limit: usize,
    ) -> Result<Option<Trace>, SourceError> {
        let hint = source.remaining_hint().unwrap_or(0);
        let mut events = Vec::with_capacity(hint.min(limit.saturating_add(1)));
        while let Some(event) = source.next_event()? {
            if events.len() >= limit {
                return Ok(None);
            }
            events.push(event);
        }
        Ok(Some(Trace {
            events,
            n_threads: source.threads(),
            lock_names: (0..source.lock_count())
                .map(|l| source.lock_name(l).to_owned())
                .collect(),
            var_names: (0..source.var_count())
                .map(|v| source.var_name(v).to_owned())
                .collect(),
        }))
    }
}

impl<T: Borrow<Trace>> EventSource for TraceSource<T> {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        let event = self.trace().events().get(self.pos).copied();
        if event.is_some() {
            self.pos += 1;
        }
        Ok(event)
    }

    fn declared_threads(&self) -> u32 {
        self.trace().thread_count() as u32
    }

    fn observed_threads(&self) -> u32 {
        self.trace().thread_count() as u32
    }

    fn lock_count(&self) -> usize {
        self.trace().lock_count()
    }

    fn var_count(&self) -> usize {
        self.trace().var_count()
    }

    fn lock_name(&self, index: usize) -> &str {
        self.trace().lock_name(index)
    }

    fn var_name(&self, index: usize) -> &str {
        self.trace().var_name(index)
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.trace().len() - self.pos)
    }
}

/// An [`EventSource`] adapter that checks the locking discipline of
/// Section 2 on the fly, in `O(L)` memory — the streaming equivalent of
/// [`Trace::validate`].
///
/// The first violation is reported as [`SourceError::Discipline`],
/// identifying the offending event by its stream position.
#[derive(Debug)]
pub struct Validated<S> {
    inner: S,
    checker: DisciplineChecker,
    next_id: u64,
}

impl<S: EventSource> Validated<S> {
    /// Wraps a source.
    pub fn new(inner: S) -> Self {
        Validated {
            inner,
            checker: DisciplineChecker::new(),
            next_id: 0,
        }
    }

    /// The wrapped source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EventSource> EventSource for Validated<S> {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        let Some(event) = self.inner.next_event()? else {
            return Ok(None);
        };
        let id = EventId::new(self.next_id);
        self.next_id += 1;
        self.checker.check(id, event)?;
        Ok(Some(event))
    }

    fn declared_threads(&self) -> u32 {
        self.inner.declared_threads()
    }

    fn observed_threads(&self) -> u32 {
        self.inner.observed_threads()
    }

    fn lock_count(&self) -> usize {
        self.inner.lock_count()
    }

    fn var_count(&self) -> usize {
        self.inner.var_count()
    }

    fn lock_name(&self, index: usize) -> &str {
        self.inner.lock_name(index)
    }

    fn var_name(&self, index: usize) -> &str {
        self.inner.var_name(index)
    }

    fn remaining_hint(&self) -> Option<usize> {
        self.inner.remaining_hint()
    }
}

/// A dense name interner shared by the streaming readers: id order is
/// first-appearance order, exactly like
/// [`TraceBuilder`](crate::TraceBuilder)'s tables.
#[derive(Clone, Debug, Default)]
pub(crate) struct Interner {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

impl Interner {
    /// Interns a name, returning its dense id (idempotent).
    pub(crate) fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// An interner pre-seeded with `n` placeholder names, for decoding
    /// one v2 segment in isolation: operand ids below `n` resolve (their
    /// real names live in earlier segments), and the placeholders carry
    /// a NUL byte so no valid name ([`crate::binary`] rejects control
    /// characters on both codec paths) can collide with them.
    pub(crate) fn with_placeholders(n: usize) -> Interner {
        let mut interner = Interner::default();
        for k in 0..n {
            interner.push(format!("\u{0}#{k}"));
        }
        interner
    }

    /// Appends a name with the next dense id without a lookup (binary
    /// definition records arrive in id order by construction).
    pub(crate) fn push(&mut self, name: String) -> u32 {
        let id = self.names.len() as u32;
        self.ids.insert(name.clone(), id);
        self.names.push(name);
        id
    }

    pub(crate) fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether a name is already interned.
    pub(crate) fn contains(&self, name: &str) -> bool {
        self.ids.contains_key(name)
    }

    pub(crate) fn name(&self, index: usize) -> &str {
        &self.names[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, TraceBuilder};

    fn sample_trace() -> Trace {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        b.acquire(0, l).write(0, x).release(0, l);
        b.read(1, x);
        b.declare_threads(5);
        b.build()
    }

    #[test]
    fn trace_source_round_trips_through_from_source() {
        let trace = sample_trace();
        let again = Trace::from_source(&mut trace.source()).unwrap();
        assert_eq!(trace.events(), again.events());
        assert_eq!(trace.thread_count(), again.thread_count());
        assert_eq!(trace.lock_names, again.lock_names);
        assert_eq!(trace.var_names, again.var_names);
    }

    #[test]
    fn trace_source_metadata_is_complete_upfront() {
        let trace = sample_trace();
        let mut source = trace.source();
        assert_eq!(source.threads(), 5);
        assert_eq!(source.lock_count(), 1);
        assert_eq!(source.var_count(), 1);
        assert_eq!(source.var_name(0), "x");
        assert_eq!(source.remaining_hint(), Some(4));
        source.next_event().unwrap();
        assert_eq!(source.remaining_hint(), Some(3));
    }

    #[test]
    fn owned_source_streams_the_same_events() {
        let trace = sample_trace();
        let events = trace.events().to_vec();
        let mut source = trace.into_source();
        let mut streamed = Vec::new();
        while let Some(e) = source.next_event().unwrap() {
            streamed.push(e);
        }
        assert_eq!(events, streamed);
    }

    #[test]
    fn validated_passes_clean_traces() {
        let trace = sample_trace();
        let mut v = Validated::new(trace.source());
        let again = Trace::from_source(&mut v).unwrap();
        assert_eq!(again.len(), 4);
    }

    #[test]
    fn validated_rejects_discipline_violations_at_the_event() {
        let mut b = TraceBuilder::new();
        let l = b.lock("l");
        let x = b.var("x");
        b.write(0, x);
        b.acquire(0, l);
        b.acquire(1, l); // double acquire at stream position 2
        let trace = b.build();
        let mut v = Validated::new(trace.source());
        assert!(v.next_event().unwrap().is_some());
        assert!(v.next_event().unwrap().is_some());
        let err = v.next_event().unwrap_err();
        match err {
            SourceError::Discipline(e) => assert_eq!(e.event.index(), 2),
            other => panic!("expected a discipline error, got {other:?}"),
        }
        assert!(err.to_string().contains("already held"));
    }

    #[test]
    fn from_source_prefers_declared_thread_count() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x);
        b.declare_threads(9);
        let trace = b.build();
        let again = Trace::from_source(&mut trace.source()).unwrap();
        assert_eq!(again.thread_count(), 9);
        assert!(matches!(again[0].kind, EventKind::Write(_)));
    }

    #[test]
    fn interner_assigns_dense_ids_in_first_use_order() {
        let mut i = Interner::default();
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.intern("b"), 1);
        assert_eq!(i.intern("a"), 0);
        assert_eq!(i.push("c".to_owned()), 2);
        assert_eq!(i.len(), 3);
        assert_eq!(i.name(2), "c");
    }
}
