//! The binary trace format (`.ftb`): magic + declaration records +
//! varint/delta-encoded event records.
//!
//! The format is the byte-oriented twin of the text format and inherits
//! its identity guarantee: `read ∘ write` is the *identity* on traces —
//! entity tables, id assignment, silent threads and silent entities all
//! survive (`crates/trace/tests/io_roundtrip.rs` enforces it across
//! formats). It is also fully streamable in both directions: the writer
//! emits declaration records as names are interned (so a lazy
//! [`EventSource`] serializes in constant memory), and
//! [`BinaryEventReader`] decodes record by record without buffering.
//!
//! # Layout
//!
//! ```text
//! magic    8 bytes  "FTB1\r\n\x1a\n"  (version byte is the '1')
//! records  *        declaration and event records, in stream order
//! end      1 byte   0xF7
//! ```
//!
//! Declaration records mirror the text format's `#!` header lines:
//!
//! ```text
//! 0xF0 <varint len> <utf8 bytes>   define next lock name   (#! lock)
//! 0xF1 <varint len> <utf8 bytes>   define next var name    (#! var)
//! 0xF2 <varint n>                  declare thread count    (#! threads)
//! ```
//!
//! Names are defined in dense id order — a definition record always
//! names id `lock_count()`/`var_count()` — and always precede the first
//! event that references the id.
//!
//! Every other tag byte below `0xF0` is an **event record**:
//!
//! ```text
//! bits 0-1   kind: 0 read, 1 write, 2 acquire, 3 release
//! bit  2     same thread as the previous event (no tid field follows)
//! bits 3-7   operand id 0..=28 inline; 29 = varint operand follows
//! ```
//!
//! followed by `<varint tid>` when bit 2 is clear, then
//! `<varint operand>` when the inline field is the escape value 29.
//! Small operand ids and runs of same-thread events — both the common
//! case in real traces — therefore cost a single byte per event.
//! Varints are LEB128, low 7 bits first.
//!
//! # Version 2 (segmented)
//!
//! A `.ftb` **v2** file (magic `FTB2…`) carries the same record grammar
//! partitioned into segments, each preceded by a sync-plane checkpoint
//! and closed by a footer index that makes the file randomly
//! addressable — see the [`segmented`](crate::segmented) module for the
//! layout, writer and seeking reader. [`BinaryEventReader`] streams
//! both versions: in a v2 stream it transparently skips the segment,
//! checkpoint and footer records (resetting the same-thread delta at
//! each segment boundary, which is what makes segments independently
//! decodable), so every sequential consumer reads v1 and v2 alike.

use std::io::{Read, Write};

use freshtrack_clock::ThreadId;

use crate::io::{EmittedMeta, WriteSourceError};
use crate::source::{EventSource, Interner, SourceError};
use crate::{Event, EventKind, LockId, Trace, VarId};

/// The 8-byte magic prefix of a version-1 binary trace (version byte is
/// the `1`).
///
/// The `\r\n\x1a\n` tail guards against line-ending translation, PNG
/// style: a binary trace mangled by text-mode transfer no longer
/// matches the magic and is rejected up front.
pub const BINARY_MAGIC: [u8; 8] = *b"FTB1\r\n\x1a\n";

/// The 8-byte magic prefix of a version-2 (segmented) binary trace.
pub const BINARY_MAGIC_V2: [u8; 8] = *b"FTB2\r\n\x1a\n";

/// Decodes the version digit of a binary-trace magic: `FTB<digit>` plus
/// the translation-guard tail. `None` means "not a binary trace at all",
/// which callers must keep distinct from "a binary trace of a version
/// this build cannot read".
pub(crate) fn magic_version(magic: &[u8; 8]) -> Option<u32> {
    if &magic[..3] == b"FTB" && magic[3].is_ascii_digit() && &magic[4..] == b"\r\n\x1a\n" {
        Some((magic[3] - b'0') as u32)
    } else {
        None
    }
}

/// Returns `true` if `prefix` starts with a binary-trace magic (any
/// `FTB<digit>` version, readable or not — version negotiation is the
/// reader's job, and routing an unsupported version to the reader is
/// what produces the "unsupported version" error instead of a text
/// parser's garbage diagnostics).
///
/// Callers sniffing a file should pass its first 8 bytes; shorter
/// prefixes (tiny text traces) are never binary.
pub fn is_binary_trace(prefix: &[u8]) -> bool {
    prefix
        .get(..BINARY_MAGIC.len())
        .and_then(|head| magic_version(head.try_into().expect("sliced to 8 bytes")))
        .is_some()
}

pub(crate) const TAG_DEF_LOCK: u8 = 0xF0;
pub(crate) const TAG_DEF_VAR: u8 = 0xF1;
pub(crate) const TAG_THREADS: u8 = 0xF2;
/// v2 only: `0xF3 <varint index>` opens a segment (and resets the
/// same-thread delta, so segments decode independently).
pub(crate) const TAG_SEGMENT: u8 = 0xF3;
/// v2 only: `0xF4 <varint len> <bytes>` carries the sync-plane
/// checkpoint taken just before the following segment record.
pub(crate) const TAG_CHECKPOINT: u8 = 0xF4;
/// v2 only: `0xF5 <varint len> <bytes>` carries the footer index.
pub(crate) const TAG_FOOTER: u8 = 0xF5;
pub(crate) const TAG_END: u8 = 0xF7;
/// Operand ids `0..=28` ride inline in the tag; 29 escapes to a varint.
pub(crate) const OPERAND_ESCAPE: u8 = 29;

/// Serializes a materialized trace to the binary format: full
/// declaration header (threads, locks, vars — the normal form), then
/// the event records.
///
/// # Errors
///
/// Propagates I/O failures from `out`.
pub fn write_trace_binary<W: Write>(trace: &Trace, out: &mut W) -> std::io::Result<()> {
    write_source_binary(&mut trace.source(), out).map_err(|e| match e {
        WriteSourceError::Io(e) => e,
        WriteSourceError::Source(e) => {
            unreachable!("materialized traces never fail to stream: {e}")
        }
    })
}

/// Streams any [`EventSource`] to the binary format, in constant
/// memory.
///
/// Declaration records are emitted as soon as the source interns the
/// corresponding entity, always before the first event that references
/// it — the binary twin of [`crate::write_source`]'s interleaved `#!`
/// lines. Reading the output back yields an identical trace.
///
/// # Errors
///
/// Propagates the first source error or I/O failure.
pub fn write_source_binary<S, W>(source: &mut S, out: &mut W) -> Result<(), WriteSourceError>
where
    S: EventSource + ?Sized,
    W: Write,
{
    out.write_all(&BINARY_MAGIC)?;
    let mut emitted = EmittedMeta::default();
    flush_binary_meta(&mut emitted, source, out)?;
    let mut prev_tid: Option<ThreadId> = None;
    while let Some(event) = source.next_event()? {
        flush_binary_meta(&mut emitted, source, out)?;
        write_event_record(out, event, &mut prev_tid)?;
    }
    // Trailing declarations (silent entities, late thread counts), then
    // the final effective thread count: fork/join desugaring erases the
    // records that named a silent child, so a lazy source's observed
    // threads must be declared explicitly to survive the round trip.
    flush_binary_meta(&mut emitted, source, out)?;
    let threads = source.threads();
    if threads > emitted.threads {
        out.write_all(&[TAG_THREADS])?;
        write_varint(out, threads as u64)?;
    }
    out.write_all(&[TAG_END])?;
    Ok(())
}

/// Encodes one event record (tag byte, optional tid varint, optional
/// operand varint), threading the same-thread delta through `prev_tid`.
/// Shared verbatim by the v1 and v2 writers, which is what makes a
/// v1→v2→v1 conversion byte-identical.
///
/// `inline(always)`: both encode loops are sensitive to inlining
/// heuristics — letting this spill to a call measured as a discrete
/// several-ns-per-event cliff in v2 encode when the surrounding loop
/// grew by a few instructions.
#[inline(always)]
pub(crate) fn write_event_record<W: Write>(
    out: &mut W,
    event: Event,
    prev_tid: &mut Option<ThreadId>,
) -> std::io::Result<()> {
    let (kind_bits, operand) = match event.kind {
        EventKind::Read(v) => (0u8, v.index() as u64),
        EventKind::Write(v) => (1, v.index() as u64),
        EventKind::Acquire(l) => (2, l.index() as u64),
        EventKind::Release(l) => (3, l.index() as u64),
    };
    let same_tid = *prev_tid == Some(event.tid);
    let inline = if operand < OPERAND_ESCAPE as u64 {
        operand as u8
    } else {
        OPERAND_ESCAPE
    };
    // Assemble the whole record (tag + at most two 10-byte varints) on
    // the stack and hand the sink one contiguous write: three separate
    // `write_all` calls cost a capacity check each on a `Vec` sink,
    // and event records are the hot path of both encoders.
    let mut buf = [0u8; 21];
    buf[0] = kind_bits | (u8::from(same_tid) << 2) | (inline << 3);
    let mut len = 1;
    if !same_tid {
        len += put_varint(&mut buf[len..], event.tid.as_u32() as u64);
    }
    if inline == OPERAND_ESCAPE {
        len += put_varint(&mut buf[len..], operand);
    }
    out.write_all(&buf[..len])?;
    *prev_tid = Some(event.tid);
    Ok(())
}

/// Encodes `v` as a LEB128 varint into `buf` (identical byte output to
/// [`write_varint`]) and returns the encoded length. `buf` must have
/// room for 10 bytes.
#[inline]
fn put_varint(buf: &mut [u8], mut v: u64) -> usize {
    let mut len = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf[len] = byte;
            return len + 1;
        }
        buf[len] = byte | 0x80;
        len += 1;
    }
}

/// Emits declaration records for everything the source has interned
/// beyond what was already written.
///
/// `inline(always)` for the same reason as [`write_event_record`]: the
/// per-event call is three monomorphized count compares on the fast
/// path and must stay fused into the encode loops.
#[inline(always)]
pub(crate) fn flush_binary_meta<S, W>(
    emitted: &mut EmittedMeta,
    source: &S,
    out: &mut W,
) -> std::io::Result<()>
where
    S: EventSource + ?Sized,
    W: Write,
{
    let declared = source.declared_threads();
    if declared > emitted.threads {
        emitted.threads = declared;
        out.write_all(&[TAG_THREADS])?;
        write_varint(out, declared as u64)?;
    }
    for l in emitted.locks..source.lock_count() {
        write_name(out, TAG_DEF_LOCK, source.lock_name(l))?;
    }
    emitted.locks = source.lock_count();
    for v in emitted.vars..source.var_count() {
        write_name(out, TAG_DEF_VAR, source.var_name(v))?;
    }
    emitted.vars = source.var_count();
    Ok(())
}

/// The name constraints both codec directions enforce (writer with
/// `InvalidData`, reader with [`BinaryTraceError`]): a name must
/// re-parse as the same single operand when carried as `#! lock <name>`
/// / `op(<name>)` text, or conversion between the formats would
/// silently change the trace. [`TraceBuilder`](crate::TraceBuilder)
/// itself accepts arbitrary strings, so the check lives at the
/// serialization boundary.
fn validate_name(name: &str) -> Result<(), String> {
    if name.len() > 1 << 20 {
        return Err(format!("unreasonable name length {}", name.len()));
    }
    if name.is_empty() || name.trim() != name {
        return Err(format!(
            "name {name:?} is empty or has surrounding whitespace"
        ));
    }
    if name.chars().any(|c| c.is_control() || c == '(' || c == ')') {
        return Err(format!(
            "name {name:?} contains characters the text format cannot carry"
        ));
    }
    Ok(())
}

fn write_name<W: Write>(out: &mut W, tag: u8, name: &str) -> std::io::Result<()> {
    validate_name(name)
        .map_err(|reason| std::io::Error::new(std::io::ErrorKind::InvalidData, reason))?;
    out.write_all(&[tag])?;
    write_varint(out, name.len() as u64)?;
    out.write_all(name.as_bytes())
}

pub(crate) fn write_varint<W: Write>(out: &mut W, mut v: u64) -> std::io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return out.write_all(&[byte]);
        }
        out.write_all(&[byte | 0x80])?;
    }
}

/// An error from the binary decoder, pointing at the offending byte
/// offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinaryTraceError {
    /// Byte offset (from the start of the input) of the record that
    /// failed to decode.
    pub offset: u64,
    pub(crate) reason: String,
}

impl BinaryTraceError {
    /// Builds an error at `offset`. Public so the seeking/parallel
    /// layers above the streaming decoder (footer validation, parallel
    /// merge of per-segment name deltas) can report malformed input
    /// with the same shape the decoder uses.
    pub fn new(offset: u64, reason: impl Into<String>) -> Self {
        BinaryTraceError {
            offset,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for BinaryTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for BinaryTraceError {}

/// A streaming decoder for the binary trace format, mirroring
/// [`EventReader`](crate::EventReader) for the text format.
///
/// Implements [`EventSource`]; metadata (name tables, thread counts)
/// grows as declaration records are consumed and is complete by the end
/// of the stream. Decoding stops at the first malformed record; a
/// missing end marker (truncated input) is an error, so silent prefix
/// loss cannot masquerade as success.
#[derive(Debug)]
pub struct BinaryEventReader<R> {
    input: std::io::BufReader<R>,
    /// Byte offset of the next unread byte.
    offset: u64,
    /// Format version (1 or 2) negotiated from the magic.
    version: u32,
    /// Segment-slice mode: the input is the record body of one segment,
    /// so a clean EOF at a record boundary ends the stream (there is no
    /// end marker inside a segment).
    eof_ends_stream: bool,
    locks: Interner,
    vars: Interner,
    declared_threads: u32,
    observed_threads: u32,
    prev_tid: Option<ThreadId>,
    done: bool,
}

impl<R: Read> BinaryEventReader<R> {
    /// Creates a decoder, consuming and negotiating the magic prefix.
    ///
    /// # Errors
    ///
    /// Fails with "not a binary trace" if the input does not carry an
    /// `FTB` magic at all, and with "unsupported binary trace version
    /// `N`" if it carries a version this build cannot read — the two
    /// must stay distinct so a newer file is diagnosed as such instead
    /// of as garbage.
    pub fn new(input: R) -> Result<Self, BinaryTraceError> {
        let mut reader = BinaryEventReader {
            input: std::io::BufReader::new(input),
            offset: 0,
            version: 1,
            eof_ends_stream: false,
            locks: Interner::default(),
            vars: Interner::default(),
            declared_threads: 0,
            observed_threads: 0,
            prev_tid: None,
            done: false,
        };
        let mut magic = [0u8; 8];
        reader
            .input
            .read_exact(&mut magic)
            .map_err(|e| reader.fail(format!("cannot read magic: {e}")))?;
        reader.offset = 8;
        match magic_version(&magic) {
            Some(v @ (1 | 2)) => reader.version = v,
            Some(v) => {
                return Err(reader.fail(format!(
                    "unsupported binary trace version {v} (this build reads 1 and 2)"
                )))
            }
            None => return Err(reader.fail("not a binary trace (bad magic)".to_owned())),
        }
        Ok(reader)
    }

    /// The negotiated format version (1 or 2).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Builds a decoder over the record body of one v2 segment (no
    /// magic, no end marker): names decoded so far are pre-seeded so
    /// operand ids resolve, `base_offset` keeps error offsets absolute,
    /// and a clean EOF at a record boundary ends the stream.
    pub(crate) fn for_segment(
        input: R,
        base_offset: u64,
        locks: Interner,
        vars: Interner,
        declared_threads: u32,
    ) -> Self {
        BinaryEventReader {
            input: std::io::BufReader::new(input),
            offset: base_offset,
            version: 2,
            eof_ends_stream: true,
            locks,
            vars,
            declared_threads,
            observed_threads: 0,
            prev_tid: None,
            done: false,
        }
    }

    fn fail(&mut self, reason: String) -> BinaryTraceError {
        self.done = true;
        BinaryTraceError {
            offset: self.offset,
            reason,
        }
    }

    fn read_byte(&mut self) -> Result<u8, BinaryTraceError> {
        let mut byte = [0u8];
        match self.input.read_exact(&mut byte) {
            Ok(()) => {
                self.offset += 1;
                Ok(byte[0])
            }
            Err(e) => Err(self.fail(format!("truncated input: {e}"))),
        }
    }

    /// Reads the next record's tag byte; `Ok(None)` at a clean EOF in
    /// segment-slice mode, where the slice end plays the role of the
    /// end marker.
    fn read_tag(&mut self) -> Result<Option<u8>, BinaryTraceError> {
        let mut byte = [0u8];
        match self.input.read_exact(&mut byte) {
            Ok(()) => {
                self.offset += 1;
                Ok(Some(byte[0]))
            }
            Err(e) if self.eof_ends_stream && e.kind() == std::io::ErrorKind::UnexpectedEof => {
                Ok(None)
            }
            Err(e) => Err(self.fail(format!("truncated input: {e}"))),
        }
    }

    /// Skips `len` payload bytes (checkpoint/footer records the
    /// sequential pass does not interpret). Bounded buffer: `len` comes
    /// from untrusted input and must not size an allocation.
    fn skip_bytes(&mut self, len: u64) -> Result<(), BinaryTraceError> {
        let mut buf = [0u8; 512];
        let mut remaining = len;
        while remaining > 0 {
            let n = remaining.min(buf.len() as u64) as usize;
            if let Err(e) = self.input.read_exact(&mut buf[..n]) {
                return Err(self.fail(format!("truncated input: {e}")));
            }
            self.offset += n as u64;
            remaining -= n as u64;
        }
        Ok(())
    }

    fn read_varint(&mut self) -> Result<u64, BinaryTraceError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.read_byte()?;
            // The 10th byte may only carry the top bit of a u64; a
            // larger payload (or a continuation) would be silently
            // truncated by the shift, so reject it as malformed.
            if shift == 63 && byte > 1 {
                return Err(self.fail("varint overflows u64".to_owned()));
            }
            value |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(self.fail("varint overflows u64".to_owned()))
    }

    /// Reads a definition record's name, enforcing [`validate_name`]'s
    /// constraints (duplicates are rejected at the call site): a
    /// foreign `.ftb` with a metacharacter-laden name is rejected here
    /// rather than silently turning into a *different* trace after a
    /// text round trip. The writer enforces the same rules, so the
    /// codec's own output always decodes.
    fn read_name(&mut self) -> Result<String, BinaryTraceError> {
        let len = self.read_varint()?;
        if len > 1 << 20 {
            return Err(self.fail(format!("unreasonable name length {len}")));
        }
        let mut bytes = vec![0u8; len as usize];
        if let Err(e) = self.input.read_exact(&mut bytes) {
            return Err(self.fail(format!("truncated name: {e}")));
        }
        self.offset += len;
        let name =
            String::from_utf8(bytes).map_err(|e| self.fail(format!("name is not UTF-8: {e}")))?;
        validate_name(&name).map_err(|reason| self.fail(reason))?;
        Ok(name)
    }

    fn decode_event(&mut self, tag: u8) -> Result<Event, BinaryTraceError> {
        let kind_bits = tag & 0b11;
        let same_tid = tag & 0b100 != 0;
        let inline = tag >> 3;
        let tid = if same_tid {
            match self.prev_tid {
                Some(tid) => tid,
                None => return Err(self.fail("same-thread bit with no previous event".to_owned())),
            }
        } else {
            let raw = self.read_varint()?;
            // `>=` because thread *counts* (`tid + 1`) must fit a u32
            // too; u32::MAX itself would overflow observed_threads.
            if raw >= u32::MAX as u64 {
                return Err(self.fail(format!("thread id {raw} overflows u32")));
            }
            ThreadId::new(raw as u32)
        };
        let operand = if inline == OPERAND_ESCAPE {
            self.read_varint()?
        } else {
            inline as u64
        };
        if operand > u32::MAX as u64 {
            return Err(self.fail(format!("operand id {operand} overflows u32")));
        }
        let operand = operand as u32;
        let (defined, what) = if kind_bits < 2 {
            (self.vars.len(), "var")
        } else {
            (self.locks.len(), "lock")
        };
        if operand as usize >= defined {
            return Err(self.fail(format!(
                "{what} id {operand} not yet defined (have {defined})"
            )));
        }
        let kind = match kind_bits {
            0 => EventKind::Read(VarId::new(operand)),
            1 => EventKind::Write(VarId::new(operand)),
            2 => EventKind::Acquire(LockId::new(operand)),
            _ => EventKind::Release(LockId::new(operand)),
        };
        self.prev_tid = Some(tid);
        self.observed_threads = self.observed_threads.max(tid.as_u32() + 1);
        Ok(Event::new(tid, kind))
    }
}

impl<R: Read> EventSource for BinaryEventReader<R> {
    fn next_event(&mut self) -> Result<Option<Event>, SourceError> {
        loop {
            if self.done {
                return Ok(None);
            }
            let Some(tag) = self.read_tag()? else {
                self.done = true;
                return Ok(None);
            };
            match tag {
                TAG_END => {
                    self.done = true;
                    return Ok(None);
                }
                TAG_DEF_LOCK => {
                    let name = self.read_name()?;
                    if self.locks.contains(&name) {
                        return Err(self
                            .fail(format!("duplicate definition of lock {name:?}"))
                            .into());
                    }
                    self.locks.push(name);
                }
                TAG_DEF_VAR => {
                    let name = self.read_name()?;
                    if self.vars.contains(&name) {
                        return Err(self
                            .fail(format!("duplicate definition of var {name:?}"))
                            .into());
                    }
                    self.vars.push(name);
                }
                TAG_THREADS => {
                    let n = self.read_varint()?;
                    if n > u32::MAX as u64 {
                        return Err(self.fail(format!("thread count {n} overflows u32")).into());
                    }
                    self.declared_threads = self.declared_threads.max(n as u32);
                }
                TAG_SEGMENT if self.version >= 2 => {
                    // Sequential readers only need the boundary's one
                    // semantic effect: the same-thread delta resets, so
                    // each segment decodes without its predecessors.
                    let _index = self.read_varint()?;
                    self.prev_tid = None;
                }
                TAG_CHECKPOINT if self.version >= 2 => {
                    let len = self.read_varint()?;
                    self.skip_bytes(len)?;
                }
                TAG_FOOTER if self.version >= 2 => {
                    let len = self.read_varint()?;
                    self.skip_bytes(len)?;
                }
                tag if tag >= TAG_DEF_LOCK => {
                    return Err(self.fail(format!("unknown record tag {tag:#04x}")).into());
                }
                tag => return Ok(Some(self.decode_event(tag)?)),
            }
        }
    }

    fn declared_threads(&self) -> u32 {
        self.declared_threads
    }

    fn observed_threads(&self) -> u32 {
        self.observed_threads
    }

    fn lock_count(&self) -> usize {
        self.locks.len()
    }

    fn var_count(&self) -> usize {
        self.vars.len()
    }

    fn lock_name(&self, index: usize) -> &str {
        self.locks.name(index)
    }

    fn var_name(&self, index: usize) -> &str {
        self.vars.name(index)
    }
}

/// Parses a complete binary trace from a byte slice — the batch
/// convenience over [`BinaryEventReader`], mirroring
/// [`read_trace`](crate::read_trace).
///
/// # Errors
///
/// Returns the first malformed record (as a [`SourceError::Binary`]).
pub fn read_trace_binary(bytes: &[u8]) -> Result<Trace, SourceError> {
    let mut reader = BinaryEventReader::new(bytes)?;
    Trace::from_source(&mut reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{read_trace, write_trace, TraceBuilder};

    fn sample() -> Trace {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("silent-var");
        let l = b.lock("l");
        b.acquire(0, l).write(0, x).release(0, l);
        b.read(1, x);
        b.fork(1, 2);
        b.write(2, x);
        b.join(1, 2);
        b.declare_threads(7);
        let _ = y;
        b.build()
    }

    fn assert_traces_equal(a: &Trace, b: &Trace) {
        assert_eq!(a.events(), b.events());
        assert_eq!(a.thread_count(), b.thread_count());
        assert_eq!(a.lock_count(), b.lock_count());
        assert_eq!(a.var_count(), b.var_count());
        for l in 0..a.lock_count() {
            assert_eq!(a.lock_name(l), b.lock_name(l));
        }
        for v in 0..a.var_count() {
            assert_eq!(a.var_name(v), b.var_name(v));
        }
    }

    #[test]
    fn read_write_is_the_identity() {
        let trace = sample();
        let mut bytes = Vec::new();
        write_trace_binary(&trace, &mut bytes).unwrap();
        let back = read_trace_binary(&bytes).unwrap();
        assert_traces_equal(&trace, &back);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = TraceBuilder::new().build();
        let mut bytes = Vec::new();
        write_trace_binary(&trace, &mut bytes).unwrap();
        assert_eq!(bytes.len(), 9); // magic + end marker
        let back = read_trace_binary(&bytes).unwrap();
        assert_traces_equal(&trace, &back);
    }

    #[test]
    fn magic_is_detected_and_enforced() {
        let trace = sample();
        let mut bytes = Vec::new();
        write_trace_binary(&trace, &mut bytes).unwrap();
        assert!(is_binary_trace(&bytes));
        assert!(!is_binary_trace(b"#! threads 2\n"));
        assert!(!is_binary_trace(&bytes[..4]));
        let err = BinaryEventReader::new(&b"not a binary trace"[..]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn truncated_input_is_an_error_not_a_short_trace() {
        let trace = sample();
        let mut bytes = Vec::new();
        write_trace_binary(&trace, &mut bytes).unwrap();
        // Drop the end marker and the last event.
        bytes.truncate(bytes.len() - 3);
        let mut reader = BinaryEventReader::new(&bytes[..]).unwrap();
        let err = Trace::from_source(&mut reader).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn overlong_varints_are_rejected_not_truncated() {
        // 9 continuation bytes then 0x02: at shift 63 only bit 0 fits,
        // so this encoding would silently decode to 0 if accepted.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BINARY_MAGIC);
        bytes.push(TAG_DEF_VAR);
        bytes.push(1);
        bytes.push(b'x');
        bytes.push(0b0000_0000); // read of var 0, explicit tid follows
        bytes.extend_from_slice(&[0x80; 9]);
        bytes.push(0x02);
        bytes.push(TAG_END);
        let mut reader = BinaryEventReader::new(&bytes[..]).unwrap();
        let err = reader.next_event().unwrap_err();
        assert!(err.to_string().contains("varint"), "{err}");
        // An 11-byte varint (continuation past the 10th byte) is also
        // malformed, not an infinite accumulation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BINARY_MAGIC);
        bytes.push(TAG_THREADS);
        bytes.extend_from_slice(&[0x80; 10]);
        bytes.push(0x01);
        bytes.push(TAG_END);
        let mut reader = BinaryEventReader::new(&bytes[..]).unwrap();
        let err = reader.next_event().unwrap_err();
        assert!(err.to_string().contains("varint"), "{err}");
    }

    #[test]
    fn metacharacter_and_duplicate_names_are_rejected() {
        // Names the text format cannot carry back would turn a binary
        // trace into a *different* trace after `convert --to text`.
        for bad in ["a)", "a(b", "a\nT9|w(b", " padded ", ""] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&BINARY_MAGIC);
            bytes.push(TAG_DEF_VAR);
            bytes.push(bad.len() as u8);
            bytes.extend_from_slice(bad.as_bytes());
            bytes.push(TAG_END);
            let mut reader = BinaryEventReader::new(&bytes[..]).unwrap();
            let err = reader.next_event().unwrap_err();
            assert!(
                err.to_string().contains("name"),
                "{bad:?} should be rejected, got {err}"
            );
        }
        // A duplicate definition would be merged by the text reader's
        // interner on re-parse, silently fusing two distinct variables.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BINARY_MAGIC);
        for _ in 0..2 {
            bytes.push(TAG_DEF_LOCK);
            bytes.push(1);
            bytes.push(b'l');
        }
        bytes.push(TAG_END);
        let mut reader = BinaryEventReader::new(&bytes[..]).unwrap();
        let err = reader.next_event().unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn undefined_operand_ids_are_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BINARY_MAGIC);
        // A read of var 0 with no definition record.
        bytes.push(0b0000_0000);
        bytes.push(0); // tid varint
        bytes.push(TAG_END);
        let mut reader = BinaryEventReader::new(&bytes[..]).unwrap();
        let err = reader.next_event().unwrap_err();
        assert!(err.to_string().contains("not yet defined"), "{err}");
    }

    #[test]
    fn lazy_writer_defines_names_before_first_use() {
        // Stream a headerless text trace straight into the binary
        // writer: definitions are interleaved, and decoding yields the
        // same trace as batch text parsing.
        let text = "T0|w(x)\nT0|acq(l)\nT0|rel(l)\nT1|r(y)\nT1|fork(3)\n";
        let mut reader = crate::EventReader::new(text.as_bytes());
        let mut bytes = Vec::new();
        write_source_binary(&mut reader, &mut bytes).unwrap();
        let back = read_trace_binary(&bytes).unwrap();
        let batch = read_trace(text).unwrap();
        assert_traces_equal(&batch, &back);
    }

    #[test]
    fn binary_is_denser_than_text() {
        let trace = sample();
        let text = write_trace(&trace);
        let mut bytes = Vec::new();
        write_trace_binary(&trace, &mut bytes).unwrap();
        assert!(
            bytes.len() < text.len(),
            "binary {} >= text {}",
            bytes.len(),
            text.len()
        );
    }

    #[test]
    fn varints_round_trip_large_ids() {
        let mut b = TraceBuilder::new();
        // Force operand ids past the inline window and a large tid.
        let vars: Vec<_> = (0..40).map(|v| b.var(&format!("v{v}"))).collect();
        b.write(300, vars[35]);
        b.read(300, vars[39]);
        b.write(2, vars[0]);
        let trace = b.build();
        let mut bytes = Vec::new();
        write_trace_binary(&trace, &mut bytes).unwrap();
        let back = read_trace_binary(&bytes).unwrap();
        assert_traces_equal(&trace, &back);
    }
}
