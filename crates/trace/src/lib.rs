//! Event and execution-trace substrate for sampling-based race detection.
//!
//! This crate provides the program-execution model of Section 2 of
//! *"Efficient Timestamping for Sampling-Based Race Detection"*: an
//! execution is a sequence of [`Event`]s, each a read/write of a memory
//! location or an acquire/release of a lock, performed by some thread.
//!
//! Thread fork/join is desugared by [`TraceBuilder`] into acquire/release
//! pairs on dedicated single-use *token locks*, which is how offline
//! analysis frameworks such as RAPID encode them; the detectors in
//! `freshtrack-core` therefore only ever see the four core operations.
//!
//! Trace I/O is built around the streaming [`EventSource`] seam: the
//! text format ([`EventReader`], [`read_trace`]/[`write_trace`]) and
//! the binary `.ftb` format ([`BinaryEventReader`],
//! [`read_trace_binary`]/[`write_trace_binary`]) both stream in
//! constant memory and both satisfy `read ∘ write = identity` —
//! entity tables, id assignment and silent threads survive the round
//! trip. [`Validated`] adds an `O(L)` on-the-fly locking-discipline
//! check to any source, and [`Trace::from_source`] materializes one.
//!
//! # Example
//!
//! ```
//! use freshtrack_trace::{EventKind, TraceBuilder};
//!
//! let mut b = TraceBuilder::new();
//! let x = b.var("x");
//! let l = b.lock("l");
//! b.acquire(0, l).write(0, x).release(0, l);
//! b.acquire(1, l).read(1, x).release(1, l);
//! let trace = b.build();
//!
//! assert_eq!(trace.len(), 6);
//! assert_eq!(trace.thread_count(), 2);
//! assert!(matches!(trace[1].kind, EventKind::Write(v) if v == x));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod builder;
mod cache;
mod event;
mod io;
mod segmented;
mod source;
mod stats;
mod stream;
mod trace;

pub use binary::{
    is_binary_trace, read_trace_binary, write_source_binary, write_trace_binary, BinaryEventReader,
    BinaryTraceError, BINARY_MAGIC, BINARY_MAGIC_V2,
};
pub use builder::TraceBuilder;
pub use cache::{AnalysisCache, CacheConfig, CacheEntry, CacheError, CACHE_MAGIC};
pub use event::{Event, EventId, EventKind, LockId, VarId};
pub use io::{read_trace, write_source, write_trace, ParseTraceError, WriteSourceError};
pub use segmented::{
    decode_segment, decode_segment_indexed, write_source_binary_v2, write_trace_binary_v2,
    SegmentData, SegmentMeta, SegmentOptions, SegmentedTraceFile, SyncCheckpoint,
};
pub use source::{EventSource, SourceError, TraceSource, Validated};
pub use stats::TraceStats;
pub use stream::EventReader;
pub use trace::{DisciplineChecker, Trace, ValidateTraceError};

pub use freshtrack_clock::ThreadId;
