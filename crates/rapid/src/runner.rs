use freshtrack_core::Counters;
use freshtrack_workloads::CorpusBenchmark;

use crate::{run_engine, EngineConfig};

/// Aggregated results of one engine over one benchmark across
/// repetitions.
#[derive(Clone, Debug)]
pub struct BenchmarkSummary {
    /// Benchmark name.
    pub benchmark: String,
    /// Engine label (`SU-(3%)` etc.).
    pub engine: String,
    /// Number of repetitions aggregated.
    pub runs: u32,
    /// Counters summed over all repetitions (ratios therefore average
    /// with event-count weighting, like the paper's aggregate plots).
    pub counters: Counters,
    /// Mean number of distinct racy locations per run.
    pub mean_racy_locations: f64,
    /// Mean analysis wall time per run, in seconds.
    pub mean_seconds: f64,
}

/// Runs the cross-product experiment: every benchmark × every engine ×
/// `reps` repetitions.
///
/// Repetition `r` uses trace seed `r` and sampler seed `r` for *all*
/// engines, so engines are compared on identical traces with identical
/// sample sets — the paper's "same sequence of seeds … apples-to-apples"
/// setup. `scale` scales trace sizes (1.0 = corpus default).
pub fn run_offline(
    benchmarks: &[CorpusBenchmark],
    engines: &[EngineConfig],
    reps: u32,
    scale: f64,
) -> Vec<BenchmarkSummary> {
    let mut out = Vec::with_capacity(benchmarks.len() * engines.len());
    for bench in benchmarks {
        // Generate each repetition's trace once, reuse for all engines.
        let traces: Vec<_> = (0..reps).map(|r| bench.trace(scale, r as u64)).collect();
        for engine in engines {
            let mut counters = Counters::new();
            let mut racy = 0.0;
            let mut seconds = 0.0;
            for (r, trace) in traces.iter().enumerate() {
                let run = run_engine(trace, &engine.with_seed(r as u64));
                counters += run.counters;
                racy += run.racy_locations() as f64;
                seconds += run.elapsed.as_secs_f64();
            }
            out.push(BenchmarkSummary {
                benchmark: bench.name.to_owned(),
                engine: engine.label(),
                runs: reps,
                counters,
                mean_racy_locations: racy / reps as f64,
                mean_seconds: seconds / reps as f64,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineKind;
    use freshtrack_workloads::corpus::corpus;

    #[test]
    fn cross_product_shape() {
        let benchmarks: Vec<_> = corpus().into_iter().take(2).collect();
        let engines = [
            EngineConfig::new(EngineKind::Su, 0.03, 0),
            EngineConfig::new(EngineKind::So, 0.03, 0),
        ];
        let summaries = run_offline(&benchmarks, &engines, 2, 0.05);
        assert_eq!(summaries.len(), 4);
        assert!(summaries.iter().all(|s| s.runs == 2));
        assert!(summaries.iter().all(|s| s.counters.events > 0));
    }

    #[test]
    fn identical_seeds_mean_identical_sample_sets() {
        let benchmarks: Vec<_> = corpus().into_iter().take(1).collect();
        let engines = [
            EngineConfig::new(EngineKind::St, 0.5, 0),
            EngineConfig::new(EngineKind::So, 0.5, 0),
        ];
        let summaries = run_offline(&benchmarks, &engines, 2, 0.05);
        assert_eq!(
            summaries[0].counters.sampled_accesses,
            summaries[1].counters.sampled_accesses
        );
        assert_eq!(summaries[0].counters.races, summaries[1].counters.races);
    }
}
