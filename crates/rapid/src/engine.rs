use std::collections::HashSet;
use std::time::{Duration, Instant};

use freshtrack_core::{
    Counters, Detector, DjitDetector, FastTrackDetector, FreshnessDetector, NaiveSamplingDetector,
    OrderedListDetector, RaceReport,
};
use freshtrack_sampling::BernoulliSampler;
use freshtrack_trace::{EventSource, SourceError, Trace};

/// The detector engines of the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// FastTrack with full detection (the paper's **FT**; the rate is
    /// ignored and treated as 100%).
    FastTrack,
    /// Naive sampling on unmodified synchronization handlers (the
    /// paper's **ST**): Djit+ sync handling, accesses sampled.
    St,
    /// Algorithm 2: sampling timestamps without freshness (reference
    /// engine; not in the paper's figures but useful for ablation).
    Sam,
    /// Algorithm 3 (**SU**): freshness timestamps.
    Su,
    /// Algorithm 4 (**SO**): ordered lists + lazy copy.
    So,
    /// Algorithm 4 without the local-epoch optimization (ablation).
    SoPlain,
}

impl EngineKind {
    /// The engine's short name as used in the paper.
    pub fn short_name(self) -> &'static str {
        match self {
            EngineKind::FastTrack => "FT",
            EngineKind::St => "ST",
            EngineKind::Sam => "SAM",
            EngineKind::Su => "SU",
            EngineKind::So => "SO",
            EngineKind::SoPlain => "SO-noepoch",
        }
    }
}

/// An engine × sampling-rate × seed configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Which engine to run.
    pub kind: EngineKind,
    /// Sampling rate in `[0, 1]`.
    pub rate: f64,
    /// Sampler seed (keep equal across engines for apples-to-apples
    /// comparisons).
    pub seed: u64,
}

impl EngineConfig {
    /// Creates a configuration.
    pub fn new(kind: EngineKind, rate: f64, seed: u64) -> Self {
        EngineConfig { kind, rate, seed }
    }

    /// The paper's label style: `SU-(3%)`, `SO-(0.3%)`, `FT`.
    pub fn label(&self) -> String {
        if matches!(self.kind, EngineKind::FastTrack) {
            return "FT".to_owned();
        }
        let pct = self.rate * 100.0;
        let pct = if (pct - pct.round()).abs() < 1e-9 && pct >= 1.0 {
            format!("{}", pct.round() as u64)
        } else {
            format!("{pct}")
        };
        format!("{}-({pct}%)", self.kind.short_name())
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The outcome of one engine run over one trace.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// Display label (`SO-(3%)` etc.).
    pub label: String,
    /// All race reports, in trace order.
    pub reports: Vec<RaceReport>,
    /// The detector's work counters.
    pub counters: Counters,
    /// Wall-clock analysis time.
    pub elapsed: Duration,
}

impl EngineRun {
    /// Number of distinct racy memory locations (the metric of
    /// Fig. 6(a)).
    pub fn racy_locations(&self) -> usize {
        self.reports
            .iter()
            .map(|r| r.var)
            .collect::<HashSet<_>>()
            .len()
    }
}

/// Runs one engine configuration over a streaming [`EventSource`] —
/// the primary entry point; the engine never materializes the trace,
/// so corpus files stream through in constant memory.
///
/// Event numbering is by stream position, so running over a trace file
/// and over the same trace materialized produce identical reports
/// (with identical sample sets: the sampler is seeded per config, not
/// per input representation).
///
/// # Errors
///
/// Propagates the first error the source reports.
pub fn run_engine_source(
    source: &mut dyn EventSource,
    config: &EngineConfig,
) -> Result<EngineRun, SourceError> {
    let sampler = BernoulliSampler::new(
        if matches!(config.kind, EngineKind::FastTrack) {
            1.0
        } else {
            config.rate
        },
        config.seed,
    );
    fn drive<D: Detector>(
        mut d: D,
        source: &mut dyn EventSource,
    ) -> Result<(Vec<RaceReport>, Counters), SourceError> {
        let reports = d.run_source(source)?;
        Ok((reports, *d.counters()))
    }
    let start = Instant::now();
    let (reports, counters) = match config.kind {
        EngineKind::FastTrack => drive(FastTrackDetector::new(sampler), source)?,
        EngineKind::St => drive(DjitDetector::new(sampler), source)?,
        EngineKind::Sam => drive(NaiveSamplingDetector::new(sampler), source)?,
        EngineKind::Su => drive(FreshnessDetector::new(sampler), source)?,
        EngineKind::So => drive(OrderedListDetector::new(sampler), source)?,
        EngineKind::SoPlain => drive(OrderedListDetector::with_options(sampler, false), source)?,
    };
    Ok(EngineRun {
        label: config.label(),
        reports,
        counters,
        elapsed: start.elapsed(),
    })
}

/// Runs one engine configuration over a materialized trace — a thin
/// wrapper over [`run_engine_source`] driving the trace's source view.
pub fn run_engine(trace: &Trace, config: &EngineConfig) -> EngineRun {
    run_engine_source(&mut trace.source(), config)
        .expect("materialized traces never fail to stream")
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshtrack_workloads::{generate, WorkloadConfig};

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(
            EngineConfig::new(EngineKind::Su, 0.03, 0).label(),
            "SU-(3%)"
        );
        assert_eq!(
            EngineConfig::new(EngineKind::So, 0.003, 0).label(),
            "SO-(0.3%)"
        );
        assert_eq!(
            EngineConfig::new(EngineKind::So, 1.0, 0).label(),
            "SO-(100%)"
        );
        assert_eq!(
            EngineConfig::new(EngineKind::FastTrack, 1.0, 0).label(),
            "FT"
        );
        assert_eq!(
            EngineConfig::new(EngineKind::St, 0.1, 0).label(),
            "ST-(10%)"
        );
    }

    #[test]
    fn sampling_engines_agree_on_reports() {
        let trace = generate(&WorkloadConfig::named("t").events(4_000).unprotected(0.05));
        let runs: Vec<EngineRun> = [
            EngineKind::St,
            EngineKind::Sam,
            EngineKind::Su,
            EngineKind::So,
        ]
        .iter()
        .map(|&kind| run_engine(&trace, &EngineConfig::new(kind, 0.5, 9)))
        .collect();
        for pair in runs.windows(2) {
            assert_eq!(pair[0].reports, pair[1].reports);
        }
    }

    #[test]
    fn streamed_and_materialized_runs_agree() {
        use freshtrack_trace::{write_trace, EventReader};
        let trace = generate(&WorkloadConfig::named("t").events(3_000).unprotected(0.1));
        let text = write_trace(&trace);
        for kind in [EngineKind::FastTrack, EngineKind::So] {
            let config = EngineConfig::new(kind, 0.5, 3);
            let materialized = run_engine(&trace, &config);
            let mut reader = EventReader::new(text.as_bytes());
            let streamed = run_engine_source(&mut reader, &config).unwrap();
            assert_eq!(materialized.reports, streamed.reports);
            assert_eq!(materialized.counters, streamed.counters);
        }
    }

    #[test]
    fn racy_locations_deduplicate() {
        let trace = generate(
            &WorkloadConfig::named("t")
                .events(3_000)
                .unprotected(0.3)
                .vars(4)
                .hot_fraction(1.0),
        );
        let run = run_engine(&trace, &EngineConfig::new(EngineKind::FastTrack, 1.0, 0));
        assert!(run.racy_locations() <= 4);
        assert!(run.racy_locations() >= 1);
        assert!(run.reports.len() >= run.racy_locations());
    }
}
