//! Offline analysis runner — the RAPID stand-in.
//!
//! The paper's appendix runs four engines (SU/SO at 3% and 100%) over a
//! corpus of execution traces, thirty times each with fixed seed
//! sequences, and reports fine-grained operation counts. This crate
//! provides that harness:
//!
//! * [`EngineConfig`] — a detector engine × sampling-rate configuration
//!   with the paper's naming (`SU-(3%)`, `SO-(100%)`, …).
//! * [`run_engine`] — run one engine over one trace, returning reports,
//!   counters and wall time.
//! * [`run_offline`] — the full cross-product experiment: benchmarks ×
//!   engines × repetitions, with *identical seed sequences across
//!   engines* so every engine analyzes the same traces with the same
//!   sample sets.
//! * [`report`] — fixed-width tables and ASCII bars for harness output.
//!
//! # Example
//!
//! ```
//! use freshtrack_rapid::{run_engine, EngineConfig, EngineKind};
//! use freshtrack_workloads::{generate, WorkloadConfig};
//!
//! let trace = generate(&WorkloadConfig::named("demo").events(2_000));
//! let run = run_engine(&trace, &EngineConfig::new(EngineKind::So, 0.03, 7));
//! assert_eq!(run.label, "SO-(3%)");
//! assert!(run.counters.events as usize == trace.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod report;
mod runner;

pub use engine::{run_engine, run_engine_source, EngineConfig, EngineKind, EngineRun};
pub use runner::{run_offline, BenchmarkSummary};
