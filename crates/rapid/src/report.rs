//! Fixed-width tables and ASCII bars for experiment output.
//!
//! The benchmark harnesses print the same *series* the paper plots;
//! these helpers keep that output aligned and diff-able.

use std::fmt::Write as _;

/// A simple fixed-width text table.
///
/// # Example
///
/// ```
/// use freshtrack_rapid::report::Table;
///
/// let mut t = Table::new(&["bench", "ratio"]);
/// t.row(&["tpcc", "0.42"]);
/// let s = t.render();
/// assert!(s.contains("bench"));
/// assert!(s.contains("tpcc"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extras are dropped.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns (first column left-aligned, the rest
    /// right-aligned).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(cols).enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, &width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(out, "{cell:<width$}");
                } else {
                    let _ = write!(out, "  {cell:>width$}");
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// An ASCII bar of the given ratio (`0.0..=1.0`) and width.
///
/// # Example
///
/// ```
/// use freshtrack_rapid::report::bar;
/// assert_eq!(bar(0.5, 8), "####....");
/// ```
pub fn bar(ratio: f64, width: usize) -> String {
    let filled = ((ratio.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut s = "#".repeat(filled.min(width));
    s.push_str(&".".repeat(width - filled.min(width)));
    s
}

/// Formats a float with 3 significant decimals, stripping noise.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer-name", "123456"]);
        let s = t.render();
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows the same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
        assert!(lines[3].ends_with("123456"));
    }

    #[test]
    fn bar_clamps_out_of_range() {
        assert_eq!(bar(-1.0, 4), "....");
        assert_eq!(bar(2.0, 4), "####");
        assert_eq!(bar(0.25, 4), "#...");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(pct(0.1234), "12.3%");
    }
}
