use freshtrack_sampling::Sampler;
use freshtrack_trace::{EventId, EventKind, Trace};

/// A ground-truth happens-before oracle for testing.
///
/// The oracle computes the full `≤HB` relation of a trace by explicit
/// ancestor-set propagation over the HB edge graph (thread-order edges
/// plus release→next-acquire edges per lock) — a method entirely
/// independent of the streaming vector-clock algorithms it is used to
/// validate. Memory is `O(N²)` bits, so this is strictly a testing
/// device for small and medium traces.
///
/// # Example
///
/// ```
/// use freshtrack_core::HbOracle;
/// use freshtrack_trace::{EventId, TraceBuilder};
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// let l = b.lock("l");
/// b.acquire(0, l).write(0, x).release(0, l);
/// b.acquire(1, l).write(1, x).release(1, l);
/// let trace = b.build();
/// let oracle = HbOracle::new(&trace);
/// // The first write happens-before the second via the lock.
/// assert!(oracle.happens_before(EventId::new(1), EventId::new(4)));
/// assert!(!oracle.has_race(&vec![true; trace.len()]));
/// ```
#[derive(Clone, Debug)]
pub struct HbOracle {
    /// `anc[e]` = bitset of events `f` with `f ≤HB e` (including `e`).
    anc: Vec<BitSet>,
    kinds: Vec<(u32, EventKind)>,
}

impl HbOracle {
    /// Builds the oracle for a trace.
    pub fn new(trace: &Trace) -> Self {
        let n = trace.len();
        let mut anc: Vec<BitSet> = Vec::with_capacity(n);
        let mut last_of_thread: Vec<Option<usize>> = vec![None; trace.thread_count()];
        let mut last_release: Vec<Option<usize>> = vec![None; trace.lock_count()];
        let mut kinds = Vec::with_capacity(n);

        for (idx, event) in trace.events().iter().enumerate() {
            let mut set = BitSet::new(n);
            set.insert(idx);
            if let Some(prev) = last_of_thread[event.tid.index()] {
                set.union_with(&anc[prev]);
            }
            if let EventKind::Acquire(l) = event.kind {
                if let Some(rel) = last_release[l.index()] {
                    set.union_with(&anc[rel]);
                }
            }
            last_of_thread[event.tid.index()] = Some(idx);
            if let EventKind::Release(l) = event.kind {
                last_release[l.index()] = Some(idx);
            }
            anc.push(set);
            kinds.push((event.tid.as_u32(), event.kind));
        }
        HbOracle { anc, kinds }
    }

    /// Number of events covered.
    pub fn len(&self) -> usize {
        self.anc.len()
    }

    /// Returns `true` for the empty trace.
    pub fn is_empty(&self) -> bool {
        self.anc.is_empty()
    }

    /// `a ≤HB b` (reflexive).
    pub fn happens_before(&self, a: EventId, b: EventId) -> bool {
        self.anc[b.index()].contains(a.index())
    }

    /// Do events `a` and `b` conflict (same location, different threads,
    /// at least one write)?
    pub fn conflicting(&self, a: EventId, b: EventId) -> bool {
        let (ta, ka) = self.kinds[a.index()];
        let (tb, kb) = self.kinds[b.index()];
        if ta == tb {
            return false;
        }
        match (ka.var(), kb.var()) {
            (Some(va), Some(vb)) if va == vb => {
                matches!(ka, EventKind::Write(_)) || matches!(kb, EventKind::Write(_))
            }
            _ => false,
        }
    }

    /// All racy pairs `(e₁, e₂)` among events marked in `sampled`
    /// (`e₁ <tr e₂`, conflicting, unordered).
    pub fn racy_pairs(&self, sampled: &[bool]) -> Vec<(EventId, EventId)> {
        let mut pairs = Vec::new();
        for b in 0..self.len() {
            if !sampled[b] {
                continue;
            }
            for (a, &a_sampled) in sampled.iter().enumerate().take(b) {
                if !a_sampled {
                    continue;
                }
                let (ea, eb) = (EventId::new(a as u64), EventId::new(b as u64));
                if self.conflicting(ea, eb) && !self.happens_before(ea, eb) {
                    pairs.push((ea, eb));
                }
            }
        }
        pairs
    }

    /// The events that race with some *earlier* sampled event — the
    /// events at which a sound streaming detector may report.
    pub fn racy_events(&self, sampled: &[bool]) -> Vec<EventId> {
        let mut racy = Vec::new();
        for b in 0..self.len() {
            if !sampled[b] {
                continue;
            }
            let eb = EventId::new(b as u64);
            let has = (0..b).any(|a| {
                sampled[a] && {
                    let ea = EventId::new(a as u64);
                    self.conflicting(ea, eb) && !self.happens_before(ea, eb)
                }
            });
            if has {
                racy.push(eb);
            }
        }
        racy
    }

    /// Is there any race among the sampled events?
    pub fn has_race(&self, sampled: &[bool]) -> bool {
        !self.racy_events(sampled).is_empty()
    }

    /// Runs a sampler over the trace to produce the sampled-event mask
    /// the oracle methods expect (sync events are never sampled).
    pub fn sample_mask<S: Sampler>(trace: &Trace, mut sampler: S) -> Vec<bool> {
        trace
            .iter()
            .map(|(id, event)| event.kind.is_access() && sampler.sample(id, event))
            .collect()
    }
}

/// A minimal fixed-size bitset.
#[derive(Clone, Debug)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(bits: usize) -> Self {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    fn insert(&mut self, bit: usize) {
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    fn contains(&self, bit: usize) -> bool {
        self.words[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    fn union_with(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freshtrack_sampling::AlwaysSampler;
    use freshtrack_trace::TraceBuilder;

    fn all(trace: &Trace) -> Vec<bool> {
        HbOracle::sample_mask(trace, AlwaysSampler::new())
    }

    #[test]
    fn thread_order_is_hb() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x).read(0, x);
        let oracle = HbOracle::new(&b.build());
        assert!(oracle.happens_before(EventId::new(0), EventId::new(1)));
        assert!(!oracle.happens_before(EventId::new(1), EventId::new(0)));
    }

    #[test]
    fn lock_edges_compose_transitively() {
        let mut b = TraceBuilder::new();
        let l = b.lock("l");
        let m = b.lock("m");
        b.acquire(0, l).release(0, l);
        b.acquire(1, l).acquire(1, m).release(1, m).release(1, l);
        b.acquire(2, m).release(2, m);
        let oracle = HbOracle::new(&b.build());
        // T0's release (1) reaches T2's acquire of m (6) via T1.
        assert!(oracle.happens_before(EventId::new(1), EventId::new(6)));
    }

    #[test]
    fn unordered_writes_are_racy() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x);
        b.write(1, x);
        let trace = b.build();
        let oracle = HbOracle::new(&trace);
        let mask = all(&trace);
        assert!(oracle.has_race(&mask));
        assert_eq!(oracle.racy_pairs(&mask).len(), 1);
        assert_eq!(oracle.racy_events(&mask), vec![EventId::new(1)]);
    }

    #[test]
    fn sampling_mask_hides_races() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.write(0, x);
        b.write(1, x);
        let trace = b.build();
        let oracle = HbOracle::new(&trace);
        // Only the second write sampled: no sampled *pair*.
        assert!(!oracle.has_race(&[false, true]));
        assert!(oracle.has_race(&[true, true]));
    }

    #[test]
    fn reads_do_not_race_with_reads() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        b.read(0, x);
        b.read(1, x);
        let trace = b.build();
        let oracle = HbOracle::new(&trace);
        assert!(!oracle.has_race(&all(&trace)));
    }

    #[test]
    fn conflicting_requires_same_var_and_write() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.write(0, x);
        b.write(1, y);
        b.read(1, x);
        let trace = b.build();
        let oracle = HbOracle::new(&trace);
        assert!(!oracle.conflicting(EventId::new(0), EventId::new(1)));
        assert!(oracle.conflicting(EventId::new(0), EventId::new(2)));
    }
}
