use freshtrack_clock::{
    wire::{self, WireError, WireReader},
    ClockSnapshot, FreshnessClock, SharedClock, ThreadId, Time,
};
use freshtrack_sampling::Sampler;
use freshtrack_trace::{Event, EventId, EventKind, LockId};

use crate::checkpoint::{self, CheckpointError, CheckpointState};
use crate::plane::{BorrowedView, EpochView, HistoryAccessEngine, SplitDetector, SyncEngine};
use crate::{Counters, Detector, RaceReport};

/// Algorithm 4 of the paper (**SO**): ordered lists plus lazy copies.
///
/// This is the paper's near-optimal engine. Three ideas compose:
///
/// 1. **Ordered lists** ([`freshtrack_clock::OrderedList`]) keep each
///    thread's sampling clock in most-recently-updated-first order, so an
///    acquire that is `d = Uℓ − U_t(LRℓ)` updates behind only traverses
///    the first `d` entries (Proposition 6).
/// 2. **Lazy copies** ([`freshtrack_clock::SharedClock`]): a release
///    hands the lock an `O(1)` shallow reference; the `O(T)` deep copy
///    happens only when a thread mutates a still-shared list, which
///    sampling bounds by `O(|S|)`.
/// 3. **Scalar lock freshness**: locks store only the last releaser's own
///    freshness component `Uℓ = U_t(t)`, eliminating the per-lock `O(T)`
///    freshness clocks of Algorithm 3 — and with them the dependence of
///    the running time on the number of locks.
///
/// The *local-epoch* optimization from the paper's implementation
/// (Section 6.1, "disentangle the local time epoch from the vector clock
/// when communicating over HB edges") is on by default: the thread's own
/// flushed time travels as a scalar next to the lock's list reference, so
/// a `RelAfter_S` release does not force a deep copy. Construct with
/// [`with_options`](OrderedListDetector::with_options) to ablate it.
///
/// Internally the detector composes an [`OrderedSyncEngine`] (every
/// thread/lock list, held once) with a [`HistoryAccessEngine`] over the
/// epoch-spliced view `C_t[t ↦ e_t]` — the same halves a two-plane
/// [`ShardedOnlineDetector`](crate::ShardedOnlineDetector) distributes;
/// the `RelAfter_S` bit is the only state crossing the seam (see
/// [`SplitDetector`]).
///
/// Race reports are identical to the other sampling engines for the same
/// sample set (Lemma 8).
///
/// # Example
///
/// ```
/// use freshtrack_core::{Detector, OrderedListDetector};
/// use freshtrack_sampling::BernoulliSampler;
/// use freshtrack_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// b.write(0, x);
/// b.write(1, x);
/// let mut so = OrderedListDetector::new(BernoulliSampler::new(1.0, 1));
/// assert_eq!(so.run(&b.build()).len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct OrderedListDetector<S> {
    sync: OrderedSyncEngine,
    access: HistoryAccessEngine<S>,
    /// `RelAfter_S` bits: has thread `t` sampled an access since its
    /// last release? (The access plane reports sampling; the sync plane
    /// consumes the bit at the next release.)
    sampled: Vec<bool>,
    counters: Counters,
}

#[derive(Clone, Debug)]
struct ThreadState {
    /// The ordered-list clock `O_t` (lazily shared with locks).
    list: SharedClock,
    /// The freshness clock `U_t`.
    fresh: FreshnessClock,
    /// The local epoch `e_t`.
    epoch: Time,
    /// The flushed own time `C_t(t)`; authoritative when the local-epoch
    /// optimization keeps it out of the list.
    flushed: Time,
}

impl Default for ThreadState {
    fn default() -> Self {
        ThreadState {
            list: SharedClock::new(),
            fresh: FreshnessClock::new(),
            epoch: 1,
            flushed: 0,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct LockState {
    /// Read-only shallow reference to the releasing thread's list
    /// (`Oℓ`). The snapshot type has no mutators, so lock state can
    /// never trigger a deep copy.
    list: Option<ClockSnapshot>,
    /// `LRℓ`: the last thread to release this lock.
    last_releaser: Option<ThreadId>,
    /// The scalar freshness `Uℓ = U_t(t)` of the last releaser.
    fresh: Time,
    /// The releaser's flushed own time, carried separately under the
    /// local-epoch optimization.
    releaser_flushed: Time,
    /// Accumulated clock while in `Release`-join mode (Appendix A.2);
    /// `Some` disables the freshness fast path until the next store.
    joined: Option<freshtrack_clock::OrderedList>,
}

/// The sync-plane half of the SO engine: every thread's ordered-list
/// clock, freshness clock and local epoch, plus every lock's snapshot
/// slot — Algorithm 4's synchronization handlers, held exactly once.
///
/// Publication ([`SyncEngine::publish`]) reuses the engine's own `O(1)`
/// [`SharedClock::snapshot`] machinery, so a two-plane sharded run pays
/// per sync event exactly what the monolithic engine pays plus one
/// pointer-sized hand-off; with the façade's take-before-mutate
/// discipline the publication never adds deep copies beyond the ones
/// lock aliases already cause.
#[derive(Clone, Debug)]
pub struct OrderedSyncEngine {
    threads: Vec<ThreadState>,
    locks: Vec<LockState>,
    local_epoch_opt: bool,
}

impl OrderedSyncEngine {
    /// Creates an empty sync engine; `local_epoch_opt` as in
    /// [`OrderedListDetector::with_options`].
    pub fn new(local_epoch_opt: bool) -> Self {
        OrderedSyncEngine {
            threads: Vec::new(),
            locks: Vec::new(),
            local_epoch_opt,
        }
    }

    fn ensure_lock(&mut self, lock: LockId) {
        if self.locks.len() <= lock.index() {
            self.locks.resize_with(lock.index() + 1, LockState::default);
        }
    }

    /// Number of threads observed so far.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// The communicated list and local epoch of `tid` (which must
    /// exist) — the monolithic detector's borrowed race-check view.
    fn thread_view(&self, tid: ThreadId) -> (&SharedClock, Time) {
        let state = &self.threads[tid.index()];
        (&state.list, state.epoch)
    }

    /// Flushes the local epoch if this release is in `RelAfter_S`
    /// (shared by the mutex and Appendix A.2 release handlers).
    fn flush_local_epoch(&mut self, tid: ThreadId, sampled: bool, counters: &mut Counters) {
        let opt = self.local_epoch_opt;
        let thread = &mut self.threads[tid.index()];
        if sampled {
            thread.flushed = thread.epoch;
            if !opt {
                let (list, deep) = thread.list.make_mut();
                if deep {
                    counters.deep_copies += 1;
                }
                list.set(tid, thread.epoch);
            }
            thread.fresh.bump(tid);
            thread.epoch += 1;
            counters.local_increments += 1;
            counters.releases_processed += 1;
        } else {
            counters.releases_skipped += 1;
        }
    }

    /// `Release` (join) semantics for non-mutex sync objects
    /// (Appendix A.2).
    pub(crate) fn release_join(
        &mut self,
        tid: ThreadId,
        sync: LockId,
        sampled: bool,
        counters: &mut Counters,
    ) {
        self.ensure_lock(sync);
        counters.releases += 1;
        self.flush_local_epoch(tid, sampled, counters);

        // Materialize the thread's communicated clock (own entry is the
        // flushed time, possibly kept out of the list by the epoch opt).
        let thread = &self.threads[tid.index()];
        let mut view = thread.list.list().clone();
        if thread.flushed > view.get(tid) {
            view.set(tid, thread.flushed);
        }

        let lock_state = &mut self.locks[sync.index()];
        let mut acc = match lock_state.joined.take() {
            Some(acc) => acc,
            None => match (&lock_state.list, lock_state.last_releaser) {
                (Some(shared), lr) => {
                    // Convert the store snapshot into an owned list,
                    // folding in the releaser's scalar flushed time.
                    let mut l = shared.list().clone();
                    if let Some(lr) = lr {
                        if lock_state.releaser_flushed > l.get(lr) {
                            l.set(lr, lock_state.releaser_flushed);
                        }
                    }
                    l
                }
                (None, _) => freshtrack_clock::OrderedList::new(),
            },
        };
        let traversed = view.len() as u64;
        acc.join(&view);
        lock_state.joined = Some(acc);
        lock_state.list = None;
        lock_state.last_releaser = None;
        lock_state.fresh = 0;
        counters.vc_ops += 1;
        counters.entries_traversed += traversed;
    }
}

impl CheckpointState for OrderedSyncEngine {
    // `local_epoch_opt` is configuration, not state: import targets an
    // engine already constructed with the exporter's option (the
    // `split_sync` contract), so it is deliberately not serialized.
    //
    // A lock slot whose snapshot still aliases its releaser's clock is
    // written as an *alias mark* (one bool plus the releaser id already
    // present), not by value: import rebuilds the snapshot from the
    // imported thread's clock, so the thread↔lock sharing topology —
    // and with it every future `deep_copies` increment — survives the
    // round trip exactly. Only detached snapshots (the thread has
    // mutated since the release) are written by value; they can never
    // trigger a deep copy again, so orphan `Arc`s on import are
    // behavior-identical. This is what makes a resumed run
    // counter-identical to an uninterrupted one (invariant 11), and it
    // shrinks checkpoints: an aliased lock costs two bytes instead of a
    // full list image.
    fn export_state(&self, out: &mut Vec<u8>) {
        wire::put_varint(out, self.threads.len() as u64);
        for thread in &self.threads {
            wire::put_list(out, thread.list.list());
            wire::put_fresh(out, &thread.fresh);
            wire::put_varint(out, thread.epoch);
            wire::put_varint(out, thread.flushed);
        }
        wire::put_varint(out, self.locks.len() as u64);
        for lock in &self.locks {
            wire::put_bool(out, lock.list.is_some());
            if let Some(snapshot) = &lock.list {
                let aliased = lock
                    .last_releaser
                    .map(|lr| self.threads[lr.index()].list.aliases(snapshot))
                    .unwrap_or(false);
                wire::put_bool(out, aliased);
                if !aliased {
                    wire::put_list(out, snapshot.list());
                }
            }
            wire::put_bool(out, lock.last_releaser.is_some());
            if let Some(lr) = lock.last_releaser {
                wire::put_varint(out, u64::from(lr.as_u32()));
            }
            wire::put_varint(out, lock.fresh);
            wire::put_varint(out, lock.releaser_flushed);
            wire::put_bool(out, lock.joined.is_some());
            if let Some(joined) = &lock.joined {
                wire::put_list(out, joined);
            }
        }
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let mut r = WireReader::new(bytes);
        let n = checkpoint::get_count(&mut r)?;
        let mut threads = Vec::with_capacity(n);
        for _ in 0..n {
            threads.push(ThreadState {
                list: SharedClock::from_list(r.get_list()?),
                fresh: r.get_fresh()?,
                epoch: r.get_varint()?,
                flushed: r.get_varint()?,
            });
        }
        let n = checkpoint::get_count(&mut r)?;
        let mut locks = Vec::with_capacity(n);
        for _ in 0..n {
            enum Slot {
                None,
                Aliased,
                Owned(freshtrack_clock::OrderedList),
            }
            let slot = if r.get_bool()? {
                if r.get_bool()? {
                    Slot::Aliased
                } else {
                    Slot::Owned(r.get_list()?)
                }
            } else {
                Slot::None
            };
            let last_releaser = if r.get_bool()? {
                Some(ThreadId::new(r.get_u32()?))
            } else {
                None
            };
            let list = match slot {
                Slot::None => None,
                Slot::Owned(list) => Some(SharedClock::from_list(list).snapshot()),
                Slot::Aliased => {
                    let lr = last_releaser.ok_or_else(|| {
                        CheckpointError::from(WireError::Invalid(
                            "aliased lock snapshot without a releaser",
                        ))
                    })?;
                    let thread = threads.get_mut(lr.index()).ok_or_else(|| {
                        CheckpointError::from(WireError::Invalid(
                            "aliased lock snapshot names an unknown thread",
                        ))
                    })?;
                    Some(thread.list.snapshot())
                }
            };
            locks.push(LockState {
                list,
                last_releaser,
                fresh: r.get_varint()?,
                releaser_flushed: r.get_varint()?,
                joined: if r.get_bool()? {
                    Some(r.get_list()?)
                } else {
                    None
                },
            });
        }
        r.finish()?;
        self.threads = threads;
        self.locks = locks;
        Ok(())
    }
}

impl SyncEngine for OrderedSyncEngine {
    type View = EpochView<ClockSnapshot>;

    fn ensure_thread(&mut self, tid: ThreadId) {
        if self.threads.len() <= tid.index() {
            self.threads
                .resize_with(tid.index() + 1, ThreadState::default);
        }
    }

    fn acquire(&mut self, tid: ThreadId, lock: LockId, counters: &mut Counters) {
        counters.acquires += 1;
        self.ensure_lock(lock);
        let lock_state = &self.locks[lock.index()];
        if let Some(joined) = &lock_state.joined {
            // Join-mode object (Appendix A.2): no freshness fast path —
            // perform a full join. The sharing state is resolved once
            // for the whole batch by `SharedClock::join`.
            counters.acquires_processed += 1;
            let thread = &mut self.threads[tid.index()];
            let res = thread.list.join(joined);
            if res.deep_copy {
                counters.deep_copies += 1;
            }
            thread.fresh.bump_by(tid, res.changed as u64);
            counters.entries_traversed += res.traversed as u64;
            counters.vc_ops += 1;
            return;
        }
        let Some(lr) = lock_state.last_releaser else {
            counters.acquires_skipped += 1;
            return;
        };
        let thread = &self.threads[tid.index()];
        if lock_state.fresh <= thread.fresh.get(lr) {
            // Proposition 5: nothing new behind this lock.
            counters.acquires_skipped += 1;
            return;
        }
        counters.acquires_processed += 1;
        let d = lock_state.fresh - thread.fresh.get(lr);
        let releaser_flushed = lock_state.releaser_flushed;
        let lock_fresh = lock_state.fresh;
        // Walk the lock's list directly while mutating the thread's
        // state: `locks` and `threads` are disjoint fields, and the two
        // lists never alias here (an alias would imply lr == tid, which
        // the freshness check already filtered out — and the prefix
        // join's pointer check would make it a no-op anyway).
        let lock_list = lock_state
            .list
            .as_ref()
            .expect("released lock must carry a clock")
            .list();

        let thread = &mut self.threads[tid.index()];
        thread.fresh.set(lr, lock_fresh);
        let res = thread.list.join_prefix(lock_list, d as usize);
        if res.deep_copy {
            counters.deep_copies += 1;
        }
        thread.fresh.bump_by(tid, res.changed as u64);
        if self.local_epoch_opt && releaser_flushed > thread.list.get(lr) {
            // The releaser's own flushed time travels as a scalar.
            let (list, deep) = thread.list.make_mut();
            if deep {
                counters.deep_copies += 1;
            }
            list.set(lr, releaser_flushed);
            thread.fresh.bump(tid);
        }
        let traversed = res.traversed as u64;
        counters.entries_traversed += traversed;
        counters.entries_saved += (self.threads.len() as u64).saturating_sub(traversed);
        counters.vc_ops += 1;
    }

    fn release(
        &mut self,
        tid: ThreadId,
        lock: LockId,
        sampled_since_release: bool,
        counters: &mut Counters,
    ) {
        counters.releases += 1;
        self.ensure_lock(lock);
        self.flush_local_epoch(tid, sampled_since_release, counters);
        let thread = &mut self.threads[tid.index()];
        // `snapshot` moves the thread's clock to the Shared state (the
        // paper's `shared_t := true`), hence the `&mut`.
        let snapshot = thread.list.snapshot();
        let fresh = thread.fresh.get(tid);
        let flushed = thread.flushed;
        let lock_state = &mut self.locks[lock.index()];
        lock_state.list = Some(snapshot);
        lock_state.last_releaser = Some(tid);
        lock_state.fresh = fresh;
        lock_state.releaser_flushed = flushed;
        lock_state.joined = None;
        counters.shallow_copies += 1;
    }

    fn publish(&mut self, tid: ThreadId) -> EpochView<ClockSnapshot> {
        let state = &mut self.threads[tid.index()];
        EpochView {
            snap: state.list.snapshot(),
            epoch: state.epoch,
            tid,
        }
    }

    fn publish_dense(&mut self, tid: ThreadId, width_cap: usize, out: &mut Vec<Time>) {
        // Linearize the ordered list in thread-id order (the recency
        // links are irrelevant to a race-check view) and splice in the
        // lazily kept local epoch — the dense `C_t[t ↦ e_t]`.
        let state = &self.threads[tid.index()];
        let times = state.list.list().times();
        let n = times.len().min(width_cap.max(tid.index() + 1));
        out.clear();
        out.extend(times.take(n));
        if out.len() <= tid.index() {
            out.resize(tid.index() + 1, 0);
        }
        out[tid.index()] = state.epoch;
    }

    fn reserve_threads(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        self.ensure_thread(ThreadId::new(n as u32 - 1));
        for state in &mut self.threads {
            let (list, _) = state.list.make_mut();
            list.ensure_thread_count(n);
        }
    }
}

impl<S: Sampler> OrderedListDetector<S> {
    /// Creates a detector with the local-epoch optimization enabled.
    pub fn new(sampler: S) -> Self {
        OrderedListDetector::with_options(sampler, true)
    }

    /// Creates a detector, choosing whether the local-epoch optimization
    /// is applied (`false` reproduces Algorithm 4 verbatim; useful for
    /// ablation).
    pub fn with_options(sampler: S, local_epoch_opt: bool) -> Self {
        OrderedListDetector {
            sync: OrderedSyncEngine::new(local_epoch_opt),
            access: HistoryAccessEngine::new(sampler),
            sampled: Vec::new(),
            counters: Counters::new(),
        }
    }

    /// Whether the local-epoch optimization is enabled.
    pub fn local_epoch_opt(&self) -> bool {
        self.sync.local_epoch_opt
    }

    fn ensure_thread(&mut self, tid: ThreadId) {
        self.sync.ensure_thread(tid);
        if self.sampled.len() <= tid.index() {
            self.sampled.resize(tid.index() + 1, false);
        }
    }

    /// Takes the `RelAfter_S` bit for `tid`, resetting it.
    fn take_sampled(&mut self, tid: ThreadId) -> bool {
        std::mem::take(&mut self.sampled[tid.index()])
    }
}

impl<S: Sampler> crate::SyncOps for OrderedListDetector<S> {
    fn release_store(&mut self, tid: u32, sync: LockId) {
        // Identical to the mutex release: a store overwrites the object
        // with the thread's snapshot (and resets any join mode).
        let tid = ThreadId::new(tid);
        self.ensure_thread(tid);
        let sampled = self.take_sampled(tid);
        self.sync.release(tid, sync, sampled, &mut self.counters);
    }

    fn release_join(&mut self, tid: u32, sync: LockId) {
        let tid = ThreadId::new(tid);
        self.ensure_thread(tid);
        let sampled = self.take_sampled(tid);
        self.sync
            .release_join(tid, sync, sampled, &mut self.counters);
    }

    fn acquire_sync(&mut self, tid: u32, sync: LockId) {
        let tid = ThreadId::new(tid);
        self.ensure_thread(tid);
        self.sync.acquire(tid, sync, &mut self.counters);
    }
}

impl<S: Sampler> Detector for OrderedListDetector<S> {
    fn process(&mut self, id: EventId, event: Event) -> Option<RaceReport> {
        // Hoisted-first: a skipped access is a tally and nothing else
        // (invariant 10).
        if let EventKind::Read(_) | EventKind::Write(_) = event.kind {
            if !crate::plane::AccessEngine::decide(&self.access, id, event) {
                self.counters.events += 1;
                crate::plane::tally_access(&event, &mut self.counters);
                return None;
            }
        }
        self.process_admitted(id, event)
    }

    fn process_admitted(&mut self, id: EventId, event: Event) -> Option<RaceReport> {
        self.counters.events += 1;
        let tid = event.tid;
        match event.kind {
            EventKind::Read(_) | EventKind::Write(_) => {
                self.ensure_thread(tid);
                let Self {
                    sync,
                    access,
                    sampled,
                    counters,
                } = self;
                let (list, epoch) = sync.thread_view(tid);
                let view = BorrowedView {
                    lookup: |u| if u == tid { epoch } else { list.get(u) },
                    width: sync.thread_count(),
                };
                let outcome = access.access_sampled_with(id, event, &view, counters);
                if outcome.sampled {
                    sampled[tid.index()] = true;
                }
                outcome.report
            }
            EventKind::Acquire(lock) => {
                self.ensure_thread(tid);
                self.sync.acquire(tid, lock, &mut self.counters);
                None
            }
            EventKind::Release(lock) => {
                self.ensure_thread(tid);
                let sampled = self.take_sampled(tid);
                self.sync.release(tid, lock, sampled, &mut self.counters);
                None
            }
        }
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }

    fn reserve_threads(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        self.ensure_thread(ThreadId::new(n as u32 - 1));
        self.sync.reserve_threads(n);
    }

    fn name(&self) -> &'static str {
        "SO"
    }

    fn hoisted_decider(&self) -> Option<crate::HoistedDecider> {
        let sampler = self.access.sampler().clone();
        Some(Box::new(move |id, event| sampler.decide(id, event)))
    }

    fn record_skipped_accesses(&mut self, reads: u64, writes: u64) {
        self.counters.fold_skipped_accesses(reads, writes);
    }
}

impl<S> CheckpointState for OrderedListDetector<S> {
    fn export_state(&self, out: &mut Vec<u8>) {
        checkpoint::put_detector(out, &self.sync, &self.access, &self.sampled, &self.counters);
    }

    fn import_state(&mut self, bytes: &[u8]) -> Result<(), CheckpointError> {
        let (sampled, counters) =
            checkpoint::get_detector(bytes, &mut self.sync, &mut self.access)?;
        self.sampled = sampled;
        self.counters = counters;
        Ok(())
    }
}

impl<S: Sampler + Clone + Send> SplitDetector for OrderedListDetector<S> {
    type Sync = OrderedSyncEngine;
    type Access = HistoryAccessEngine<S>;
    type View = EpochView<ClockSnapshot>;

    fn split_sync(&self) -> OrderedSyncEngine {
        OrderedSyncEngine::new(self.sync.local_epoch_opt)
    }

    fn split_access(&self) -> Self::Access {
        self.access.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveSamplingDetector;
    use freshtrack_sampling::{AlwaysSampler, BernoulliSampler, NeverSampler};
    use freshtrack_trace::{Trace, TraceBuilder};

    fn ladder_trace(rounds: u32, threads: u32) -> Trace {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        let m = b.lock("m");
        for round in 0..rounds {
            let t = round % threads;
            b.acquire(t, l).write(t, x).release(t, l);
            b.acquire(t, m).read(t, x).release(t, m);
            b.write(t, x);
        }
        b.write(threads, x);
        b.build()
    }

    #[test]
    fn matches_algorithm2_at_full_sampling() {
        let trace = ladder_trace(40, 4);
        let reference = NaiveSamplingDetector::new(AlwaysSampler::new()).run(&trace);
        let so = OrderedListDetector::new(AlwaysSampler::new()).run(&trace);
        assert_eq!(reference, so);
        assert!(!so.is_empty());
    }

    #[test]
    fn matches_algorithm2_under_partial_sampling() {
        let trace = ladder_trace(60, 3);
        for seed in 0..8 {
            let sampler = BernoulliSampler::new(0.25, seed);
            let reference = NaiveSamplingDetector::new(sampler).run(&trace);
            let so = OrderedListDetector::new(sampler).run(&trace);
            assert_eq!(reference, so, "seed {seed}");
        }
    }

    #[test]
    fn epoch_opt_is_report_invariant() {
        let trace = ladder_trace(60, 4);
        for seed in 0..8 {
            let sampler = BernoulliSampler::new(0.3, seed);
            let with_opt = OrderedListDetector::with_options(sampler, true).run(&trace);
            let without = OrderedListDetector::with_options(sampler, false).run(&trace);
            assert_eq!(with_opt, without, "seed {seed}");
        }
    }

    #[test]
    fn epoch_opt_reduces_deep_copies() {
        let trace = ladder_trace(200, 2);
        let sampler = BernoulliSampler::new(1.0, 3);
        let mut with_opt = OrderedListDetector::with_options(sampler, true);
        with_opt.run(&trace);
        let mut without = OrderedListDetector::with_options(sampler, false);
        without.run(&trace);
        assert!(
            with_opt.counters().deep_copies < without.counters().deep_copies,
            "opt {} vs plain {}",
            with_opt.counters().deep_copies,
            without.counters().deep_copies
        );
    }

    #[test]
    fn empty_sample_set_does_no_clock_work() {
        let trace = ladder_trace(50, 4);
        let mut so = OrderedListDetector::new(NeverSampler::new());
        so.run(&trace);
        let c = so.counters();
        assert_eq!(c.deep_copies, 0);
        assert_eq!(c.entries_traversed, 0);
        assert_eq!(c.acquires_processed, 0);
        // Releases still pay their O(1) shallow copy.
        assert_eq!(c.shallow_copies, c.releases);
    }

    #[test]
    fn deep_copies_are_bounded_by_sample_set() {
        // Lemma 8: deep copies are O(|S| · T) — in practice far fewer.
        let trace = ladder_trace(300, 4);
        let sampler = BernoulliSampler::new(0.1, 9);
        let mut so = OrderedListDetector::new(sampler);
        so.run(&trace);
        let c = so.counters();
        let bound =
            c.sampled_accesses * (trace.thread_count() as u64) + trace.thread_count() as u64;
        assert!(c.deep_copies <= bound);
    }

    #[test]
    fn partial_traversal_touches_few_entries() {
        // Two chatty threads, tiny sample set: most acquires skip, and
        // the ones that don't traverse only the changed prefix.
        let trace = ladder_trace(500, 8);
        let sampler = BernoulliSampler::new(0.02, 5);
        let mut so = OrderedListDetector::new(sampler);
        so.run(&trace);
        let c = so.counters();
        assert!(
            c.acquire_skip_ratio() > 0.5,
            "skip {}",
            c.acquire_skip_ratio()
        );
        assert!(
            c.traversals_per_acquire() < 2.0,
            "traversals {}",
            c.traversals_per_acquire()
        );
    }
}
