use freshtrack_clock::{ClockSnapshot, FreshnessClock, SharedClock, ThreadId, Time};
use freshtrack_sampling::Sampler;
use freshtrack_trace::{Event, EventId, EventKind, LockId};

use crate::{AccessHistories, AccessKind, Counters, Detector, RaceReport};

/// Algorithm 4 of the paper (**SO**): ordered lists plus lazy copies.
///
/// This is the paper's near-optimal engine. Three ideas compose:
///
/// 1. **Ordered lists** ([`freshtrack_clock::OrderedList`]) keep each
///    thread's sampling clock in most-recently-updated-first order, so an
///    acquire that is `d = Uℓ − U_t(LRℓ)` updates behind only traverses
///    the first `d` entries (Proposition 6).
/// 2. **Lazy copies** ([`freshtrack_clock::SharedClock`]): a release
///    hands the lock an `O(1)` shallow reference; the `O(T)` deep copy
///    happens only when a thread mutates a still-shared list, which
///    sampling bounds by `O(|S|)`.
/// 3. **Scalar lock freshness**: locks store only the last releaser's own
///    freshness component `Uℓ = U_t(t)`, eliminating the per-lock `O(T)`
///    freshness clocks of Algorithm 3 — and with them the dependence of
///    the running time on the number of locks.
///
/// The *local-epoch* optimization from the paper's implementation
/// (Section 6.1, "disentangle the local time epoch from the vector clock
/// when communicating over HB edges") is on by default: the thread's own
/// flushed time travels as a scalar next to the lock's list reference, so
/// a `RelAfter_S` release does not force a deep copy. Construct with
/// [`with_options`](OrderedListDetector::with_options) to ablate it.
///
/// Race reports are identical to the other sampling engines for the same
/// sample set (Lemma 8).
///
/// # Example
///
/// ```
/// use freshtrack_core::{Detector, OrderedListDetector};
/// use freshtrack_sampling::BernoulliSampler;
/// use freshtrack_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// b.write(0, x);
/// b.write(1, x);
/// let mut so = OrderedListDetector::new(BernoulliSampler::new(1.0, 1));
/// assert_eq!(so.run(&b.build()).len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct OrderedListDetector<S> {
    sampler: S,
    threads: Vec<ThreadState>,
    locks: Vec<LockState>,
    history: AccessHistories,
    counters: Counters,
    local_epoch_opt: bool,
}

#[derive(Clone, Debug)]
struct ThreadState {
    /// The ordered-list clock `O_t` (lazily shared with locks).
    list: SharedClock,
    /// The freshness clock `U_t`.
    fresh: FreshnessClock,
    /// The local epoch `e_t`.
    epoch: Time,
    /// The flushed own time `C_t(t)`; authoritative when the local-epoch
    /// optimization keeps it out of the list.
    flushed: Time,
    sampled_since_release: bool,
}

impl Default for ThreadState {
    fn default() -> Self {
        ThreadState {
            list: SharedClock::new(),
            fresh: FreshnessClock::new(),
            epoch: 1,
            flushed: 0,
            sampled_since_release: false,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct LockState {
    /// Read-only shallow reference to the releasing thread's list
    /// (`Oℓ`). The snapshot type has no mutators, so lock state can
    /// never trigger a deep copy.
    list: Option<ClockSnapshot>,
    /// `LRℓ`: the last thread to release this lock.
    last_releaser: Option<ThreadId>,
    /// The scalar freshness `Uℓ = U_t(t)` of the last releaser.
    fresh: Time,
    /// The releaser's flushed own time, carried separately under the
    /// local-epoch optimization.
    releaser_flushed: Time,
    /// Accumulated clock while in `Release`-join mode (Appendix A.2);
    /// `Some` disables the freshness fast path until the next store.
    joined: Option<freshtrack_clock::OrderedList>,
}

impl<S: Sampler> OrderedListDetector<S> {
    /// Creates a detector with the local-epoch optimization enabled.
    pub fn new(sampler: S) -> Self {
        OrderedListDetector::with_options(sampler, true)
    }

    /// Creates a detector, choosing whether the local-epoch optimization
    /// is applied (`false` reproduces Algorithm 4 verbatim; useful for
    /// ablation).
    pub fn with_options(sampler: S, local_epoch_opt: bool) -> Self {
        OrderedListDetector {
            sampler,
            threads: Vec::new(),
            locks: Vec::new(),
            history: AccessHistories::new(),
            counters: Counters::new(),
            local_epoch_opt,
        }
    }

    /// Whether the local-epoch optimization is enabled.
    pub fn local_epoch_opt(&self) -> bool {
        self.local_epoch_opt
    }

    fn ensure_thread(&mut self, tid: ThreadId) {
        if self.threads.len() <= tid.index() {
            self.threads
                .resize_with(tid.index() + 1, ThreadState::default);
        }
    }

    fn ensure_lock(&mut self, lock: LockId) {
        if self.locks.len() <= lock.index() {
            self.locks.resize_with(lock.index() + 1, LockState::default);
        }
    }

    /// The race-check view `C_t[t ↦ e_t]`: own entry from the epoch, the
    /// rest from the ordered list.
    fn view(state: &ThreadState, tid: ThreadId) -> impl Fn(ThreadId) -> Time + '_ {
        let epoch = state.epoch;
        move |u| if u == tid { epoch } else { state.list.get(u) }
    }

    fn handle_acquire(&mut self, tid: ThreadId, lock: LockId) {
        self.counters.acquires += 1;
        self.ensure_lock(lock);
        let lock_state = &self.locks[lock.index()];
        if let Some(joined) = &lock_state.joined {
            // Join-mode object (Appendix A.2): no freshness fast path —
            // perform a full join. The sharing state is resolved once
            // for the whole batch by `SharedClock::join`.
            self.counters.acquires_processed += 1;
            let thread = &mut self.threads[tid.index()];
            let res = thread.list.join(joined);
            if res.deep_copy {
                self.counters.deep_copies += 1;
            }
            thread.fresh.bump_by(tid, res.changed as u64);
            self.counters.entries_traversed += res.traversed as u64;
            self.counters.vc_ops += 1;
            return;
        }
        let Some(lr) = lock_state.last_releaser else {
            self.counters.acquires_skipped += 1;
            return;
        };
        let thread = &self.threads[tid.index()];
        if lock_state.fresh <= thread.fresh.get(lr) {
            // Proposition 5: nothing new behind this lock.
            self.counters.acquires_skipped += 1;
            return;
        }
        self.counters.acquires_processed += 1;
        let d = lock_state.fresh - thread.fresh.get(lr);
        let releaser_flushed = lock_state.releaser_flushed;
        let lock_fresh = lock_state.fresh;
        // Walk the lock's list directly while mutating the thread's
        // state: `locks` and `threads` are disjoint fields, and the two
        // lists never alias here (an alias would imply lr == tid, which
        // the freshness check already filtered out — and the prefix
        // join's pointer check would make it a no-op anyway).
        let lock_list = lock_state
            .list
            .as_ref()
            .expect("released lock must carry a clock")
            .list();

        let thread = &mut self.threads[tid.index()];
        thread.fresh.set(lr, lock_fresh);
        let res = thread.list.join_prefix(lock_list, d as usize);
        if res.deep_copy {
            self.counters.deep_copies += 1;
        }
        thread.fresh.bump_by(tid, res.changed as u64);
        if self.local_epoch_opt && releaser_flushed > thread.list.get(lr) {
            // The releaser's own flushed time travels as a scalar.
            let (list, deep) = thread.list.make_mut();
            if deep {
                self.counters.deep_copies += 1;
            }
            list.set(lr, releaser_flushed);
            thread.fresh.bump(tid);
        }
        let traversed = res.traversed as u64;
        self.counters.entries_traversed += traversed;
        self.counters.entries_saved += (self.threads.len() as u64).saturating_sub(traversed);
        self.counters.vc_ops += 1;
    }

    fn handle_release(&mut self, tid: ThreadId, lock: LockId) {
        self.counters.releases += 1;
        self.ensure_lock(lock);
        self.flush_local_epoch(tid);
        let thread = &mut self.threads[tid.index()];
        // `snapshot` moves the thread's clock to the Shared state (the
        // paper's `shared_t := true`), hence the `&mut`.
        let snapshot = thread.list.snapshot();
        let fresh = thread.fresh.get(tid);
        let flushed = thread.flushed;
        let lock_state = &mut self.locks[lock.index()];
        lock_state.list = Some(snapshot);
        lock_state.last_releaser = Some(tid);
        lock_state.fresh = fresh;
        lock_state.releaser_flushed = flushed;
        lock_state.joined = None;
        self.counters.shallow_copies += 1;
    }

    /// Flushes the local epoch if this release is in `RelAfter_S`
    /// (shared by the mutex and Appendix A.2 release handlers).
    fn flush_local_epoch(&mut self, tid: ThreadId) {
        let opt = self.local_epoch_opt;
        let thread = &mut self.threads[tid.index()];
        if thread.sampled_since_release {
            thread.flushed = thread.epoch;
            if !opt {
                let (list, deep) = thread.list.make_mut();
                if deep {
                    self.counters.deep_copies += 1;
                }
                list.set(tid, thread.epoch);
            }
            thread.fresh.bump(tid);
            thread.epoch += 1;
            thread.sampled_since_release = false;
            self.counters.local_increments += 1;
            self.counters.releases_processed += 1;
        } else {
            self.counters.releases_skipped += 1;
        }
    }
}

impl<S: Sampler> crate::SyncOps for OrderedListDetector<S> {
    fn release_store(&mut self, tid: u32, sync: LockId) {
        // Identical to the mutex release: a store overwrites the object
        // with the thread's snapshot (and resets any join mode).
        let tid = ThreadId::new(tid);
        self.ensure_thread(tid);
        self.handle_release(tid, sync);
    }

    fn release_join(&mut self, tid: u32, sync: LockId) {
        let tid = ThreadId::new(tid);
        self.ensure_thread(tid);
        self.ensure_lock(sync);
        self.counters.releases += 1;
        self.flush_local_epoch(tid);

        // Materialize the thread's communicated clock (own entry is the
        // flushed time, possibly kept out of the list by the epoch opt).
        let thread = &self.threads[tid.index()];
        let mut view = thread.list.list().clone();
        if thread.flushed > view.get(tid) {
            view.set(tid, thread.flushed);
        }

        let lock_state = &mut self.locks[sync.index()];
        let mut acc = match lock_state.joined.take() {
            Some(acc) => acc,
            None => match (&lock_state.list, lock_state.last_releaser) {
                (Some(shared), lr) => {
                    // Convert the store snapshot into an owned list,
                    // folding in the releaser's scalar flushed time.
                    let mut l = shared.list().clone();
                    if let Some(lr) = lr {
                        if lock_state.releaser_flushed > l.get(lr) {
                            l.set(lr, lock_state.releaser_flushed);
                        }
                    }
                    l
                }
                (None, _) => freshtrack_clock::OrderedList::new(),
            },
        };
        let traversed = view.len() as u64;
        acc.join(&view);
        lock_state.joined = Some(acc);
        lock_state.list = None;
        lock_state.last_releaser = None;
        lock_state.fresh = 0;
        self.counters.vc_ops += 1;
        self.counters.entries_traversed += traversed;
    }

    fn acquire_sync(&mut self, tid: u32, sync: LockId) {
        let tid = ThreadId::new(tid);
        self.ensure_thread(tid);
        self.handle_acquire(tid, sync);
    }
}

impl<S: Sampler> Detector for OrderedListDetector<S> {
    fn process(&mut self, id: EventId, event: Event) -> Option<RaceReport> {
        self.counters.events += 1;
        let tid = event.tid;
        self.ensure_thread(tid);
        match event.kind {
            EventKind::Read(var) => {
                self.counters.reads += 1;
                if !self.sampler.sample(id, event) {
                    return None;
                }
                self.counters.sampled_accesses += 1;
                self.counters.race_checks += 1;
                let state = &mut self.threads[tid.index()];
                state.sampled_since_release = true;
                let epoch = state.epoch;
                let races = self.history.read_races(var, Self::view(state, tid));
                self.history.record_read(var, tid, epoch);
                races.then(|| {
                    self.counters.races += 1;
                    RaceReport::new(id, tid, var, AccessKind::Read, true, false)
                })
            }
            EventKind::Write(var) => {
                self.counters.writes += 1;
                if !self.sampler.sample(id, event) {
                    return None;
                }
                self.counters.sampled_accesses += 1;
                self.counters.race_checks += 1;
                let threads = self.threads.len();
                let state = &mut self.threads[tid.index()];
                state.sampled_since_release = true;
                let (with_write, with_read) = self.history.write_races(var, Self::view(state, tid));
                self.history
                    .record_write(var, threads, Self::view(state, tid));
                (with_write || with_read).then(|| {
                    self.counters.races += 1;
                    RaceReport::new(id, tid, var, AccessKind::Write, with_write, with_read)
                })
            }
            EventKind::Acquire(lock) => {
                self.handle_acquire(tid, lock);
                None
            }
            EventKind::Release(lock) => {
                self.handle_release(tid, lock);
                None
            }
        }
    }

    fn counters(&self) -> &Counters {
        &self.counters
    }

    fn reserve_threads(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        self.ensure_thread(ThreadId::new(n as u32 - 1));
        for state in &mut self.threads {
            let (list, _) = state.list.make_mut();
            list.ensure_thread_count(n);
        }
    }

    fn name(&self) -> &'static str {
        "SO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NaiveSamplingDetector;
    use freshtrack_sampling::{AlwaysSampler, BernoulliSampler, NeverSampler};
    use freshtrack_trace::{Trace, TraceBuilder};

    fn ladder_trace(rounds: u32, threads: u32) -> Trace {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("l");
        let m = b.lock("m");
        for round in 0..rounds {
            let t = round % threads;
            b.acquire(t, l).write(t, x).release(t, l);
            b.acquire(t, m).read(t, x).release(t, m);
            b.write(t, x);
        }
        b.write(threads, x);
        b.build()
    }

    #[test]
    fn matches_algorithm2_at_full_sampling() {
        let trace = ladder_trace(40, 4);
        let reference = NaiveSamplingDetector::new(AlwaysSampler::new()).run(&trace);
        let so = OrderedListDetector::new(AlwaysSampler::new()).run(&trace);
        assert_eq!(reference, so);
        assert!(!so.is_empty());
    }

    #[test]
    fn matches_algorithm2_under_partial_sampling() {
        let trace = ladder_trace(60, 3);
        for seed in 0..8 {
            let sampler = BernoulliSampler::new(0.25, seed);
            let reference = NaiveSamplingDetector::new(sampler).run(&trace);
            let so = OrderedListDetector::new(sampler).run(&trace);
            assert_eq!(reference, so, "seed {seed}");
        }
    }

    #[test]
    fn epoch_opt_is_report_invariant() {
        let trace = ladder_trace(60, 4);
        for seed in 0..8 {
            let sampler = BernoulliSampler::new(0.3, seed);
            let with_opt = OrderedListDetector::with_options(sampler, true).run(&trace);
            let without = OrderedListDetector::with_options(sampler, false).run(&trace);
            assert_eq!(with_opt, without, "seed {seed}");
        }
    }

    #[test]
    fn epoch_opt_reduces_deep_copies() {
        let trace = ladder_trace(200, 2);
        let sampler = BernoulliSampler::new(1.0, 3);
        let mut with_opt = OrderedListDetector::with_options(sampler, true);
        with_opt.run(&trace);
        let mut without = OrderedListDetector::with_options(sampler, false);
        without.run(&trace);
        assert!(
            with_opt.counters().deep_copies < without.counters().deep_copies,
            "opt {} vs plain {}",
            with_opt.counters().deep_copies,
            without.counters().deep_copies
        );
    }

    #[test]
    fn empty_sample_set_does_no_clock_work() {
        let trace = ladder_trace(50, 4);
        let mut so = OrderedListDetector::new(NeverSampler::new());
        so.run(&trace);
        let c = so.counters();
        assert_eq!(c.deep_copies, 0);
        assert_eq!(c.entries_traversed, 0);
        assert_eq!(c.acquires_processed, 0);
        // Releases still pay their O(1) shallow copy.
        assert_eq!(c.shallow_copies, c.releases);
    }

    #[test]
    fn deep_copies_are_bounded_by_sample_set() {
        // Lemma 8: deep copies are O(|S| · T) — in practice far fewer.
        let trace = ladder_trace(300, 4);
        let sampler = BernoulliSampler::new(0.1, 9);
        let mut so = OrderedListDetector::new(sampler);
        so.run(&trace);
        let c = so.counters();
        let bound =
            c.sampled_accesses * (trace.thread_count() as u64) + trace.thread_count() as u64;
        assert!(c.deep_copies <= bound);
    }

    #[test]
    fn partial_traversal_touches_few_entries() {
        // Two chatty threads, tiny sample set: most acquires skip, and
        // the ones that don't traverse only the changed prefix.
        let trace = ladder_trace(500, 8);
        let sampler = BernoulliSampler::new(0.02, 5);
        let mut so = OrderedListDetector::new(sampler);
        so.run(&trace);
        let c = so.counters();
        assert!(
            c.acquire_skip_ratio() > 0.5,
            "skip {}",
            c.acquire_skip_ratio()
        );
        assert!(
            c.traversals_per_acquire() < 2.0,
            "traversals {}",
            c.traversals_per_acquire()
        );
    }
}
