use freshtrack_clock::{wire, ThreadId, Time, VectorClock};
use freshtrack_trace::VarId;

/// The per-variable access histories `Cw_x` / `Cr_x` shared by all
/// detectors (Section 2.1 of the paper).
///
/// For every memory location the history keeps the timestamp of the last
/// write (`Cw_x`, a full clock) and the per-thread local times of the
/// last reads (`Cr_x`). Race checks compare these histories against the
/// current thread's clock; because the paper's sampling algorithms keep
/// the thread's *own* component in a separate scalar epoch `e_t`, the
/// comparison functions here take the thread clock as a lookup closure so
/// callers can splice in the authoritative own-entry value.
///
/// All operations are `O(T)`, so the total cost across a run is
/// `O(|S| · T)` — the access-side bound of the paper's final complexity.
#[derive(Clone, Debug, Default)]
pub struct AccessHistories {
    write: Vec<VectorClock>,
    read: Vec<VectorClock>,
}

impl AccessHistories {
    /// Creates empty histories.
    pub fn new() -> Self {
        AccessHistories::default()
    }

    /// Creates histories pre-sized for `vars` locations.
    pub fn with_vars(vars: usize) -> Self {
        AccessHistories {
            write: vec![VectorClock::new(); vars],
            read: vec![VectorClock::new(); vars],
        }
    }

    fn ensure(&mut self, var: VarId) {
        if var.index() >= self.write.len() {
            self.write.resize_with(var.index() + 1, VectorClock::new);
            self.read.resize_with(var.index() + 1, VectorClock::new);
        }
    }

    /// The read check of Algorithm 1/2: is `Cw_x ̸⊑ C_t`?
    ///
    /// `clock(u)` must return the current thread clock entry for `u`,
    /// *including* the authoritative own-thread value.
    pub fn read_races<F>(&self, var: VarId, clock: F) -> bool
    where
        F: Fn(ThreadId) -> Time,
    {
        self.write.get(var.index()).is_some_and(|w| !leq(w, &clock))
    }

    /// The write check of Algorithm 1/2: `(Cw_x ̸⊑ C_t, Cr_x ̸⊑ C_t)`.
    pub fn write_races<F>(&self, var: VarId, clock: F) -> (bool, bool)
    where
        F: Fn(ThreadId) -> Time,
    {
        let with_write = self.write.get(var.index()).is_some_and(|w| !leq(w, &clock));
        let with_read = self.read.get(var.index()).is_some_and(|r| !leq(r, &clock));
        (with_write, with_read)
    }

    /// Records a read: `Cr_x ← Cr_x[t ↦ time]` where `time` is the local
    /// time (`C_t(t)` for Djit+, the epoch `e_t` for sampling engines).
    pub fn record_read(&mut self, var: VarId, tid: ThreadId, time: Time) {
        self.ensure(var);
        self.read[var.index()].set(tid, time);
    }

    /// Records a write: `Cw_x ← C_t[t ↦ time]`, materialized from the
    /// caller's clock view over `threads` threads.
    pub fn record_write<F>(&mut self, var: VarId, threads: usize, clock: F)
    where
        F: Fn(ThreadId) -> Time,
    {
        self.ensure(var);
        let slot = &mut self.write[var.index()];
        for idx in 0..threads {
            let tid = ThreadId::new(idx as u32);
            slot.set(tid, clock(tid));
        }
    }

    /// The last-write clock of a variable, if any write was recorded.
    pub fn write_clock(&self, var: VarId) -> Option<&VectorClock> {
        self.write.get(var.index()).filter(|c| !c.is_bottom())
    }

    /// The read clock of a variable, if any read was recorded.
    pub fn read_clock(&self, var: VarId) -> Option<&VectorClock> {
        self.read.get(var.index()).filter(|c| !c.is_bottom())
    }
}

impl AccessHistories {
    /// Serializes both history tables (shared by the checkpoint impls of
    /// the engines that embed this type). `write` and `read` always have
    /// the same length, so one count prefixes both.
    pub(crate) fn export_wire(&self, out: &mut Vec<u8>) {
        debug_assert_eq!(self.write.len(), self.read.len());
        wire::put_varint(out, self.write.len() as u64);
        for clock in &self.write {
            wire::put_clock(out, clock);
        }
        for clock in &self.read {
            wire::put_clock(out, clock);
        }
    }

    /// Decodes histories written by [`Self::export_wire`].
    pub(crate) fn import_wire(r: &mut wire::WireReader<'_>) -> Result<Self, wire::WireError> {
        let n = r.get_usize()?;
        if n > r.remaining() {
            return Err(wire::WireError::Truncated);
        }
        let mut write = Vec::with_capacity(n);
        for _ in 0..n {
            write.push(r.get_clock()?);
        }
        let mut read = Vec::with_capacity(n);
        for _ in 0..n {
            read.push(r.get_clock()?);
        }
        Ok(AccessHistories { write, read })
    }
}

fn leq<F>(history: &VectorClock, clock: &F) -> bool
where
    F: Fn(ThreadId) -> Time,
{
    history.iter().all(|(tid, time)| time <= clock(tid))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }

    #[test]
    fn no_history_means_no_race() {
        let h = AccessHistories::new();
        assert!(!h.read_races(VarId::new(0), |_| 0));
        assert_eq!(h.write_races(VarId::new(0), |_| 0), (false, false));
    }

    #[test]
    fn read_after_unordered_write_races() {
        let mut h = AccessHistories::new();
        let x = VarId::new(0);
        // T0 writes at time 1 with clock ⟨1,0⟩.
        h.record_write(x, 2, |tid| if tid == t(0) { 1 } else { 0 });
        // T1 with clock ⟨0,1⟩ has not seen the write.
        assert!(h.read_races(x, |tid| if tid == t(1) { 1 } else { 0 }));
        // T1 with clock ⟨1,1⟩ has.
        assert!(!h.read_races(x, |_| 1));
    }

    #[test]
    fn write_checks_both_histories() {
        let mut h = AccessHistories::new();
        let x = VarId::new(0);
        h.record_write(x, 2, |tid| if tid == t(0) { 1 } else { 0 });
        h.record_read(x, t(1), 3);
        // A writer that has seen neither conflicts with both.
        let (ww, wr) = h.write_races(x, |_| 0);
        assert!(ww);
        assert!(wr);
        // A writer that has seen the write but not the read.
        let (ww, wr) = h.write_races(x, |tid| if tid == t(0) { 1 } else { 0 });
        assert!(!ww);
        assert!(wr);
    }

    #[test]
    fn record_write_overwrites_previous_entries() {
        let mut h = AccessHistories::new();
        let x = VarId::new(0);
        h.record_write(x, 2, |tid| if tid == t(0) { 5 } else { 0 });
        h.record_write(x, 2, |tid| if tid == t(1) { 2 } else { 0 });
        let w = h.write_clock(x).unwrap();
        assert_eq!(w.get(t(0)), 0);
        assert_eq!(w.get(t(1)), 2);
    }

    #[test]
    fn clock_accessors_filter_bottom() {
        let mut h = AccessHistories::new();
        let x = VarId::new(0);
        assert!(h.write_clock(x).is_none());
        h.record_read(x, t(0), 1);
        assert!(h.read_clock(x).is_some());
        assert!(h.write_clock(x).is_none());
    }
}
