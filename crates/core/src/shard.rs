use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use freshtrack_clock::ThreadId;
use freshtrack_trace::{Event, EventId, EventKind, LockId, VarId};

use crate::{Counters, Detector, RaceReport};

/// A sharded ingestion façade: `N` independently-locked detector shards
/// instead of [`OnlineDetector`](crate::OnlineDetector)'s single mutex.
///
/// The single-mutex façade reproduces the paper's Fig. 5 contention
/// model faithfully — every event serializes through one analysis lock —
/// but that same lock bounds throughput once per-event clock work is
/// cheap. This type is the standard sanitizer-runtime answer
/// (ThreadSanitizer's shadow memory is per-location, not globally
/// locked): shard the analysis state by *variable* and keep
/// synchronization global.
///
/// # Routing rule
///
/// * **Access events** (`Read`/`Write` of variable `v`) go to exactly
///   one shard, `hash(v) % N`, under that shard's lock only.
/// * **Sync events** (`Acquire`/`Release`) are *replicated*: the caller
///   acquires every shard lock in ascending index order (so sync events
///   are totally ordered and deadlock-free), then feeds the event to
///   every shard's detector.
///
/// # Replication invariant (why verdicts are preserved)
///
/// Happens-before between two accesses is determined only by the sync
/// events and program order between them — never by other accesses.
/// Each shard therefore sees the *full* happens-before skeleton (every
/// sync event, in one global order shared by all shards) plus its slice
/// of the accesses, which is exactly the information needed to give
/// every access of its variables the same verdict the unsharded
/// detector would.
///
/// Event ids come from one atomic ticket, taken while holding the
/// event's shard lock(s). Because a ticket is only drawn inside the
/// relevant critical section, ticket order restricted to any one shard
/// (its accesses plus all sync events) coincides with that shard's
/// processing order — so the id-ordered merged trace is a valid
/// linearization of what every shard analyzed, sampling decisions
/// (deterministic in `(seed, id)`) are identical to the unsharded run,
/// and [`finish`](ShardedOnlineDetector::finish) can merge per-shard
/// reports into one list sorted by [`EventId`] with a deterministic
/// global order.
///
/// # Cost model
///
/// Access events — the overwhelming majority in real workloads — pay
/// one uncontended-in-expectation lock instead of one global lock; the
/// analysis of accesses to different shards proceeds in parallel. Sync
/// events pay `N` lock acquisitions plus `N` copies of the detector's
/// sync-event clock work (the fan-out cost of replication), so the
/// sweet spot for `N` grows with the workload's access:sync ratio. The
/// merged [`Counters`] from [`Counters::merge`] keep that honest: work
/// counters are totals across shards.
///
/// # Example
///
/// ```
/// use freshtrack_core::{DjitDetector, ShardedOnlineDetector};
/// use freshtrack_sampling::AlwaysSampler;
/// use std::sync::Arc;
///
/// let sharded = Arc::new(ShardedOnlineDetector::new(
///     DjitDetector::new(AlwaysSampler::new()),
///     4,
/// ));
/// let handles: Vec<_> = (0..2)
///     .map(|t| {
///         let sharded = Arc::clone(&sharded);
///         std::thread::spawn(move || sharded.write(t, 0))
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// let (_, races) = Arc::try_unwrap(sharded).ok().unwrap().finish();
/// assert_eq!(races.len(), 1); // the two writes race
/// ```
#[derive(Debug)]
pub struct ShardedOnlineDetector<D> {
    shards: Vec<Mutex<Shard<D>>>,
    next_id: AtomicU64,
}

#[derive(Debug)]
struct Shard<D> {
    detector: D,
    reports: Vec<RaceReport>,
}

impl<D: Detector> ShardedOnlineDetector<D> {
    /// Builds `shards` shards, each holding a clone of `detector`.
    ///
    /// Clones must start from identical (empty) analysis state; passing
    /// a detector that has already processed events would give shards
    /// inconsistent views of the happens-before skeleton.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(detector: D, shards: usize) -> Self
    where
        D: Clone,
    {
        Self::with_factory(shards, |_| detector.clone())
    }

    /// Builds `shards` shards, constructing each detector with
    /// `factory(shard_index)`. All detectors must be configured
    /// identically (same engine, same sampler seed): the shards
    /// collectively emulate *one* detector, and a per-shard sampling
    /// difference would break the replication invariant.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_factory(shards: usize, mut factory: impl FnMut(usize) -> D) -> Self {
        assert!(shards > 0, "at least one shard is required");
        ShardedOnlineDetector {
            shards: (0..shards)
                .map(|i| {
                    Mutex::new(Shard {
                        detector: factory(i),
                        reports: Vec::new(),
                    })
                })
                .collect(),
            next_id: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Pre-sizes every shard's per-thread clock state for `n`
    /// application threads (see
    /// [`Detector::reserve_threads`]). Call once before the workers
    /// start so the event hot path never grows a clock while a shard
    /// lock is held.
    pub fn reserve_threads(&self, n: usize) {
        for shard in &self.shards {
            self.lock(shard).detector.reserve_threads(n);
        }
    }

    /// The shard that owns variable `var`.
    ///
    /// Fibonacci multiplicative hashing spreads the dense, often
    /// sequential variable-id space evenly across shards.
    #[inline]
    pub fn shard_of(&self, var: VarId) -> usize {
        let h = (var.index() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ((h >> 32) as usize) % self.shards.len()
    }

    fn lock<'a>(&'a self, shard: &'a Mutex<Shard<D>>) -> MutexGuard<'a, Shard<D>> {
        shard.lock().expect("detector shard mutex poisoned")
    }

    /// Draws the event's globally unique, totally ordered ticket id.
    ///
    /// Must only be called while holding the lock(s) of every shard the
    /// event will be fed to — that is what makes per-shard processing
    /// order agree with ticket order (see the type-level docs).
    #[inline]
    fn take_ticket(&self) -> EventId {
        EventId::new(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Feeds one event; returns `true` if it was reported as racing.
    ///
    /// Access events lock one shard; sync events lock all shards in
    /// ascending order (a sync event never races, so the return value
    /// is `false` for them).
    pub fn on_event(&self, tid: u32, kind: EventKind) -> bool {
        let event = Event::new(ThreadId::new(tid), kind);
        match kind {
            EventKind::Read(var) | EventKind::Write(var) => {
                let mut shard = self.lock(&self.shards[self.shard_of(var)]);
                let id = self.take_ticket();
                if let Some(report) = shard.detector.process(id, event) {
                    shard.reports.push(report);
                    true
                } else {
                    false
                }
            }
            EventKind::Acquire(_) | EventKind::Release(_) => {
                // Ordered all-shards acquisition: ascending index, so
                // concurrent sync events cannot deadlock against each
                // other (accesses hold at most one shard lock and never
                // wait for a second). The recursion keeps each guard in
                // a stack frame — all locks are held at the recursion
                // floor, where the ticket is drawn, with no per-event
                // guard collection on the heap.
                self.replicate_sync(&self.shards, event);
                false
            }
        }
    }

    /// Locks `shards[0]`, recurses over the rest, and — on the way back
    /// up, with every lock still held — feeds the sync event to each
    /// shard. The ticket is drawn at the recursion floor, i.e. after
    /// the last lock is acquired.
    fn replicate_sync(&self, shards: &[Mutex<Shard<D>>], event: Event) -> EventId {
        match shards.split_first() {
            None => self.take_ticket(),
            Some((first, rest)) => {
                let mut guard = self.lock(first);
                let id = self.replicate_sync(rest, event);
                let report = guard.detector.process(id, event);
                debug_assert!(report.is_none(), "sync events never race");
                id
            }
        }
    }

    /// Records a read of variable `var` by thread `tid`.
    pub fn read(&self, tid: u32, var: u32) -> bool {
        self.on_event(tid, EventKind::Read(VarId::new(var)))
    }

    /// Records a write of variable `var` by thread `tid`.
    pub fn write(&self, tid: u32, var: u32) -> bool {
        self.on_event(tid, EventKind::Write(VarId::new(var)))
    }

    /// Records an acquire of lock `lock` by thread `tid`.
    pub fn acquire(&self, tid: u32, lock: u32) {
        self.on_event(tid, EventKind::Acquire(LockId::new(lock)));
    }

    /// Records a release of lock `lock` by thread `tid`.
    pub fn release(&self, tid: u32, lock: u32) {
        self.on_event(tid, EventKind::Release(LockId::new(lock)));
    }

    /// Number of event tickets drawn so far (events dispatched to a
    /// shard; an event's analysis completes before its shard lock is
    /// released, so after all workers quiesce this equals events
    /// analyzed).
    pub fn events_processed(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Races reported so far, across all shards.
    pub fn race_count(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).reports.len()).sum()
    }

    /// Consumes the façade, returning the per-shard detectors and the
    /// merged race reports.
    ///
    /// Reports are sorted by racing [`EventId`] — the same deterministic
    /// global order [`OnlineDetector::finish`](crate::OnlineDetector::finish)
    /// guarantees, so sharded and unsharded runs over the same event
    /// stream are directly comparable. Aggregate the per-shard counters
    /// with [`Counters::merge`].
    pub fn finish(self) -> (Vec<D>, Vec<RaceReport>) {
        let mut detectors = Vec::with_capacity(self.shards.len());
        let mut reports = Vec::new();
        for shard in self.shards {
            let shard = shard.into_inner().expect("detector shard mutex poisoned");
            detectors.push(shard.detector);
            // Within a shard, reports are already in ticket order.
            debug_assert!(shard.reports.windows(2).all(|w| w[0].event < w[1].event));
            reports.extend(shard.reports);
        }
        reports.sort_unstable_by_key(|r| r.event);
        (detectors, reports)
    }

    /// Convenience for callers that only need the merged view:
    /// [`finish`](ShardedOnlineDetector::finish) plus
    /// [`Counters::merge`] in one call.
    pub fn finish_merged(self) -> (Vec<D>, Vec<RaceReport>, Counters) {
        let (detectors, reports) = self.finish();
        let counters = Counters::merge(detectors.iter().map(|d| *d.counters()));
        (detectors, reports, counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DjitDetector, OnlineDetector, OrderedListDetector};
    use freshtrack_sampling::{AlwaysSampler, BernoulliSampler};
    use std::sync::Arc;

    #[test]
    fn accesses_route_by_variable_and_syncs_replicate() {
        let sharded = ShardedOnlineDetector::new(DjitDetector::new(AlwaysSampler::new()), 4);
        sharded.acquire(0, 0);
        for v in 0..32 {
            sharded.write(0, v);
        }
        sharded.release(0, 0);
        let (detectors, reports) = sharded.finish();
        assert!(reports.is_empty());
        // Every shard saw both sync events; the 32 accesses partition.
        let mut accesses = 0;
        for d in &detectors {
            assert_eq!(d.counters().acquires, 1);
            assert_eq!(d.counters().releases, 1);
            accesses += d.counters().accesses();
        }
        assert_eq!(accesses, 32);
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let sharded = ShardedOnlineDetector::new(DjitDetector::new(AlwaysSampler::new()), 7);
        for v in 0..1000 {
            let s = sharded.shard_of(VarId::new(v));
            assert!(s < 7);
            assert_eq!(s, sharded.shard_of(VarId::new(v)));
        }
    }

    #[test]
    fn sequential_feed_matches_unsharded() {
        // A small lock-ladder-ish stream with genuine races.
        let script: Vec<(u32, EventKind)> = (0..200u32)
            .map(|i| {
                let t = i % 3;
                match i % 5 {
                    0 => (t, EventKind::Acquire(LockId::new((i / 5) % 2))),
                    1 => (t, EventKind::Write(VarId::new(i % 7))),
                    2 => (t, EventKind::Read(VarId::new(i % 7))),
                    3 => (t, EventKind::Release(LockId::new((i / 5) % 2))),
                    _ => (t, EventKind::Write(VarId::new(3))),
                }
            })
            .collect();
        // The script must obey the locking discipline to be a valid
        // event stream; rebuild it with a holder map.
        let mut held = [None::<u32>; 2];
        let valid: Vec<(u32, EventKind)> = script
            .into_iter()
            .map(|(t, kind)| match kind {
                EventKind::Acquire(l) if held[l.index()].is_none() => {
                    held[l.index()] = Some(t);
                    (t, kind)
                }
                EventKind::Release(l) if held[l.index()] == Some(t) => {
                    held[l.index()] = None;
                    (t, kind)
                }
                EventKind::Acquire(_) | EventKind::Release(_) => {
                    (t, EventKind::Read(VarId::new(t)))
                }
                access => (t, access),
            })
            .collect();

        let sampler = BernoulliSampler::new(0.6, 9);
        let unsharded = OnlineDetector::new(OrderedListDetector::new(sampler));
        for &(t, kind) in &valid {
            unsharded.on_event(t, kind);
        }
        let (baseline, baseline_reports) = unsharded.finish();

        for shards in [1usize, 2, 3, 5] {
            let sharded = ShardedOnlineDetector::new(OrderedListDetector::new(sampler), shards);
            for &(t, kind) in &valid {
                sharded.on_event(t, kind);
            }
            let (detectors, reports, merged) = sharded.finish_merged();
            assert_eq!(detectors.len(), shards);
            assert_eq!(reports, baseline_reports, "{shards} shards");
            assert_eq!(merged.events, baseline.counters().events);
            assert_eq!(merged.reads, baseline.counters().reads);
            assert_eq!(merged.writes, baseline.counters().writes);
            assert_eq!(
                merged.sampled_accesses,
                baseline.counters().sampled_accesses
            );
            assert_eq!(merged.acquires, baseline.counters().acquires);
            assert_eq!(merged.releases, baseline.counters().releases);
            assert_eq!(merged.races, baseline.counters().races);
        }
    }

    #[test]
    fn concurrent_ingestion_obeys_locking_discipline() {
        let sharded = Arc::new(ShardedOnlineDetector::new(
            OrderedListDetector::new(AlwaysSampler::new()),
            4,
        ));
        sharded.reserve_threads(4);
        let app_lock = Arc::new(std::sync::Mutex::new(()));
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let sharded = Arc::clone(&sharded);
                let app_lock = Arc::clone(&app_lock);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        let guard = app_lock.lock().unwrap();
                        sharded.acquire(t, 0);
                        sharded.write(t, i % 13);
                        sharded.release(t, 0);
                        drop(guard);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sharded.events_processed(), 4 * 100 * 3);
        let (_, reports, merged) = Arc::try_unwrap(sharded).ok().unwrap().finish_merged();
        // All accesses are lock-protected: no races, on any shard.
        assert!(reports.is_empty(), "{reports:?}");
        assert_eq!(merged.events, 1200);
        assert_eq!(merged.acquires, 400);
        assert_eq!(merged.releases, 400);
    }

    #[test]
    fn concurrent_races_are_found_and_sorted() {
        let sharded = Arc::new(ShardedOnlineDetector::new(
            DjitDetector::new(AlwaysSampler::new()),
            3,
        ));
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let sharded = Arc::clone(&sharded);
                std::thread::spawn(move || {
                    for v in 0..8u32 {
                        sharded.write(t, v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(sharded.race_count() > 0);
        let (_, reports) = Arc::try_unwrap(sharded).ok().unwrap().finish();
        assert!(reports.windows(2).all(|w| w[0].event < w[1].event));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = ShardedOnlineDetector::new(DjitDetector::new(AlwaysSampler::new()), 0);
    }
}
