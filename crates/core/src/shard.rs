use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, MutexGuard, RwLock};

use freshtrack_clock::ThreadId;
use freshtrack_trace::{Event, EventId, EventKind, LockId, VarId};

use crate::plane::{AccessEngine, SplitDetector, SyncEngine};
use crate::{Counters, RaceReport};

/// How a [`ShardedOnlineDetector`] maintains the happens-before (sync)
/// skeleton across its access shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncMode {
    /// PR 3's construction: every shard is a full detector clone; a
    /// sync event acquires **all** shard locks (ascending order) and is
    /// replicated into every clone, so per-sync cost is `O(N)` lock
    /// acquisitions plus `N×` the engine's sync clock work. Kept for
    /// differential old-vs-new pinning; scheduled for retirement.
    Replicated,
    /// The two-plane construction (default): one [`SyncEngine`] owns
    /// every thread/lock clock behind a sync-only lock and publishes
    /// `O(1)` per-thread clock views; shards hold only
    /// [`AccessEngine`] state. A sync event touches one engine — per-
    /// sync cost is `O(1)×` the monolithic engine's, independent of `N`.
    Shared,
}

/// A sharded ingestion façade: per-variable access analysis across `N`
/// independently-locked shards, with the happens-before skeleton
/// maintained according to a [`SyncMode`].
///
/// The single-mutex [`OnlineDetector`](crate::OnlineDetector)
/// reproduces the paper's Fig. 5 contention model faithfully — every
/// event serializes through one analysis lock — but that same lock
/// bounds throughput once per-event clock work is cheap. This type is
/// the standard sanitizer-runtime answer (ThreadSanitizer's shadow
/// memory is per-location; its thread/sync clocks are kept once):
/// shard the *access* analysis by variable and keep synchronization
/// state global.
///
/// # Routing rule
///
/// * **Access events** (`Read`/`Write` of variable `v`) go to exactly
///   one shard, `hash(v) % N`, under that shard's lock only.
/// * **Sync events** (`Acquire`/`Release`) go to the sync plane: under
///   [`SyncMode::Shared`] they update the single [`SyncEngine`] behind
///   its sync-only lock and republish the issuing thread's clock view;
///   under [`SyncMode::Replicated`] they acquire every shard lock in
///   ascending order and update all `N` detector clones.
///
/// # Why verdicts are preserved (two-plane)
///
/// Event ids come from one atomic ticket, drawn while holding the lock
/// the event runs under (its shard lock, or the sync lock). Restricted
/// to one shard, ticket order equals processing order (the ticket is
/// drawn inside the critical section), so each shard's history is
/// updated in ticket order; and a thread's events are issued in program
/// order, so its accesses draw tickets after its past sync events and
/// before its future ones. An access's verdict depends only on (a) the
/// issuing thread's clock — which changes *only* at that thread's own
/// sync events, all ticket-ordered around the access exactly as in a
/// monolithic replay — and (b) its variable's history inside one shard.
/// The view published at the thread's latest sync event is therefore
/// precisely the clock a monolithic detector would consult at the
/// access's ticket position, and the id-ordered merge of per-shard
/// reports reproduces the monolithic report list. Samplers are
/// deterministic in `(seed, EventId)` (invariant 4 in
/// `ARCHITECTURE.md`), so the sample set is identical too. The one
/// access→sync feedback, the `RelAfter_S` bit, travels through a
/// per-thread atomic flag: set at the thread's sampled accesses,
/// consumed at the same thread's next release — sequenced by that
/// thread's own program order.
///
/// Per-thread clock views are only ever read by their own thread's
/// accesses and written by the same thread's sync events; callers must
/// issue each thread id's events from one thread at a time (which every
/// real instrumentation source does — a thread's events *are* its
/// program order).
///
/// # Cost model
///
/// An access pays one `1/N`-contended shard lock; access analysis for
/// different shards runs in parallel. A sync event pays one sync-lock
/// acquisition plus **one** copy of the engine's sync clock work and an
/// `O(1)` view publication — flat in `N` (measured in
/// `BENCH_sync_cost.json`; the replicated mode's `N×` fan-out is kept
/// alongside for comparison). The merged [`Counters`] keep this honest:
/// in `Shared` mode planes partition the event space so counters sum
/// directly; in `Replicated` mode [`Counters::merge`] counts the
/// replicated sync observations once and sums work.
///
/// # Example
///
/// ```
/// use freshtrack_core::{DjitDetector, ShardedOnlineDetector};
/// use freshtrack_sampling::AlwaysSampler;
/// use std::sync::Arc;
///
/// let sharded = Arc::new(ShardedOnlineDetector::new(
///     DjitDetector::new(AlwaysSampler::new()),
///     4,
/// ));
/// let handles: Vec<_> = (0..2)
///     .map(|t| {
///         let sharded = Arc::clone(&sharded);
///         std::thread::spawn(move || sharded.write(t, 0))
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// let races = Arc::try_unwrap(sharded).ok().unwrap().finish();
/// assert_eq!(races.len(), 1); // the two writes race
/// ```
pub struct ShardedOnlineDetector<D: SplitDetector> {
    inner: Inner<D>,
    next_id: AtomicU64,
}

enum Inner<D: SplitDetector> {
    Replicated(Replicated<D>),
    Shared(TwoPlane<D>),
}

// ---------------------------------------------------------------------
// Replicated mode (PR 3's construction, kept for old-vs-new pinning).
// ---------------------------------------------------------------------

struct Replicated<D> {
    shards: Vec<Mutex<ReplicatedShard<D>>>,
}

struct ReplicatedShard<D> {
    detector: D,
    reports: Vec<RaceReport>,
}

// ---------------------------------------------------------------------
// Shared (two-plane) mode.
// ---------------------------------------------------------------------

struct TwoPlane<D: SplitDetector> {
    /// The sync plane: every thread/lock clock, exactly once, behind a
    /// lock only sync events (and new-thread admission) take.
    sync: Mutex<SyncPlane<D::Sync>>,
    /// One publication slot per thread: the clock view its accesses
    /// read, republished by its sync events.
    slots: RwLock<Vec<Arc<ThreadSlot<D::View>>>>,
    /// The access plane: per-variable histories, sharded.
    shards: Vec<Mutex<AccessShard<D::Access>>>,
}

struct SyncPlane<E> {
    engine: E,
    counters: Counters,
}

struct AccessShard<A> {
    engine: A,
    counters: Counters,
    reports: Vec<RaceReport>,
}

struct ThreadSlot<V> {
    /// The thread's published clock view. Written only by the thread's
    /// own sync events (take-before-mutate: the old view is dropped
    /// before the sync engine mutates, so publication never forces a
    /// lazy deep copy), read only by the same thread's accesses.
    view: Mutex<Option<V>>,
    /// The `RelAfter_S` bit: set by the thread's sampled accesses,
    /// consumed (and reset) by its next release.
    sampled: AtomicBool,
}

impl<D: SplitDetector> std::fmt::Debug for ShardedOnlineDetector<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedOnlineDetector")
            .field("sync_mode", &self.sync_mode())
            .field("shards", &self.shard_count())
            .field("events", &self.events_processed())
            .finish_non_exhaustive()
    }
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().expect("detector shard mutex poisoned")
}

impl<D: SplitDetector> ShardedOnlineDetector<D> {
    /// Builds a sharded detector in the default [`SyncMode::Shared`]
    /// (two-plane) construction.
    ///
    /// `detector` must be in its initial state: it seeds the engine
    /// configuration (and, in replicated mode, the per-shard clones);
    /// a detector that has already processed events would give the
    /// planes inconsistent views of the happens-before skeleton.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(detector: D, shards: usize) -> Self {
        Self::with_mode(detector, shards, SyncMode::Shared)
    }

    /// Builds a sharded detector with an explicit [`SyncMode`] — the
    /// replicated variant exists so old-vs-new verdicts can be pinned
    /// differentially (`crates/core/tests/sharding.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_mode(detector: D, shards: usize, mode: SyncMode) -> Self {
        assert!(shards > 0, "at least one shard is required");
        let inner = match mode {
            SyncMode::Replicated => Inner::Replicated(Replicated {
                shards: (0..shards)
                    .map(|_| {
                        Mutex::new(ReplicatedShard {
                            detector: detector.clone(),
                            reports: Vec::new(),
                        })
                    })
                    .collect(),
            }),
            SyncMode::Shared => Inner::Shared(TwoPlane {
                sync: Mutex::new(SyncPlane {
                    engine: detector.split_sync(),
                    counters: Counters::new(),
                }),
                slots: RwLock::new(Vec::new()),
                shards: (0..shards)
                    .map(|_| {
                        Mutex::new(AccessShard {
                            engine: detector.split_access(),
                            counters: Counters::new(),
                            reports: Vec::new(),
                        })
                    })
                    .collect(),
            }),
        };
        ShardedOnlineDetector {
            inner,
            next_id: AtomicU64::new(0),
        }
    }

    /// The active sync-skeleton construction.
    pub fn sync_mode(&self) -> SyncMode {
        match &self.inner {
            Inner::Replicated(_) => SyncMode::Replicated,
            Inner::Shared(_) => SyncMode::Shared,
        }
    }

    /// Number of access shards.
    pub fn shard_count(&self) -> usize {
        match &self.inner {
            Inner::Replicated(r) => r.shards.len(),
            Inner::Shared(p) => p.shards.len(),
        }
    }

    /// Pre-sizes per-thread clock state for `n` application threads
    /// (see [`Detector::reserve_threads`](crate::Detector::reserve_threads)).
    /// Call once before the
    /// workers start so the event hot path never grows a clock while a
    /// lock is held.
    pub fn reserve_threads(&self, n: usize) {
        match &self.inner {
            Inner::Replicated(r) => {
                for shard in &r.shards {
                    lock(shard).detector.reserve_threads(n);
                }
            }
            Inner::Shared(p) => {
                let mut sync = lock(&p.sync);
                sync.engine.reserve_threads(n);
                let mut slots = p.slots.write().expect("slot table lock poisoned");
                for idx in 0..n {
                    let tid = ThreadId::new(idx as u32);
                    if let Some(slot) = slots.get(idx) {
                        // Republish: reservation may have regrown the
                        // clock behind an already-published view.
                        *lock(&slot.view) = Some(sync.engine.publish(tid));
                    } else {
                        sync.engine.ensure_thread(tid);
                        let view = sync.engine.publish(tid);
                        slots.push(Arc::new(ThreadSlot {
                            view: Mutex::new(Some(view)),
                            sampled: AtomicBool::new(false),
                        }));
                    }
                }
            }
        }
    }

    /// The shard that owns variable `var`.
    ///
    /// Fibonacci multiplicative hashing spreads the dense, often
    /// sequential variable-id space evenly across shards.
    #[inline]
    pub fn shard_of(&self, var: VarId) -> usize {
        let h = (var.index() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ((h >> 32) as usize) % self.shard_count()
    }

    /// Draws the event's globally unique, totally ordered ticket id.
    ///
    /// Must only be called while holding the lock the event runs under
    /// (its shard lock / the sync lock / all shard locks in replicated
    /// mode) — that is what makes per-shard processing order agree with
    /// ticket order (see the type-level docs).
    #[inline]
    fn take_ticket(&self) -> EventId {
        EventId::new(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Returns thread `tid`'s publication slot, admitting the thread to
    /// the sync plane (initial clock state + first published view) on
    /// first sight. Two-plane mode only.
    fn slot(&self, plane: &TwoPlane<D>, tid: ThreadId) -> Arc<ThreadSlot<D::View>> {
        {
            let slots = plane.slots.read().expect("slot table lock poisoned");
            if let Some(slot) = slots.get(tid.index()) {
                return Arc::clone(slot);
            }
        }
        // Slow path (once per thread): admit under the sync lock.
        let mut sync = lock(&plane.sync);
        let mut slots = plane.slots.write().expect("slot table lock poisoned");
        while slots.len() <= tid.index() {
            let next = ThreadId::new(slots.len() as u32);
            sync.engine.ensure_thread(next);
            let view = sync.engine.publish(next);
            slots.push(Arc::new(ThreadSlot {
                view: Mutex::new(Some(view)),
                sampled: AtomicBool::new(false),
            }));
        }
        Arc::clone(&slots[tid.index()])
    }

    /// Feeds one event; returns `true` if it was reported as racing.
    ///
    /// Access events lock one shard; sync events lock the sync plane
    /// (two-plane mode) or all shards in ascending order (replicated
    /// mode). A sync event never races, so it returns `false`.
    pub fn on_event(&self, tid: u32, kind: EventKind) -> bool {
        let event = Event::new(ThreadId::new(tid), kind);
        match &self.inner {
            Inner::Replicated(r) => self.on_event_replicated(r, event),
            Inner::Shared(p) => self.on_event_two_plane(p, event),
        }
    }

    fn on_event_replicated(&self, r: &Replicated<D>, event: Event) -> bool {
        match event.kind {
            EventKind::Read(var) | EventKind::Write(var) => {
                let mut shard = lock(&r.shards[self.shard_of(var)]);
                let id = self.take_ticket();
                if let Some(report) = shard.detector.process(id, event) {
                    shard.reports.push(report);
                    true
                } else {
                    false
                }
            }
            EventKind::Acquire(_) | EventKind::Release(_) => {
                // Ordered all-shards acquisition: ascending index, so
                // concurrent sync events cannot deadlock against each
                // other (accesses hold at most one shard lock and never
                // wait for a second). The recursion keeps each guard in
                // a stack frame — all locks are held at the recursion
                // floor, where the ticket is drawn, with no per-event
                // guard collection on the heap.
                self.replicate_sync(&r.shards, event);
                false
            }
        }
    }

    /// Locks `shards[0]`, recurses over the rest, and — on the way back
    /// up, with every lock still held — feeds the sync event to each
    /// shard. The ticket is drawn at the recursion floor, i.e. after
    /// the last lock is acquired.
    fn replicate_sync(&self, shards: &[Mutex<ReplicatedShard<D>>], event: Event) -> EventId {
        match shards.split_first() {
            None => self.take_ticket(),
            Some((first, rest)) => {
                let mut guard = lock(first);
                let id = self.replicate_sync(rest, event);
                let report = guard.detector.process(id, event);
                debug_assert!(report.is_none(), "sync events never race");
                id
            }
        }
    }

    fn on_event_two_plane(&self, plane: &TwoPlane<D>, event: Event) -> bool {
        let tid = event.tid;
        let slot = self.slot(plane, tid);
        match event.kind {
            EventKind::Read(var) | EventKind::Write(var) => {
                let mut shard = lock(&plane.shards[self.shard_of(var)]);
                let id = self.take_ticket();
                let view = lock(&slot.view)
                    .clone()
                    .expect("admitted threads always carry a published view");
                let AccessShard {
                    engine,
                    counters,
                    reports,
                } = &mut *shard;
                counters.events += 1;
                let outcome = engine.access(id, event, &view, counters);
                if outcome.sampled {
                    slot.sampled.store(true, Ordering::Relaxed);
                }
                if let Some(report) = outcome.report {
                    reports.push(report);
                    true
                } else {
                    false
                }
            }
            EventKind::Acquire(lock_id) | EventKind::Release(lock_id) => {
                let mut sync = lock(&plane.sync);
                let _id = self.take_ticket();
                // Take-before-mutate: drop the published view so the
                // engine's mutation stays in place instead of
                // deep-copying. Holding the slot lock across the engine
                // op is deadlock-free (it is a leaf lock) and blocks no
                // one — only this thread's own accesses read its slot,
                // and this thread is here.
                let mut view_slot = lock(&slot.view);
                *view_slot = None;
                let SyncPlane { engine, counters } = &mut *sync;
                counters.events += 1;
                match event.kind {
                    EventKind::Acquire(_) => engine.acquire(tid, lock_id, counters),
                    EventKind::Release(_) => {
                        let sampled = slot.sampled.swap(false, Ordering::Relaxed);
                        engine.release(tid, lock_id, sampled, counters);
                    }
                    _ => unreachable!("outer match admits only sync events"),
                }
                *view_slot = Some(engine.publish(tid));
                false
            }
        }
    }

    /// Records a read of variable `var` by thread `tid`.
    pub fn read(&self, tid: u32, var: u32) -> bool {
        self.on_event(tid, EventKind::Read(VarId::new(var)))
    }

    /// Records a write of variable `var` by thread `tid`.
    pub fn write(&self, tid: u32, var: u32) -> bool {
        self.on_event(tid, EventKind::Write(VarId::new(var)))
    }

    /// Records an acquire of lock `lock` by thread `tid`.
    pub fn acquire(&self, tid: u32, lock: u32) {
        self.on_event(tid, EventKind::Acquire(LockId::new(lock)));
    }

    /// Records a release of lock `lock` by thread `tid`.
    pub fn release(&self, tid: u32, lock: u32) {
        self.on_event(tid, EventKind::Release(LockId::new(lock)));
    }

    /// Number of event tickets drawn so far (events dispatched; an
    /// event's analysis completes before its lock is released, so after
    /// all workers quiesce this equals events analyzed).
    pub fn events_processed(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Races reported so far, across all shards.
    pub fn race_count(&self) -> usize {
        match &self.inner {
            Inner::Replicated(r) => r.shards.iter().map(|s| lock(s).reports.len()).sum(),
            Inner::Shared(p) => p.shards.iter().map(|s| lock(s).reports.len()).sum(),
        }
    }

    /// Consumes the façade, returning the merged race reports.
    ///
    /// Reports are **strictly sorted by racing [`EventId`]** — the same
    /// deterministic global order
    /// [`OnlineDetector::finish`](crate::OnlineDetector::finish)
    /// guarantees, so sharded and unsharded runs over the same event
    /// stream are directly comparable (`crates/core/tests/sharding.rs`
    /// pins this for both sync modes and `N > 1`).
    pub fn finish(self) -> Vec<RaceReport> {
        self.finish_merged().0
    }

    /// [`finish`](ShardedOnlineDetector::finish) plus the aggregated
    /// [`Counters`].
    ///
    /// In `Shared` mode the two planes partition the event space, so
    /// counters sum directly (sync observations exist once by
    /// construction). In `Replicated` mode the per-shard counters go
    /// through [`Counters::merge`], which counts the replicated sync
    /// observations once and sums work counters.
    pub fn finish_merged(self) -> (Vec<RaceReport>, Counters) {
        let mut reports = Vec::new();
        let counters = match self.inner {
            Inner::Replicated(r) => {
                let mut shard_counters = Vec::with_capacity(r.shards.len());
                for shard in r.shards {
                    let shard = shard.into_inner().expect("detector shard mutex poisoned");
                    shard_counters.push(*shard.detector.counters());
                    // Within a shard, reports are already in ticket order.
                    debug_assert!(shard.reports.windows(2).all(|w| w[0].event < w[1].event));
                    reports.extend(shard.reports);
                }
                Counters::merge(shard_counters)
            }
            Inner::Shared(p) => {
                let sync = p.sync.into_inner().expect("sync plane mutex poisoned");
                let mut counters = sync.counters;
                for shard in p.shards {
                    let shard = shard.into_inner().expect("detector shard mutex poisoned");
                    debug_assert!(shard.reports.windows(2).all(|w| w[0].event < w[1].event));
                    counters += shard.counters;
                    reports.extend(shard.reports);
                }
                counters
            }
        };
        reports.sort_unstable_by_key(|r| r.event);
        debug_assert!(
            reports.windows(2).all(|w| w[0].event < w[1].event),
            "merged reports must be strictly sorted by EventId"
        );
        (reports, counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Detector, DjitDetector, OnlineDetector, OrderedListDetector};
    use freshtrack_sampling::{AlwaysSampler, BernoulliSampler};
    use std::sync::Arc;

    const BOTH_MODES: [SyncMode; 2] = [SyncMode::Replicated, SyncMode::Shared];

    #[test]
    fn sync_cost_is_replicated_vs_counted_once() {
        // One acquire/release pair and 32 partitioned writes. In Djit+
        // every sync event performs exactly one vector-clock op, so the
        // merged `vc_ops` pins the fan-out: N× under replication, 1×
        // under the two-plane construction.
        for (mode, want_vc_ops) in [(SyncMode::Replicated, 2 * 4), (SyncMode::Shared, 2)] {
            let sharded =
                ShardedOnlineDetector::with_mode(DjitDetector::new(AlwaysSampler::new()), 4, mode);
            sharded.acquire(0, 0);
            for v in 0..32 {
                sharded.write(0, v);
            }
            sharded.release(0, 0);
            let (reports, merged) = sharded.finish_merged();
            assert!(reports.is_empty());
            assert_eq!(merged.acquires, 1, "{mode:?}");
            assert_eq!(merged.releases, 1, "{mode:?}");
            assert_eq!(merged.writes, 32, "{mode:?}");
            assert_eq!(merged.events, 34, "{mode:?}");
            assert_eq!(merged.vc_ops, want_vc_ops, "{mode:?}");
        }
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let sharded = ShardedOnlineDetector::new(DjitDetector::new(AlwaysSampler::new()), 7);
        for v in 0..1000 {
            let s = sharded.shard_of(VarId::new(v));
            assert!(s < 7);
            assert_eq!(s, sharded.shard_of(VarId::new(v)));
        }
    }

    #[test]
    fn sequential_feed_matches_unsharded_in_both_modes() {
        // A small lock-ladder-ish stream with genuine races.
        let script: Vec<(u32, EventKind)> = (0..200u32)
            .map(|i| {
                let t = i % 3;
                match i % 5 {
                    0 => (t, EventKind::Acquire(LockId::new((i / 5) % 2))),
                    1 => (t, EventKind::Write(VarId::new(i % 7))),
                    2 => (t, EventKind::Read(VarId::new(i % 7))),
                    3 => (t, EventKind::Release(LockId::new((i / 5) % 2))),
                    _ => (t, EventKind::Write(VarId::new(3))),
                }
            })
            .collect();
        // The script must obey the locking discipline to be a valid
        // event stream; rebuild it with a holder map.
        let mut held = [None::<u32>; 2];
        let valid: Vec<(u32, EventKind)> = script
            .into_iter()
            .map(|(t, kind)| match kind {
                EventKind::Acquire(l) if held[l.index()].is_none() => {
                    held[l.index()] = Some(t);
                    (t, kind)
                }
                EventKind::Release(l) if held[l.index()] == Some(t) => {
                    held[l.index()] = None;
                    (t, kind)
                }
                EventKind::Acquire(_) | EventKind::Release(_) => {
                    (t, EventKind::Read(VarId::new(t)))
                }
                access => (t, access),
            })
            .collect();

        let sampler = BernoulliSampler::new(0.6, 9);
        let unsharded = OnlineDetector::new(OrderedListDetector::new(sampler));
        for &(t, kind) in &valid {
            unsharded.on_event(t, kind);
        }
        let (baseline, baseline_reports) = unsharded.finish();

        for mode in BOTH_MODES {
            for shards in [1usize, 2, 3, 5] {
                let sharded = ShardedOnlineDetector::with_mode(
                    OrderedListDetector::new(sampler),
                    shards,
                    mode,
                );
                for &(t, kind) in &valid {
                    sharded.on_event(t, kind);
                }
                assert_eq!(sharded.shard_count(), shards);
                assert_eq!(sharded.sync_mode(), mode);
                let (reports, merged) = sharded.finish_merged();
                assert_eq!(reports, baseline_reports, "{mode:?} {shards} shards");
                assert_eq!(merged.events, baseline.counters().events);
                assert_eq!(merged.reads, baseline.counters().reads);
                assert_eq!(merged.writes, baseline.counters().writes);
                assert_eq!(
                    merged.sampled_accesses,
                    baseline.counters().sampled_accesses
                );
                assert_eq!(merged.acquires, baseline.counters().acquires);
                assert_eq!(merged.releases, baseline.counters().releases);
                assert_eq!(merged.races, baseline.counters().races);
            }
        }
    }

    #[test]
    fn concurrent_ingestion_obeys_locking_discipline() {
        for mode in BOTH_MODES {
            let sharded = Arc::new(ShardedOnlineDetector::with_mode(
                OrderedListDetector::new(AlwaysSampler::new()),
                4,
                mode,
            ));
            sharded.reserve_threads(4);
            let app_lock = Arc::new(std::sync::Mutex::new(()));
            let handles: Vec<_> = (0..4u32)
                .map(|t| {
                    let sharded = Arc::clone(&sharded);
                    let app_lock = Arc::clone(&app_lock);
                    std::thread::spawn(move || {
                        for i in 0..100u32 {
                            let guard = app_lock.lock().unwrap();
                            sharded.acquire(t, 0);
                            sharded.write(t, i % 13);
                            sharded.release(t, 0);
                            drop(guard);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(sharded.events_processed(), 4 * 100 * 3);
            let (reports, merged) = Arc::try_unwrap(sharded).ok().unwrap().finish_merged();
            // All accesses are lock-protected: no races, on any shard.
            assert!(reports.is_empty(), "{mode:?}: {reports:?}");
            assert_eq!(merged.events, 1200);
            assert_eq!(merged.acquires, 400);
            assert_eq!(merged.releases, 400);
        }
    }

    #[test]
    fn concurrent_races_are_found_and_sorted() {
        for mode in BOTH_MODES {
            let sharded = Arc::new(ShardedOnlineDetector::with_mode(
                DjitDetector::new(AlwaysSampler::new()),
                3,
                mode,
            ));
            let handles: Vec<_> = (0..4u32)
                .map(|t| {
                    let sharded = Arc::clone(&sharded);
                    std::thread::spawn(move || {
                        for v in 0..8u32 {
                            sharded.write(t, v);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert!(sharded.race_count() > 0);
            let reports = Arc::try_unwrap(sharded).ok().unwrap().finish();
            assert!(reports.windows(2).all(|w| w[0].event < w[1].event));
        }
    }

    #[test]
    fn late_thread_admission_publishes_a_fresh_view() {
        // Thread 5 appears mid-run with no prior sync events: its first
        // access must see its initial clock, not garbage, and still
        // race against the earlier unsynchronized write.
        let sharded = ShardedOnlineDetector::new(DjitDetector::new(AlwaysSampler::new()), 2);
        sharded.write(0, 9);
        assert!(sharded.write(5, 9), "unsynchronized write must race");
        let (reports, merged) = sharded.finish_merged();
        assert_eq!(reports.len(), 1);
        assert_eq!(merged.writes, 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = ShardedOnlineDetector::new(DjitDetector::new(AlwaysSampler::new()), 0);
    }
}
