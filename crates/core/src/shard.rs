use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, MutexGuard, OnceLock, RwLock};

use freshtrack_clock::{PublishedClock, ThreadId, Time};
use freshtrack_trace::{Event, EventId, EventKind, LockId, VarId};

use crate::counters::SkipCells;
use crate::plane::{AccessEngine, ClockView, PublishedView, SplitDetector, SyncEngine, ViewSource};
use crate::{Counters, HoistedDecider, RaceReport};

/// How a [`ShardedOnlineDetector`] maintains the happens-before (sync)
/// skeleton across its access shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncMode {
    /// PR 3's construction: every shard is a full detector clone; a
    /// sync event acquires **all** shard locks (ascending order) and is
    /// replicated into every clone, so per-sync cost is `O(N)` lock
    /// acquisitions plus `N×` the engine's sync clock work. Kept for
    /// differential old-vs-new pinning; scheduled for retirement.
    Replicated,
    /// PR 4's two-plane construction: one [`SyncEngine`] owns every
    /// thread/lock clock behind a sync-only lock and publishes `O(1)`
    /// per-thread clock views into per-thread mutex slots; shards hold
    /// only [`AccessEngine`] state. Per-sync cost is flat in `N` but
    /// pays a fixed slot-lock + refcount publication constant. Kept
    /// selectable for differential pinning and trajectory comparison.
    Shared,
    /// The seqlock construction (default): the two-plane split with
    /// publication through a
    /// [`PublishedClock`](freshtrack_clock::PublishedClock) — the sync
    /// event writes the thread's spliced race-check clock in place
    /// under an even/odd version word; accesses snapshot it lock-free
    /// and retry on torn reads. No slot lock, no refcount traffic, no
    /// snapshot allocation per sync event.
    Seqlock,
}

/// A sharded ingestion façade: per-variable access analysis across `N`
/// independently-locked shards, with the happens-before skeleton
/// maintained according to a [`SyncMode`].
///
/// The single-mutex [`OnlineDetector`](crate::OnlineDetector)
/// reproduces the paper's Fig. 5 contention model faithfully — every
/// event serializes through one analysis lock — but that same lock
/// bounds throughput once per-event clock work is cheap. This type is
/// the standard sanitizer-runtime answer (ThreadSanitizer's shadow
/// memory is per-location; its thread/sync clocks are kept once):
/// shard the *access* analysis by variable and keep synchronization
/// state global.
///
/// # Routing rule
///
/// * **Access events** (`Read`/`Write` of variable `v`) draw their
///   ticket and their sampling verdict *before any lock* (see the skip
///   path below). A sampled-out access returns immediately; a sampled
///   access goes to exactly one shard, `hash(v) mod N`, under that
///   shard's lock only. With a batch capacity `B > 1` sampled accesses
///   are first buffered in a per-shard batch; one shard-lock
///   acquisition then amortizes over up to `B` events at flush time.
/// * **Sync events** (`Acquire`/`Release`) first flush every pending
///   batch (a thread's buffered accesses must be analyzed against the
///   view preceding its sync event), then go to the sync plane: under
///   [`SyncMode::Seqlock`] (default) and [`SyncMode::Shared`] they
///   update the single [`SyncEngine`] behind its sync-only lock and
///   republish the issuing thread's clock view; under
///   [`SyncMode::Replicated`] they acquire every shard lock in
///   ascending order and update all `N` detector clones.
///
/// # The lock-free skip path
///
/// When the wrapped detector exposes a
/// [`hoisted_decider`](crate::Detector::hoisted_decider) — a pure
/// function of `(EventId, Event)`, which every engine in this crate
/// does (invariant 4 in `ARCHITECTURE.md`) — an access event touches
/// **no lock at all** until it is known to be sampled:
///
/// 1. draw a ticket from the atomic event counter (`fetch_add`),
/// 2. evaluate the decider on `(ticket, event)`,
/// 3. if sampled out: bump a cache-line-striped thread-local skip cell
///    and return — no shard routing, no shard or batch lock, no batch
///    enqueue, no clock-view snapshot.
///
/// Only sampled accesses proceed to slot admission, the `RelAfter_S`
/// flag, and the shard (or batch) lock. At a sampling rate `r` the
/// expected locked work per access is `O(r)`; the skip path itself is
/// two relaxed atomic RMWs. The skipped tallies are folded into the
/// merged [`Counters`] bit-exactly at
/// [`finish_merged`](ShardedOnlineDetector::finish_merged). Detectors
/// that do not expose a decider fall back to the pre-hoist behavior:
/// every access takes its shard lock and the engine decides inline.
///
/// # Why verdicts are preserved (invariant 10)
///
/// Event ids come from one atomic ticket, drawn at the top of
/// [`on_event`](ShardedOnlineDetector::on_event) *outside every lock*.
/// Three observations make this sound:
///
/// * **Sampled-out accesses mutate nothing.** Their processing is a
///   counter bump; they commute with every other event, so their
///   position in any processing order is irrelevant — only their
///   ticket (which feeds the pure sampler) matters, and that is fixed
///   at draw time.
/// * **Causally ordered events keep ticket order.** An instrumentation
///   call returns before the same thread issues its next event, and
///   cross-thread ordering is only established through the
///   application's own synchronization — which likewise orders the
///   corresponding `on_event` calls in real time. `fetch_add` on a
///   single atomic is coherent, so an event that *happens before*
///   another always draws the smaller ticket. A thread's accesses
///   therefore draw tickets after its past sync events and before its
///   future ones, which is exactly what the view argument below needs.
/// * **Concurrent analyzed events may invert ticket order** inside a
///   shard (the ticket is no longer drawn under the shard lock). Such
///   events are unordered by happens-before, so either analysis order
///   is a valid linearization — the race verdict for a concurrent
///   conflicting pair is reported whichever side is analyzed second.
///   Per-shard report lists are consequently no longer guaranteed
///   ticket-sorted; the merge sorts once at
///   [`finish`](ShardedOnlineDetector::finish) and the published order
///   is deterministic for any sequentially fed stream.
///
/// An access's verdict depends only on (a) the issuing thread's clock —
/// which changes *only* at that thread's own sync events, all
/// ticket-ordered around the access by the causal argument above — and
/// (b) its variable's history inside one shard. The view published at
/// the thread's latest sync event is therefore precisely the clock a
/// monolithic detector would consult at the access's ticket position.
/// Samplers are deterministic in `(seed, EventId)` (invariant 4), so
/// the sample set is identical too — hoisting the decision changes
/// *where* it is computed, never *what* it returns. The one access→sync
/// feedback, the `RelAfter_S` bit, is maintained on the hoisted side:
/// set by the issuing thread itself the moment its access is admitted,
/// consumed at the same thread's next release — sequenced by that
/// thread's own program order, with no lock in between.
///
/// Batching preserves this argument because views are resolved at
/// *flush* time and every sync event flushes all batches before it
/// mutates any clock: a buffered access's thread cannot have passed a
/// sync event between its ticket draw and its flush (its own sync event
/// would have flushed it first), so the flush-time view equals the
/// draw-time view. Buffered accesses report their verdict at flush
/// (`on_event` returns `false` for them); the merged report list is
/// unchanged, which `crates/core/tests/sharding.rs` pins differentially
/// across batch sizes.
///
/// Per-thread clock views are only ever read by their own thread's
/// accesses and written by the same thread's sync events; callers must
/// issue each thread id's events from one thread at a time (which every
/// real instrumentation source does — a thread's events *are* its
/// program order).
///
/// # Cost model
///
/// A sampled-out access pays two relaxed atomic RMWs and nothing else
/// (measured in `BENCH_access_cost.json`). A sampled access pays one
/// `1/N`-contended shard lock (or `1/B` of one, with batching); access
/// analysis for different shards runs in parallel. A
/// sync event pays one sync-lock acquisition plus **one** copy of the
/// engine's sync clock work and a publication — flat in `N` (measured
/// in `BENCH_sync_cost.json`; the replicated mode's `N×` fan-out is
/// kept alongside for comparison). Under the default
/// [`SyncMode::Seqlock`] the publication is a version-word bump around
/// `width` plain stores — no lock, no allocation, no refcount traffic —
/// vs the `Shared` slot's mutex + `Arc` round trip. The merged
/// [`Counters`] keep this honest: in the two-plane modes planes
/// partition the event space so counters sum directly; in `Replicated`
/// mode [`Counters::merge`] counts the replicated sync observations
/// once and sums work.
///
/// # Example
///
/// ```
/// use freshtrack_core::{DjitDetector, ShardedOnlineDetector};
/// use freshtrack_sampling::AlwaysSampler;
/// use std::sync::Arc;
///
/// let sharded = Arc::new(ShardedOnlineDetector::new(
///     DjitDetector::new(AlwaysSampler::new()),
///     4,
/// ));
/// let handles: Vec<_> = (0..2)
///     .map(|t| {
///         let sharded = Arc::clone(&sharded);
///         std::thread::spawn(move || sharded.write(t, 0))
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// let races = Arc::try_unwrap(sharded).ok().unwrap().finish();
/// assert_eq!(races.len(), 1); // the two writes race
/// ```
pub struct ShardedOnlineDetector<D: SplitDetector> {
    inner: Inner<D>,
    batch: BatchPlane,
    next_id: AtomicU64,
    /// The hoisted sampling decision (see the skip-path docs); `None`
    /// only for detectors that cannot expose one, which keeps the
    /// pre-hoist locked inline path.
    decider: Option<HoistedDecider>,
    /// Striped skip tallies for the lock-free path, folded into the
    /// merged counters at `finish_merged`.
    skip: SkipCells,
    /// Access-plane shard-lock acquisitions, for regression tests that
    /// pin the skip path lock-free (debug builds only).
    #[cfg(debug_assertions)]
    shard_locks: AtomicU64,
}

// One `Inner` exists per detector and lives as long as it does, so the
// size spread between variants wastes nothing; boxing the seqlock slot
// table would put a pointer chase on every access's clock read.
#[allow(clippy::large_enum_variant)]
enum Inner<D: SplitDetector> {
    Replicated(Replicated<D>),
    Shared(TwoPlane<D>),
    Seqlock(SeqPlane<D>),
}

// ---------------------------------------------------------------------
// Replicated mode (PR 3's construction, kept for old-vs-new pinning).
// ---------------------------------------------------------------------

struct Replicated<D> {
    shards: Vec<Mutex<ReplicatedShard<D>>>,
}

struct ReplicatedShard<D> {
    detector: D,
    reports: Vec<RaceReport>,
}

// ---------------------------------------------------------------------
// Shared (two-plane) mode.
// ---------------------------------------------------------------------

struct TwoPlane<D: SplitDetector> {
    /// The sync plane: every thread/lock clock, exactly once, behind a
    /// lock only sync events (and new-thread admission) take.
    sync: Mutex<SyncPlane<D::Sync>>,
    /// One publication slot per thread: the clock view its accesses
    /// read, republished by its sync events.
    slots: RwLock<Vec<Arc<ThreadSlot<D::View>>>>,
    /// The access plane: per-variable histories, sharded.
    shards: Vec<Mutex<AccessShard<D::Access>>>,
}

struct SyncPlane<E> {
    engine: E,
    counters: Counters,
    /// Seqlock-mode publication state; unused (empty) in shared mode.
    publisher: Publisher,
}

struct AccessShard<A> {
    engine: A,
    counters: Counters,
    reports: Vec<RaceReport>,
    /// Seqlock-mode scratch: the decoded snapshot one access's race
    /// check reads through a [`PublishedView`]. Lives with the shard so
    /// the hot path never allocates.
    scratch: Vec<Time>,
}

impl<A> AccessShard<A> {
    fn new(engine: A) -> Self {
        AccessShard {
            engine,
            counters: Counters::new(),
            reports: Vec::new(),
            scratch: Vec::new(),
        }
    }
}

struct ThreadSlot<V> {
    /// The thread's published clock view. Written only by the thread's
    /// own sync events (take-before-mutate: the old view is dropped
    /// before the sync engine mutates, so publication never forces a
    /// lazy deep copy), read only by the same thread's accesses.
    view: Mutex<Option<V>>,
    /// The `RelAfter_S` bit: set by the thread's sampled accesses,
    /// consumed (and reset) by its next release.
    sampled: AtomicBool,
}

// ---------------------------------------------------------------------
// Seqlock (two-plane, lock-free publication) mode.
// ---------------------------------------------------------------------

struct SeqPlane<D: SplitDetector> {
    /// The sync plane: every thread/lock clock, exactly once, behind a
    /// lock only sync events (and new-thread admission) take.
    sync: Mutex<SyncPlane<D::Sync>>,
    /// One seqlock publication slot per thread, in a grow-only chunked
    /// table that is never reallocated — readers hold plain references
    /// with no lock at all.
    slots: SeqSlots,
    /// The access plane: per-variable histories, sharded.
    shards: Vec<Mutex<AccessShard<D::Access>>>,
}

/// One thread's seqlock publication slot.
struct SeqSlot {
    /// The thread's spliced race-check clock (`C_t[t ↦ e_t]`), written
    /// in place by the thread's own sync events (serialized under the
    /// sync lock), snapshot lock-free by the same thread's accesses.
    clock: PublishedClock,
    /// The `RelAfter_S` bit, exactly as in [`ThreadSlot`].
    sampled: AtomicBool,
}

/// Slots in chunk 0; chunk `c` holds `SLOT_CHUNK0 << c` slots.
const SLOT_CHUNK0: usize = 8;
/// Chunk count; capacity `SLOT_CHUNK0 * (2^SLOT_CHUNKS - 1)` threads.
const SLOT_CHUNKS: usize = 24;

/// A grow-only, lock-free slot table: doubling chunks behind
/// `OnceLock`, so admitted slots never move and the read fast path is
/// one atomic load plus a chunk lookup. Admission (chunk init + bump of
/// `admitted`) happens under the sync lock.
struct SeqSlots {
    /// Slots `0..admitted` are initialized and published (the bump is a
    /// release store after the slot's first publication).
    admitted: AtomicUsize,
    chunks: [OnceLock<Box<[SeqSlot]>>; SLOT_CHUNKS],
}

impl SeqSlots {
    fn new() -> Self {
        SeqSlots {
            admitted: AtomicUsize::new(0),
            chunks: [const { OnceLock::new() }; SLOT_CHUNKS],
        }
    }

    fn chunk_of(index: usize) -> (usize, usize) {
        let c = (index / SLOT_CHUNK0 + 1).ilog2() as usize;
        (c, index - SLOT_CHUNK0 * ((1usize << c) - 1))
    }

    /// Lock-free lookup; `None` until the thread has been admitted.
    fn get(&self, index: usize) -> Option<&SeqSlot> {
        if index >= self.admitted.load(Ordering::Acquire) {
            return None;
        }
        let (c, off) = Self::chunk_of(index);
        let chunk = self.chunks[c]
            .get()
            .expect("admitted slots live in initialized chunks");
        Some(&chunk[off])
    }

    /// The next index to admit. Call under the sync lock.
    fn admitted(&self) -> usize {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Initializes (if needed) the chunk holding `index` and returns
    /// the slot, not yet visible to `get`. Call under the sync lock.
    fn slot_for_admission(&self, index: usize) -> &SeqSlot {
        let (c, off) = Self::chunk_of(index);
        let chunk = self.chunks[c].get_or_init(|| {
            (0..SLOT_CHUNK0 << c)
                .map(|_| SeqSlot {
                    clock: PublishedClock::new(),
                    sampled: AtomicBool::new(false),
                })
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        &chunk[off]
    }

    /// Makes slots `0..len` visible to `get`. Call under the sync lock,
    /// after the new slot's first publication.
    fn publish_admission(&self, len: usize) {
        self.admitted.store(len, Ordering::Release);
    }
}

/// Writer-private seqlock publication state: the dense scratch a sync
/// event linearizes into, plus a copy of the last image actually
/// published per thread. Both live with the sync plane — there is one
/// writer at a time, under the sync mutex — so the change diff below
/// runs on plain memory (no atomic loads, vectorizable) and the
/// seqlock is only touched for the words that actually moved.
struct Publisher {
    /// Dense clock the engine memcpys into
    /// ([`SyncEngine::publish_dense`]); reused across events.
    scratch: Vec<Time>,
    /// `cache[t]` mirrors slot `t`'s published words exactly:
    /// [`Publisher::publish`] is the sole writer of both.
    cache: Vec<Vec<Time>>,
    /// All-zero slice the idle-tail trim compares against, so the
    /// check compiles to a vectorized memcmp instead of a scalar
    /// early-exit scan.
    zeros: Vec<Time>,
    /// One past the highest thread id that has had a *sync event*
    /// (admissions do not count). Epochs circulate between clocks only
    /// through releases — themselves sync events serialized by the same
    /// mutex — so no spliced clock has a non-zero entry at or above
    /// this bound; it is the `width_cap` event publications pass to
    /// [`SyncEngine::publish_dense`].
    active: usize,
}

impl Publisher {
    fn new() -> Self {
        Publisher {
            scratch: Vec::new(),
            cache: Vec::new(),
            zeros: Vec::new(),
            active: 0,
        }
    }

    /// Publishes at one of `tid`'s sync events: the hot path. The
    /// engine linearizes at most [`active`](Publisher::active) entries.
    fn publish_event<E: SyncEngine>(
        &mut self,
        engine: &mut E,
        tid: ThreadId,
        clock: &PublishedClock,
    ) {
        self.active = self.active.max(tid.index() + 1);
        self.publish(engine, tid, clock, self.active);
    }

    /// Publishes at `tid`'s admission (or a reservation republish):
    /// makes no activity assumption, so the engine's full width is
    /// linearized and the idle tail trimmed by scan. Cold path — runs
    /// once per admitted slot, not per event.
    fn publish_admission<E: SyncEngine>(
        &mut self,
        engine: &mut E,
        tid: ThreadId,
        clock: &PublishedClock,
    ) {
        self.publish(engine, tid, clock, usize::MAX);
    }

    /// Publishes `tid`'s current spliced race-check view into `clock`.
    ///
    /// Dense fast path: the engine memcpys its contiguous clock into
    /// scratch ([`SyncEngine::publish_dense`]), capped at `width_cap`
    /// entries — no typed view is materialized, no refcount is
    /// touched, and the engine's clock never leaves sole ownership.
    /// The scratch is then diffed against the writer-private copy of
    /// the last publication: an identical image (sync events that did
    /// not move the clock) publishes nothing at all, and a changed one
    /// stores only the changed word range — for the common case (an
    /// epoch bump, a join touching one entry) that is one or two
    /// seqlock stores, not a full clock.
    fn publish<E: SyncEngine>(
        &mut self,
        engine: &mut E,
        tid: ThreadId,
        clock: &PublishedClock,
        width_cap: usize,
    ) {
        if self.cache.len() <= tid.index() {
            self.cache.resize_with(tid.index() + 1, Vec::new);
        }
        if let Some(img) = engine.publish_dense_ref(tid, width_cap) {
            // Zero-copy: the engine's clock storage is the dense image
            // (no splice needed), so nothing is materialized at all.
            publish_image(
                &mut self.cache[tid.index()],
                &mut self.zeros,
                img,
                tid,
                clock,
            );
            return;
        }
        engine.publish_dense(tid, width_cap, &mut self.scratch);
        publish_image(
            &mut self.cache[tid.index()],
            &mut self.zeros,
            &self.scratch,
            tid,
            clock,
        );
    }
}

/// Diffs one dense image `img` (already capped by the caller's
/// `width_cap` promise) against `prev` — the writer-private copy of the
/// last publication — and republishes only what changed.
///
/// Trims the idle tail before diffing: entries past the previous
/// publication that are still zero are a reservation tail no reader can
/// distinguish from absent entries ([`PublishedView`]'s `time_of` reads
/// past-the-end as 0, and 0 ⊑ anything), so after a wide
/// `reserve_threads` the publication stays proportional to the *active*
/// width. Clock entries are monotone, so a published width never
/// shrinks — the trim point only grows when a new thread's epoch
/// actually reaches this clock (the rare rescan branch). The all-zero
/// check compares against `zeros` so it compiles to a vectorized
/// memcmp, not a scalar early-exit scan.
fn publish_image(
    prev: &mut Vec<Time>,
    zeros: &mut Vec<Time>,
    img: &[Time],
    tid: ThreadId,
    clock: &PublishedClock,
) {
    let keep = (tid.index() + 1).max(prev.len()).min(img.len());
    if zeros.len() < img.len() {
        zeros.resize(img.len(), 0);
    }
    let trimmed = if img[keep..] == zeros[..img.len() - keep] {
        keep
    } else {
        let last = img.iter().rposition(|&t| t != 0).expect("tail is non-zero");
        (last + 1).max(keep)
    };
    let img = &img[..trimmed];
    if prev.len() == trimmed {
        let a = prev.as_slice();
        let mut first = 0;
        while first < trimmed && a[first] == img[first] {
            first += 1;
        }
        if first == trimmed {
            return; // the clock did not move: publish nothing at all
        }
        let mut last = trimmed - 1;
        while a[last] == img[last] {
            last -= 1;
        }
        clock.store_changed(img, first, last);
        prev[first..=last].copy_from_slice(&img[first..=last]);
    } else {
        // Width changed (thread admission / reservation regrow): take
        // the general path, which also handles chunk growth.
        clock.store_slice(img);
        prev.clear();
        prev.extend_from_slice(img);
    }
}

// ---------------------------------------------------------------------
// Batched ingestion (all sync modes).
// ---------------------------------------------------------------------

/// A bounded per-shard buffer of ticketed access events awaiting
/// analysis. Filled and drained under the shard's batch lock, so the
/// FIFO order *is* ticket order restricted to the shard.
struct AccessBatch {
    events: Vec<(EventId, Event)>,
}

struct BatchPlane {
    /// Events buffered per shard before an inline flush; `1` disables
    /// buffering (every access is analyzed inside its own call).
    capacity: usize,
    /// Total buffered events across all shards — lets the sync path
    /// skip the flush sweep with a single load when nothing is pending.
    pending: AtomicU64,
    /// One batch per access shard (lock order: batch(k) → shard(k)).
    batches: Vec<Mutex<AccessBatch>>,
}

/// [`ViewSource`] over the shared-mode slot table: clones the published
/// pointer-sized view out of the thread's slot mutex.
struct SharedViews<'a, V> {
    slots: &'a [Arc<ThreadSlot<V>>],
}

impl<V: ClockView + Clone + Send + 'static> ViewSource for SharedViews<'_, V> {
    type View<'b>
        = V
    where
        Self: 'b;

    fn view(&mut self, tid: ThreadId) -> V {
        lock(&self.slots[tid.index()].view)
            .clone()
            .expect("admitted threads always carry a published view")
    }
}

/// [`ViewSource`] over the seqlock slot table: decodes the thread's
/// publication into the shard's scratch buffer, lock-free.
struct SeqViews<'a> {
    slots: &'a SeqSlots,
    scratch: &'a mut Vec<Time>,
}

impl ViewSource for SeqViews<'_> {
    type View<'b>
        = PublishedView<'b>
    where
        Self: 'b;

    fn view(&mut self, tid: ThreadId) -> PublishedView<'_> {
        let slot = self
            .slots
            .get(tid.index())
            .expect("buffered accesses come from admitted threads");
        slot.clock.read_into(self.scratch);
        PublishedView::new(self.scratch)
    }
}

impl<D: SplitDetector> std::fmt::Debug for ShardedOnlineDetector<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedOnlineDetector")
            .field("sync_mode", &self.sync_mode())
            .field("shards", &self.shard_count())
            .field("events", &self.events_processed())
            .field("hoisted", &self.decider.is_some())
            .finish_non_exhaustive()
    }
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex.lock().expect("detector shard mutex poisoned")
}

impl<D: SplitDetector> ShardedOnlineDetector<D> {
    /// Builds a sharded detector in the default [`SyncMode::Seqlock`]
    /// construction with unbatched ingestion.
    ///
    /// `detector` must be in its initial state: it seeds the engine
    /// configuration (and, in replicated mode, the per-shard clones);
    /// a detector that has already processed events would give the
    /// planes inconsistent views of the happens-before skeleton.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(detector: D, shards: usize) -> Self {
        Self::with_mode(detector, shards, SyncMode::Seqlock)
    }

    /// Builds a sharded detector with an explicit [`SyncMode`] — the
    /// non-default variants exist so old-vs-new verdicts can be pinned
    /// differentially (`crates/core/tests/sharding.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_mode(detector: D, shards: usize, mode: SyncMode) -> Self {
        Self::with_options(detector, shards, mode, 1)
    }

    /// Builds a sharded detector with an explicit [`SyncMode`] and a
    /// per-shard access-batch capacity.
    ///
    /// `batch == 1` analyzes every access inside its own `on_event`
    /// call (and reports its verdict through the return value);
    /// `batch > 1` buffers up to `batch` access events per shard so one
    /// shard-lock acquisition amortizes over the whole batch — buffered
    /// accesses return `false` from `on_event` and surface their
    /// reports at flush time (next full batch, next sync event, or
    /// [`finish`](ShardedOnlineDetector::finish)). Merged reports and
    /// counters are identical across batch capacities.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `batch` is zero.
    pub fn with_options(detector: D, shards: usize, mode: SyncMode, batch: usize) -> Self {
        assert!(shards > 0, "at least one shard is required");
        assert!(batch > 0, "at least a batch capacity of one is required");
        let decider = detector.hoisted_decider();
        let inner = match mode {
            SyncMode::Replicated => Inner::Replicated(Replicated {
                shards: (0..shards)
                    .map(|_| {
                        Mutex::new(ReplicatedShard {
                            detector: detector.clone(),
                            reports: Vec::new(),
                        })
                    })
                    .collect(),
            }),
            SyncMode::Shared => Inner::Shared(TwoPlane {
                sync: Mutex::new(SyncPlane {
                    engine: detector.split_sync(),
                    counters: Counters::new(),
                    publisher: Publisher::new(),
                }),
                slots: RwLock::new(Vec::new()),
                shards: (0..shards)
                    .map(|_| Mutex::new(AccessShard::new(detector.split_access())))
                    .collect(),
            }),
            SyncMode::Seqlock => Inner::Seqlock(SeqPlane {
                sync: Mutex::new(SyncPlane {
                    engine: detector.split_sync(),
                    counters: Counters::new(),
                    publisher: Publisher::new(),
                }),
                slots: SeqSlots::new(),
                shards: (0..shards)
                    .map(|_| Mutex::new(AccessShard::new(detector.split_access())))
                    .collect(),
            }),
        };
        ShardedOnlineDetector {
            inner,
            batch: BatchPlane {
                capacity: batch,
                pending: AtomicU64::new(0),
                batches: (0..shards)
                    .map(|_| {
                        Mutex::new(AccessBatch {
                            events: Vec::with_capacity(if batch > 1 { batch } else { 0 }),
                        })
                    })
                    .collect(),
            },
            next_id: AtomicU64::new(0),
            decider,
            skip: SkipCells::new(),
            #[cfg(debug_assertions)]
            shard_locks: AtomicU64::new(0),
        }
    }

    /// The active sync-skeleton construction.
    pub fn sync_mode(&self) -> SyncMode {
        match &self.inner {
            Inner::Replicated(_) => SyncMode::Replicated,
            Inner::Shared(_) => SyncMode::Shared,
            Inner::Seqlock(_) => SyncMode::Seqlock,
        }
    }

    /// Number of access shards.
    pub fn shard_count(&self) -> usize {
        match &self.inner {
            Inner::Replicated(r) => r.shards.len(),
            Inner::Shared(p) => p.shards.len(),
            Inner::Seqlock(p) => p.shards.len(),
        }
    }

    /// The per-shard access-batch capacity (`1` = unbatched).
    pub fn batch_capacity(&self) -> usize {
        self.batch.capacity
    }

    /// Pre-sizes per-thread clock state for `n` application threads
    /// (see [`Detector::reserve_threads`](crate::Detector::reserve_threads)).
    /// Call once before the
    /// workers start so the event hot path never grows a clock while a
    /// lock is held.
    pub fn reserve_threads(&self, n: usize) {
        match &self.inner {
            Inner::Replicated(r) => {
                for shard in &r.shards {
                    lock(shard).detector.reserve_threads(n);
                }
            }
            Inner::Shared(p) => {
                let mut sync = lock(&p.sync);
                sync.engine.reserve_threads(n);
                let mut slots = p.slots.write().expect("slot table lock poisoned");
                for idx in 0..n {
                    let tid = ThreadId::new(idx as u32);
                    if let Some(slot) = slots.get(idx) {
                        // Republish: reservation may have regrown the
                        // clock behind an already-published view.
                        *lock(&slot.view) = Some(sync.engine.publish(tid));
                    } else {
                        sync.engine.ensure_thread(tid);
                        let view = sync.engine.publish(tid);
                        slots.push(Arc::new(ThreadSlot {
                            view: Mutex::new(Some(view)),
                            sampled: AtomicBool::new(false),
                        }));
                    }
                }
            }
            Inner::Seqlock(p) => {
                let mut sync = lock(&p.sync);
                let SyncPlane {
                    engine, publisher, ..
                } = &mut *sync;
                engine.reserve_threads(n);
                for idx in 0..n {
                    let tid = ThreadId::new(idx as u32);
                    if idx < p.slots.admitted() {
                        // Republish: reservation may have regrown the
                        // clock behind an already-published view.
                        let slot = p.slots.get(idx).expect("index below admitted");
                        publisher.publish_admission(engine, tid, &slot.clock);
                    } else {
                        engine.ensure_thread(tid);
                        let slot = p.slots.slot_for_admission(idx);
                        publisher.publish_admission(engine, tid, &slot.clock);
                        p.slots.publish_admission(idx + 1);
                    }
                }
            }
        }
    }

    /// The shard that owns variable `var`.
    ///
    /// Fibonacci multiplicative hashing spreads the dense, often
    /// sequential variable-id space evenly across shards.
    #[inline]
    pub fn shard_of(&self, var: VarId) -> usize {
        let h = (var.index() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ((h >> 32) as usize) % self.shard_count()
    }

    /// Draws the event's globally unique, totally ordered ticket id.
    ///
    /// Called at the top of [`on_event`](ShardedOnlineDetector::on_event),
    /// **outside every lock** — the skip path's sampling verdict is a
    /// pure function of this ticket, so sampled-out accesses never
    /// touch a lock at all. Soundness does not need a lock here:
    /// causally ordered events draw tickets in causal order (each
    /// `on_event` call returns before any call it happens-before
    /// begins, and `fetch_add` on one atomic is coherent), while
    /// concurrent events may be analyzed out of ticket order inside a
    /// shard — harmless, because they are unordered by happens-before
    /// (invariant 10 in `ARCHITECTURE.md`; see the type-level docs).
    #[inline]
    fn take_ticket(&self) -> EventId {
        EventId::new(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Counts one access-plane shard-lock acquisition (debug builds
    /// only; see
    /// [`debug_shard_lock_acquisitions`](ShardedOnlineDetector::debug_shard_lock_acquisitions)).
    #[inline]
    fn note_shard_lock(&self) {
        #[cfg(debug_assertions)]
        self.shard_locks.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of shard-lock acquisitions performed so far (access
    /// analysis, batch flushes, and replicated-mode sync fan-out).
    ///
    /// Exists so regression tests can pin the skip path lock-free — a
    /// fully sampled-out stream must never take a shard lock. Debug
    /// builds only.
    #[cfg(debug_assertions)]
    pub fn debug_shard_lock_acquisitions(&self) -> u64 {
        self.shard_locks.load(Ordering::Relaxed)
    }

    /// Hoisted bookkeeping for an access already admitted into the
    /// sample set: admit the thread's publication slot (first sight
    /// only) and raise its `RelAfter_S` flag. Runs on the issuing
    /// thread *before* any shard or batch lock, so the flag is
    /// program-order sequenced before the thread's next release
    /// consumes it.
    fn note_sampled(&self, tid: ThreadId) {
        match &self.inner {
            // Replicated clones track `RelAfter_S` inside their own
            // detector state when the access is processed.
            Inner::Replicated(_) => {}
            Inner::Shared(p) => self.slot(p, tid).sampled.store(true, Ordering::Relaxed),
            Inner::Seqlock(p) => self.seq_slot(p, tid).sampled.store(true, Ordering::Relaxed),
        }
    }

    /// Returns thread `tid`'s publication slot, admitting the thread to
    /// the sync plane (initial clock state + first published view) on
    /// first sight. Two-plane mode only.
    fn slot(&self, plane: &TwoPlane<D>, tid: ThreadId) -> Arc<ThreadSlot<D::View>> {
        {
            let slots = plane.slots.read().expect("slot table lock poisoned");
            if let Some(slot) = slots.get(tid.index()) {
                return Arc::clone(slot);
            }
        }
        // Slow path (once per thread): admit under the sync lock.
        let mut sync = lock(&plane.sync);
        let mut slots = plane.slots.write().expect("slot table lock poisoned");
        while slots.len() <= tid.index() {
            let next = ThreadId::new(slots.len() as u32);
            sync.engine.ensure_thread(next);
            let view = sync.engine.publish(next);
            slots.push(Arc::new(ThreadSlot {
                view: Mutex::new(Some(view)),
                sampled: AtomicBool::new(false),
            }));
        }
        Arc::clone(&slots[tid.index()])
    }

    /// Returns thread `tid`'s seqlock publication slot, admitting the
    /// thread (initial clock state + first publication, under the sync
    /// lock) on first sight. Seqlock mode only; the fast path is one
    /// atomic load plus a chunk lookup — no lock of any kind.
    fn seq_slot<'a>(&self, plane: &'a SeqPlane<D>, tid: ThreadId) -> &'a SeqSlot {
        if let Some(slot) = plane.slots.get(tid.index()) {
            return slot;
        }
        // Slow path (once per thread): admit under the sync lock.
        let mut sync = lock(&plane.sync);
        while plane.slots.admitted() <= tid.index() {
            let index = plane.slots.admitted();
            let next = ThreadId::new(index as u32);
            let SyncPlane {
                engine, publisher, ..
            } = &mut *sync;
            engine.ensure_thread(next);
            let slot = plane.slots.slot_for_admission(index);
            publisher.publish_admission(engine, next, &slot.clock);
            plane.slots.publish_admission(index + 1);
        }
        plane.slots.get(tid.index()).expect("just admitted")
    }

    /// Feeds one event; returns `true` if it was reported as racing.
    ///
    /// Every event first draws its ticket from the atomic counter, with
    /// no lock held. An access is then decided by the hoisted sampler:
    /// sampled-out accesses return after a striped counter bump (the
    /// lock-free skip path); sampled ones lock one shard (or, with
    /// batching, one batch lock and only every `B`th event the shard
    /// lock too). Sync events lock the sync plane (two-plane modes) or
    /// all shards in ascending order (replicated mode). A sync event
    /// never races, and a *buffered* access reports only at flush time,
    /// so both return `false`.
    pub fn on_event(&self, tid: u32, kind: EventKind) -> bool {
        let event = Event::new(ThreadId::new(tid), kind);
        match event.kind {
            EventKind::Read(var) | EventKind::Write(var) => {
                // Hoisted ticket + decision: no lock held (invariant 10).
                let id = self.take_ticket();
                if let Some(decider) = &self.decider {
                    if !decider(id, event) {
                        match event.kind {
                            EventKind::Read(_) => self.skip.bump_read(tid),
                            _ => self.skip.bump_write(tid),
                        }
                        return false;
                    }
                    if self.batch.capacity > 1 {
                        // Admission + `RelAfter_S` at buffer time, still
                        // on the issuing thread's side of any shard lock
                        // (a flush may run on another thread). Unbatched
                        // accesses raise the bit in their handler, on
                        // the slot it already resolved — same thread, so
                        // still sequenced before this thread's release.
                        self.note_sampled(event.tid);
                        return self.buffer_access(id, event, var);
                    }
                } else if self.batch.capacity > 1 {
                    return self.buffer_access(id, event, var);
                }
                match &self.inner {
                    Inner::Replicated(r) => self.access_replicated(r, id, event, var),
                    Inner::Shared(p) => self.access_two_plane(p, id, event, var),
                    Inner::Seqlock(p) => self.access_seqlock(p, id, event, var),
                }
            }
            EventKind::Acquire(_) | EventKind::Release(_) => {
                // Flush-before-any-sync: buffered accesses must be
                // analyzed against the pre-sync views (see the
                // type-level batching argument).
                if self.batch.capacity > 1 {
                    self.flush_pending();
                }
                let id = self.take_ticket();
                match &self.inner {
                    Inner::Replicated(r) => self.replicate_sync(&r.shards, id, event),
                    Inner::Shared(p) => self.sync_two_plane(p, event),
                    Inner::Seqlock(p) => self.sync_seqlock(p, event),
                }
                false
            }
        }
    }

    /// Buffers one ticketed access event in its shard's batch, flushing
    /// inline when the batch reaches capacity. With a hoisted decider
    /// the caller has already admitted the event into the sample set —
    /// batches then hold *only sampled* accesses.
    fn buffer_access(&self, id: EventId, event: Event, var: VarId) -> bool {
        // Without a decider the thread has not been admitted yet; do it
        // before buffering so flushes (possibly run by other threads'
        // sync events) resolve slots on the fast path.
        if self.decider.is_none() {
            match &self.inner {
                Inner::Replicated(_) => {}
                Inner::Shared(p) => drop(self.slot(p, event.tid)),
                Inner::Seqlock(p) => {
                    let _ = self.seq_slot(p, event.tid);
                }
            }
        }
        let k = self.shard_of(var);
        let mut batch = lock(&self.batch.batches[k]);
        batch.events.push((id, event));
        self.batch.pending.fetch_add(1, Ordering::Relaxed);
        if batch.events.len() >= self.batch.capacity {
            self.flush_shard(k, &mut batch);
        }
        false
    }

    /// Drains every non-empty batch (one batch+shard lock pair at a
    /// time). A single relaxed load skips the sweep when nothing is
    /// buffered, so a pure sync stream pays one load per event.
    fn flush_pending(&self) {
        if self.batch.capacity <= 1 || self.batch.pending.load(Ordering::Relaxed) == 0 {
            return;
        }
        for k in 0..self.batch.batches.len() {
            let mut batch = lock(&self.batch.batches[k]);
            if !batch.events.is_empty() {
                self.flush_shard(k, &mut batch);
            }
        }
    }

    /// Analyzes shard `k`'s buffered events in buffer order under one
    /// shard-lock acquisition. Caller holds the batch lock (lock order:
    /// batch(k) → shard(k)).
    ///
    /// With a hoisted decider the batch holds only sampled accesses and
    /// goes straight through [`AccessEngine::feed_batch`]; their
    /// `RelAfter_S` flags were raised on the hoisted side at buffer
    /// time, so the flush sink only collects reports. Without one, each
    /// event is decided inline ([`AccessEngine::access`]) and the flag
    /// is raised here, at flush — the pre-hoist behavior.
    fn flush_shard(&self, k: usize, batch: &mut AccessBatch) {
        if batch.events.is_empty() {
            return;
        }
        match &self.inner {
            Inner::Replicated(r) => {
                let mut shard = lock(&r.shards[k]);
                self.note_shard_lock();
                for &(id, event) in &batch.events {
                    // With a decider, buffered events are admitted
                    // accesses — skip the clone's redundant re-decide.
                    let report = if self.decider.is_some() {
                        shard.detector.process_admitted(id, event)
                    } else {
                        shard.detector.process(id, event)
                    };
                    if let Some(report) = report {
                        shard.reports.push(report);
                    }
                }
            }
            Inner::Shared(p) => {
                let slots = p.slots.read().expect("slot table lock poisoned");
                let mut shard = lock(&p.shards[k]);
                self.note_shard_lock();
                let AccessShard {
                    engine,
                    counters,
                    reports,
                    ..
                } = &mut *shard;
                counters.events += batch.events.len() as u64;
                let mut views = SharedViews { slots: &slots };
                if self.decider.is_some() {
                    engine.feed_batch(&batch.events, &mut views, counters, |_, outcome| {
                        if let Some(report) = outcome.report {
                            reports.push(report);
                        }
                    });
                } else {
                    for &(id, event) in &batch.events {
                        let view = views.view(event.tid);
                        let outcome = engine.access(id, event, &view, counters);
                        if outcome.sampled {
                            slots[event.tid.index()]
                                .sampled
                                .store(true, Ordering::Relaxed);
                        }
                        if let Some(report) = outcome.report {
                            reports.push(report);
                        }
                    }
                }
            }
            Inner::Seqlock(p) => {
                let mut shard = lock(&p.shards[k]);
                self.note_shard_lock();
                let AccessShard {
                    engine,
                    counters,
                    reports,
                    scratch,
                } = &mut *shard;
                counters.events += batch.events.len() as u64;
                let mut views = SeqViews {
                    slots: &p.slots,
                    scratch,
                };
                if self.decider.is_some() {
                    engine.feed_batch(&batch.events, &mut views, counters, |_, outcome| {
                        if let Some(report) = outcome.report {
                            reports.push(report);
                        }
                    });
                } else {
                    for &(id, event) in &batch.events {
                        let view = views.view(event.tid);
                        let outcome = engine.access(id, event, &view, counters);
                        if outcome.sampled {
                            p.slots
                                .get(event.tid.index())
                                .expect("buffered accesses come from admitted threads")
                                .sampled
                                .store(true, Ordering::Relaxed);
                        }
                        if let Some(report) = outcome.report {
                            reports.push(report);
                        }
                    }
                }
            }
        }
        self.batch
            .pending
            .fetch_sub(batch.events.len() as u64, Ordering::Relaxed);
        batch.events.clear();
    }

    /// Analyzes one unbatched (and, with a decider, already sampled)
    /// access in replicated mode. On the hoisted path the decision was
    /// already computed outside the lock, so the clone takes
    /// [`Detector::process_admitted`] and never re-derives it; the
    /// decider-less fallback goes through `process`, which decides
    /// inline.
    fn access_replicated(&self, r: &Replicated<D>, id: EventId, event: Event, var: VarId) -> bool {
        let mut shard = lock(&r.shards[self.shard_of(var)]);
        self.note_shard_lock();
        let report = if self.decider.is_some() {
            shard.detector.process_admitted(id, event)
        } else {
            shard.detector.process(id, event)
        };
        if let Some(report) = report {
            shard.reports.push(report);
            true
        } else {
            false
        }
    }

    /// Locks `shards[0]`, recurses over the rest, and — on the way back
    /// up, with every lock still held — feeds the sync event to each
    /// shard. Ordered all-shards acquisition: ascending index, so
    /// concurrent sync events cannot deadlock against each other
    /// (accesses hold at most one shard lock and never wait for a
    /// second). The recursion keeps each guard in a stack frame with no
    /// per-event guard collection on the heap; every clone observes the
    /// sync event atomically (no access interleaves mid-replication).
    fn replicate_sync(&self, shards: &[Mutex<ReplicatedShard<D>>], id: EventId, event: Event) {
        if let Some((first, rest)) = shards.split_first() {
            let mut guard = lock(first);
            self.note_shard_lock();
            self.replicate_sync(rest, id, event);
            let report = guard.detector.process(id, event);
            debug_assert!(report.is_none(), "sync events never race");
        }
    }

    /// Analyzes one unbatched sampled access in shared (two-plane)
    /// mode. With a hoisted decider the engine's own decision is
    /// skipped ([`AccessEngine::access_sampled`]); without one the
    /// engine decides inline and maintains `RelAfter_S` here.
    fn access_two_plane(&self, plane: &TwoPlane<D>, id: EventId, event: Event, var: VarId) -> bool {
        let slot = self.slot(plane, event.tid);
        let mut shard = lock(&plane.shards[self.shard_of(var)]);
        self.note_shard_lock();
        let view = lock(&slot.view)
            .clone()
            .expect("admitted threads always carry a published view");
        let AccessShard {
            engine,
            counters,
            reports,
            ..
        } = &mut *shard;
        counters.events += 1;
        let outcome = if self.decider.is_some() {
            // Already admitted: raise `RelAfter_S` on the slot in hand
            // and skip the engine's redundant re-decide.
            slot.sampled.store(true, Ordering::Relaxed);
            engine.access_sampled(id, event, &view, counters)
        } else {
            let outcome = engine.access(id, event, &view, counters);
            if outcome.sampled {
                slot.sampled.store(true, Ordering::Relaxed);
            }
            outcome
        };
        if let Some(report) = outcome.report {
            reports.push(report);
            true
        } else {
            false
        }
    }

    /// Analyzes one unbatched sampled access in seqlock mode; see
    /// [`access_two_plane`](ShardedOnlineDetector::access_two_plane)
    /// for the decider split.
    fn access_seqlock(&self, plane: &SeqPlane<D>, id: EventId, event: Event, var: VarId) -> bool {
        let slot = self.seq_slot(plane, event.tid);
        let mut shard = lock(&plane.shards[self.shard_of(var)]);
        self.note_shard_lock();
        let AccessShard {
            engine,
            counters,
            reports,
            scratch,
        } = &mut *shard;
        // Lock-free view: decode the thread's publication into the
        // shard's scratch buffer (retrying on torn reads).
        slot.clock.read_into(scratch);
        let view = PublishedView::new(scratch);
        counters.events += 1;
        let outcome = if self.decider.is_some() {
            // Already admitted: raise `RelAfter_S` on the slot in hand
            // and skip the engine's redundant re-decide.
            slot.sampled.store(true, Ordering::Relaxed);
            engine.access_sampled(id, event, &view, counters)
        } else {
            let outcome = engine.access(id, event, &view, counters);
            if outcome.sampled {
                slot.sampled.store(true, Ordering::Relaxed);
            }
            outcome
        };
        if let Some(report) = outcome.report {
            reports.push(report);
            true
        } else {
            false
        }
    }

    fn sync_two_plane(&self, plane: &TwoPlane<D>, event: Event) {
        let tid = event.tid;
        let slot = self.slot(plane, tid);
        let lock_id = match event.kind {
            EventKind::Acquire(l) | EventKind::Release(l) => l,
            _ => unreachable!("on_event routes only sync events here"),
        };
        let mut sync = lock(&plane.sync);
        // Take-before-mutate: drop the published view so the
        // engine's mutation stays in place instead of
        // deep-copying. Holding the slot lock across the engine
        // op is deadlock-free (it is a leaf lock) and blocks no
        // one — only this thread's own accesses read its slot,
        // and this thread is here.
        let mut view_slot = lock(&slot.view);
        *view_slot = None;
        let SyncPlane {
            engine, counters, ..
        } = &mut *sync;
        counters.events += 1;
        match event.kind {
            EventKind::Acquire(_) => engine.acquire(tid, lock_id, counters),
            EventKind::Release(_) => {
                // Check before consuming: the bit is set by this
                // thread's own sampled accesses (program-order
                // sequenced with this release), so a false load
                // is stable and the usual unsampled release
                // skips the read-modify-write entirely.
                let sampled = slot.sampled.load(Ordering::Relaxed)
                    && slot.sampled.swap(false, Ordering::Relaxed);
                engine.release(tid, lock_id, sampled, counters);
            }
            _ => unreachable!("on_event routes only sync events here"),
        }
        *view_slot = Some(engine.publish(tid));
    }

    fn sync_seqlock(&self, plane: &SeqPlane<D>, event: Event) {
        let tid = event.tid;
        let slot = self.seq_slot(plane, tid);
        let lock_id = match event.kind {
            EventKind::Acquire(l) | EventKind::Release(l) => l,
            _ => unreachable!("on_event routes only sync events here"),
        };
        let mut sync = lock(&plane.sync);
        let SyncPlane {
            engine,
            counters,
            publisher,
        } = &mut *sync;
        counters.events += 1;
        match event.kind {
            EventKind::Acquire(_) => engine.acquire(tid, lock_id, counters),
            EventKind::Release(_) => {
                // Check before consuming: the bit is set by this
                // thread's own sampled accesses (program-order
                // sequenced with this release), so a false load
                // is stable and the usual unsampled release
                // skips the read-modify-write entirely.
                let sampled = slot.sampled.load(Ordering::Relaxed)
                    && slot.sampled.swap(false, Ordering::Relaxed);
                engine.release(tid, lock_id, sampled, counters);
            }
            _ => unreachable!("on_event routes only sync events here"),
        }
        // Republish in place through the seqlock: a version-word
        // bump around `width` plain stores — or nothing at all,
        // when the publication is unchanged.
        publisher.publish_event(engine, tid, &slot.clock);
    }

    /// Records a read of variable `var` by thread `tid`.
    pub fn read(&self, tid: u32, var: u32) -> bool {
        self.on_event(tid, EventKind::Read(VarId::new(var)))
    }

    /// Records a write of variable `var` by thread `tid`.
    pub fn write(&self, tid: u32, var: u32) -> bool {
        self.on_event(tid, EventKind::Write(VarId::new(var)))
    }

    /// Records an acquire of lock `lock` by thread `tid`.
    pub fn acquire(&self, tid: u32, lock: u32) {
        self.on_event(tid, EventKind::Acquire(LockId::new(lock)));
    }

    /// Records a release of lock `lock` by thread `tid`.
    pub fn release(&self, tid: u32, lock: u32) {
        self.on_event(tid, EventKind::Release(LockId::new(lock)));
    }

    /// Number of event tickets drawn so far. Every event — including a
    /// sampled-out access, whose processing is just its skip tally —
    /// draws exactly one ticket at the top of `on_event`, so after all
    /// workers quiesce this equals events observed.
    pub fn events_processed(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed)
    }

    /// Races reported so far, across all shards (excluding any still
    /// buffered in unflushed batches).
    pub fn race_count(&self) -> usize {
        match &self.inner {
            Inner::Replicated(r) => r.shards.iter().map(|s| lock(s).reports.len()).sum(),
            Inner::Shared(p) => p.shards.iter().map(|s| lock(s).reports.len()).sum(),
            Inner::Seqlock(p) => p.shards.iter().map(|s| lock(s).reports.len()).sum(),
        }
    }

    /// Consumes the façade, returning the merged race reports.
    ///
    /// Reports are **strictly sorted by racing [`EventId`]** — the same
    /// deterministic global order
    /// [`OnlineDetector::finish`](crate::OnlineDetector::finish)
    /// guarantees, so sharded and unsharded runs over the same event
    /// stream are directly comparable (`crates/core/tests/sharding.rs`
    /// pins this for both sync modes and `N > 1`).
    pub fn finish(self) -> Vec<RaceReport> {
        self.finish_merged().0
    }

    /// [`finish`](ShardedOnlineDetector::finish) plus the aggregated
    /// [`Counters`].
    ///
    /// In `Shared` mode the two planes partition the event space, so
    /// counters sum directly (sync observations exist once by
    /// construction). In `Replicated` mode the per-shard counters go
    /// through [`Counters::merge`], which counts the replicated sync
    /// observations once and sums work counters.
    pub fn finish_merged(self) -> (Vec<RaceReport>, Counters) {
        // Residual batches: accesses buffered since the last sync event
        // (or over the whole run, if there was none).
        self.flush_pending();
        let (skipped_reads, skipped_writes) = self.skip.totals();
        let mut reports = Vec::new();
        // Per-shard report lists are *not* ticket-sorted in general —
        // concurrent analyzed events may invert ticket order under the
        // hoisted draw (invariant 10) — so ordering is established only
        // by the merged sort below.
        let mut counters = match self.inner {
            Inner::Replicated(r) => {
                let mut shard_counters = Vec::with_capacity(r.shards.len());
                for shard in r.shards {
                    let shard = shard.into_inner().expect("detector shard mutex poisoned");
                    shard_counters.push(*shard.detector.counters());
                    reports.extend(shard.reports);
                }
                Counters::merge(shard_counters)
            }
            Inner::Shared(p) => {
                let sync = p.sync.into_inner().expect("sync plane mutex poisoned");
                let mut counters = sync.counters;
                for shard in p.shards {
                    let shard = shard.into_inner().expect("detector shard mutex poisoned");
                    counters += shard.counters;
                    reports.extend(shard.reports);
                }
                counters
            }
            Inner::Seqlock(p) => {
                let sync = p.sync.into_inner().expect("sync plane mutex poisoned");
                let mut counters = sync.counters;
                for shard in p.shards {
                    let shard = shard.into_inner().expect("detector shard mutex poisoned");
                    counters += shard.counters;
                    reports.extend(shard.reports);
                }
                counters
            }
        };
        // Skip-path tallies never entered a shard's counters: fold them
        // in once, bit-exactly, after the plane merge.
        counters.fold_skipped_accesses(skipped_reads, skipped_writes);
        reports.sort_unstable_by_key(|r| r.event);
        debug_assert!(
            reports.windows(2).all(|w| w[0].event < w[1].event),
            "merged reports must be strictly sorted by EventId"
        );
        (reports, counters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Detector, DjitDetector, OnlineDetector, OrderedListDetector};
    use freshtrack_sampling::{AlwaysSampler, BernoulliSampler};
    use std::sync::Arc;

    const ALL_MODES: [SyncMode; 3] = [SyncMode::Replicated, SyncMode::Shared, SyncMode::Seqlock];

    #[test]
    fn sync_cost_is_replicated_vs_counted_once() {
        // One acquire/release pair and 32 partitioned writes. In Djit+
        // every sync event performs exactly one vector-clock op, so the
        // merged `vc_ops` pins the fan-out: N× under replication, 1×
        // under the two-plane constructions.
        for (mode, want_vc_ops) in [
            (SyncMode::Replicated, 2 * 4),
            (SyncMode::Shared, 2),
            (SyncMode::Seqlock, 2),
        ] {
            let sharded =
                ShardedOnlineDetector::with_mode(DjitDetector::new(AlwaysSampler::new()), 4, mode);
            sharded.acquire(0, 0);
            for v in 0..32 {
                sharded.write(0, v);
            }
            sharded.release(0, 0);
            let (reports, merged) = sharded.finish_merged();
            assert!(reports.is_empty());
            assert_eq!(merged.acquires, 1, "{mode:?}");
            assert_eq!(merged.releases, 1, "{mode:?}");
            assert_eq!(merged.writes, 32, "{mode:?}");
            assert_eq!(merged.events, 34, "{mode:?}");
            assert_eq!(merged.vc_ops, want_vc_ops, "{mode:?}");
        }
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let sharded = ShardedOnlineDetector::new(DjitDetector::new(AlwaysSampler::new()), 7);
        for v in 0..1000 {
            let s = sharded.shard_of(VarId::new(v));
            assert!(s < 7);
            assert_eq!(s, sharded.shard_of(VarId::new(v)));
        }
    }

    #[test]
    fn sequential_feed_matches_unsharded_in_all_modes() {
        // A small lock-ladder-ish stream with genuine races.
        let script: Vec<(u32, EventKind)> = (0..200u32)
            .map(|i| {
                let t = i % 3;
                match i % 5 {
                    0 => (t, EventKind::Acquire(LockId::new((i / 5) % 2))),
                    1 => (t, EventKind::Write(VarId::new(i % 7))),
                    2 => (t, EventKind::Read(VarId::new(i % 7))),
                    3 => (t, EventKind::Release(LockId::new((i / 5) % 2))),
                    _ => (t, EventKind::Write(VarId::new(3))),
                }
            })
            .collect();
        // The script must obey the locking discipline to be a valid
        // event stream; rebuild it with a holder map.
        let mut held = [None::<u32>; 2];
        let valid: Vec<(u32, EventKind)> = script
            .into_iter()
            .map(|(t, kind)| match kind {
                EventKind::Acquire(l) if held[l.index()].is_none() => {
                    held[l.index()] = Some(t);
                    (t, kind)
                }
                EventKind::Release(l) if held[l.index()] == Some(t) => {
                    held[l.index()] = None;
                    (t, kind)
                }
                EventKind::Acquire(_) | EventKind::Release(_) => {
                    (t, EventKind::Read(VarId::new(t)))
                }
                access => (t, access),
            })
            .collect();

        let sampler = BernoulliSampler::new(0.6, 9);
        let unsharded = OnlineDetector::new(OrderedListDetector::new(sampler));
        for &(t, kind) in &valid {
            unsharded.on_event(t, kind);
        }
        let (baseline, baseline_reports) = unsharded.finish();

        for mode in ALL_MODES {
            for shards in [1usize, 2, 3, 5] {
                for batch in [1usize, 4, 256] {
                    let sharded = ShardedOnlineDetector::with_options(
                        OrderedListDetector::new(sampler),
                        shards,
                        mode,
                        batch,
                    );
                    for &(t, kind) in &valid {
                        sharded.on_event(t, kind);
                    }
                    assert_eq!(sharded.shard_count(), shards);
                    assert_eq!(sharded.sync_mode(), mode);
                    assert_eq!(sharded.batch_capacity(), batch);
                    let (reports, merged) = sharded.finish_merged();
                    assert_eq!(
                        reports, baseline_reports,
                        "{mode:?} {shards} shards B={batch}"
                    );
                    assert_eq!(merged.events, baseline.counters().events);
                    assert_eq!(merged.reads, baseline.counters().reads);
                    assert_eq!(merged.writes, baseline.counters().writes);
                    assert_eq!(
                        merged.sampled_accesses,
                        baseline.counters().sampled_accesses
                    );
                    assert_eq!(merged.acquires, baseline.counters().acquires);
                    assert_eq!(merged.releases, baseline.counters().releases);
                    assert_eq!(merged.races, baseline.counters().races);
                }
            }
        }
    }

    #[test]
    fn concurrent_ingestion_obeys_locking_discipline() {
        for mode in ALL_MODES {
            let sharded = Arc::new(ShardedOnlineDetector::with_mode(
                OrderedListDetector::new(AlwaysSampler::new()),
                4,
                mode,
            ));
            sharded.reserve_threads(4);
            let app_lock = Arc::new(std::sync::Mutex::new(()));
            let handles: Vec<_> = (0..4u32)
                .map(|t| {
                    let sharded = Arc::clone(&sharded);
                    let app_lock = Arc::clone(&app_lock);
                    std::thread::spawn(move || {
                        for i in 0..100u32 {
                            let guard = app_lock.lock().unwrap();
                            sharded.acquire(t, 0);
                            sharded.write(t, i % 13);
                            sharded.release(t, 0);
                            drop(guard);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(sharded.events_processed(), 4 * 100 * 3);
            let (reports, merged) = Arc::try_unwrap(sharded).ok().unwrap().finish_merged();
            // All accesses are lock-protected: no races, on any shard.
            assert!(reports.is_empty(), "{mode:?}: {reports:?}");
            assert_eq!(merged.events, 1200);
            assert_eq!(merged.acquires, 400);
            assert_eq!(merged.releases, 400);
        }
    }

    #[test]
    fn concurrent_races_are_found_and_sorted() {
        for mode in ALL_MODES {
            let sharded = Arc::new(ShardedOnlineDetector::with_mode(
                DjitDetector::new(AlwaysSampler::new()),
                3,
                mode,
            ));
            let handles: Vec<_> = (0..4u32)
                .map(|t| {
                    let sharded = Arc::clone(&sharded);
                    std::thread::spawn(move || {
                        for v in 0..8u32 {
                            sharded.write(t, v);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert!(sharded.race_count() > 0);
            let reports = Arc::try_unwrap(sharded).ok().unwrap().finish();
            assert!(reports.windows(2).all(|w| w[0].event < w[1].event));
        }
    }

    #[test]
    fn late_thread_admission_publishes_a_fresh_view() {
        // Thread 5 appears mid-run with no prior sync events: its first
        // access must see its initial clock, not garbage, and still
        // race against the earlier unsynchronized write.
        let sharded = ShardedOnlineDetector::new(DjitDetector::new(AlwaysSampler::new()), 2);
        sharded.write(0, 9);
        assert!(sharded.write(5, 9), "unsynchronized write must race");
        let (reports, merged) = sharded.finish_merged();
        assert_eq!(reports.len(), 1);
        assert_eq!(merged.writes, 2);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = ShardedOnlineDetector::new(DjitDetector::new(AlwaysSampler::new()), 0);
    }

    #[test]
    #[should_panic(expected = "batch capacity")]
    fn zero_batch_is_rejected() {
        let _ = ShardedOnlineDetector::with_options(
            DjitDetector::new(AlwaysSampler::new()),
            2,
            SyncMode::Seqlock,
            0,
        );
    }

    #[test]
    fn buffered_accesses_report_at_flush_not_inline() {
        for mode in ALL_MODES {
            // Batch capacity larger than the stream: nothing flushes
            // until finish, so the racing write returns false inline
            // but the merged report list still contains it.
            let sharded = ShardedOnlineDetector::with_options(
                DjitDetector::new(AlwaysSampler::new()),
                2,
                mode,
                64,
            );
            assert!(!sharded.write(0, 9));
            assert!(!sharded.write(5, 9), "buffered access reports at flush");
            assert_eq!(sharded.race_count(), 0, "{mode:?}: still buffered");
            let (reports, merged) = sharded.finish_merged();
            assert_eq!(reports.len(), 1, "{mode:?}");
            assert_eq!(merged.writes, 2, "{mode:?}");
        }
    }

    #[test]
    fn full_batch_flushes_inline_and_sync_flushes_residuals() {
        for mode in ALL_MODES {
            // One shard so the batch fills deterministically at B=2.
            let sharded = ShardedOnlineDetector::with_options(
                DjitDetector::new(AlwaysSampler::new()),
                1,
                mode,
                2,
            );
            assert!(!sharded.write(0, 1));
            // Second buffered access fills the batch: the racing pair
            // is analyzed inside this call (though reported via the
            // shard, not the return value).
            assert!(!sharded.write(5, 1));
            assert_eq!(sharded.race_count(), 1, "{mode:?}: batch flushed at B");
            assert!(!sharded.write(6, 1));
            // A sync event flushes the half-full batch first.
            sharded.acquire(6, 0);
            assert_eq!(sharded.race_count(), 2, "{mode:?}: sync flushed residual");
            sharded.release(6, 0);
            let (reports, _) = sharded.finish_merged();
            assert_eq!(reports.len(), 2, "{mode:?}");
        }
    }

    #[test]
    fn concurrent_batched_ingestion_matches_event_count() {
        for mode in ALL_MODES {
            let sharded = Arc::new(ShardedOnlineDetector::with_options(
                OrderedListDetector::new(AlwaysSampler::new()),
                4,
                mode,
                8,
            ));
            sharded.reserve_threads(4);
            let app_lock = Arc::new(std::sync::Mutex::new(()));
            let handles: Vec<_> = (0..4u32)
                .map(|t| {
                    let sharded = Arc::clone(&sharded);
                    let app_lock = Arc::clone(&app_lock);
                    std::thread::spawn(move || {
                        for i in 0..100u32 {
                            let guard = app_lock.lock().unwrap();
                            sharded.acquire(t, 0);
                            sharded.write(t, i % 13);
                            sharded.release(t, 0);
                            drop(guard);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(sharded.events_processed(), 4 * 100 * 3);
            let (reports, merged) = Arc::try_unwrap(sharded).ok().unwrap().finish_merged();
            // All accesses are lock-protected: no races, on any shard.
            assert!(reports.is_empty(), "{mode:?}: {reports:?}");
            assert_eq!(merged.events, 1200);
            assert_eq!(merged.acquires, 400);
            assert_eq!(merged.releases, 400);
        }
    }
}
